//! Ablation: BatchLens's indexed queries vs the "no visualization
//! structures" raw table scans the paper argues against. Same questions, two
//! implementations; the speedup is the value of the indexed representation.

use batchlens_analytics::baseline::{
    busiest_job_raw, export_usage_records, jobs_running_at_raw, shared_machines_raw,
};
use batchlens_analytics::coalloc::CoallocationIndex;
use batchlens_analytics::hierarchy::HierarchySnapshot;
use batchlens_sim::scenario;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = scenario::fig3c(7).run().unwrap();
    let at = scenario::T_FIG3C;
    let instances = ds.instance_records().to_vec();
    let usage = export_usage_records(&ds);

    let mut group = c.benchmark_group("raw_scan_baseline");

    // Question 1: which jobs run now?
    group.bench_function("jobs_running/indexed", |b| {
        b.iter(|| black_box(ds.jobs_running_at(at).len()))
    });
    group.bench_function("jobs_running/raw", |b| {
        b.iter(|| black_box(jobs_running_at_raw(&instances, at).len()))
    });

    // Question 2: which machines are shared?
    group.bench_function("shared_machines/indexed", |b| {
        b.iter(|| black_box(CoallocationIndex::at(&ds, at).len()))
    });
    group.bench_function("shared_machines/raw", |b| {
        b.iter(|| black_box(shared_machines_raw(&instances, at).len()))
    });

    // Question 3: which job is busiest?
    group.bench_function("busiest_job/indexed", |b| {
        b.iter(|| {
            let snap = HierarchySnapshot::at(&ds, at);
            black_box(snap.jobs_by_mean_util().last().map(|(j, _)| *j))
        })
    });
    group.bench_function("busiest_job/raw", |b| {
        b.iter(|| black_box(busiest_job_raw(&instances, &usage, at)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
