//! Bench for Fig 2 line-chart regeneration: per-job line aggregation,
//! simplification and SVG emission, overall vs brushed detail.

use batchlens_analytics::aggregate::JobMetricLines;
use batchlens_render::linechart::LineChart;
use batchlens_render::svg::to_svg;
use batchlens_sim::scenario;
use batchlens_trace::{Metric, TimeDelta, TimeRange};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = scenario::fig2_sample(7).run().unwrap();
    let full = ds.span().unwrap();
    let detail = TimeRange::new(
        full.start(),
        full.start() + TimeDelta::seconds(full.duration().as_seconds() / 3),
    )
    .unwrap();

    let mut group = c.benchmark_group("fig_linechart");
    group.bench_function("aggregate_overall", |b| {
        b.iter(|| {
            black_box(JobMetricLines::build(&ds, scenario::JOB_7399, Metric::Cpu, &full).unwrap())
        })
    });
    let overall = JobMetricLines::build(&ds, scenario::JOB_7399, Metric::Cpu, &full).unwrap();
    group.bench_function("render_overall", |b| {
        b.iter(|| {
            black_box(
                LineChart::new(820.0, 300.0)
                    .overview()
                    .render(&overall, &full),
            )
        })
    });
    let dl = JobMetricLines::build(&ds, scenario::JOB_7399, Metric::Cpu, &detail).unwrap();
    group.bench_function("render_detail", |b| {
        b.iter(|| black_box(LineChart::new(820.0, 300.0).detail().render(&dl, &detail)))
    });
    group.bench_function("svg_overall", |b| {
        let scene = LineChart::new(820.0, 300.0)
            .overview()
            .render(&overall, &full);
        b.iter(|| black_box(to_svg(&scene).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
