//! Ablation: the supplementary view renderers (heatmap, radial comparison)
//! that complement the paper's three core views.

use batchlens_render::heatmap::Heatmap;
use batchlens_render::radial::{RadialComparison, Spoke};
use batchlens_render::svg::to_svg;
use batchlens_sim::scenario;
use batchlens_trace::{Metric, TimeDelta};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = scenario::fig3c(7).run().unwrap();
    let window = ds.span().unwrap();

    let mut group = c.benchmark_group("views");
    group.sample_size(30);
    for bucket_min in [5i64, 15, 60] {
        group.bench_with_input(
            BenchmarkId::new("heatmap", bucket_min),
            &bucket_min,
            |b, &m| {
                let hm = Heatmap::new(1200.0, 700.0).bucket(TimeDelta::minutes(m));
                b.iter(|| black_box(to_svg(&hm.render(&ds, Metric::Cpu, &window)).len()))
            },
        );
    }
    let spokes: Vec<Spoke> = (0..30)
        .map(|i| Spoke {
            label: format!("e{i}"),
            before: (i as f64 * 0.03) % 1.0,
            after: (i as f64 * 0.07) % 1.0,
        })
        .collect();
    group.bench_function("radial_30", |b| {
        b.iter(|| black_box(to_svg(&RadialComparison::new(480.0, 480.0).render(&spokes)).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
