//! Ablation: line simplification (LTTB vs Douglas-Peucker vs none) at an
//! equal point budget — the design choice that keeps day-long lines drawable.

use batchlens_layout::line::{douglas_peucker, lttb};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn day_series() -> Vec<(f64, f64)> {
    // 1 Hz for 24 h = 86400 points with spikes.
    (0..86_400)
        .map(|i| {
            let x = i as f64;
            let base = (x * 0.0005).sin() * 0.3 + 0.4;
            let spike = if i % 9000 == 0 { 0.5 } else { 0.0 };
            (x, base + spike)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let pts = day_series();
    let mut group = c.benchmark_group("simplify");
    group.bench_function("lttb_to_480", |b| {
        b.iter(|| black_box(lttb(&pts, 480).len()))
    });
    group.bench_function("dp_eps_0_01", |b| {
        b.iter(|| black_box(douglas_peucker(&pts, 0.01).len()))
    });
    group.bench_function("dp_eps_0_05", |b| {
        b.iter(|| black_box(douglas_peucker(&pts, 0.05).len()))
    });
    // "none" baseline: copy the full vector (what rendering without
    // simplification would hand the SVG layer).
    group.bench_function("none_copy", |b| b.iter(|| black_box(pts.clone().len())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
