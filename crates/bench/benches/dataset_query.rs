//! Ablation: indexed dataset snapshot queries (`jobs_running_at`,
//! `instances_running_at`, liveness) against the full-table scans they
//! replaced.

use batchlens_bench::medium_dataset;
use batchlens_trace::{JobId, Timestamp};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = medium_dataset(7);
    let span = ds.span().expect("medium dataset has a span");
    let probes: Vec<Timestamp> = span
        .steps(batchlens_trace::TimeDelta::seconds(
            (span.duration().as_seconds() / 16).max(1),
        ))
        .collect();

    let mut group = c.benchmark_group("dataset_query");
    group.bench_function("jobs_running_at_indexed", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &t in &probes {
                total += black_box(ds.jobs_running_at(t).len());
            }
            total
        })
    });
    group.bench_function("jobs_running_at_scan", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &t in &probes {
                // The pre-index implementation: scan every instance record.
                let jobs: BTreeSet<JobId> = ds
                    .instance_records()
                    .iter()
                    .filter(|r| r.running_at(t))
                    .map(|r| r.job)
                    .collect();
                total += black_box(jobs.len());
            }
            total
        })
    });
    group.bench_function("running_count_indexed", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|&t| black_box(ds.running_instance_count_at(t)))
                .sum::<usize>()
        })
    });
    group.bench_function("alive_at_indexed", |b| {
        let machines: Vec<_> = ds.machines().collect();
        b.iter(|| {
            let mut alive = 0usize;
            for &t in &probes {
                alive += machines.iter().filter(|m| m.alive_at(t)).count();
            }
            black_box(alive)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
