//! Ablation: scene-graph → SVG serialization throughput.

use batchlens_analytics::hierarchy::HierarchySnapshot;
use batchlens_render::bubble::BubbleChart;
use batchlens_render::svg::to_svg;
use batchlens_sim::scenario;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let ds = scenario::fig3c(7).run().unwrap();
    let snap = HierarchySnapshot::at(&ds, scenario::T_FIG3C);
    let scene = BubbleChart::new(1200.0, 1200.0).render(&snap);
    let counts = scene.counts();
    let nodes =
        (counts.circles + counts.sectors + counts.polylines + counts.lines + counts.texts) as u64;

    let mut group = c.benchmark_group("svg_emit");
    group.throughput(Throughput::Elements(nodes.max(1)));
    group.bench_function("bubble_scene", |b| {
        b.iter(|| black_box(to_svg(&scene).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
