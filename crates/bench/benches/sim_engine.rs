//! Ablation: simulator throughput (events/sec) as the cluster scales — the
//! cost of building the substrate the paper's real trace provided for free.

use batchlens_sim::{SimConfig, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(20);
    for machines in [20u32, 100, 400] {
        let mut cfg = SimConfig::paper_scale(7);
        cfg.machines = machines;
        cfg.window = batchlens_trace::TimeRange::new(
            batchlens_trace::Timestamp::ZERO,
            batchlens_trace::Timestamp::new(3 * 3600),
        )
        .unwrap();
        // Throughput measured in usage samples produced.
        let samples = (machines as u64)
            * (cfg.window.duration().as_seconds() / cfg.usage_resolution.as_seconds()) as u64;
        group.throughput(Throughput::Elements(samples));
        group.bench_with_input(BenchmarkId::from_parameter(machines), &cfg, |b, cfg| {
            b.iter(|| black_box(Simulation::new(cfg.clone()).run().unwrap().instance_count()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
