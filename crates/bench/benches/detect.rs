//! Ablation: anomaly-detector throughput — threshold vs z-score vs EWMA vs
//! MAD on one series, plus the signature detectors, plus the incremental
//! push path (one live state pushed sample-by-sample) against the batch
//! provided method it backs.

use batchlens_analytics::detect::{
    reference, CusumDetector, Detector, Ensemble, EwmaDetector, IqrDetector, MadDetector,
    SpikeDetector, ThrashingDetector, ThresholdDetector, ZScoreDetector,
};
use batchlens_trace::{Metric, TimeRange, Timestamp, TraceDataset};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn spike_job_series(
    ds: &TraceDataset,
) -> (
    batchlens_trace::TimeSeries,
    batchlens_trace::TimeSeries,
    TimeRange,
) {
    let job = ds.job(batchlens_sim::scenario::JOB_7901).unwrap();
    let m = job.machines()[0];
    let mv = ds.machine(m).unwrap();
    let cpu = mv.usage(Metric::Cpu).unwrap().clone();
    let mem = mv.usage(Metric::Memory).unwrap().clone();
    let window = job.lifetime().unwrap();
    (cpu, mem, window)
}

fn bench(c: &mut Criterion) {
    let ds = batchlens_sim::scenario::fig3b(7).run().unwrap();
    let (cpu, mem, window) = spike_job_series(&ds);

    let mut group = c.benchmark_group("detect");
    let threshold = ThresholdDetector::new(0.9);
    let zscore = ZScoreDetector::new(3.0);
    let ewma = EwmaDetector::default();
    let mad = MadDetector::default();
    let iqr = IqrDetector::default();
    let cusum = CusumDetector::default();
    group.bench_function("threshold", |b| {
        b.iter(|| black_box(threshold.detect(&cpu)))
    });
    group.bench_function("zscore", |b| b.iter(|| black_box(zscore.detect(&cpu))));
    group.bench_function("ewma", |b| b.iter(|| black_box(ewma.detect(&cpu))));
    group.bench_function("mad", |b| b.iter(|| black_box(mad.detect(&cpu))));
    group.bench_function("iqr", |b| b.iter(|| black_box(iqr.detect(&cpu))));
    group.bench_function("cusum", |b| b.iter(|| black_box(cusum.detect(&cpu))));
    group.bench_function("ensemble_3", |b| {
        let e = Ensemble::new(
            vec![
                Box::new(ThresholdDetector::new(0.9)),
                Box::new(ZScoreDetector::new(3.0)),
                Box::new(MadDetector::new(3.5)),
            ],
            2,
        );
        b.iter(|| black_box(e.detect(&cpu)))
    });
    group.bench_function("spike_signature", |b| {
        let d = SpikeDetector::new();
        b.iter(|| black_box(d.match_spike(&cpu, &window)))
    });
    group.bench_function("thrashing_signature", |b| {
        let d = ThrashingDetector::new();
        b.iter(|| black_box(d.detect(&cpu, &mem)))
    });
    // The incremental path, fed sample-by-sample, vs the retained scan
    // reference of the same kernel.
    group.bench_function("threshold_state_fed", |b| {
        b.iter(|| {
            let mut state = threshold.state();
            let mut spans = 0usize;
            for (t, v) in cpu.iter() {
                spans += usize::from(state.push(t, v).closed.is_some());
            }
            spans += usize::from(state.finish().is_some());
            black_box(spans)
        })
    });
    group.bench_function("threshold_reference_scan", |b| {
        b.iter(|| black_box(reference::threshold(&threshold, &cpu)))
    });
    group.finish();
    let _ = Timestamp::ZERO;
}

criterion_group!(benches, bench);
criterion_main!(benches);
