//! Ablation: machine behavioral clustering (feature extraction + k-means) as
//! the cluster size and k grow.

use batchlens_analytics::behavior::{behavior_vectors, cluster_behaviors};
use batchlens_sim::{SimConfig, Simulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("behavior_cluster");
    group.sample_size(20);
    for machines in [50u32, 200] {
        let mut cfg = SimConfig::medium(7);
        cfg.machines = machines;
        let ds = Simulation::new(cfg).run().unwrap();
        let window = ds.span().unwrap();
        group.bench_with_input(BenchmarkId::new("vectors", machines), &ds, |b, ds| {
            b.iter(|| black_box(behavior_vectors(ds, &window).len()))
        });
        let vecs = behavior_vectors(&ds, &window);
        for k in [3usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("kmeans_k{k}"), machines),
                &vecs,
                |b, vecs| b.iter(|| black_box(cluster_behaviors(vecs, k, 50))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
