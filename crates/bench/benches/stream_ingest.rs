//! Ablation: per-sample online ingest cost as the rolling window grows.
//!
//! The incremental detector banks make one `StreamMonitor::ingest` O(1) in
//! the window length: the `ingest` rows must stay flat as the horizon grows
//! from 30 minutes to 24 hours. The `rescan` rows time what the
//! pre-incremental monitor did on every record — materialize the rolling
//! window into a `TimeSeries` and inspect it — which scales linearly with
//! the window and is kept here as the regression foil.

use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::{
    MachineId, Metric, ServerUsageRecord, TimeDelta, Timestamp, UtilizationTriple,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn rec(t: i64) -> ServerUsageRecord {
    // A wobbling, occasionally-hot pattern so detector branches are
    // exercised.
    let phase = (t / 60) % 97;
    let cpu = 0.3 + 0.3 * (phase as f64 / 97.0);
    ServerUsageRecord {
        time: Timestamp::new(t),
        machine: MachineId::new(1),
        util: UtilizationTriple::clamped(cpu, 0.4, 0.2),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest");
    for horizon_min in [30i64, 240, 1440] {
        let cfg = StreamConfig {
            horizon: TimeDelta::minutes(horizon_min),
            ..StreamConfig::default()
        };

        // Pre-fill one machine until its window is at capacity, then time
        // steady-state ingest of fresh records.
        let monitor = StreamMonitor::new(cfg).unwrap();
        let mut t = 0i64;
        while t < horizon_min * 60 + 600 {
            monitor.ingest(rec(t));
            t += 60;
        }
        group.bench_function(BenchmarkId::new("ingest", horizon_min), |b| {
            b.iter(|| {
                t += 60;
                black_box(monitor.ingest(rec(t)).len())
            })
        });

        // The pre-incremental cost model: rebuild the window series and scan
        // it per record (what `StreamMonitor` used to do on every ingest).
        group.bench_function(BenchmarkId::new("rescan", horizon_min), |b| {
            b.iter(|| {
                t += 60;
                monitor.ingest(rec(t));
                let series = monitor
                    .series(MachineId::new(1), Metric::Cpu)
                    .expect("machine tracked");
                let decline = series
                    .first()
                    .zip(series.last())
                    .map(|((_, first), (_, last))| first - last)
                    .unwrap_or(0.0);
                black_box(decline)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
