//! Ablation: time-series operations (resample, slice, aggregate) that back
//! the line-chart and timeline views.

use batchlens_trace::{Resample, TimeDelta, TimeRange, TimeSeries, Timestamp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn ramp(n: usize) -> TimeSeries {
    (0..n as i64)
        .map(|i| (Timestamp::new(i), (i as f64 * 0.01).sin()))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("series_ops");
    for n in [1_000usize, 10_000, 86_400] {
        let s = ramp(n);
        group.bench_with_input(BenchmarkId::new("resample_mean", n), &s, |b, s| {
            b.iter(|| {
                black_box(
                    s.resample(TimeDelta::BATCH_RESOLUTION, Resample::Mean)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("slice_half", n), &s, |b, s| {
            let w = TimeRange::new(Timestamp::new(0), Timestamp::new(n as i64 / 2)).unwrap();
            b.iter(|| black_box(s.slice(&w).len()))
        });
        group.bench_with_input(BenchmarkId::new("stats", n), &s, |b, s| {
            b.iter(|| black_box(s.stats()))
        });
    }

    // Aggregate many machine series (the timeline's mean_of): the sweep
    // kernel at cluster scale, with the naive union-grid reference as the
    // baseline it replaced. Machines report on the trace's 300 s cadence
    // but at staggered offsets, as in the real dumps — so the union grid is
    // much denser than any single series.
    for machines in [100usize, 1000] {
        let many: Vec<TimeSeries> = (0..machines)
            .map(|m| {
                let offset = (m as i64 * 131) % 300;
                (0..288i64)
                    .map(|i| {
                        (
                            Timestamp::new(offset + i * 300),
                            ((m + i as usize) as f64 * 0.01).sin(),
                        )
                    })
                    .collect()
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("mean_of_sweep", machines),
            &many,
            |b, many| b.iter(|| black_box(TimeSeries::mean_of(many.iter()).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("sum_of_sweep", machines),
            &many,
            |b, many| b.iter(|| black_box(TimeSeries::sum_of(many.iter()).len())),
        );
        group.bench_with_input(
            BenchmarkId::new("max_of_sweep", machines),
            &many,
            |b, many| b.iter(|| black_box(TimeSeries::max_of(many.iter()).len())),
        );
        if machines <= 100 {
            // The naive kernel at 1000×1440 takes seconds per iteration;
            // bench it only at the smaller size.
            group.bench_with_input(
                BenchmarkId::new("mean_of_naive", machines),
                &many,
                |b, many| b.iter(|| black_box(batchlens_trace::naive::mean_of(many.iter()).len())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
