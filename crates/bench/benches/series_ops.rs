//! Ablation: time-series operations (resample, slice, aggregate) that back
//! the line-chart and timeline views.

use batchlens_trace::{Resample, TimeDelta, TimeRange, TimeSeries, Timestamp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn ramp(n: usize) -> TimeSeries {
    (0..n as i64).map(|i| (Timestamp::new(i), (i as f64 * 0.01).sin())).collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("series_ops");
    for n in [1_000usize, 10_000, 86_400] {
        let s = ramp(n);
        group.bench_with_input(BenchmarkId::new("resample_mean", n), &s, |b, s| {
            b.iter(|| black_box(s.resample(TimeDelta::BATCH_RESOLUTION, Resample::Mean).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("slice_half", n), &s, |b, s| {
            let w = TimeRange::new(Timestamp::new(0), Timestamp::new(n as i64 / 2)).unwrap();
            b.iter(|| black_box(s.slice(&w).len()))
        });
        group.bench_with_input(BenchmarkId::new("stats", n), &s, |b, s| {
            b.iter(|| black_box(s.stats()))
        });
    }

    // Aggregate many machine series (the timeline's mean_of).
    let many: Vec<TimeSeries> = (0..100).map(|_| ramp(1_440)).collect();
    group.bench_function("mean_of_100x1440", |b| {
        b.iter(|| black_box(TimeSeries::mean_of(many.iter()).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
