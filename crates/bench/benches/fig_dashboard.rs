//! Bench for the full Fig 3 dashboard regeneration, one per regime.

use batchlens_render::svg::to_svg;
use batchlens_render::Dashboard;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_dashboard");
    group.sample_size(30);
    for (name, sim, at) in batchlens_bench::case_scenarios() {
        let ds = sim.run().unwrap();
        group.bench_function(format!("dashboard_{name}"), |b| {
            b.iter(|| {
                let scene = Dashboard::new(1400.0, 880.0).render(&ds, at);
                black_box(to_svg(&scene).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
