//! Bench for the Section II statistics table: simulation + statistics
//! computation across cluster sizes.

use batchlens_sim::{SimConfig, Simulation};
use batchlens_trace::stats::DatasetStats;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_dataset_stats");
    group.sample_size(20);
    for machines in [50u32, 200, 650] {
        let mut cfg = SimConfig::paper_scale(7);
        cfg.machines = machines;
        // Shorter window keeps the bench tractable while preserving shape.
        cfg.window = batchlens_trace::TimeRange::new(
            batchlens_trace::Timestamp::ZERO,
            batchlens_trace::Timestamp::new(6 * 3600),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("simulate", machines), &cfg, |b, cfg| {
            b.iter(|| black_box(Simulation::new(cfg.clone()).run().unwrap().job_count()))
        });
        let ds = Simulation::new(cfg).run().unwrap();
        group.bench_with_input(BenchmarkId::new("stats", machines), &ds, |b, ds| {
            b.iter(|| black_box(DatasetStats::compute(ds)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
