//! Ablation: circle-packing cost as the node count grows (the bubble chart's
//! dominant layout cost). DESIGN.md calls out front-chain packing as a design
//! choice; this measures how it scales.

use batchlens_layout::pack::pack_siblings;
use batchlens_layout::Circle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pack_scaling");
    for n in [16usize, 64, 256, 1024] {
        let radii = batchlens_bench::radii(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &radii, |b, radii| {
            b.iter(|| {
                let mut circles: Vec<Circle> =
                    radii.iter().map(|&r| Circle::new(0.0, 0.0, r)).collect();
                black_box(pack_siblings(&mut circles))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
