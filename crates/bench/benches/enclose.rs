//! Ablation: the Welzl smallest-enclosing-circle cost (used by packing and
//! by fitting bubbles into the viewport).

use batchlens_layout::enclose::enclose;
use batchlens_layout::Circle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("enclose");
    for n in [8usize, 64, 512, 4096] {
        // Spread circles over a plane so the basis churns.
        let circles: Vec<Circle> = batchlens_bench::radii(n, 11)
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                let a = i as f64 * 2.399_963; // golden-angle spiral
                let rad = (i as f64).sqrt() * 5.0;
                Circle::new(rad * a.cos(), rad * a.sin(), r)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &circles, |b, circles| {
            b.iter(|| black_box(enclose(circles)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
