//! Bench for Fig 1 / Fig 3 bubble-chart regeneration: hierarchy snapshot +
//! circle packing + SVG emission.

use batchlens_analytics::hierarchy::HierarchySnapshot;
use batchlens_render::bubble::BubbleChart;
use batchlens_render::svg::to_svg;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_bubble");
    for (name, sim, at) in batchlens_bench::case_scenarios() {
        let ds = sim.run().unwrap();
        group.bench_function(format!("snapshot_{name}"), |b| {
            b.iter(|| black_box(HierarchySnapshot::at(&ds, at)))
        });
        let snap = HierarchySnapshot::at(&ds, at);
        group.bench_function(format!("render_{name}"), |b| {
            b.iter(|| black_box(BubbleChart::new(900.0, 900.0).render(&snap)))
        });
        group.bench_function(format!("svg_{name}"), |b| {
            let scene = BubbleChart::new(900.0, 900.0).render(&snap);
            b.iter(|| black_box(to_svg(&scene).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
