//! Shared helpers for the BatchLens benchmark harness.
//!
//! Each paper figure and table has a Criterion bench (`fig_bubble`,
//! `fig_linechart`, `fig_dashboard`, `table_dataset_stats`) that times the
//! code regenerating it, plus algorithm ablation benches
//! (`pack_scaling`, `enclose`, `series_ops`, `simplify`, `detect`,
//! `svg_emit`, `sim_engine`, `raw_scan_baseline`). The `figures` binary
//! writes every artifact to `target/figures/` for inspection.
//!
//! This module centralizes the workload builders the benches share so the
//! "what is measured" is defined once.

use batchlens_sim::{scenario, SimConfig, Simulation};
use batchlens_trace::TraceDataset;

/// A deterministic medium dataset for throughput benches.
pub fn medium_dataset(seed: u64) -> TraceDataset {
    Simulation::new(SimConfig::medium(seed))
        .run()
        .expect("medium sim")
}

/// A deterministic small dataset for quick benches.
pub fn small_dataset(seed: u64) -> TraceDataset {
    Simulation::new(SimConfig::small(seed))
        .run()
        .expect("small sim")
}

/// The three case-study scenario builders paired with their timestamps.
pub fn case_scenarios() -> Vec<(&'static str, Simulation, batchlens_trace::Timestamp)> {
    vec![
        ("fig3a", scenario::fig3a(7), scenario::T_FIG3A),
        ("fig3b", scenario::fig3b(7), scenario::T_FIG3B),
        ("fig3c", scenario::fig3c(7), scenario::T_FIG3C),
    ]
}

/// Circle radii for packing/enclosing benches at a given size.
pub fn radii(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            1.0 + ((s >> 33) as f64 / u32::MAX as f64) * 9.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_data() {
        assert!(small_dataset(1).job_count() > 0);
        assert_eq!(case_scenarios().len(), 3);
        assert_eq!(radii(10, 1).len(), 10);
        assert!(radii(5, 1).iter().all(|&r| (1.0..=10.0).contains(&r)));
    }
}
