//! Regenerates every paper figure and table into `target/figures/`.
//!
//! Run with: `cargo run -p batchlens-bench --bin figures`
//!
//! Produces:
//! * `fig1_encoding.svg` — the hierarchical-bubble encoding diagram + legend
//! * `fig2a_overall.svg`, `fig2b_detail.svg` — the multi line chart
//! * `fig3a_dashboard.svg`, `fig3b_dashboard.svg`, `fig3c_dashboard.svg`
//! * `table_dataset_stats.txt` — the Section II statistics comparison
//! * `*_report.txt` — the root-cause report for each regime

use std::fs;
use std::path::PathBuf;

use batchlens::analytics::aggregate::JobMetricLines;
use batchlens::analytics::hierarchy::HierarchySnapshot;
use batchlens::render::bubble::BubbleChart;
use batchlens::render::legend::Legend;
use batchlens::render::linechart::LineChart;
use batchlens::render::scene::Node;
use batchlens::render::svg::to_svg;
use batchlens::render::Dashboard;
use batchlens::report::case_study_report;
use batchlens::sim::{scenario, SimConfig, Simulation};
use batchlens::trace::stats::DatasetStats;
use batchlens::trace::{Metric, TimeRange, Timestamp};

fn out_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("figures");
    fs::create_dir_all(&dir).expect("create figures dir");
    dir
}

fn write(dir: &std::path::Path, name: &str, content: &str) {
    let path = dir.join(name);
    fs::write(&path, content).expect("write figure");
    println!("  {} ({} bytes)", path.display(), content.len());
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = out_dir();
    println!("regenerating BatchLens figures into {}", dir.display());

    // --- Fig 1: encoding diagram + legend ---
    println!("fig1 (encoding + legend):");
    {
        let ds = scenario::fig1_sample(1).run()?;
        let snap = HierarchySnapshot::at(&ds, Timestamp::new(600));
        let mut scene = BubbleChart::new(520.0, 520.0).render(&snap);
        // Append the legend below the chart by merging a second scene's nodes,
        // translated down.
        let legend = Legend::new(520.0, 100.0).render();
        scene.height = 640.0;
        scene.push(Node::group_at((0.0, 520.0), legend.root));
        write(&dir, "fig1_encoding.svg", &to_svg(&scene));
    }

    // --- Fig 2: multi line chart, overall + brushed detail ---
    println!("fig2 (line charts):");
    {
        let ds = scenario::fig2_sample(1).run()?;
        let full = ds.span().unwrap();
        let overall = JobMetricLines::build(&ds, scenario::JOB_7399, Metric::Cpu, &full).unwrap();
        write(
            &dir,
            "fig2a_overall.svg",
            &to_svg(
                &LineChart::new(820.0, 300.0)
                    .overview()
                    .render(&overall, &full),
            ),
        );
        // Brush to the first third.
        let detail_win = TimeRange::new(
            full.start(),
            full.start() + batchlens::trace::TimeDelta::seconds(full.duration().as_seconds() / 3),
        )?;
        let detail =
            JobMetricLines::build(&ds, scenario::JOB_7399, Metric::Cpu, &detail_win).unwrap();
        write(
            &dir,
            "fig2b_detail.svg",
            &to_svg(
                &LineChart::new(820.0, 300.0)
                    .detail()
                    .render(&detail, &detail_win),
            ),
        );
    }

    // --- Fig 3: three regime dashboards + reports ---
    for (name, build, at, focus) in [
        (
            "fig3a",
            Box::new(|| scenario::fig3a(7)) as Box<dyn Fn() -> Simulation>,
            scenario::T_FIG3A,
            vec![scenario::JOB_8124, scenario::JOB_6639],
        ),
        (
            "fig3b",
            Box::new(|| scenario::fig3b(7)),
            scenario::T_FIG3B,
            vec![scenario::JOB_7901],
        ),
        (
            "fig3c",
            Box::new(|| scenario::fig3c(7)),
            scenario::T_FIG3C,
            vec![scenario::JOB_11939, scenario::JOB_7513],
        ),
    ] {
        println!("{name} (dashboard + report):");
        let ds = build().run()?;
        let scene = Dashboard::new(1400.0, 880.0).focus(focus).render(&ds, at);
        write(&dir, &format!("{name}_dashboard.svg"), &to_svg(&scene));
        write(
            &dir,
            &format!("{name}_report.txt"),
            &case_study_report(&ds, at),
        );
    }

    // --- Supplementary: cluster heatmap (Muelder-style behavioral overview) ---
    println!("heatmap (supplementary temporal overview):");
    {
        use batchlens::render::heatmap::Heatmap;
        let ds = scenario::paper_day_with_machines(7, 80).run()?;
        let window = ds.span().unwrap();
        let scene = Heatmap::new(1200.0, 700.0)
            .bucket(batchlens::trace::TimeDelta::minutes(10))
            .render(&ds, Metric::Cpu, &window);
        write(&dir, "heatmap_cpu.svg", &to_svg(&scene));
    }

    // --- Section II statistics table ---
    println!("table_dataset_stats:");
    {
        // Average the fractions across a seed sweep to show the shape is robust.
        let mut table = String::new();
        table.push_str("BatchLens — Alibaba trace v2017 statistics (paper Section II)\n\n");
        let ds = Simulation::new(SimConfig::paper_scale(7)).run()?;
        let stats = DatasetStats::compute(&ds);
        table.push_str(&stats.comparison_table());
        table.push_str(&format!("\nfull measured stats:\n{:#?}\n", stats));
        write(&dir, "table_dataset_stats.txt", &table);
    }

    println!("done.");
    Ok(())
}
