//! Perf guardrail for the trace-layer hot paths.
//!
//! Run with: `cargo run --release -p batchlens-bench --bin bench_trace`
//!
//! Times the sweep/index kernels against the naive implementations they
//! replaced and writes `BENCH_trace.json` (working directory) so future PRs
//! can track the trajectory. The relevant acceptance bar for the sweep-line
//! PR: `mean_of` at 1000 series and `jobs_running_at` on the medium
//! dataset must hold a ≥10× speedup over naive.

use std::collections::BTreeSet;
use std::time::Instant;

use batchlens::trace::{naive, JobId, TimeDelta, TimeSeries, Timestamp};
use batchlens_bench::medium_dataset;
use serde::Serialize;

/// One timed comparison.
#[derive(Debug, Serialize)]
struct Entry {
    name: String,
    naive_ns: f64,
    optimized_ns: f64,
    speedup: f64,
}

/// The emitted report.
#[derive(Debug, Serialize)]
struct Report {
    description: String,
    entries: Vec<Entry>,
}

/// Best-of-N wall-clock nanoseconds for one closure.
fn time_ns(reps: usize, mut f: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        sink = sink.wrapping_add(std::hint::black_box(f()));
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    std::hint::black_box(sink);
    best
}

/// A day of 300 s samples, staggered per machine as in the real trace
/// (machines don't report on a globally aligned grid).
fn machine_series(machine: usize) -> TimeSeries {
    let offset = (machine as i64 * 131) % 300;
    (0..288i64)
        .map(|i| {
            (
                Timestamp::new(offset + i * 300),
                ((machine + i as usize) as f64 * 0.01).sin(),
            )
        })
        .collect()
}

fn main() {
    let mut entries = Vec::new();

    // --- mean_of: sweep vs union-grid binary searches ---
    for machines in [100usize, 1000] {
        let series: Vec<TimeSeries> = (0..machines).map(machine_series).collect();
        let reps = if machines >= 1000 { 3 } else { 10 };
        let optimized = time_ns(reps, || TimeSeries::mean_of(series.iter()).len());
        let naive_ns = time_ns(2, || naive::mean_of(series.iter()).len());
        entries.push(Entry {
            name: format!("mean_of_{machines}x288"),
            naive_ns,
            optimized_ns: optimized,
            speedup: naive_ns / optimized,
        });
    }

    // --- jobs_running_at: interval index vs full-table scan ---
    let ds = medium_dataset(7);
    let span = ds.span().expect("medium dataset has a span");
    let probes: Vec<Timestamp> = span
        .steps(TimeDelta::seconds(
            (span.duration().as_seconds() / 64).max(1),
        ))
        .collect();
    println!(
        "medium dataset: {} instances, {} machines, {} probes",
        ds.instance_count(),
        ds.machine_count(),
        probes.len()
    );
    let optimized = time_ns(10, || {
        probes
            .iter()
            .map(|&t| ds.jobs_running_at(t).len())
            .sum::<usize>()
    });
    let naive_ns = time_ns(5, || {
        probes
            .iter()
            .map(|&t| {
                ds.instance_records()
                    .iter()
                    .filter(|r| r.running_at(t))
                    .map(|r| r.job)
                    .collect::<BTreeSet<JobId>>()
                    .len()
            })
            .sum::<usize>()
    });
    entries.push(Entry {
        name: "jobs_running_at_medium".into(),
        naive_ns,
        optimized_ns: optimized,
        speedup: naive_ns / optimized,
    });

    // --- alive_at: liveness checkpoints vs event-table scan ---
    let machines: Vec<_> = ds.machines().collect();
    let optimized = time_ns(10, || {
        probes
            .iter()
            .map(|&t| machines.iter().filter(|m| m.alive_at(t)).count())
            .sum::<usize>()
    });
    let naive_ns = time_ns(5, || {
        probes
            .iter()
            .map(|&t| {
                machines
                    .iter()
                    .filter(|m| {
                        let mut alive = true;
                        for ev in ds.machine_events().iter().filter(|e| e.machine == m.id()) {
                            if ev.time > t {
                                break;
                            }
                            alive = !matches!(
                                ev.event,
                                batchlens::trace::MachineEvent::Remove
                                    | batchlens::trace::MachineEvent::HardError
                            );
                        }
                        alive
                    })
                    .count()
            })
            .sum::<usize>()
    });
    entries.push(Entry {
        name: "alive_at_medium".into(),
        naive_ns,
        optimized_ns: optimized,
        speedup: naive_ns / optimized,
    });

    // --- quantile: selection vs clone + sort ---
    let big: TimeSeries = (0..86_400i64)
        .map(|i| (Timestamp::new(i), (i as f64 * 0.01).sin()))
        .collect();
    let optimized = time_ns(10, || {
        big.quantile(0.95)
            .map(|v| v.to_bits() as usize)
            .unwrap_or(0)
    });
    let naive_ns = time_ns(5, || {
        let mut sorted = big.values().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pos = 0.95 * (sorted.len() - 1) as f64;
        sorted[pos.floor() as usize].to_bits() as usize
    });
    entries.push(Entry {
        name: "quantile_86400".into(),
        naive_ns,
        optimized_ns: optimized,
        speedup: naive_ns / optimized,
    });

    let report = Report {
        description: "naive vs optimized wall-clock (best-of-N, release) for the \
                      trace-layer hot paths; speedup = naive / optimized"
            .into(),
        entries,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!("{json}");
    println!("wrote BENCH_trace.json");
}
