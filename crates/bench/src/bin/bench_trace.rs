//! Perf guardrail for the trace-layer and streaming hot paths.
//!
//! Run with: `cargo run --release -p batchlens-bench --bin bench_trace [-- OPTIONS]`
//!
//! Times the sweep/index/incremental kernels against the naive
//! implementations they replaced and writes `BENCH_trace.json` (working
//! directory) so future PRs can track the trajectory. Each op is timed over
//! several runs and reported with min/mean/max so the trajectory carries
//! variance, not just a best-of point.
//!
//! Options:
//!
//! * `--tier small|medium|paper` — which simulated dataset the
//!   dataset-bound rows use. `paper` is the full production-scale shape
//!   (`SimConfig::paper_scale`: 1300 machines / 24 h, Alibaba v2017); its
//!   rows are suffixed `_paper` and merged into the committed file next to
//!   the default `_medium` rows.
//! * `--check` — after running, compare against the committed
//!   `BENCH_trace.json` and exit non-zero if any tracked op's optimized
//!   time regressed more than 2× (the CI guardrail).
//!
//! Rows present in the committed file but not produced by the selected tier
//! (e.g. `_paper` rows during a `--tier medium` CI run) are preserved on
//! write and skipped by `--check`.

use std::collections::BTreeSet;
use std::time::Instant;

use batchlens::stream::{StreamConfig, StreamMonitor};
use batchlens::trace::wal::{WalConfig, WalWriter};
use batchlens::trace::{
    csv, naive, DatasetQuery, JobId, MachineId, Metric, ServerUsageRecord, TimeDelta, TimeSeries,
    Timestamp, TraceDataset, UtilizationTriple,
};
use batchlens_bench::medium_dataset;
use batchlens_sim::{SimConfig, Simulation};
use serde::{Deserialize, Serialize};

/// Wall-clock distribution of one op over several runs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Stats {
    min_ns: f64,
    mean_ns: f64,
    max_ns: f64,
}

/// One timed comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    name: String,
    naive: Stats,
    optimized: Stats,
    /// `naive.min_ns / optimized.min_ns`.
    speedup: f64,
}

/// One serving-layer load point: `sessions` concurrent keep-alive dashboard
/// sessions driving the typed frame endpoint over loopback sockets.
///
/// These rows are informational trajectory data, not `--check`-guarded:
/// loopback socket latency is a property of the host's scheduler and core
/// count, so a threshold would flake on smaller CI runners.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeEntry {
    name: String,
    sessions: usize,
    /// Total requests issued across all sessions.
    requests: usize,
    req_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    /// Shared-frame dedup effectiveness across the run's captures.
    frame_cache_hit_rate: f64,
}

/// One overload point: a saturating burst of one-shot connections at twice
/// the server's carrying capacity (workers + queue depth), recording how the
/// shed path behaves — the rate of `503 + Retry-After` rejections, how fast
/// those rejections come back (shedding must be cheaper than serving), and
/// the goodput the server sustains for the connections it does accept.
///
/// Informational, like [`ServeEntry`]: loopback scheduling is host-specific.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OverloadEntry {
    name: String,
    /// Connections attempted across the whole run.
    connections: usize,
    /// Worker threads + queue slots — the carrying capacity being doubled.
    capacity: usize,
    /// Fraction of connections shed with `503 + Retry-After`.
    shed_rate: f64,
    /// Median latency of a shed response (connect to 503 read).
    shed_p50_us: f64,
    /// Tail latency of a shed response.
    shed_p99_us: f64,
    /// Successful (200) responses per second over the saturated run.
    goodput_req_per_sec: f64,
}

/// The emitted report.
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    description: String,
    entries: Vec<Entry>,
    serve: Vec<ServeEntry>,
    overload: Vec<OverloadEntry>,
}

/// Times `f` once per run, `runs` times.
fn measure(runs: usize, mut f: impl FnMut() -> usize) -> Stats {
    let mut sink = 0usize;
    let mut samples = Vec::with_capacity(runs.max(1));
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        sink = sink.wrapping_add(std::hint::black_box(f()));
        samples.push(start.elapsed().as_nanos() as f64);
    }
    std::hint::black_box(sink);
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Stats {
        min_ns: min,
        mean_ns: mean,
        max_ns: max,
    }
}

fn entry(name: impl Into<String>, naive: Stats, optimized: Stats) -> Entry {
    Entry {
        name: name.into(),
        naive,
        optimized,
        speedup: naive.min_ns / optimized.min_ns,
    }
}

/// A day of 300 s samples, staggered per machine as in the real trace
/// (machines don't report on a globally aligned grid).
fn machine_series(machine: usize) -> TimeSeries {
    let offset = (machine as i64 * 131) % 300;
    (0..288i64)
        .map(|i| {
            (
                Timestamp::new(offset + i * 300),
                ((machine + i as usize) as f64 * 0.01).sin(),
            )
        })
        .collect()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Small,
    Medium,
    Paper,
}

impl Tier {
    fn name(self) -> &'static str {
        match self {
            Tier::Small => "small",
            Tier::Medium => "medium",
            Tier::Paper => "paper",
        }
    }

    fn dataset(self) -> TraceDataset {
        match self {
            Tier::Small => Simulation::new(SimConfig::small(7))
                .run()
                .expect("small sim"),
            Tier::Medium => medium_dataset(7),
            Tier::Paper => Simulation::new(SimConfig::paper_scale(7))
                .run()
                .expect("paper-scale sim"),
        }
    }
}

/// Synthetic rows: dataset-independent kernels (run on the default tier
/// only, so the committed values stay comparable run to run).
fn synthetic_entries(entries: &mut Vec<Entry>) {
    // --- mean_of: sweep vs union-grid binary searches ---
    for machines in [100usize, 1000] {
        let series: Vec<TimeSeries> = (0..machines).map(machine_series).collect();
        let reps = if machines >= 1000 { 3 } else { 8 };
        let optimized = measure(reps, || TimeSeries::mean_of(series.iter()).len());
        let naive_s = measure(2, || naive::mean_of(series.iter()).len());
        entries.push(entry(format!("mean_of_{machines}x288"), naive_s, optimized));
    }

    // --- quantile: selection vs clone + sort ---
    let big: TimeSeries = (0..86_400i64)
        .map(|i| (Timestamp::new(i), (i as f64 * 0.01).sin()))
        .collect();
    let optimized = measure(8, || {
        big.quantile(0.95)
            .map(|v| v.to_bits() as usize)
            .unwrap_or(0)
    });
    let naive_s = measure(4, || {
        let mut sorted = big.values().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pos = 0.95 * (sorted.len() - 1) as f64;
        sorted[pos.floor() as usize].to_bits() as usize
    });
    entries.push(entry("quantile_86400", naive_s, optimized));

    // --- stream ingest: incremental detector banks vs per-record window
    //     rescan, at a 24 h rolling horizon ---
    let rec = |t: i64| ServerUsageRecord {
        time: Timestamp::new(t),
        machine: MachineId::new(1),
        util: UtilizationTriple::clamped(0.3 + 0.3 * ((t / 60 % 97) as f64 / 97.0), 0.4, 0.2),
    };
    let cfg = StreamConfig {
        horizon: TimeDelta::DAY,
        ..StreamConfig::default()
    };
    let monitor = StreamMonitor::new(cfg).unwrap();
    let mut t = 0i64;
    while t < 86_400 + 600 {
        monitor.ingest(rec(t));
        t += 60;
    }
    const BATCH: usize = 2_000;
    let optimized = measure(5, || {
        let mut alerts = 0usize;
        for _ in 0..BATCH {
            t += 60;
            alerts += monitor.ingest(rec(t)).len();
        }
        alerts
    });
    let naive_s = measure(3, || {
        let mut sink = 0usize;
        for _ in 0..BATCH {
            t += 60;
            monitor.ingest(rec(t));
            // What the pre-incremental monitor did per record: materialize
            // the rolling window and inspect it.
            let series = monitor
                .series(MachineId::new(1), Metric::Cpu)
                .expect("machine tracked");
            sink += series.len();
        }
        sink
    });
    entries.push(entry(
        format!("stream_ingest_24h_x{BATCH}"),
        naive_s,
        optimized,
    ));

    // --- WAL append overhead on the hot ingest path. Column semantics are
    //     inverted here: "naive" is the *unlogged* baseline and "optimized"
    //     is the WAL-attached ingest the durability contract adds, so the
    //     guardrail tracks the logged path and the speedup column reads as
    //     the fraction of baseline throughput logging retains (< 1). ---
    let wal_dir = std::env::temp_dir().join(format!("batchlens-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let plain = StreamMonitor::new(cfg).unwrap();
    let logged = StreamMonitor::new(cfg).unwrap();
    logged.attach_wal(WalWriter::open(&wal_dir, WalConfig::default()).expect("bench wal opens"));
    let mut tp = 0i64;
    let mut tl = 0i64;
    while tp < 86_400 + 600 {
        plain.ingest(rec(tp));
        logged.ingest(rec(tl));
        tp += 60;
        tl += 60;
    }
    let baseline = measure(5, || {
        let mut alerts = 0usize;
        for _ in 0..BATCH {
            tp += 60;
            alerts += plain.ingest(rec(tp)).len();
        }
        alerts
    });
    let with_wal = measure(5, || {
        let mut alerts = 0usize;
        for _ in 0..BATCH {
            tl += 60;
            alerts += logged.ingest(rec(tl)).len();
        }
        alerts
    });
    assert_eq!(logged.wal_errors(), 0, "bench logging must not error");
    drop(logged.detach_wal());
    let _ = std::fs::remove_dir_all(&wal_dir);
    entries.push(entry("ingest_wal_overhead", baseline, with_wal));
}

/// Dataset-bound rows, suffixed with the tier name.
fn dataset_entries(tier: Tier, ds: &TraceDataset, entries: &mut Vec<Entry>) {
    let span = ds.span().expect("dataset has a span");
    let probes: Vec<Timestamp> = span
        .steps(TimeDelta::seconds(
            (span.duration().as_seconds() / 64).max(1),
        ))
        .collect();
    println!(
        "{} dataset: {} instances, {} machines, {} probes",
        tier.name(),
        ds.instance_count(),
        ds.machine_count(),
        probes.len()
    );
    let suffix = tier.name();

    // --- jobs_running_at: interval index vs full-table scan ---
    let optimized = measure(8, || {
        probes
            .iter()
            .map(|&t| ds.jobs_running_at(t).len())
            .sum::<usize>()
    });
    let naive_s = measure(3, || {
        probes
            .iter()
            .map(|&t| {
                ds.instance_records()
                    .iter()
                    .filter(|r| r.running_at(t))
                    .map(|r| r.job)
                    .collect::<BTreeSet<JobId>>()
                    .len()
            })
            .sum::<usize>()
    });
    entries.push(entry(
        format!("jobs_running_at_{suffix}"),
        naive_s,
        optimized,
    ));

    // --- alive_at: liveness checkpoints vs event-table scan ---
    let machines: Vec<_> = ds.machines().collect();
    let optimized = measure(8, || {
        probes
            .iter()
            .map(|&t| machines.iter().filter(|m| m.alive_at(t)).count())
            .sum::<usize>()
    });
    let naive_s = measure(3, || {
        probes
            .iter()
            .map(|&t| {
                machines
                    .iter()
                    .filter(|m| {
                        let mut alive = true;
                        for ev in ds.machine_events().iter().filter(|e| e.machine == m.id()) {
                            if ev.time > t {
                                break;
                            }
                            alive = !matches!(
                                ev.event,
                                batchlens::trace::MachineEvent::Remove
                                    | batchlens::trace::MachineEvent::HardError
                            );
                        }
                        alive
                    })
                    .count()
            })
            .sum::<usize>()
    });
    entries.push(entry(format!("alive_at_{suffix}"), naive_s, optimized));

    // --- live-window queries: the rolling interval/liveness indexes vs a
    //     scan of the live window (what a no-index monitor would do per
    //     query). The monitor ingests the dataset's structural records as a
    //     stream; with the horizon covering the whole trace, its window
    //     holds exactly the dataset's records, so the scan baseline can
    //     read them off the dataset tables verbatim. ---
    let monitor = StreamMonitor::new(StreamConfig {
        horizon: TimeDelta::hours(100),
        ..Default::default()
    })
    .unwrap();
    monitor.ingest_instances(ds.instance_records().iter().copied());
    for ev in ds.machine_events() {
        monitor.ingest_machine_event(*ev);
    }
    let view = monitor.live_view();
    let machine_ids: Vec<MachineId> = machines.iter().map(|m| m.id()).collect();
    let optimized = measure(8, || {
        probes
            .iter()
            .map(|&t| {
                let running = DatasetQuery::jobs_running_at(&view, t).len();
                let alive = machine_ids
                    .iter()
                    .filter(|&&m| DatasetQuery::alive_at(&view, m, t))
                    .count();
                running + alive
            })
            .sum::<usize>()
    });
    let naive_s = measure(3, || {
        probes
            .iter()
            .map(|&t| {
                // Window scan: every retained instance record per query...
                let running = ds
                    .instance_records()
                    .iter()
                    .filter(|r| r.running_at(t))
                    .map(|r| r.job)
                    .collect::<BTreeSet<JobId>>()
                    .len();
                // ...and every retained lifecycle event per machine.
                let alive = machine_ids
                    .iter()
                    .filter(|&&m| {
                        let mut alive = true;
                        for ev in ds.machine_events().iter().filter(|e| e.machine == m) {
                            if ev.time > t {
                                break;
                            }
                            alive = !matches!(
                                ev.event,
                                batchlens::trace::MachineEvent::Remove
                                    | batchlens::trace::MachineEvent::HardError
                            );
                        }
                        alive
                    })
                    .count();
                running + alive
            })
            .sum::<usize>()
    });
    entries.push(entry(format!("stream_query_{suffix}"), naive_s, optimized));

    // --- snapshot scrubbing: the delta engine (SnapshotScrubber advancing
    //     by interval entry/exit deltas, O(Δ log k) per step) vs rebuilding
    //     HierarchySnapshot + CoallocationIndex from scratch at every
    //     visited timestamp. Both sides produce bit-identical products (the
    //     snapshot_delta_differential suite proves it); the checksum keeps
    //     them honest here. ---
    use batchlens::analytics::coalloc::CoallocationIndex;
    use batchlens::analytics::hierarchy::HierarchySnapshot;
    use batchlens::analytics::scrub::SnapshotScrubber;
    // Frame-rate scrubbing: a fine forward drag across the whole span with
    // a two-frame back-and-return wiggle every 8th frame (the interactive
    // back-and-forth the delta engine exists for).
    let fine: Vec<Timestamp> = span
        .steps(TimeDelta::seconds(
            (span.duration().as_seconds() / 16_384).max(1),
        ))
        .collect();
    let mut walk: Vec<Timestamp> = Vec::with_capacity(fine.len() + fine.len() / 4);
    for (i, &t) in fine.iter().enumerate() {
        walk.push(t);
        if i % 8 == 7 && i >= 2 {
            walk.push(fine[i - 2]);
            walk.push(t);
        }
    }
    let scrub_reps = if tier == Tier::Paper { 2 } else { 3 };
    let optimized = measure(scrub_reps, || {
        let mut scrub = SnapshotScrubber::new();
        let mut sum = 0usize;
        for &t in &walk {
            scrub.seek(ds, t);
            sum += scrub.snapshot(ds).total_nodes() + scrub.coalloc().links().len();
        }
        sum
    });
    let naive_s = measure(2, || {
        let mut sum = 0usize;
        for &t in &walk {
            sum += HierarchySnapshot::at(ds, t).total_nodes()
                + CoallocationIndex::at(ds, t).links().len();
        }
        sum
    });
    entries.push(entry(
        format!("snapshot_scrub_{suffix}"),
        naive_s,
        optimized,
    ));
    {
        // Honesty check outside the timed loops: both paths must agree.
        let mut scrub = SnapshotScrubber::new();
        for &t in walk.iter().take(64) {
            scrub.seek(ds, t);
            assert_eq!(*scrub.snapshot(ds), HierarchySnapshot::at(ds, t));
        }
    }

    // --- live frame queries: one batched, transactionally consistent
    //     QueryFrame per timestamp (one lock acquisition for hierarchy +
    //     coalloc + utilization + alive probes + the per-machine anomaly
    //     counts the dashboard sidebar overlays) vs issuing the same
    //     products as individual live-view queries — which acquire the
    //     monitor lock per sub-query (and per machine for the utilization,
    //     alive and alert-count probes). ---
    for rec in batchlens::analytics::baseline::export_usage_records(ds) {
        monitor.ingest(rec);
    }
    let frame_reps = if tier == Tier::Paper { 3 } else { 5 };
    let optimized = measure(frame_reps, || {
        probes
            .iter()
            .map(|&t| {
                let frame = view.frame(t);
                HierarchySnapshot::from_frame(&frame).total_nodes()
                    + CoallocationIndex::from_frame(&frame).links().len()
                    + frame.machines_active().len()
                    + frame
                        .machine_ids()
                        .iter()
                        .filter(|&&m| frame.util_of(m).is_some())
                        .count()
                    + frame.total_anomalies() as usize
            })
            .sum::<usize>()
    });
    let naive_s = measure(2, || {
        probes
            .iter()
            .map(|&t| {
                HierarchySnapshot::at(&view, t).total_nodes()
                    + CoallocationIndex::at(&view, t).links().len()
                    + view.machines_active_at(t).len()
                    + machine_ids
                        .iter()
                        .filter(|&&m| view.util_at(m, t).is_some())
                        .count()
                    + machine_ids
                        .iter()
                        .map(|&m| monitor.machine_alert_count(m) as usize)
                        .sum::<usize>()
            })
            .sum::<usize>()
    });
    entries.push(entry(format!("live_frame_{suffix}"), naive_s, optimized));

    // --- timeline aggregation over the real per-machine CPU series ---
    let cpu_series: Vec<&TimeSeries> = machines
        .iter()
        .filter_map(|m| m.usage(Metric::Cpu))
        .collect();
    let reps = if tier == Tier::Paper { 2 } else { 5 };
    let optimized = measure(reps, || {
        TimeSeries::mean_of(cpu_series.iter().copied()).len()
    });
    let naive_s = measure(2, || naive::mean_of(cpu_series.iter().copied()).len());
    entries.push(entry(
        format!("timeline_mean_of_{suffix}"),
        naive_s,
        optimized,
    ));

    // --- serial-vs-parallel rows: the PR-3 execution layer. "naive" is the
    //     serial path (1 thread), "optimized" the chunk-merged sweep /
    //     sharded build at PAR_THREADS workers; both bit-identical, so the
    //     speedup column is purely the parallel trajectory. ---
    let serial_s = measure(reps, || {
        TimeSeries::mean_of_par(cpu_series.iter().copied(), 1).len()
    });
    let parallel = measure(reps, || {
        TimeSeries::mean_of_par(cpu_series.iter().copied(), PAR_THREADS).len()
    });
    entries.push(entry(
        format!("timeline_mean_par_{suffix}"),
        serial_s,
        parallel,
    ));

    let tasks: Vec<_> = ds.task_records().copied().collect();
    let instances = ds.instance_records().to_vec();
    let events = ds.machine_events().to_vec();
    let usage = batchlens::analytics::baseline::export_usage_records(ds);
    let build_reps = if tier == Tier::Paper { 2 } else { 3 };
    let time_build = |threads: usize| {
        measure(build_reps, || {
            let mut b = batchlens::trace::TraceDatasetBuilder::new();
            b.par_threads(threads);
            b.extend_tables(
                tasks.iter().copied(),
                instances.iter().copied(),
                usage.iter().cloned(),
                events.iter().copied(),
            );
            b.build().expect("records round-trip").instance_count()
        })
    };
    let serial_s = time_build(1);
    let parallel = time_build(PAR_THREADS);
    entries.push(entry(format!("dataset_build_{suffix}"), serial_s, parallel));

    // --- crash restart: rebuilding monitor state by replaying the binary
    //     WAL (`StreamMonitor::recover`) vs re-parsing the CSV archive and
    //     re-ingesting it — the two ways a monitor can come back after a
    //     crash. Both feed the identical delivery sequence, so the
    //     recovered states match; the WAL wins on decode cost alone. ---
    let mut feed = usage.clone();
    feed.sort_by_key(|r| (r.time, r.machine));
    let wal_dir = std::env::temp_dir().join(format!(
        "batchlens-bench-replay-{}-{}",
        std::process::id(),
        suffix
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let stream_cfg = StreamConfig {
        horizon: TimeDelta::hours(100),
        ..Default::default()
    };
    let logged = StreamMonitor::new(stream_cfg).unwrap();
    logged.attach_wal(WalWriter::open(&wal_dir, WalConfig::default()).expect("bench wal opens"));
    logged.ingest_instances(instances.iter().copied());
    for ev in &events {
        logged.ingest_machine_event(*ev);
    }
    for rec in &feed {
        logged.ingest(*rec);
    }
    assert_eq!(logged.wal_errors(), 0, "bench logging must not error");
    drop(logged.detach_wal());
    let inst_csv = csv::write_batch_instances(&instances);
    let event_csv = csv::write_machine_events(&events);
    let usage_csv = csv::write_server_usage(&feed);
    let replay_reps = if tier == Tier::Paper { 2 } else { 3 };
    let optimized = measure(replay_reps, || {
        let (monitor, report) =
            StreamMonitor::recover(&wal_dir, stream_cfg).expect("bench wal recovers");
        assert!(report.reason.is_clean(), "bench log is intact");
        monitor.state_version() as usize
    });
    let naive_s = measure(2, || {
        let monitor = StreamMonitor::new(stream_cfg).unwrap();
        monitor.ingest_instances(csv::parse_batch_instances(&inst_csv).expect("instances parse"));
        for ev in csv::parse_machine_events(&event_csv).expect("events parse") {
            monitor.ingest_machine_event(ev);
        }
        for rec in csv::parse_server_usage(&usage_csv).expect("usage parses") {
            monitor.ingest(rec);
        }
        monitor.state_version() as usize
    });
    let _ = std::fs::remove_dir_all(&wal_dir);
    entries.push(entry(format!("wal_replay_{suffix}"), naive_s, optimized));

    // --- dataset reopen: the columnar segment store (mmap'd sorted
    //     segments, parallel per-segment decode, k-way merge into the
    //     builder) vs re-parsing the CSV archive and rebuilding from
    //     scratch — the two ways a dataset comes back in a new process.
    //     Both construct the bit-identical dataset (the store_differential
    //     suite proves it; the assert below keeps this bench honest). ---
    use batchlens::trace::store::{self, Family, SegmentStore};
    let seg_dir = std::env::temp_dir().join(format!(
        "batchlens-bench-store-{}-{}",
        std::process::id(),
        suffix
    ));
    let _ = std::fs::remove_dir_all(&seg_dir);
    store::dump_dataset(&seg_dir, ds).expect("bench segment dump");
    assert_eq!(
        &TraceDataset::open(&seg_dir).expect("bench segment open"),
        ds,
        "store-backed reopen must be bit-identical"
    );
    let task_csv = csv::write_batch_tasks(&tasks);
    let open_reps = if tier == Tier::Paper { 2 } else { 3 };
    let optimized = measure(open_reps, || {
        TraceDataset::open(&seg_dir)
            .expect("segment reopen")
            .instance_count()
    });
    let naive_s = measure(2, || {
        let mut b = batchlens::trace::TraceDatasetBuilder::new();
        b.extend_tables(
            csv::parse_batch_tasks(&task_csv).expect("tasks parse"),
            csv::parse_batch_instances(&inst_csv).expect("instances parse"),
            csv::parse_server_usage(&usage_csv).expect("usage parses"),
            csv::parse_machine_events(&event_csv).expect("events parse"),
        );
        b.build().expect("csv rebuild").instance_count()
    });
    entries.push(entry(format!("dataset_open_{suffix}"), naive_s, optimized));

    // --- column scans: summing the usage cpu column straight off the
    //     memory-mapped segments (fixed-stride, zero-copy) vs walking the
    //     in-RAM per-machine series the builder materialized. ---
    let seg_store = SegmentStore::open(&seg_dir).expect("bench store opens");
    let scan_col = || {
        seg_store
            .family_segments(Family::ServerUsage)
            .map(|seg| seg.column(2).sum_f64())
            .sum::<f64>()
    };
    let scan_ram = || {
        machines
            .iter()
            .filter_map(|m| m.usage(Metric::Cpu))
            .map(|s| s.values().iter().sum::<f64>())
            .sum::<f64>()
    };
    // Honesty (outside the timed loops): same values, different summation
    // order — agreement to float tolerance, not bit equality.
    assert!(
        (scan_col() - scan_ram()).abs() <= 1e-6 * scan_ram().abs().max(1.0),
        "column scan and series walk must sum the same samples"
    );
    let scan_reps = if tier == Tier::Paper { 3 } else { 8 };
    let optimized = measure(scan_reps, || scan_col().to_bits() as usize);
    let naive_s = measure(3, || scan_ram().to_bits() as usize);
    entries.push(entry(format!("segment_scan_{suffix}"), naive_s, optimized));
    let _ = std::fs::remove_dir_all(&seg_dir);

    // --- epoch-batched sharded ingestion vs record-at-a-time ingestion:
    //     "naive" feeds the time-sorted usage archive one `ingest` call
    //     (one lock acquisition) per record into a single monitor;
    //     "optimized" partitions the same feed into sealed epochs and fans
    //     each epoch across a 4-shard ShardedMonitor — one lock
    //     acquisition per shard per epoch. Both land in bit-identical
    //     query state (the sharded_differential suite proves it). The
    //     stdout line also reports the middle point (epoch-batched on a
    //     single monitor: pure lock amortization, host-independent win).
    //     Honesty caveat: on a single-core host (like the CI container)
    //     the sharded column pays pool-dispatch overhead with no
    //     parallelism to offset it and can read *below* 1x; the --check
    //     guard only flags growth of the sharded path, which is exactly
    //     the regression we want caught. ---
    use batchlens::shard::ShardedMonitor;
    use batchlens::stream::BatchSequencer;
    const EPOCH_RECORDS: usize = 512;
    let ingest_reps = if tier == Tier::Paper { 2 } else { 3 };
    let serial_t = measure(ingest_reps, || {
        let monitor = StreamMonitor::new(stream_cfg).unwrap();
        for rec in &feed {
            monitor.ingest(*rec);
        }
        monitor.ingested() as usize
    });
    let serial_batched_t = measure(ingest_reps, || {
        let monitor = StreamMonitor::new(stream_cfg).unwrap();
        let sequencer = BatchSequencer::new();
        for part in feed.chunks(EPOCH_RECORDS) {
            let batch = sequencer.seal(
                part.last().map_or(Timestamp::new(0), |r| r.time),
                part.to_vec(),
            );
            monitor.ingest_batch(&batch);
        }
        monitor.ingested() as usize
    });
    let batched_t = measure(ingest_reps, || {
        let sharded = ShardedMonitor::new(stream_cfg, 4)
            .unwrap()
            .with_threads(PAR_THREADS);
        let sequencer = BatchSequencer::new();
        for part in feed.chunks(EPOCH_RECORDS) {
            let batch = sequencer.seal(
                part.last().map_or(Timestamp::new(0), |r| r.time),
                part.to_vec(),
            );
            sharded.ingest_batch(&batch);
        }
        sharded.ingested() as usize
    });
    let rps = |t: &Stats| feed.len() as f64 / (t.min_ns / 1e9);
    println!(
        "ingest_throughput_{suffix}: {} records; record-at-a-time serial \
         {:.0} rec/s, epoch-batched serial {:.0} rec/s, epoch-batched \
         4-shard {:.0} rec/s (single-core hosts pay fan-out overhead with \
         no parallelism to offset it)",
        feed.len(),
        rps(&serial_t),
        rps(&serial_batched_t),
        rps(&batched_t),
    );
    entries.push(entry(
        format!("ingest_throughput_{suffix}"),
        serial_t,
        batched_t,
    ));
}

/// Serving-layer rows: `sessions` concurrent keep-alive dashboard sessions
/// over real loopback sockets, all scrubbed to a shared set of timestamps so
/// the frame cache dedups their captures. Each session issues
/// [`SERVE_REQUESTS`] requests (mostly typed `/frame` fetches, with a
/// timestamp scrub every 16th); per-request wall latency feeds the p50/p99
/// columns and the run's span the req/sec column.
fn serve_entries(tier: Tier, ds: &TraceDataset, serve: &mut Vec<ServeEntry>) {
    use batchlens_serve::codec::read_response;
    use batchlens_serve::session::SessionCreated;
    use batchlens_serve::stats::StatszPayload;
    use batchlens_serve::{ServeConfig, Server, SessionManager};
    use std::io::{BufReader, Write};
    use std::net::TcpStream;
    use std::sync::{Arc, Barrier};

    let span = ds.span().expect("dataset has a span");
    let step = span.duration() / 8;
    let candidates: Vec<Timestamp> = (1..=4i64).map(|k| span.start() + step * k).collect();
    let suffix = tier.name();

    let call = |conn: &mut TcpStream, method: &str, target: &str, body: &str| {
        // One buffer per request: fragmented small writes on a Nagle-enabled
        // socket cost a delayed-ACK round trip (~40 ms) per request.
        let req = format!(
            "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        conn.write_all(req.as_bytes()).expect("request written");
        let mut reader = BufReader::new(conn.try_clone().expect("clone socket"));
        read_response(&mut reader)
            .expect("response framed")
            .expect("connection open")
    };

    for &sessions in &[1usize, 8, 64] {
        let lens = batchlens::BatchLens::new(ds.clone());
        let manager = Arc::new(SessionManager::new(Arc::new(lens)));
        let server = Arc::new(
            Server::bind(
                ("127.0.0.1", 0),
                Arc::clone(&manager),
                // One worker per keep-alive session: a worker owns its
                // connection until it closes.
                ServeConfig {
                    workers: sessions + 1,
                    idle_timeout: std::time::Duration::from_secs(30),
                    ..Default::default()
                },
            )
            .expect("bind loopback"),
        );
        let addr = server.local_addr();
        let handle = server.handle();
        let runner = Arc::clone(&server);
        let serve_thread = std::thread::spawn(move || runner.serve());

        let start = Arc::new(Barrier::new(sessions + 1));
        let clients: Vec<_> = (0..sessions)
            .map(|_| {
                let start = Arc::clone(&start);
                let candidates = candidates.clone();
                std::thread::spawn(move || {
                    let mut conn = TcpStream::connect(addr).expect("connect");
                    conn.set_nodelay(true).ok();
                    let created: SessionCreated =
                        serde_json::from_str(&call(&mut conn, "POST", "/sessions", "").text())
                            .expect("session created");
                    let id = created.session;
                    start.wait();
                    let mut latencies = Vec::with_capacity(SERVE_REQUESTS);
                    for i in 0..SERVE_REQUESTS {
                        let t0 = Instant::now();
                        let resp = if i % 16 == 0 {
                            let at = candidates[(i / 16) % candidates.len()];
                            let event = format!("{{\"SelectTimestamp\": {}}}", at.seconds());
                            call(&mut conn, "POST", &format!("/sessions/{id}/events"), &event)
                        } else {
                            call(&mut conn, "GET", &format!("/sessions/{id}/frame"), "")
                        };
                        assert_eq!(resp.status, 200);
                        latencies.push(t0.elapsed().as_nanos() as f64 / 1_000.0);
                    }
                    latencies
                })
            })
            .collect();

        start.wait();
        let wall = Instant::now();
        let mut latencies: Vec<f64> = clients
            .into_iter()
            .flat_map(|c| c.join().expect("client thread"))
            .collect();
        let elapsed = wall.elapsed().as_secs_f64();
        latencies.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];

        let mut conn = TcpStream::connect(addr).expect("connect");
        let statsz: StatszPayload =
            serde_json::from_str(&call(&mut conn, "GET", "/statsz", "").text())
                .expect("statsz payload");
        drop(conn);
        handle.shutdown();
        serve_thread.join().expect("server joined");

        let requests = sessions * SERVE_REQUESTS;
        let row = ServeEntry {
            name: format!("serve_sessions_{suffix}"),
            sessions,
            requests,
            req_per_sec: requests as f64 / elapsed,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            frame_cache_hit_rate: statsz.frame_cache.hit_rate,
        };
        println!(
            "{} @ {} sessions: {:.0} req/s, p50 {:.0} us, p99 {:.0} us, cache hit rate {:.3}",
            row.name,
            row.sessions,
            row.req_per_sec,
            row.p50_us,
            row.p99_us,
            row.frame_cache_hit_rate
        );
        serve.push(row);
    }
}

/// Overload row: a deliberately tiny server (2 workers, 4 queue slots) hit
/// with rounds of simultaneous one-shot bursts at 2x its carrying capacity.
/// Connections beyond capacity must be shed immediately with
/// `503 + Retry-After` while the accepted ones keep completing — the row
/// records the shed rate, how quickly shed responses come back, and the
/// goodput of the survivors.
fn overload_entries(tier: Tier, ds: &TraceDataset, overload: &mut Vec<OverloadEntry>) {
    use batchlens_serve::codec::read_response;
    use batchlens_serve::session::SessionCreated;
    use batchlens_serve::{ServeConfig, Server, SessionManager};
    use std::io::{BufReader, Write};
    use std::net::TcpStream;
    use std::sync::{Arc, Barrier};

    const WORKERS: usize = 2;
    const QUEUE: usize = 4;
    const ROUNDS: usize = 24;
    let capacity = WORKERS + QUEUE;
    let burst = 2 * capacity;

    let lens = batchlens::BatchLens::new(ds.clone());
    let manager = Arc::new(SessionManager::new(Arc::new(lens)));
    let server = Arc::new(
        Server::bind(
            ("127.0.0.1", 0),
            Arc::clone(&manager),
            ServeConfig {
                workers: WORKERS,
                queue_depth: QUEUE,
                idle_timeout: std::time::Duration::from_secs(30),
                ..Default::default()
            },
        )
        .expect("bind loopback"),
    );
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = Arc::clone(&server);
    let serve_thread = std::thread::spawn(move || runner.serve());

    // One shared session: the burst connections are one-shot, so the frame
    // endpoint is the work unit, not session state.
    let id = {
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(
            b"POST /sessions HTTP/1.1\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
        )
        .expect("request written");
        let mut reader = BufReader::new(conn);
        let created: SessionCreated = serde_json::from_str(
            &read_response(&mut reader)
                .expect("response framed")
                .expect("connection open")
                .text(),
        )
        .expect("session created");
        created.session
    };

    let mut ok = 0usize;
    let mut shed_latencies: Vec<f64> = Vec::new();
    let wall = Instant::now();
    for _ in 0..ROUNDS {
        let start = Arc::new(Barrier::new(burst));
        let workers: Vec<_> = (0..burst)
            .map(|_| {
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    let t0 = Instant::now();
                    let mut conn = TcpStream::connect(addr).expect("connect");
                    conn.set_nodelay(true).ok();
                    conn.write_all(
                        format!(
                            "GET /sessions/{id}/frame HTTP/1.1\r\nconnection: close\r\n\
                             content-length: 0\r\n\r\n"
                        )
                        .as_bytes(),
                    )
                    .expect("request written");
                    let mut reader = BufReader::new(conn);
                    let resp = read_response(&mut reader)
                        .expect("response framed")
                        .expect("connection open");
                    (resp.status, t0.elapsed().as_nanos() as f64 / 1_000.0)
                })
            })
            .collect();
        for w in workers {
            let (status, us) = w.join().expect("burst thread");
            match status {
                200 => ok += 1,
                503 => shed_latencies.push(us),
                other => panic!("unexpected overload status {other}"),
            }
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    handle.shutdown();
    serve_thread.join().expect("server joined");

    shed_latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| {
        if shed_latencies.is_empty() {
            0.0
        } else {
            shed_latencies[((shed_latencies.len() - 1) as f64 * p) as usize]
        }
    };
    let connections = ROUNDS * burst;
    let row = OverloadEntry {
        name: format!("serve_overload_{}", tier.name()),
        connections,
        capacity,
        shed_rate: shed_latencies.len() as f64 / connections as f64,
        shed_p50_us: pct(0.50),
        shed_p99_us: pct(0.99),
        goodput_req_per_sec: ok as f64 / elapsed,
    };
    println!(
        "{} @ 2x capacity ({} conns): shed rate {:.3}, shed p50 {:.0} us, p99 {:.0} us, \
         goodput {:.0} req/s",
        row.name,
        row.connections,
        row.shed_rate,
        row.shed_p50_us,
        row.shed_p99_us,
        row.goodput_req_per_sec
    );
    overload.push(row);
}

/// Requests each benchmark session issues against the serving layer.
const SERVE_REQUESTS: usize = 64;

/// Worker count for the serial-vs-parallel rows (the ISSUE's reference
/// configuration; on fewer cores the rows simply record what the hardware
/// gives).
const PAR_THREADS: usize = 8;

/// Factor by which a tracked op's optimized time may grow before `--check`
/// fails.
const REGRESSION_FACTOR: f64 = 2.0;

fn main() {
    let mut tier = Tier::Medium;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tier" => {
                let v = args.next().unwrap_or_default();
                tier = match v.as_str() {
                    "small" => Tier::Small,
                    "medium" => Tier::Medium,
                    "paper" => Tier::Paper,
                    other => {
                        eprintln!("unknown tier {other:?}; use small|medium|paper");
                        std::process::exit(2);
                    }
                };
            }
            "--check" => check = true,
            other => {
                eprintln!("unknown option {other:?}; use [--tier small|medium|paper] [--check]");
                std::process::exit(2);
            }
        }
    }

    let committed: Option<Report> = std::fs::read_to_string("BENCH_trace.json")
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());

    let mut entries = Vec::new();
    let mut serve_rows = Vec::new();
    let mut overload_rows = Vec::new();
    if tier == Tier::Medium {
        synthetic_entries(&mut entries);
    }
    let ds = tier.dataset();
    dataset_entries(tier, &ds, &mut entries);
    serve_entries(tier, &ds, &mut serve_rows);
    overload_entries(tier, &ds, &mut overload_rows);

    // --check: compare fresh optimized times against the committed file.
    // The serial-vs-parallel trajectory rows are excluded: their "optimized"
    // column times a fixed 8-thread pool, which is a property of the host's
    // core count, not of the code — a CI runner with fewer cores than the
    // machine that committed the file would fail with no real regression.
    let guarded =
        |name: &str| !name.starts_with("timeline_mean_par_") && !name.starts_with("dataset_build_");
    let mut regressions = Vec::new();
    if check {
        if let Some(old) = &committed {
            for fresh in entries.iter().filter(|e| guarded(&e.name)) {
                if let Some(prev) = old.entries.iter().find(|e| e.name == fresh.name) {
                    let ratio = fresh.optimized.min_ns / prev.optimized.min_ns;
                    if ratio > REGRESSION_FACTOR {
                        regressions.push(format!(
                            "{}: optimized {:.0} ns vs committed {:.0} ns ({ratio:.2}x)",
                            fresh.name, fresh.optimized.min_ns, prev.optimized.min_ns
                        ));
                    }
                }
            }
        } else {
            println!("--check: no committed BENCH_trace.json; nothing to compare");
        }
    }

    // Merge: refresh rows we produced, keep rows from other tiers.
    let (mut merged, mut merged_serve, mut merged_overload) = committed
        .map(|r| (r.entries, r.serve, r.overload))
        .unwrap_or_default();
    for fresh in entries {
        if let Some(slot) = merged.iter_mut().find(|e| e.name == fresh.name) {
            *slot = fresh;
        } else {
            merged.push(fresh);
        }
    }
    for fresh in serve_rows {
        if let Some(slot) = merged_serve
            .iter_mut()
            .find(|e| e.name == fresh.name && e.sessions == fresh.sessions)
        {
            *slot = fresh;
        } else {
            merged_serve.push(fresh);
        }
    }
    for fresh in overload_rows {
        if let Some(slot) = merged_overload.iter_mut().find(|e| e.name == fresh.name) {
            *slot = fresh;
        } else {
            merged_overload.push(fresh);
        }
    }
    let report = Report {
        description: "naive vs optimized wall-clock (min/mean/max over N runs, release) for \
                      the trace-layer and streaming hot paths; speedup = naive.min / \
                      optimized.min; dataset-bound rows are suffixed by sim tier; serve rows \
                      record serving-layer throughput/latency per session count and overload \
                      rows the shed/goodput behaviour at 2x queue-depth saturation (both \
                      untracked by --check: host-dependent)"
            .into(),
        entries: merged,
        serve: merged_serve,
        overload: merged_overload,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!("{json}");
    println!("wrote BENCH_trace.json");

    if !regressions.is_empty() {
        eprintln!("PERF REGRESSION (> {REGRESSION_FACTOR}x vs committed BENCH_trace.json):");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
    if check {
        println!("perf guardrail: no tracked op regressed more than {REGRESSION_FACTOR}x");
    }
}
