//! The full BatchLens dashboard (paper Fig 3): the hierarchical bubble chart
//! as the main view, with the aggregated timeline across the top and per-job
//! detail line charts stacked down the side.

use batchlens_analytics::aggregate::{ClusterTimeline, JobMetricLines};
use batchlens_analytics::hierarchy::HierarchySnapshot;
use batchlens_layout::{Brush, Color};
use batchlens_trace::{JobId, Metric, QueryFrame, TimeRange, Timestamp, TraceDataset};

use crate::bubble::BubbleChart;
use crate::linechart::LineChart;
use crate::scene::{Align, Node, Scene, Style};
use crate::timeline::TimelineView;

/// Composes the multi-view dashboard for one snapshot.
#[derive(Debug, Clone)]
pub struct Dashboard {
    width: f64,
    height: f64,
    /// Jobs to show detail line charts for (top-right stack).
    focus_jobs: Vec<JobId>,
    /// Metric plotted in the detail charts.
    detail_metric: Metric,
}

impl Dashboard {
    /// A dashboard for the given viewport.
    pub fn new(width: f64, height: f64) -> Self {
        Dashboard {
            width,
            height,
            focus_jobs: Vec::new(),
            detail_metric: Metric::Cpu,
        }
    }

    /// Sets the jobs whose detail line charts appear (builder).
    #[must_use]
    pub fn focus(mut self, jobs: impl IntoIterator<Item = JobId>) -> Self {
        self.focus_jobs = jobs.into_iter().collect();
        self
    }

    /// Sets the detail-chart metric (builder).
    #[must_use]
    pub fn detail_metric(mut self, metric: Metric) -> Self {
        self.detail_metric = metric;
        self
    }

    /// Renders the composed dashboard at snapshot time `at`, building the
    /// aggregated timeline on the fly. Callers that already hold one (the
    /// application session caches it) should use
    /// [`Dashboard::render_with_timeline`].
    pub fn render(&self, ds: &TraceDataset, at: Timestamp) -> Scene {
        self.render_with_timeline(ds, at, &ClusterTimeline::build(ds))
    }

    /// Renders the composed dashboard at snapshot time `at` reusing a
    /// precomputed cluster timeline.
    ///
    /// Layout: a timeline strip across the top, the bubble chart filling the
    /// lower-left, and up to four focus-job detail charts down the right.
    pub fn render_with_timeline(
        &self,
        ds: &TraceDataset,
        at: Timestamp,
        timeline: &ClusterTimeline,
    ) -> Scene {
        let mut scene = Scene::new(self.width, self.height).background(Color::rgb(250, 250, 250));
        let timeline_h = 90.0;
        let sidebar_w = (self.width * 0.33).min(360.0);
        let main_w = self.width - sidebar_w;
        let main_h = self.height - timeline_h;

        // Title.
        scene.push(Node::Text {
            x: 8.0,
            y: 16.0,
            text: format!("BatchLens @ {at}"),
            size: 13.0,
            align: Align::Start,
            color: Color::rgb(30, 30, 30),
        });

        // Timeline strip with a brush centered on the snapshot.
        let mut brush_holder = None;
        if let Some(span) = timeline.cpu.span() {
            let mut brush =
                Brush::new((span.start().seconds() as f64, span.end().seconds() as f64));
            let half = 1800.0;
            brush.select(at.seconds() as f64 - half, at.seconds() as f64 + half);
            brush_holder = Some(brush);
        }
        let tl_scene =
            TimelineView::new(self.width, timeline_h).render(timeline, brush_holder.as_ref());
        scene.push(Node::group_at((0.0, 20.0), tl_scene.root));

        // Main bubble chart.
        let snapshot = HierarchySnapshot::at(ds, at);
        let bubble = BubbleChart::new(main_w, main_h - 20.0).render(&snapshot);
        scene.push(Node::group_at((0.0, timeline_h + 20.0), bubble.root));

        // Sidebar detail charts.
        let focus = self.resolve_focus(&snapshot);
        let chart_h = ((main_h - 20.0) / focus.len().max(1) as f64).min(200.0);
        let window = snapshot_window(ds, at);
        for (i, job) in focus.iter().enumerate() {
            let y = timeline_h + 20.0 + i as f64 * chart_h;
            if let Some(lines) = JobMetricLines::build(ds, *job, self.detail_metric, &window) {
                let chart = LineChart::new(sidebar_w, chart_h)
                    .detail()
                    .render(&lines, &window);
                scene.push(Node::group_at((main_w, y), chart.root));
            }
        }

        // Separator.
        scene.push(Node::Line {
            from: (main_w, timeline_h + 20.0),
            to: (main_w, self.height),
            style: Style::stroked(Color::rgb(200, 200, 200), 1.0),
        });

        scene
    }

    /// Renders the dashboard from **one transactionally captured**
    /// [`QueryFrame`] — the render path for live monitors and serving
    /// layers, where every product on screen must agree about the window
    /// state at one `(version, timestamp)`.
    ///
    /// The main bubble chart and the machine-utilization sidebar both
    /// derive from the frame alone (no further source queries), so the
    /// composition can never tear even while ingest continues underneath.
    /// The timeline strip reuses the immutable precomputed aggregate, as
    /// in [`Dashboard::render_with_timeline`]. Detail line charts need
    /// windowed time series a point-in-time frame cannot carry, so this
    /// variant replaces the focus-job sidebar with per-machine utilization
    /// bars (busiest active machines first). Machines with retained anomaly
    /// alerts get a count badge — read straight from
    /// [`QueryFrame::anomaly_count`], so the overlay needs **no second
    /// trip to the monitor** (and therefore no second lock) after the
    /// frame capture.
    pub fn render_from_frame(&self, frame: &QueryFrame, timeline: &ClusterTimeline) -> Scene {
        let at = frame.at();
        let mut scene = Scene::new(self.width, self.height).background(Color::rgb(250, 250, 250));
        let timeline_h = 90.0;
        let sidebar_w = (self.width * 0.33).min(360.0);
        let main_w = self.width - sidebar_w;
        let main_h = self.height - timeline_h;

        // Title carries the frame's source version so two renders can be
        // compared for staleness at a glance.
        scene.push(Node::Text {
            x: 8.0,
            y: 16.0,
            text: format!("BatchLens @ {at} (v{})", frame.version()),
            size: 13.0,
            align: Align::Start,
            color: Color::rgb(30, 30, 30),
        });

        // Timeline strip with a brush centered on the frame instant.
        let mut brush_holder = None;
        if let Some(span) = timeline.cpu.span() {
            let mut brush =
                Brush::new((span.start().seconds() as f64, span.end().seconds() as f64));
            let half = 1800.0;
            brush.select(at.seconds() as f64 - half, at.seconds() as f64 + half);
            brush_holder = Some(brush);
        }
        let tl_scene =
            TimelineView::new(self.width, timeline_h).render(timeline, brush_holder.as_ref());
        scene.push(Node::group_at((0.0, 20.0), tl_scene.root));

        // Main bubble chart, derived from the frame.
        let snapshot = HierarchySnapshot::from_frame(frame);
        let bubble = BubbleChart::new(main_w, main_h - 20.0).render(&snapshot);
        scene.push(Node::group_at((0.0, timeline_h + 20.0), bubble.root));

        // Sidebar: utilization bars for the busiest active machines, also
        // straight off the frame.
        let mut machines: Vec<_> = frame
            .machines_active()
            .into_iter()
            .map(|m| (m, frame.util_of(m).map(|u| u.cpu.fraction()).unwrap_or(0.0)))
            .collect();
        machines.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let row_h = 22.0;
        let rows = (((main_h - 40.0) / row_h) as usize).min(machines.len());
        let mut sidebar = Vec::new();
        let total_anomalies = frame.total_anomalies();
        let header = if total_anomalies > 0 {
            format!(
                "machines ({} active, {total_anomalies} alerts)",
                machines.len()
            )
        } else {
            format!("machines ({} active)", machines.len())
        };
        sidebar.push(Node::Text {
            x: 8.0,
            y: 12.0,
            text: header,
            size: 11.0,
            align: Align::Start,
            color: Color::rgb(60, 60, 60),
        });
        let bar_x = 80.0;
        let bar_w = (sidebar_w - bar_x - 16.0).max(10.0);
        for (i, (machine, cpu)) in machines.iter().take(rows).enumerate() {
            let y = 20.0 + i as f64 * row_h;
            sidebar.push(Node::Text {
                x: 8.0,
                y: y + 12.0,
                text: machine.to_string(),
                size: 10.0,
                align: Align::Start,
                color: Color::rgb(30, 30, 30),
            });
            sidebar.push(Node::Rect {
                x: bar_x,
                y: y + 4.0,
                width: bar_w,
                height: row_h - 10.0,
                style: Style::filled(Color::rgb(232, 232, 232)),
            });
            sidebar.push(Node::Rect {
                x: bar_x,
                y: y + 4.0,
                width: bar_w * cpu.clamp(0.0, 1.0),
                height: row_h - 10.0,
                style: Style::filled(Color::rgb(70, 130, 180)),
            });
            // Anomaly badge, straight off the frame's retained counts.
            let alerts = frame.anomaly_count(*machine);
            if alerts > 0 {
                sidebar.push(Node::Rect {
                    x: bar_x + bar_w + 2.0,
                    y: y + 4.0,
                    width: 12.0,
                    height: row_h - 10.0,
                    style: Style::filled(Color::rgb(200, 60, 40)),
                });
                sidebar.push(Node::Text {
                    x: bar_x + bar_w + 8.0,
                    y: y + 12.0,
                    text: alerts.to_string(),
                    size: 9.0,
                    align: Align::Middle,
                    color: Color::rgb(255, 255, 255),
                });
            }
        }
        scene.push(Node::Group {
            label: Some("machine-utilization".to_string()),
            translate: (main_w, timeline_h + 20.0),
            children: sidebar,
        });

        // Separator.
        scene.push(Node::Line {
            from: (main_w, timeline_h + 20.0),
            to: (main_w, self.height),
            style: Style::stroked(Color::rgb(200, 200, 200), 1.0),
        });

        scene
    }

    fn resolve_focus(&self, snapshot: &HierarchySnapshot) -> Vec<JobId> {
        if !self.focus_jobs.is_empty() {
            return self.focus_jobs.iter().copied().take(4).collect();
        }
        // Default: the busiest few running jobs.
        let mut ranked = snapshot.jobs_by_mean_util();
        ranked.reverse(); // busiest first
        ranked.into_iter().map(|(j, _)| j).take(4).collect()
    }
}

/// The detail window for a snapshot: a ±1-hour window clamped to the trace,
/// matching the paper's "overall time period" of a selected job.
fn snapshot_window(ds: &TraceDataset, at: Timestamp) -> TimeRange {
    let span = ds.span().unwrap_or_else(TimeRange::full_day);
    let lo = (at - batchlens_trace::TimeDelta::hours(1)).max(span.start());
    let hi = (at + batchlens_trace::TimeDelta::hours(1)).min(span.end());
    TimeRange::new(lo, hi).unwrap_or(span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn dashboard_composes_all_views() {
        let ds = scenario::fig3b(1).run().unwrap();
        let scene = Dashboard::new(1400.0, 900.0)
            .focus([scenario::JOB_7901])
            .render(&ds, scenario::T_FIG3B);
        let counts = scene.counts();
        // Bubble circles, timeline polylines and at least one detail polyline.
        assert!(counts.circles > 0, "no bubbles");
        assert!(counts.polylines >= 3, "timeline series missing");
        assert!(counts.texts > 0);
        // Title present.
        fn has_title(n: &Node) -> bool {
            match n {
                Node::Text { text, .. } => text.contains("BatchLens @"),
                Node::Group { children, .. } => children.iter().any(has_title),
                _ => false,
            }
        }
        assert!(scene.root.iter().any(has_title));
    }

    #[test]
    fn default_focus_picks_busiest_jobs() {
        let ds = scenario::fig3c(2).run().unwrap();
        let scene = Dashboard::new(1400.0, 900.0).render(&ds, scenario::T_FIG3C);
        // Without explicit focus it still renders detail charts for the
        // busiest jobs (extra polylines beyond the 3 timeline series).
        assert!(scene.counts().polylines > 3);
    }

    #[test]
    fn fig3a_dashboard_renders() {
        let ds = scenario::fig3a(3).run().unwrap();
        let scene = Dashboard::new(1400.0, 900.0)
            .focus([scenario::JOB_8124, scenario::JOB_6639])
            .render(&ds, scenario::T_FIG3A);
        assert!(scene.counts().circles > 15);
    }

    #[test]
    fn frame_driven_dashboard_matches_bubble_content() {
        use batchlens_trace::DatasetQuery;
        let ds = scenario::fig3b(5).run().unwrap();
        let timeline = ClusterTimeline::build(&ds);
        let frame = ds.frame(scenario::T_FIG3B);
        let scene = Dashboard::new(1400.0, 900.0).render_from_frame(&frame, &timeline);
        let counts = scene.counts();
        assert!(counts.circles > 0, "no bubbles from the frame");
        assert!(counts.polylines >= 3, "timeline series missing");
        // The sidebar utilization bars render one background + one fill
        // rect per listed machine.
        assert!(counts.rects >= 2, "machine bars missing");
        fn has_version_title(n: &Node) -> bool {
            match n {
                Node::Text { text, .. } => text.contains("(v0)"),
                Node::Group { children, .. } => children.iter().any(has_version_title),
                _ => false,
            }
        }
        assert!(scene.root.iter().any(has_version_title));
    }

    #[test]
    fn frame_anomaly_counts_render_badges_without_requerying() {
        use batchlens_trace::DatasetQuery;
        let ds = scenario::fig3b(5).run().unwrap();
        let timeline = ClusterTimeline::build(&ds);
        let base = ds.frame(scenario::T_FIG3B);
        let machines = base.machine_ids().to_vec();
        assert!(!machines.is_empty());

        // Batch datasets carry no anomaly stream: zero counts, no badges.
        let plain = Dashboard::new(1400.0, 900.0).render_from_frame(&base, &timeline);
        assert_eq!(base.total_anomalies(), 0);

        // Hand-build the same frame with alert counts attached and check
        // the sidebar grows badge nodes from the frame alone. Target the
        // busiest active machine so the badge falls inside the rendered rows.
        let mut ranked: Vec<_> = base
            .machines_active()
            .into_iter()
            .map(|m| (m, base.util_of(m).map(|u| u.cpu.fraction()).unwrap_or(0.0)))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let target = ranked[0].0;
        let alive = machines.iter().map(|m| base.alive(*m)).collect();
        let utils = machines.iter().map(|m| base.util_of(*m)).collect();
        let mut anomalies = vec![0u32; machines.len()];
        anomalies[machines.binary_search(&target).unwrap()] = 3;
        let noisy = QueryFrame::with_anomalies(
            base.at(),
            base.version(),
            base.running_triples().to_vec(),
            machines.clone(),
            alive,
            utils,
            anomalies,
        );
        assert_eq!(noisy.anomaly_count(target), 3);
        let scene = Dashboard::new(1400.0, 900.0).render_from_frame(&noisy, &timeline);
        let plain_counts = plain.counts();
        let counts = scene.counts();
        // One badge rect and one count text beyond the zero-count render.
        assert_eq!(counts.rects, plain_counts.rects + 1, "badge rect missing");
        assert_eq!(counts.texts, plain_counts.texts + 1, "badge count missing");
        fn has_alert_header(n: &Node) -> bool {
            match n {
                Node::Text { text, .. } => text.contains("3 alerts"),
                Node::Group { children, .. } => children.iter().any(has_alert_header),
                _ => false,
            }
        }
        assert!(scene.root.iter().any(has_alert_header));
        assert!(!plain.root.iter().any(has_alert_header));
    }

    #[test]
    fn snapshot_window_is_bounded() {
        let ds = scenario::fig3b(4).run().unwrap();
        let w = snapshot_window(&ds, scenario::T_FIG3B);
        assert!(w.duration().as_seconds() <= 2 * 3600);
        assert!(w.contains(scenario::T_FIG3B) || w.end() == scenario::T_FIG3B);
    }
}
