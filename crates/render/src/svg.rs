//! SVG serialization of a [`crate::scene::Scene`].

use std::fmt::Write as _;

use batchlens_layout::Color;

use crate::scene::{Align, Node, Scene, Stroke, Style};

/// Serializes a scene into a standalone SVG document string.
///
/// The output is deterministic and self-contained (no external refs), so
/// figures are byte-stable across runs and diffable in tests.
pub fn to_svg(scene: &Scene) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    let _ = writeln!(
        s,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\">",
        w = fmt_num(scene.width),
        h = fmt_num(scene.height),
    );
    // Background.
    let _ = writeln!(
        s,
        "<rect x=\"0\" y=\"0\" width=\"{}\" height=\"{}\" fill=\"{}\"/>",
        fmt_num(scene.width),
        fmt_num(scene.height),
        scene.background,
    );
    for node in &scene.root {
        write_node(&mut s, node);
    }
    s.push_str("</svg>\n");
    s
}

fn write_node(s: &mut String, node: &Node) {
    match node {
        Node::Group {
            label,
            translate,
            children,
        } => {
            let (tx, ty) = *translate;
            s.push_str("<g");
            if tx != 0.0 || ty != 0.0 {
                let _ = write!(
                    s,
                    " transform=\"translate({} {})\"",
                    fmt_num(tx),
                    fmt_num(ty)
                );
            }
            if let Some(l) = label {
                let _ = write!(s, " data-label=\"{}\"", escape(l));
            }
            s.push_str(">\n");
            if let Some(l) = label {
                let _ = writeln!(s, "<title>{}</title>", escape(l));
            }
            for child in children {
                write_node(s, child);
            }
            s.push_str("</g>\n");
        }
        Node::Circle {
            cx,
            cy,
            r,
            style,
            label,
        } => {
            s.push_str("<circle");
            let _ = write!(
                s,
                " cx=\"{}\" cy=\"{}\" r=\"{}\"",
                fmt_num(*cx),
                fmt_num(*cy),
                fmt_num(*r)
            );
            write_style(s, style);
            if label.is_some() {
                s.push('>');
                if let Some(l) = label {
                    let _ = write!(s, "<title>{}</title>", escape(l));
                }
                s.push_str("</circle>\n");
            } else {
                s.push_str("/>\n");
            }
        }
        Node::AnnulusSector {
            cx,
            cy,
            inner,
            outer,
            start_angle,
            end_angle,
            style,
        } => {
            let _ = write!(
                s,
                "<path d=\"{}\"",
                annulus_path(*cx, *cy, *inner, *outer, *start_angle, *end_angle)
            );
            write_style(s, style);
            s.push_str("/>\n");
        }
        Node::Polyline { points, style } => {
            s.push_str("<polyline points=\"");
            for (i, (x, y)) in points.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                let _ = write!(s, "{},{}", fmt_num(*x), fmt_num(*y));
            }
            s.push('"');
            write_style(s, style);
            s.push_str("/>\n");
        }
        Node::Line { from, to, style } => {
            let _ = write!(
                s,
                "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\"",
                fmt_num(from.0),
                fmt_num(from.1),
                fmt_num(to.0),
                fmt_num(to.1)
            );
            write_style(s, style);
            s.push_str("/>\n");
        }
        Node::Rect {
            x,
            y,
            width,
            height,
            style,
        } => {
            let _ = write!(
                s,
                "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\"",
                fmt_num(*x),
                fmt_num(*y),
                fmt_num(*width),
                fmt_num(*height)
            );
            write_style(s, style);
            s.push_str("/>\n");
        }
        Node::Text {
            x,
            y,
            text,
            size,
            align,
            color,
        } => {
            let anchor = match align {
                Align::Start => "start",
                Align::Middle => "middle",
                Align::End => "end",
            };
            let _ = writeln!(
                s,
                "<text x=\"{}\" y=\"{}\" font-size=\"{}\" text-anchor=\"{}\" \
                 font-family=\"sans-serif\" fill=\"{}\">{}</text>",
                fmt_num(*x),
                fmt_num(*y),
                fmt_num(*size),
                anchor,
                color,
                escape(text)
            );
        }
    }
}

fn write_style(s: &mut String, style: &Style) {
    match style.fill {
        Some(c) => {
            let _ = write!(s, " fill=\"{}\"", c);
            if c.a != 255 {
                let _ = write!(s, " fill-opacity=\"{}\"", fmt_num(c.a as f64 / 255.0));
            }
        }
        None => s.push_str(" fill=\"none\""),
    }
    if style.opacity < 1.0 {
        let _ = write!(s, " opacity=\"{}\"", fmt_num(style.opacity));
    }
    if let Some(c) = style.stroke {
        let _ = write!(
            s,
            " stroke=\"{}\" stroke-width=\"{}\"",
            c,
            fmt_num(style.stroke_width)
        );
        if c.a != 255 {
            let _ = write!(s, " stroke-opacity=\"{}\"", fmt_num(c.a as f64 / 255.0));
        }
        match style.dash {
            Stroke::Solid => {}
            Stroke::Dotted => {
                let _ = write!(
                    s,
                    " stroke-dasharray=\"{} {}\"",
                    fmt_num(style.stroke_width),
                    fmt_num(style.stroke_width * 2.0)
                );
            }
            Stroke::Dashed => {
                let _ = write!(
                    s,
                    " stroke-dasharray=\"{} {}\"",
                    fmt_num(style.stroke_width * 4.0),
                    fmt_num(style.stroke_width * 2.0)
                );
            }
        }
    }
}

/// Builds the SVG path for an annulus sector (ring wedge).
fn annulus_path(cx: f64, cy: f64, inner: f64, outer: f64, start: f64, end: f64) -> String {
    let (sx_o, sy_o) = (cx + outer * start.cos(), cy + outer * start.sin());
    let (ex_o, ey_o) = (cx + outer * end.cos(), cy + outer * end.sin());
    let (sx_i, sy_i) = (cx + inner * end.cos(), cy + inner * end.sin());
    let (ex_i, ey_i) = (cx + inner * start.cos(), cy + inner * start.sin());
    let large = if (end - start).abs() > std::f64::consts::PI {
        1
    } else {
        0
    };
    // Outer arc sweeps positive (1), inner arc sweeps back (0).
    format!(
        "M {} {} A {r} {r} 0 {large} 1 {} {} L {} {} A {ri} {ri} 0 {large} 0 {} {} Z",
        fmt_num(sx_o),
        fmt_num(sy_o),
        fmt_num(ex_o),
        fmt_num(ey_o),
        fmt_num(sx_i),
        fmt_num(sy_i),
        fmt_num(ex_i),
        fmt_num(ey_i),
        r = fmt_num(outer),
        ri = fmt_num(inner),
        large = large,
    )
}

/// Formats a number compactly: integers without a decimal point, others to
/// three decimals with trailing zeros trimmed.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let mut s = format!("{v:.3}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Estimates the text color (black or white) with the best contrast against
/// a background — used by renderers to label colored glyphs.
pub fn contrasting_text(background: Color) -> Color {
    if background.luminance() > 0.55 {
        Color::BLACK
    } else {
        Color::WHITE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::Scene;

    #[test]
    fn empty_scene_is_valid_svg() {
        let svg = to_svg(&Scene::new(100.0, 50.0));
        assert!(svg.starts_with("<?xml"));
        assert!(svg.contains("width=\"100\" height=\"50\""));
        assert!(svg.contains("viewBox=\"0 0 100 50\""));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn circle_emits_attributes() {
        let mut scene = Scene::new(10.0, 10.0);
        scene.push(Node::Circle {
            cx: 5.0,
            cy: 5.0,
            r: 3.0,
            style: Style::filled(Color::rgb(255, 0, 0)),
            label: Some("node".into()),
        });
        let svg = to_svg(&scene);
        assert!(svg.contains("<circle cx=\"5\" cy=\"5\" r=\"3\""));
        assert!(svg.contains("fill=\"#ff0000\""));
        assert!(svg.contains("<title>node</title>"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(5.0), "5");
        assert_eq!(fmt_num(5.5), "5.5");
        assert_eq!(fmt_num(5.12345), "5.123");
        assert_eq!(fmt_num(5.100), "5.1");
        assert_eq!(fmt_num(f64::NAN), "0");
        assert_eq!(fmt_num(-3.0), "-3");
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a & b < c > d \""), "a &amp; b &lt; c &gt; d &quot;");
        let mut scene = Scene::new(10.0, 10.0);
        scene.push(Node::Text {
            x: 0.0,
            y: 0.0,
            text: "job <1> & \"x\"".into(),
            size: 10.0,
            align: Align::Start,
            color: Color::BLACK,
        });
        let svg = to_svg(&scene);
        assert!(svg.contains("job &lt;1&gt; &amp; &quot;x&quot;"));
        assert!(!svg.contains("job <1>"));
    }

    #[test]
    fn dotted_stroke_has_dasharray() {
        let mut scene = Scene::new(10.0, 10.0);
        scene.push(Node::Circle {
            cx: 5.0,
            cy: 5.0,
            r: 3.0,
            style: Style::stroked(Color::BLACK, 2.0).dash(Stroke::Dotted),
            label: None,
        });
        let svg = to_svg(&scene);
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn polyline_points_are_ordered() {
        let mut scene = Scene::new(10.0, 10.0);
        scene.push(Node::Polyline {
            points: vec![(0.0, 0.0), (1.0, 2.0), (3.0, 1.0)],
            style: Style::stroked(Color::BLACK, 1.0),
        });
        let svg = to_svg(&scene);
        assert!(svg.contains("points=\"0,0 1,2 3,1\""));
        assert!(svg.contains("fill=\"none\""));
    }

    #[test]
    fn annulus_sector_is_a_path() {
        let mut scene = Scene::new(100.0, 100.0);
        scene.push(Node::AnnulusSector {
            cx: 50.0,
            cy: 50.0,
            inner: 10.0,
            outer: 20.0,
            start_angle: 0.0,
            end_angle: std::f64::consts::FRAC_PI_2,
            style: Style::filled(Color::rgb(0, 128, 0)),
        });
        let svg = to_svg(&scene);
        assert!(svg.contains("<path d=\"M "));
        assert!(svg.contains(" A 20 20 0 "));
        assert!(svg.contains(" A 10 10 0 "));
        assert!(svg.contains('Z'));
    }

    #[test]
    fn contrast_picks_readable_color() {
        assert_eq!(contrasting_text(Color::WHITE), Color::BLACK);
        assert_eq!(contrasting_text(Color::BLACK), Color::WHITE);
    }
}
