//! A machine × time utilization heatmap.
//!
//! The paper cites Muelder et al.'s "behavioral lines" (ref [21]) for
//! portraying each compute node's behavior over time. A heatmap is the dense
//! counterpart: one row per machine, one column per time bucket, each cell
//! colored by utilization. It complements the bubble chart (spatial snapshot)
//! with a temporal overview of the whole cluster at once — useful for
//! spotting the mass-shutdown cliff or a regime change across all machines.

use batchlens_layout::color::utilization_colormap;
use batchlens_layout::{Color, LinearScale};
use batchlens_trace::{Metric, TimeDelta, TimeRange, TraceDataset};

use crate::scene::{Align, Node, Scene, Style};

/// Renders a machine × time utilization heatmap for one metric.
#[derive(Debug, Clone, Copy)]
pub struct Heatmap {
    width: f64,
    height: f64,
    margin: f64,
    /// Time bucket width; finer buckets = more columns.
    bucket: TimeDelta,
    /// Cap on machines rendered (rows); machines beyond are omitted with a
    /// note, so the SVG stays bounded for a 1300-machine cluster.
    max_rows: usize,
}

impl Heatmap {
    /// A heatmap for the given viewport.
    pub fn new(width: f64, height: f64) -> Self {
        Heatmap {
            width,
            height,
            margin: 50.0,
            bucket: TimeDelta::minutes(10),
            max_rows: 80,
        }
    }

    /// Sets the time bucket (builder).
    #[must_use]
    pub fn bucket(mut self, bucket: TimeDelta) -> Self {
        if bucket.is_positive() {
            self.bucket = bucket;
        }
        self
    }

    /// Sets the maximum machine rows (builder).
    #[must_use]
    pub fn max_rows(mut self, rows: usize) -> Self {
        self.max_rows = rows.max(1);
        self
    }

    /// Renders the heatmap for `metric` over `window`.
    pub fn render(&self, ds: &TraceDataset, metric: Metric, window: &TimeRange) -> Scene {
        let mut scene = Scene::new(self.width, self.height);
        let plot_left = self.margin;
        let plot_right = self.width - 10.0;
        let plot_top = 20.0;
        let plot_bottom = self.height - self.margin / 2.0;

        let machines: Vec<_> = ds.machines().take(self.max_rows).collect();
        if machines.is_empty() {
            scene.push(Node::Text {
                x: self.width / 2.0,
                y: self.height / 2.0,
                text: "no machines".into(),
                size: 14.0,
                align: Align::Middle,
                color: Color::rgb(120, 120, 120),
            });
            return scene;
        }

        let buckets: Vec<_> = window.steps(self.bucket).collect();
        let n_cols = buckets.len().max(1);
        let n_rows = machines.len();
        let cell_w = (plot_right - plot_left) / n_cols as f64;
        let cell_h = (plot_bottom - plot_top) / n_rows as f64;
        let colormap = utilization_colormap();

        let mut root = Vec::new();
        for (r, machine) in machines.iter().enumerate() {
            let y = plot_top + r as f64 * cell_h;
            for (col, &t) in buckets.iter().enumerate() {
                // Mean utilization over the bucket for this metric.
                let bucket_range = TimeRange::new(t, t + self.bucket).expect("ordered");
                let value = machine
                    .usage(metric)
                    .and_then(|s| s.stats_in(&bucket_range))
                    .map(|st| st.mean)
                    .or_else(|| machine.util_at(t).map(|u| u[metric].fraction()));
                if let Some(v) = value {
                    root.push(Node::Rect {
                        x: plot_left + col as f64 * cell_w,
                        y,
                        width: cell_w + 0.5,
                        height: cell_h + 0.5,
                        style: Style::filled(colormap.at(v.clamp(0.0, 1.0))),
                    });
                }
            }
        }

        // Axis labels.
        let x = LinearScale::new(
            (
                window.start().seconds() as f64,
                window.end().seconds() as f64,
            ),
            (plot_left, plot_right),
        );
        for t in x.ticks(6) {
            root.push(Node::Text {
                x: x.scale(t),
                y: plot_bottom + 14.0,
                text: format!("{}h", (t / 3600.0).round() as i64),
                size: 9.0,
                align: Align::Middle,
                color: Color::rgb(90, 90, 90),
            });
        }
        root.push(Node::Text {
            x: plot_left,
            y: 12.0,
            text: format!(
                "{} heatmap — {} machines × {} buckets",
                metric.short_name(),
                n_rows,
                n_cols
            ),
            size: 11.0,
            align: Align::Start,
            color: Color::rgb(40, 40, 40),
        });
        if ds.machine_count() > self.max_rows {
            root.push(Node::Text {
                x: plot_right,
                y: 12.0,
                text: format!("(+{} more machines)", ds.machine_count() - self.max_rows),
                size: 9.0,
                align: Align::End,
                color: Color::rgb(150, 150, 150),
            });
        }

        scene.push(Node::group_at((0.0, 0.0), root));
        scene
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn heatmap_has_a_cell_per_machine_bucket() {
        let ds = scenario::fig1_sample(1).run().unwrap();
        let window = ds.span().unwrap();
        let hm = Heatmap::new(800.0, 400.0).bucket(TimeDelta::minutes(5));
        let scene = hm.render(&ds, Metric::Cpu, &window);
        let buckets = window.steps(TimeDelta::minutes(5)).count();
        let machines = ds.machine_count().min(80);
        // Most cells have data; allow a few empty (pre-first-sample) cells.
        assert!(scene.counts().rects <= machines * buckets);
        assert!(scene.counts().rects > 0);
    }

    #[test]
    fn row_cap_limits_and_notes() {
        let ds = scenario::fig3c(2).run().unwrap(); // 60 machines
        let scene = Heatmap::new(900.0, 500.0).max_rows(10).render(
            &ds,
            Metric::Memory,
            &ds.span().unwrap(),
        );
        // The "+N more" note appears.
        let has_note =
            |n: &Node| matches!(n, Node::Text { text, .. } if text.contains("more machines"));
        fn any(nodes: &[Node], f: &dyn Fn(&Node) -> bool) -> bool {
            nodes
                .iter()
                .any(|n| f(n) || matches!(n, Node::Group { children, .. } if any(children, f)))
        }
        assert!(any(&scene.root, &has_note));
    }

    #[test]
    fn empty_dataset_renders_note() {
        let ds = batchlens_trace::TraceDatasetBuilder::new().build().unwrap();
        let scene = Heatmap::new(400.0, 300.0).render(&ds, Metric::Cpu, &TimeRange::full_day());
        assert_eq!(scene.counts().rects, 0);
        assert_eq!(scene.counts().texts, 1);
    }

    #[test]
    fn bucket_and_rows_builders_guard_inputs() {
        let hm = Heatmap::new(100.0, 100.0)
            .bucket(TimeDelta::ZERO)
            .max_rows(0);
        // Zero bucket ignored (kept default positive), rows clamped to 1.
        assert!(hm.bucket.is_positive());
        assert_eq!(hm.max_rows, 1);
    }
}
