//! A radial state-change comparison view.
//!
//! The paper's reference [18] is the authors' own *Intercept Graph*, an
//! interactive radial visualization for comparing quantitative state changes.
//! BatchLens's spatial comparison ("job_7901 on busier nodes than others")
//! is exactly such a comparison. This view lays jobs (or machines) around a
//! circle and draws a radial bar per entity whose length encodes a metric,
//! with an inner/outer pair encoding a *before/after* state change — a
//! compact alternative to the line charts for comparing many entities at
//! once.

use std::f64::consts::TAU;

use batchlens_layout::color::utilization_colormap;
use batchlens_layout::{Color, LinearScale};

use crate::scene::{Align, Node, Scene, Style};

/// One radial spoke: an entity with a before/after value pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Spoke {
    /// Entity label (job or machine id).
    pub label: String,
    /// Value before the compared event (inner radius extent), `0..=1`.
    pub before: f64,
    /// Value after the compared event (outer radius extent), `0..=1`.
    pub after: f64,
}

/// Renders a radial state-change comparison.
#[derive(Debug, Clone, Copy)]
pub struct RadialComparison {
    width: f64,
    height: f64,
    inner_frac: f64,
}

impl RadialComparison {
    /// A radial view for the given viewport.
    pub fn new(width: f64, height: f64) -> Self {
        RadialComparison {
            width,
            height,
            inner_frac: 0.35,
        }
    }

    /// Renders the spokes. Each spoke is a radial wedge from the inner hub;
    /// the `before` value sets a baseline ring, the `after` value the filled
    /// length, colored by the utilization colormap on `after`.
    pub fn render(&self, spokes: &[Spoke]) -> Scene {
        let mut scene = Scene::new(self.width, self.height);
        if spokes.is_empty() {
            scene.push(Node::Text {
                x: self.width / 2.0,
                y: self.height / 2.0,
                text: "no entities to compare".into(),
                size: 14.0,
                align: Align::Middle,
                color: Color::rgb(120, 120, 120),
            });
            return scene;
        }
        let cx = self.width / 2.0;
        let cy = self.height / 2.0;
        let max_r = self.width.min(self.height) / 2.0 - 30.0;
        let inner = max_r * self.inner_frac;
        let radial = LinearScale::new((0.0, 1.0), (inner, max_r));
        let colormap = utilization_colormap();

        let mut root = Vec::new();
        // Hub circle.
        root.push(Node::Circle {
            cx,
            cy,
            r: inner,
            style: Style::stroked(Color::rgb(150, 150, 150), 1.0),
            label: None,
        });

        let n = spokes.len();
        let wedge = TAU / n as f64;
        for (i, spoke) in spokes.iter().enumerate() {
            let a0 = i as f64 * wedge;
            let a1 = a0 + wedge * 0.8; // leave a gap between wedges
            let mid = (a0 + a1) / 2.0;

            // The "after" filled wedge.
            let r_after = radial.scale(spoke.after.clamp(0.0, 1.0));
            root.push(Node::AnnulusSector {
                cx,
                cy,
                inner,
                outer: r_after,
                start_angle: a0,
                end_angle: a1,
                style: Style::filled(colormap.at(spoke.after.clamp(0.0, 1.0))),
            });

            // The "before" baseline arc (thin ring marker).
            let r_before = radial.scale(spoke.before.clamp(0.0, 1.0));
            root.push(Node::AnnulusSector {
                cx,
                cy,
                inner: r_before - 1.0,
                outer: r_before + 1.0,
                start_angle: a0,
                end_angle: a1,
                style: Style::filled(Color::rgb(40, 40, 40)),
            });

            // Label at the outer edge.
            let lx = cx + (max_r + 12.0) * mid.cos();
            let ly = cy + (max_r + 12.0) * mid.sin();
            let align = if mid.cos() >= 0.0 {
                Align::Start
            } else {
                Align::End
            };
            root.push(Node::Text {
                x: lx,
                y: ly,
                text: spoke.label.clone(),
                size: 9.0,
                align,
                color: Color::rgb(40, 40, 40),
            });
        }
        scene.push(Node::group_at((0.0, 0.0), root));
        scene
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spokes() -> Vec<Spoke> {
        vec![
            Spoke {
                label: "job_1".into(),
                before: 0.2,
                after: 0.8,
            },
            Spoke {
                label: "job_2".into(),
                before: 0.5,
                after: 0.5,
            },
            Spoke {
                label: "job_3".into(),
                before: 0.9,
                after: 0.3,
            },
        ]
    }

    #[test]
    fn renders_one_wedge_per_spoke() {
        let scene = RadialComparison::new(400.0, 400.0).render(&spokes());
        // Each spoke → 2 sectors (after + before marker); 1 hub circle.
        assert_eq!(scene.counts().sectors, 6);
        assert_eq!(scene.counts().circles, 1);
        assert_eq!(scene.counts().texts, 3);
    }

    #[test]
    fn empty_renders_note() {
        let scene = RadialComparison::new(400.0, 400.0).render(&[]);
        assert_eq!(scene.counts().texts, 1);
        assert_eq!(scene.counts().sectors, 0);
    }

    #[test]
    fn values_are_clamped() {
        let wild = vec![Spoke {
            label: "x".into(),
            before: -1.0,
            after: 2.0,
        }];
        // Should not panic and should still produce sectors.
        let scene = RadialComparison::new(300.0, 300.0).render(&wild);
        assert!(scene.counts().sectors >= 1);
    }
}
