//! The aggregated, brushable system timeline — the overview strip where the
//! user "selects an interesting time range through brushing".

use batchlens_analytics::aggregate::ClusterTimeline;
use batchlens_layout::color::task_color;
use batchlens_layout::line::lttb;
use batchlens_layout::{Brush, Color, LinearScale};
use batchlens_trace::{Metric, TimeRange};

use crate::scene::{Align, Node, Scene, Style};

/// Renders the aggregated cluster timeline with an optional brush overlay.
#[derive(Debug, Clone, Copy)]
pub struct TimelineView {
    width: f64,
    height: f64,
    margin: f64,
    point_budget: usize,
}

impl TimelineView {
    /// A timeline view for the given viewport.
    pub fn new(width: f64, height: f64) -> Self {
        TimelineView {
            width,
            height,
            margin: 30.0,
            point_budget: 400,
        }
    }

    /// Renders the three metric series stacked in one strip. When `brush`
    /// has a selection, the unselected regions are dimmed with an overlay.
    pub fn render(&self, timeline: &ClusterTimeline, brush: Option<&Brush>) -> Scene {
        let mut scene = Scene::new(self.width, self.height);
        let plot_left = self.margin;
        let plot_right = self.width - self.margin / 2.0;
        let plot_top = 4.0;
        let plot_bottom = self.height - self.margin / 2.0;

        // Domain from the CPU series span (all three share a grid).
        let span = timeline.cpu.span().unwrap_or_else(|| {
            TimeRange::new(
                batchlens_trace::Timestamp::ZERO,
                batchlens_trace::Timestamp::new(1),
            )
            .unwrap()
        });
        let x = LinearScale::new(
            (span.start().seconds() as f64, span.end().seconds() as f64),
            (plot_left, plot_right),
        )
        .clamped();
        let y = LinearScale::new((0.0, 1.0), (plot_bottom, plot_top));

        let mut root = Vec::new();
        // Axis baseline.
        root.push(Node::Line {
            from: (plot_left, plot_bottom),
            to: (plot_right, plot_bottom),
            style: Style::stroked(Color::rgb(60, 60, 60), 1.0),
        });

        for (i, metric) in [Metric::Cpu, Metric::Memory, Metric::Disk]
            .into_iter()
            .enumerate()
        {
            let series = timeline.metric(metric);
            let raw: Vec<(f64, f64)> = series
                .iter()
                .map(|(t, v)| (x.scale(t.seconds() as f64), y.scale(v)))
                .collect();
            if raw.len() >= 2 {
                let pts = lttb(&raw, self.point_budget);
                root.push(Node::Polyline {
                    points: pts,
                    style: Style::stroked(task_color(i).with_alpha(200), 1.2),
                });
            }
            // Legend swatch.
            root.push(Node::Text {
                x: plot_left + 4.0 + i as f64 * 70.0,
                y: plot_top + 10.0,
                text: metric.short_name().to_string(),
                size: 9.0,
                align: Align::Start,
                color: task_color(i),
            });
        }

        // Brush overlay: dim everything outside the selection.
        if let Some(b) = brush {
            if let Some((lo, hi)) = b.selection() {
                let sx0 = x.scale(lo);
                let sx1 = x.scale(hi);
                let dim = Color::rgb(120, 120, 120).with_alpha(60);
                // Left dim.
                root.push(Node::Rect {
                    x: plot_left,
                    y: plot_top,
                    width: (sx0 - plot_left).max(0.0),
                    height: plot_bottom - plot_top,
                    style: Style::filled(dim),
                });
                // Right dim.
                root.push(Node::Rect {
                    x: sx1,
                    y: plot_top,
                    width: (plot_right - sx1).max(0.0),
                    height: plot_bottom - plot_top,
                    style: Style::filled(dim),
                });
                // Selection borders.
                for sx in [sx0, sx1] {
                    root.push(Node::Line {
                        from: (sx, plot_top),
                        to: (sx, plot_bottom),
                        style: Style::stroked(Color::rgb(40, 40, 40), 1.0),
                    });
                }
            }
        }

        scene.push(Node::group_at((0.0, 0.0), root));
        scene
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn timeline_draws_three_series() {
        let ds = scenario::fig2_sample(1).run().unwrap();
        let tl = ClusterTimeline::build(&ds);
        let scene = TimelineView::new(800.0, 120.0).render(&tl, None);
        assert_eq!(scene.counts().polylines, 3);
        // Three legend labels + baseline.
        assert_eq!(scene.counts().texts, 3);
    }

    #[test]
    fn brush_overlay_adds_dim_rects() {
        let ds = scenario::fig2_sample(2).run().unwrap();
        let tl = ClusterTimeline::build(&ds);
        let span = tl.cpu.span().unwrap();
        let mut brush = Brush::new((span.start().seconds() as f64, span.end().seconds() as f64));
        brush.select(1000.0, 3000.0);
        let scene = TimelineView::new(800.0, 120.0).render(&tl, Some(&brush));
        assert_eq!(scene.counts().rects, 2, "two dim rects flank the selection");
    }

    #[test]
    fn inactive_brush_adds_no_overlay() {
        let ds = scenario::fig2_sample(3).run().unwrap();
        let tl = ClusterTimeline::build(&ds);
        let span = tl.cpu.span().unwrap();
        let brush = Brush::new((span.start().seconds() as f64, span.end().seconds() as f64));
        let scene = TimelineView::new(800.0, 120.0).render(&tl, Some(&brush));
        assert_eq!(scene.counts().rects, 0);
    }
}
