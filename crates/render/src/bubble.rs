//! The hierarchical bubble chart (paper Fig 1 and the Fig 3 main views).
//!
//! Jobs (blue dotted circles) contain tasks (purple dotted circles) contain
//! compute-node glyphs. Each node glyph is three concentric annuli colored
//! by CPU (inner), memory (middle) and disk (outer) utilization via the
//! legend colormap of Fig 1.

use std::f64::consts::TAU;

use batchlens_analytics::hierarchy::{HierarchySnapshot, NodeEntry};
use batchlens_layout::color::{job_outline_color, task_outline_color, utilization_colormap};
use batchlens_layout::pack::PackNode;
use batchlens_layout::{Circle, Color};
use batchlens_trace::{Metric, UtilizationTriple};

use crate::scene::{Align, Node, Scene, Stroke, Style};

/// Renders a [`HierarchySnapshot`] as a hierarchical bubble chart.
#[derive(Debug, Clone, Copy)]
pub struct BubbleChart {
    width: f64,
    height: f64,
    padding: f64,
    min_node_radius: f64,
    show_labels: bool,
}

/// What a node bubble in the packed layout carries.
#[derive(Debug, Clone)]
enum Payload {
    /// Root (whole chart).
    Root,
    /// A job bubble.
    Job(String),
    /// A task bubble.
    Task(String),
    /// A node glyph with its utilization.
    NodeGlyph {
        machine: String,
        util: Option<UtilizationTriple>,
    },
}

impl BubbleChart {
    /// A bubble chart for the given viewport.
    pub fn new(width: f64, height: f64) -> Self {
        BubbleChart {
            width,
            height,
            padding: 6.0,
            min_node_radius: 10.0,
            show_labels: true,
        }
    }

    /// Sets the packing padding between sibling bubbles (builder).
    #[must_use]
    pub fn padding(mut self, padding: f64) -> Self {
        self.padding = padding.max(0.0);
        self
    }

    /// Sets whether job/task labels are drawn (builder).
    #[must_use]
    pub fn labels(mut self, show: bool) -> Self {
        self.show_labels = show;
        self
    }

    /// Renders the snapshot to a [`Scene`].
    ///
    /// An empty snapshot yields a scene with only the background and a
    /// "no running jobs" note.
    pub fn render(&self, snapshot: &HierarchySnapshot) -> Scene {
        let mut scene = Scene::new(self.width, self.height);
        if snapshot.jobs.is_empty() {
            scene.push(Node::Text {
                x: self.width / 2.0,
                y: self.height / 2.0,
                text: format!("no running jobs at {}", snapshot.at),
                size: 16.0,
                align: Align::Middle,
                color: Color::rgb(120, 120, 120),
            });
            return scene;
        }

        // Build the pack tree: root → jobs → tasks → node glyphs.
        let mut job_nodes = Vec::new();
        for job in &snapshot.jobs {
            let mut task_nodes = Vec::new();
            for task in &job.tasks {
                let glyphs: Vec<PackNode<Payload>> = task
                    .nodes
                    .iter()
                    .map(|n| {
                        // Glyph radius grows slightly with load so busy nodes
                        // read as bigger, like the paper's figures.
                        let load = n.util.map_or(0.3, |u| u.mean().fraction());
                        let r = self.min_node_radius * (1.0 + load);
                        PackNode::leaf(
                            Payload::NodeGlyph {
                                machine: n.machine.to_string(),
                                util: n.util,
                            },
                            r,
                        )
                    })
                    .collect();
                task_nodes.push(PackNode::parent(
                    Payload::Task(task.task.to_string()),
                    glyphs,
                ));
            }
            job_nodes.push(PackNode::parent(
                Payload::Job(job.job.to_string()),
                task_nodes,
            ));
        }
        let mut root = PackNode::parent(Payload::Root, job_nodes);

        let cx = self.width / 2.0;
        let cy = self.height / 2.0;
        root.pack(cx, cy, self.padding);
        let target = (self.width.min(self.height) / 2.0) - 10.0;
        root.scale_to(cx, cy, target);

        let mut children = Vec::new();
        self.emit(&root, &mut children);
        scene.push(Node::group_at((0.0, 0.0), children));
        scene
    }

    fn emit(&self, node: &PackNode<Payload>, out: &mut Vec<Node>) {
        match &node.data {
            Payload::Root => {
                for child in &node.children {
                    self.emit(child, out);
                }
            }
            Payload::Job(label) => {
                out.push(Node::Circle {
                    cx: node.circle.x,
                    cy: node.circle.y,
                    r: node.circle.r,
                    style: Style::stroked(job_outline_color(), 1.5).dash(Stroke::Dotted),
                    label: Some(label.clone()),
                });
                if self.show_labels {
                    out.push(Node::Text {
                        x: node.circle.x,
                        y: node.circle.y - node.circle.r - 3.0,
                        text: label.clone(),
                        size: 11.0,
                        align: Align::Middle,
                        color: job_outline_color(),
                    });
                }
                for child in &node.children {
                    self.emit(child, out);
                }
            }
            Payload::Task(label) => {
                out.push(Node::Circle {
                    cx: node.circle.x,
                    cy: node.circle.y,
                    r: node.circle.r,
                    style: Style::stroked(task_outline_color(), 1.0).dash(Stroke::Dotted),
                    label: Some(label.clone()),
                });
                for child in &node.children {
                    self.emit(child, out);
                }
            }
            Payload::NodeGlyph { machine, util } => {
                out.push(self.node_glyph(node.circle, machine, *util));
            }
        }
    }

    /// A single compute-node glyph: three annuli (CPU inner, memory middle,
    /// disk outer) colored by the utilization colormap.
    fn node_glyph(&self, circle: Circle, machine: &str, util: Option<UtilizationTriple>) -> Node {
        let colormap = utilization_colormap();
        let mut parts = Vec::with_capacity(4);
        let u = util.unwrap_or_default();
        // Three concentric bands of equal thickness.
        let bands = [
            (Metric::Cpu, 0.0, circle.r / 3.0),
            (Metric::Memory, circle.r / 3.0, circle.r * 2.0 / 3.0),
            (Metric::Disk, circle.r * 2.0 / 3.0, circle.r),
        ];
        for (metric, inner, outer) in bands {
            let frac = u[metric].fraction();
            let color = if util.is_some() {
                colormap.at(frac)
            } else {
                Color::rgb(220, 220, 220)
            };
            // A full ring = sector spanning the whole circle, split in two
            // halves so the large-arc path stays well-formed.
            parts.push(Node::AnnulusSector {
                cx: circle.x,
                cy: circle.y,
                inner,
                outer,
                start_angle: 0.0,
                end_angle: TAU * 0.5,
                style: Style::filled(color),
            });
            parts.push(Node::AnnulusSector {
                cx: circle.x,
                cy: circle.y,
                inner,
                outer,
                start_angle: TAU * 0.5,
                end_angle: TAU,
                style: Style::filled(color),
            });
        }
        // Thin outline so adjacent glyphs are distinguishable.
        parts.push(Node::Circle {
            cx: circle.x,
            cy: circle.y,
            r: circle.r,
            style: Style::stroked(Color::rgb(80, 80, 80), 0.5),
            label: None,
        });
        Node::labelled(machine.to_string(), parts)
    }
}

/// Helper exposing the number of node glyphs a snapshot would render, for
/// tests and sizing heuristics.
pub fn glyph_count(snapshot: &HierarchySnapshot) -> usize {
    snapshot.total_nodes()
}

/// Exposes the glyph band ordering (CPU, memory, disk) so tests can assert
/// the paper's annulus order without reaching into the renderer.
pub fn band_order() -> [Metric; 3] {
    [Metric::Cpu, Metric::Memory, Metric::Disk]
}

#[allow(dead_code)]
fn _node_entry_is_used(_n: &NodeEntry) {}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;
    use batchlens_trace::Timestamp;

    #[test]
    fn fig1_sample_has_three_levels() {
        let ds = scenario::fig1_sample(1).run().unwrap();
        let snap = HierarchySnapshot::at(&ds, Timestamp::new(600));
        let scene = BubbleChart::new(600.0, 600.0).render(&snap);
        let counts = scene.counts();
        // 1 job + 2 tasks = 3 dotted outline circles, plus one thin outline
        // per node glyph.
        let glyphs = glyph_count(&snap);
        // Each glyph: 6 annulus sectors + 1 outline circle.
        assert_eq!(counts.sectors, glyphs * 6);
        assert_eq!(counts.circles, 1 + 2 + glyphs);
    }

    #[test]
    fn bubbles_stay_within_viewport() {
        let ds = scenario::fig3a(2).run().unwrap();
        let snap = HierarchySnapshot::at(&ds, scenario::T_FIG3A);
        let w = 900.0;
        let scene = BubbleChart::new(w, w).render(&snap);
        // Collect every circle center+radius and check it is inside [0, w].
        fn check(node: &Node, w: f64) {
            match node {
                Node::Group { children, .. } => {
                    for c in children {
                        check(c, w);
                    }
                }
                Node::Circle { cx, cy, r, .. } => {
                    assert!(cx - r >= -1.0 && cx + r <= w + 1.0, "x out: {cx} r {r}");
                    assert!(cy - r >= -1.0 && cy + r <= w + 1.0, "y out: {cy} r {r}");
                }
                _ => {}
            }
        }
        for n in &scene.root {
            check(n, w);
        }
    }

    #[test]
    fn empty_snapshot_renders_note() {
        let ds = scenario::fig1_sample(3).run().unwrap();
        let snap = HierarchySnapshot::at(&ds, Timestamp::new(999_999));
        let scene = BubbleChart::new(400.0, 400.0).render(&snap);
        assert_eq!(scene.counts().circles, 0);
        assert_eq!(scene.counts().texts, 1);
    }

    #[test]
    fn fig3a_renders_15_job_bubbles() {
        let ds = scenario::fig3a(4).run().unwrap();
        let snap = HierarchySnapshot::at(&ds, scenario::T_FIG3A);
        let scene = BubbleChart::new(1000.0, 1000.0).render(&snap);
        // Job bubbles are labelled circles whose label starts with "job_".
        let mut job_labels = 0;
        fn walk(node: &Node, jobs: &mut usize) {
            match node {
                Node::Circle { label: Some(l), .. } if l.starts_with("job_") => *jobs += 1,
                Node::Group { children, .. } => {
                    for c in children {
                        walk(c, jobs);
                    }
                }
                _ => {}
            }
        }
        for n in &scene.root {
            walk(n, &mut job_labels);
        }
        assert_eq!(job_labels, 15);
    }

    #[test]
    fn band_order_matches_paper() {
        assert_eq!(band_order(), [Metric::Cpu, Metric::Memory, Metric::Disk]);
    }

    #[test]
    fn labels_can_be_disabled() {
        let ds = scenario::fig1_sample(5).run().unwrap();
        let snap = HierarchySnapshot::at(&ds, Timestamp::new(600));
        let with = BubbleChart::new(500.0, 500.0).render(&snap).counts().texts;
        let without = BubbleChart::new(500.0, 500.0)
            .labels(false)
            .render(&snap)
            .counts()
            .texts;
        assert!(with > without);
    }
}
