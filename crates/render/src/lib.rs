//! # batchlens-render
//!
//! The rendering layer: a small scene graph, an SVG serializer, and the
//! BatchLens view renderers that turn analytics output into the paper's
//! figures.
//!
//! The paper's prototype drew into the browser with D3/SVG; this crate emits
//! standalone SVG documents, which makes every figure reproducible and
//! diffable headlessly (no browser, no screenshot pipeline).
//!
//! * [`scene`] — a resolution-independent scene graph (groups, circles,
//!   annulus sectors, polylines, vertical rules, text) with styles.
//! * [`svg`] — serializes a [`scene::Scene`] to an SVG string.
//! * [`bubble`] — the hierarchical bubble chart (Fig 1, Fig 3 main views):
//!   job → task → node nesting via [`batchlens_layout::pack`], node glyphs as
//!   three annuli colored by CPU/memory/disk.
//! * [`linechart`] — the multi line chart with start/end annotation lines
//!   and the brushed detail view (Fig 2).
//! * [`timeline`] — the aggregated, brushable system timeline.
//! * [`links`] — the co-allocation dotted links (Fig 3(b)).
//! * [`legend`] — the utilization color legend (Fig 1).
//! * [`dashboard`] — composes bubble chart + line charts + timeline into the
//!   full Fig 3 dashboard.
//!
//! ## Example
//!
//! ```
//! use batchlens_render::{bubble::BubbleChart, svg::to_svg};
//! use batchlens_analytics::hierarchy::HierarchySnapshot;
//! use batchlens_sim::scenario;
//! use batchlens_trace::Timestamp;
//!
//! let ds = scenario::fig1_sample(1).run().unwrap();
//! let snap = HierarchySnapshot::at(&ds, Timestamp::new(600));
//! let scene = BubbleChart::new(600.0, 600.0).render(&snap);
//! let svg = to_svg(&scene);
//! assert!(svg.starts_with("<?xml"));
//! assert!(svg.contains("<circle"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod axis;
pub mod bubble;
pub mod dashboard;
pub mod heatmap;
pub mod legend;
pub mod linechart;
pub mod links;
pub mod node_detail;
pub mod radial;
pub mod scene;
pub mod svg;
pub mod timeline;

pub use ascii::AsciiCanvas;
pub use bubble::BubbleChart;
pub use dashboard::Dashboard;
pub use linechart::LineChart;
pub use scene::{Align, Node, Scene, Stroke, Style};
pub use svg::to_svg;
