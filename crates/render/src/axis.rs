//! Reusable axis and gridline rendering.
//!
//! The line chart, timeline and heatmap all need axes with nice ticks and
//! optional gridlines. This module centralizes that so every chart's axes
//! look and behave identically, built on [`batchlens_layout::LinearScale`]'s
//! tick generation.

use batchlens_layout::{Color, LinearScale};

use crate::scene::{Align, Node, Style};

/// How an axis formats its tick labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickFormat {
    /// Plain number with the given decimal places.
    Number(u8),
    /// Percentage (`value * 100`) with no decimals.
    Percent,
    /// Seconds rendered as whole hours with an `h` suffix.
    Hours,
}

impl TickFormat {
    fn render(self, v: f64) -> String {
        match self {
            TickFormat::Number(dp) => format!("{v:.*}", dp as usize),
            TickFormat::Percent => format!("{}%", (v * 100.0).round() as i64),
            TickFormat::Hours => format!("{}h", (v / 3600.0).round() as i64),
        }
    }
}

/// A horizontal (x) axis along the bottom of a plot rectangle.
#[derive(Debug, Clone, Copy)]
pub struct XAxis {
    /// The data→pixel scale.
    pub scale: LinearScale,
    /// The y pixel coordinate of the axis line.
    pub y: f64,
    /// Plot top (for full-height gridlines).
    pub top: f64,
    /// Desired tick count.
    pub ticks: usize,
    /// Label format.
    pub format: TickFormat,
    /// Whether to draw vertical gridlines.
    pub grid: bool,
}

impl XAxis {
    /// Emits the axis line, ticks, labels and optional gridlines.
    pub fn render(&self) -> Vec<Node> {
        let (r0, r1) = self.scale.range();
        let mut nodes = vec![Node::Line {
            from: (r0, self.y),
            to: (r1, self.y),
            style: Style::stroked(Color::rgb(60, 60, 60), 1.0),
        }];
        for t in self.scale.ticks(self.ticks) {
            let x = self.scale.scale(t);
            if self.grid {
                nodes.push(Node::Line {
                    from: (x, self.top),
                    to: (x, self.y),
                    style: Style::stroked(Color::rgb(225, 225, 225), 0.5),
                });
            }
            nodes.push(Node::Line {
                from: (x, self.y),
                to: (x, self.y + 4.0),
                style: Style::stroked(Color::rgb(60, 60, 60), 1.0),
            });
            nodes.push(Node::Text {
                x,
                y: self.y + 14.0,
                text: self.format.render(t),
                size: 9.0,
                align: Align::Middle,
                color: Color::rgb(90, 90, 90),
            });
        }
        nodes
    }
}

/// A vertical (y) axis along the left of a plot rectangle.
#[derive(Debug, Clone, Copy)]
pub struct YAxis {
    /// The data→pixel scale.
    pub scale: LinearScale,
    /// The x pixel coordinate of the axis line.
    pub x: f64,
    /// Plot right edge (for full-width gridlines).
    pub right: f64,
    /// Desired tick count.
    pub ticks: usize,
    /// Label format.
    pub format: TickFormat,
    /// Whether to draw horizontal gridlines.
    pub grid: bool,
}

impl YAxis {
    /// Emits the axis line, ticks, labels and optional gridlines.
    pub fn render(&self) -> Vec<Node> {
        let (r0, r1) = self.scale.range();
        let mut nodes = vec![Node::Line {
            from: (self.x, r0),
            to: (self.x, r1),
            style: Style::stroked(Color::rgb(60, 60, 60), 1.0),
        }];
        for t in self.scale.ticks(self.ticks) {
            let y = self.scale.scale(t);
            if self.grid {
                nodes.push(Node::Line {
                    from: (self.x, y),
                    to: (self.right, y),
                    style: Style::stroked(Color::rgb(225, 225, 225), 0.5),
                });
            }
            nodes.push(Node::Line {
                from: (self.x - 4.0, y),
                to: (self.x, y),
                style: Style::stroked(Color::rgb(60, 60, 60), 1.0),
            });
            nodes.push(Node::Text {
                x: self.x - 6.0,
                y: y + 3.0,
                text: self.format.render(t),
                size: 9.0,
                align: Align::End,
                color: Color::rgb(90, 90, 90),
            });
        }
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::Node;

    fn count_kinds(nodes: &[Node]) -> (usize, usize) {
        let lines = nodes
            .iter()
            .filter(|n| matches!(n, Node::Line { .. }))
            .count();
        let texts = nodes
            .iter()
            .filter(|n| matches!(n, Node::Text { .. }))
            .count();
        (lines, texts)
    }

    #[test]
    fn tick_formats() {
        assert_eq!(TickFormat::Number(1).render(3.46), "3.5");
        assert_eq!(TickFormat::Percent.render(0.5), "50%");
        assert_eq!(TickFormat::Hours.render(43200.0), "12h");
    }

    #[test]
    fn x_axis_emits_ticks_and_labels() {
        let axis = XAxis {
            scale: LinearScale::new((0.0, 86400.0), (40.0, 800.0)),
            y: 300.0,
            top: 10.0,
            ticks: 6,
            format: TickFormat::Hours,
            grid: true,
        };
        let nodes = axis.render();
        let (lines, texts) = count_kinds(&nodes);
        // One axis line + per tick: gridline + tick mark; labels = ticks.
        assert!(texts >= 4);
        assert!(lines > texts * 2);
    }

    #[test]
    fn y_axis_without_grid_has_fewer_lines() {
        let base = YAxis {
            scale: LinearScale::new((0.0, 1.0), (300.0, 10.0)),
            x: 40.0,
            right: 800.0,
            ticks: 5,
            format: TickFormat::Percent,
            grid: true,
        };
        let with_grid = base.render();
        let no_grid = YAxis {
            grid: false,
            ..base
        }
        .render();
        assert!(with_grid.len() > no_grid.len());
        // Percent labels present.
        assert!(no_grid
            .iter()
            .any(|n| matches!(n, Node::Text { text, .. } if text.ends_with('%'))));
    }

    #[test]
    fn labels_lie_within_range() {
        let axis = XAxis {
            scale: LinearScale::new((0.0, 100.0), (0.0, 500.0)),
            y: 200.0,
            top: 0.0,
            ticks: 5,
            format: TickFormat::Number(0),
            grid: false,
        };
        for n in axis.render() {
            if let Node::Text { x, .. } = n {
                assert!((0.0..=500.0).contains(&x));
            }
        }
    }
}
