//! A minimal, resolution-independent scene graph.
//!
//! Views build a tree of [`Node`]s; [`crate::svg::to_svg`] serializes it.
//! Keeping the scene graph separate from SVG means the same view code could
//! target another backend (canvas, PDF) without change, and lets tests
//! inspect structure (counts of circles, presence of annotation rules)
//! without parsing text.

use batchlens_layout::Color;
use serde::{Deserialize, Serialize};

/// Stroke dash style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stroke {
    /// Solid line.
    Solid,
    /// Dotted line (the paper's dotted job/task outlines and links).
    Dotted,
    /// Dashed line.
    Dashed,
}

/// Fill/stroke/text style for a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Style {
    /// Fill color (`None` = no fill).
    pub fill: Option<Color>,
    /// Stroke color (`None` = no stroke).
    pub stroke: Option<Color>,
    /// Stroke width in user units.
    pub stroke_width: f64,
    /// Dash style.
    pub dash: Stroke,
    /// Fill opacity multiplier in `[0, 1]` (composes with the color alpha).
    pub opacity: f64,
}

impl Default for Style {
    fn default() -> Self {
        Style {
            fill: None,
            stroke: Some(Color::BLACK),
            stroke_width: 1.0,
            dash: Stroke::Solid,
            opacity: 1.0,
        }
    }
}

impl Style {
    /// A filled style with no stroke.
    pub fn filled(color: Color) -> Self {
        Style {
            fill: Some(color),
            stroke: None,
            ..Style::default()
        }
    }

    /// A stroked style with no fill.
    pub fn stroked(color: Color, width: f64) -> Self {
        Style {
            fill: None,
            stroke: Some(color),
            stroke_width: width,
            ..Style::default()
        }
    }

    /// Sets the dash style (builder).
    #[must_use]
    pub fn dash(mut self, dash: Stroke) -> Self {
        self.dash = dash;
        self
    }

    /// Sets the fill (builder).
    #[must_use]
    pub fn with_fill(mut self, color: Color) -> Self {
        self.fill = Some(color);
        self
    }

    /// Sets opacity (builder).
    #[must_use]
    pub fn with_opacity(mut self, opacity: f64) -> Self {
        self.opacity = opacity.clamp(0.0, 1.0);
        self
    }
}

/// Horizontal text alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Align {
    /// Anchor at the start (left).
    Start,
    /// Anchor at the middle.
    Middle,
    /// Anchor at the end (right).
    End,
}

/// A drawable node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A group of child nodes, optionally translated and titled (title
    /// becomes an SVG `<title>` for tooltips and a `data-label`).
    Group {
        /// Optional label (for tooltips/tests).
        label: Option<String>,
        /// Translation applied to children.
        translate: (f64, f64),
        /// Child nodes.
        children: Vec<Node>,
    },
    /// A circle.
    Circle {
        /// Center x.
        cx: f64,
        /// Center y.
        cy: f64,
        /// Radius.
        r: f64,
        /// Style.
        style: Style,
        /// Optional label.
        label: Option<String>,
    },
    /// An annulus sector (ring wedge) — the node glyph's metric arcs.
    AnnulusSector {
        /// Center x.
        cx: f64,
        /// Center y.
        cy: f64,
        /// Inner radius.
        inner: f64,
        /// Outer radius.
        outer: f64,
        /// Start angle in radians (0 = +x, clockwise in SVG).
        start_angle: f64,
        /// End angle in radians.
        end_angle: f64,
        /// Style (usually filled).
        style: Style,
    },
    /// A polyline through the given points.
    Polyline {
        /// Points in user coordinates.
        points: Vec<(f64, f64)>,
        /// Style (usually stroked, no fill).
        style: Style,
    },
    /// A straight line segment (annotation rules, axes).
    Line {
        /// Start.
        from: (f64, f64),
        /// End.
        to: (f64, f64),
        /// Style.
        style: Style,
    },
    /// An axis-aligned rectangle.
    Rect {
        /// Left.
        x: f64,
        /// Top.
        y: f64,
        /// Width.
        width: f64,
        /// Height.
        height: f64,
        /// Style.
        style: Style,
    },
    /// A text label.
    Text {
        /// Anchor x.
        x: f64,
        /// Baseline y.
        y: f64,
        /// The string.
        text: String,
        /// Font size in user units.
        size: f64,
        /// Horizontal alignment.
        align: Align,
        /// Fill color.
        color: Color,
    },
}

impl Node {
    /// A translated group.
    pub fn group_at(translate: (f64, f64), children: Vec<Node>) -> Node {
        Node::Group {
            label: None,
            translate,
            children,
        }
    }

    /// A labelled group at the origin.
    pub fn labelled(label: impl Into<String>, children: Vec<Node>) -> Node {
        Node::Group {
            label: Some(label.into()),
            translate: (0.0, 0.0),
            children,
        }
    }

    /// Counts nodes of each leaf kind in the subtree (for tests).
    pub fn counts(&self) -> NodeCounts {
        let mut c = NodeCounts::default();
        self.accumulate(&mut c);
        c
    }

    fn accumulate(&self, c: &mut NodeCounts) {
        match self {
            Node::Group { children, .. } => {
                c.groups += 1;
                for child in children {
                    child.accumulate(c);
                }
            }
            Node::Circle { .. } => c.circles += 1,
            Node::AnnulusSector { .. } => c.sectors += 1,
            Node::Polyline { .. } => c.polylines += 1,
            Node::Line { .. } => c.lines += 1,
            Node::Rect { .. } => c.rects += 1,
            Node::Text { .. } => c.texts += 1,
        }
    }
}

/// Tally of node kinds in a subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeCounts {
    /// Number of group nodes.
    pub groups: usize,
    /// Number of circles.
    pub circles: usize,
    /// Number of annulus sectors.
    pub sectors: usize,
    /// Number of polylines.
    pub polylines: usize,
    /// Number of line segments.
    pub lines: usize,
    /// Number of rectangles.
    pub rects: usize,
    /// Number of text labels.
    pub texts: usize,
}

/// A complete scene with a viewport.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Viewport width.
    pub width: f64,
    /// Viewport height.
    pub height: f64,
    /// Background color (drawn as a full-viewport rect).
    pub background: Color,
    /// Root nodes.
    pub root: Vec<Node>,
}

impl Scene {
    /// An empty scene with a white background.
    pub fn new(width: f64, height: f64) -> Scene {
        Scene {
            width,
            height,
            background: Color::WHITE,
            root: Vec::new(),
        }
    }

    /// Sets the background (builder).
    #[must_use]
    pub fn background(mut self, color: Color) -> Scene {
        self.background = color;
        self
    }

    /// Adds a root node.
    pub fn push(&mut self, node: Node) -> &mut Scene {
        self.root.push(node);
        self
    }

    /// Total leaf/group counts over all roots.
    pub fn counts(&self) -> NodeCounts {
        let mut c = NodeCounts::default();
        for n in &self.root {
            n.accumulate(&mut c);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn style_builders() {
        let s = Style::filled(Color::BLACK)
            .dash(Stroke::Dotted)
            .with_opacity(0.5);
        assert_eq!(s.fill, Some(Color::BLACK));
        assert_eq!(s.dash, Stroke::Dotted);
        assert_eq!(s.opacity, 0.5);
        assert_eq!(Style::default().stroke, Some(Color::BLACK));
    }

    #[test]
    fn counts_traverse_groups() {
        let scene = {
            let mut s = Scene::new(100.0, 100.0);
            s.push(Node::group_at(
                (0.0, 0.0),
                vec![
                    Node::Circle {
                        cx: 1.0,
                        cy: 1.0,
                        r: 1.0,
                        style: Style::default(),
                        label: None,
                    },
                    Node::Circle {
                        cx: 2.0,
                        cy: 2.0,
                        r: 1.0,
                        style: Style::default(),
                        label: None,
                    },
                    Node::Line {
                        from: (0.0, 0.0),
                        to: (1.0, 1.0),
                        style: Style::default(),
                    },
                ],
            ));
            s
        };
        let c = scene.counts();
        assert_eq!(c.circles, 2);
        assert_eq!(c.lines, 1);
        assert_eq!(c.groups, 1);
    }

    #[test]
    fn labelled_group_carries_label() {
        let n = Node::labelled("job_1", vec![]);
        if let Node::Group { label, .. } = n {
            assert_eq!(label.as_deref(), Some("job_1"));
        } else {
            panic!("not a group");
        }
    }

    #[test]
    fn opacity_clamps() {
        assert_eq!(Style::default().with_opacity(5.0).opacity, 1.0);
        assert_eq!(Style::default().with_opacity(-1.0).opacity, 0.0);
    }
}
