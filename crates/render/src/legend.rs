//! The utilization color legend (paper Fig 1, the 0–100 % scale bar) and the
//! node-glyph key (three annuli labelled CPU / memory / disk).

use batchlens_layout::color::utilization_colormap;
use batchlens_layout::{Color, LinearScale};
use batchlens_trace::Metric;

use crate::scene::{Align, Node, Scene, Style};

/// Renders the standalone color legend.
#[derive(Debug, Clone, Copy)]
pub struct Legend {
    width: f64,
    height: f64,
    /// Number of swatches approximating the gradient.
    steps: usize,
}

impl Legend {
    /// A legend for the given viewport.
    pub fn new(width: f64, height: f64) -> Self {
        Legend {
            width,
            height,
            steps: 64,
        }
    }

    /// Renders the color-scale bar with 0 % / 50 % / 100 % ticks.
    pub fn render(&self) -> Scene {
        let mut scene = Scene::new(self.width, self.height);
        let colormap = utilization_colormap();
        let bar_left = 20.0;
        let bar_right = self.width - 20.0;
        let bar_top = self.height * 0.3;
        let bar_h = self.height * 0.3;
        let x = LinearScale::new((0.0, 1.0), (bar_left, bar_right));

        let mut root = Vec::new();
        let step_w = (bar_right - bar_left) / self.steps as f64;
        for i in 0..self.steps {
            let frac = i as f64 / (self.steps - 1) as f64;
            root.push(Node::Rect {
                x: bar_left + i as f64 * step_w,
                y: bar_top,
                width: step_w + 0.5,
                height: bar_h,
                style: Style::filled(colormap.at(frac)),
            });
        }
        // Ticks.
        for frac in [0.0, 0.5, 1.0] {
            root.push(Node::Text {
                x: x.scale(frac),
                y: bar_top + bar_h + 14.0,
                text: format!("{}%", (frac * 100.0) as i32),
                size: 10.0,
                align: Align::Middle,
                color: Color::rgb(40, 40, 40),
            });
        }
        root.push(Node::Text {
            x: (bar_left + bar_right) / 2.0,
            y: bar_top - 6.0,
            text: "utilization".to_string(),
            size: 11.0,
            align: Align::Middle,
            color: Color::rgb(40, 40, 40),
        });
        scene.push(Node::group_at((0.0, 0.0), root));
        scene
    }

    /// The metric order the annuli encode, for a key legend.
    pub fn annulus_labels() -> [(&'static str, Metric); 3] {
        [
            ("inner: CPU", Metric::Cpu),
            ("middle: memory", Metric::Memory),
            ("outer: disk", Metric::Disk),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legend_draws_gradient_swatches() {
        let scene = Legend::new(300.0, 80.0).render();
        assert_eq!(scene.counts().rects, 64);
        // 3 tick labels + title.
        assert_eq!(scene.counts().texts, 4);
    }

    #[test]
    fn annulus_key_order() {
        let labels = Legend::annulus_labels();
        assert_eq!(labels[0].1, Metric::Cpu);
        assert_eq!(labels[2].1, Metric::Disk);
    }
}
