//! An ASCII backend for the scene graph.
//!
//! The same [`crate::scene::Scene`] that serializes to SVG also rasterizes to
//! a character grid, which is handy for terminal dashboards, doctest-friendly
//! snapshots and CI logs where an SVG would be opaque. It demonstrates that
//! the scene graph is backend-independent (the paper's design, not its D3
//! rendering, is the contribution).
//!
//! The rasterizer supports circles (outline), lines (Bresenham), rectangles,
//! polylines and text; annulus sectors are drawn as their bounding circle's
//! fill shade. Color maps to a ramp of characters by luminance.

use batchlens_layout::Color;

use crate::scene::{Node, Scene};

/// A fixed-size character canvas.
#[derive(Debug, Clone)]
pub struct AsciiCanvas {
    cols: usize,
    rows: usize,
    cells: Vec<char>,
    /// Scene-units-per-cell on each axis.
    sx: f64,
    sy: f64,
}

/// Luminance ramp from light to dark (space = empty).
const RAMP: &[u8] = b" .:-=+*#%@";

impl AsciiCanvas {
    /// Creates a canvas rasterizing `scene` into `cols`×`rows` characters.
    pub fn render(scene: &Scene, cols: usize, rows: usize) -> AsciiCanvas {
        let cols = cols.max(1);
        let rows = rows.max(1);
        let mut canvas = AsciiCanvas {
            cols,
            rows,
            cells: vec![' '; cols * rows],
            sx: scene.width / cols as f64,
            sy: scene.height / rows as f64,
        };
        for node in &scene.root {
            canvas.draw_node(node, 0.0, 0.0);
        }
        canvas
    }

    /// The rendered text (rows joined by newlines).
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            let start = r * self.cols;
            s.extend(self.cells[start..start + self.cols].iter());
            s.push('\n');
        }
        s
    }

    /// The character at `(col, row)`, or `None` out of bounds.
    pub fn at(&self, col: usize, row: usize) -> Option<char> {
        if col < self.cols && row < self.rows {
            Some(self.cells[row * self.cols + col])
        } else {
            None
        }
    }

    /// Count of non-space cells (ink).
    pub fn ink(&self) -> usize {
        self.cells.iter().filter(|&&c| c != ' ').count()
    }

    fn put(&mut self, col: isize, row: isize, ch: char) {
        if col >= 0 && row >= 0 && (col as usize) < self.cols && (row as usize) < self.rows {
            self.cells[row as usize * self.cols + col as usize] = ch;
        }
    }

    fn to_cell(&self, x: f64, y: f64) -> (isize, isize) {
        ((x / self.sx) as isize, (y / self.sy) as isize)
    }

    fn shade(color: Color) -> char {
        let l = color.luminance().clamp(0.0, 1.0);
        // Darker = denser character.
        let idx = ((1.0 - l) * (RAMP.len() - 1) as f64).round() as usize;
        RAMP[idx.min(RAMP.len() - 1)] as char
    }

    fn draw_node(&mut self, node: &Node, ox: f64, oy: f64) {
        match node {
            Node::Group {
                translate,
                children,
                ..
            } => {
                let (tx, ty) = *translate;
                for child in children {
                    self.draw_node(child, ox + tx, oy + ty);
                }
            }
            Node::Circle {
                cx, cy, r, style, ..
            } => {
                let fill = style.fill.map(Self::shade);
                self.draw_circle(ox + cx, oy + cy, *r, fill.unwrap_or('o'));
            }
            Node::AnnulusSector {
                cx,
                cy,
                outer,
                style,
                ..
            } => {
                let ch = style.fill.map(Self::shade).unwrap_or('o');
                self.draw_circle(ox + cx, oy + cy, *outer, ch);
            }
            Node::Line { from, to, .. } => {
                self.draw_line(ox + from.0, oy + from.1, ox + to.0, oy + to.1, '.');
            }
            Node::Polyline { points, .. } => {
                for w in points.windows(2) {
                    self.draw_line(ox + w[0].0, oy + w[0].1, ox + w[1].0, oy + w[1].1, '.');
                }
            }
            Node::Rect {
                x,
                y,
                width,
                height,
                ..
            } => {
                self.draw_rect(ox + x, oy + y, *width, *height);
            }
            Node::Text { x, y, text, .. } => {
                let (cx, cy) = self.to_cell(ox + x, oy + y);
                for (i, ch) in text.chars().enumerate() {
                    self.put(cx + i as isize, cy, ch);
                }
            }
        }
    }

    fn draw_circle(&mut self, cx: f64, cy: f64, r: f64, ch: char) {
        // Rasterize the outline by angle sampling (cheap and dependency-free).
        let rc = (r / self.sx).max(r / self.sy);
        let steps = (rc * 8.0).clamp(8.0, 720.0) as usize;
        for i in 0..steps {
            let a = std::f64::consts::TAU * i as f64 / steps as f64;
            let (col, row) = self.to_cell(cx + r * a.cos(), cy + r * a.sin());
            self.put(col, row, ch);
        }
    }

    fn draw_rect(&mut self, x: f64, y: f64, w: f64, h: f64) {
        self.draw_line(x, y, x + w, y, '-');
        self.draw_line(x, y + h, x + w, y + h, '-');
        self.draw_line(x, y, x, y + h, '|');
        self.draw_line(x + w, y, x + w, y + h, '|');
    }

    fn draw_line(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, ch: char) {
        let (mut cx, mut cy) = self.to_cell(x0, y0);
        let (ex, ey) = self.to_cell(x1, y1);
        let dx = (ex - cx).abs();
        let dy = -(ey - cy).abs();
        let sx = if cx < ex { 1 } else { -1 };
        let sy = if cy < ey { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.put(cx, cy, ch);
            if cx == ex && cy == ey {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                cx += sx;
            }
            if e2 <= dx {
                err += dx;
                cy += sy;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Node, Scene, Style};
    use batchlens_layout::Color;

    #[test]
    fn empty_scene_is_blank() {
        let canvas = AsciiCanvas::render(&Scene::new(100.0, 100.0), 20, 10);
        assert_eq!(canvas.ink(), 0);
        assert_eq!(canvas.to_text().lines().count(), 10);
    }

    #[test]
    fn circle_leaves_ink() {
        let mut scene = Scene::new(100.0, 100.0);
        scene.push(Node::Circle {
            cx: 50.0,
            cy: 50.0,
            r: 30.0,
            style: Style::filled(Color::BLACK),
            label: None,
        });
        let canvas = AsciiCanvas::render(&scene, 40, 40);
        assert!(canvas.ink() > 0);
    }

    #[test]
    fn line_is_drawn() {
        let mut scene = Scene::new(100.0, 100.0);
        scene.push(Node::Line {
            from: (0.0, 0.0),
            to: (100.0, 100.0),
            style: Style::default(),
        });
        let canvas = AsciiCanvas::render(&scene, 20, 20);
        // Diagonal touches the corners.
        assert_eq!(canvas.at(0, 0), Some('.'));
        assert_eq!(canvas.at(19, 19), Some('.'));
    }

    #[test]
    fn text_is_placed() {
        let mut scene = Scene::new(100.0, 20.0);
        scene.push(Node::Text {
            x: 0.0,
            y: 10.0,
            text: "HI".into(),
            size: 10.0,
            align: crate::scene::Align::Start,
            color: Color::BLACK,
        });
        let canvas = AsciiCanvas::render(&scene, 40, 4);
        assert!(canvas.to_text().contains('H'));
        assert!(canvas.to_text().contains('I'));
    }

    #[test]
    fn dashboard_rasterizes() {
        use crate::bubble::BubbleChart;
        use batchlens_analytics::hierarchy::HierarchySnapshot;
        use batchlens_sim::scenario;
        let ds = scenario::fig3a(1).run().unwrap();
        let snap = HierarchySnapshot::at(&ds, scenario::T_FIG3A);
        let scene = BubbleChart::new(600.0, 600.0).render(&snap);
        let canvas = AsciiCanvas::render(&scene, 80, 40);
        assert!(canvas.ink() > 0);
        assert_eq!(canvas.to_text().lines().count(), 40);
    }
}
