//! The hover "zoom-in refresh" detail view (paper Fig 3(b)): when the user
//! mouses over a compute node that several jobs share, BatchLens refreshes to
//! show that one physical machine's utilization with the jobs running on it
//! marked.
//!
//! This view plots a single machine's three metric series over a window and
//! overlays each co-located job's execution interval as a shaded band, so the
//! operator sees *which* job is responsible for a spike on the shared node.

use batchlens_layout::color::task_color;
use batchlens_layout::line::lttb;
use batchlens_layout::{Color, LinearScale};
use batchlens_trace::{MachineId, Metric, TimeRange, TraceDataset};

use crate::axis::{TickFormat, XAxis, YAxis};
use crate::scene::{Align, Node, Scene, Style};

/// Renders one machine's detail (all three metrics) with co-located job
/// bands.
#[derive(Debug, Clone, Copy)]
pub struct NodeDetail {
    width: f64,
    height: f64,
    margin: f64,
    point_budget: usize,
}

impl NodeDetail {
    /// A node-detail view for the given viewport.
    pub fn new(width: f64, height: f64) -> Self {
        NodeDetail {
            width,
            height,
            margin: 44.0,
            point_budget: 300,
        }
    }

    /// Renders machine `machine`'s three metric series over `window`, with a
    /// shaded band and label for each distinct job that runs on it during the
    /// window.
    pub fn render(&self, ds: &TraceDataset, machine: MachineId, window: &TimeRange) -> Scene {
        let mut scene = Scene::new(self.width, self.height);
        let Some(mv) = ds.machine(machine) else {
            scene.push(note(
                self.width,
                self.height,
                &format!("{machine} not found"),
            ));
            return scene;
        };

        let plot_left = self.margin;
        let plot_right = self.width - 10.0;
        let plot_top = 24.0;
        let plot_bottom = self.height - self.margin;
        let x = LinearScale::new(
            (
                window.start().seconds() as f64,
                window.end().seconds() as f64,
            ),
            (plot_left, plot_right),
        )
        .clamped();
        let y = LinearScale::new((0.0, 1.0), (plot_bottom, plot_top));

        let mut root = Vec::new();

        // Co-located job bands (drawn first, behind the lines).
        let mut jobs: Vec<_> = mv
            .instances()
            .filter_map(|i| i.record.window().ok().map(|w| (i.record.job, w)))
            .collect();
        jobs.sort_by_key(|(j, w)| (*j, w.start()));
        jobs.dedup_by_key(|(j, _)| *j);
        for (idx, (job, jw)) in jobs.iter().enumerate() {
            if let Some(clip) = jw.intersect(window) {
                let x0 = x.scale(clip.start().seconds() as f64);
                let x1 = x.scale(clip.end().seconds() as f64);
                let color = task_color(idx).with_alpha(36);
                root.push(Node::Rect {
                    x: x0,
                    y: plot_top,
                    width: (x1 - x0).max(0.0),
                    height: plot_bottom - plot_top,
                    style: Style::filled(color),
                });
                root.push(Node::Text {
                    x: (x0 + x1) / 2.0,
                    y: plot_top + 10.0 + (idx % 3) as f64 * 10.0,
                    text: job.to_string(),
                    size: 8.0,
                    align: Align::Middle,
                    color: task_color(idx),
                });
            }
        }

        // Axes.
        root.extend(
            XAxis {
                scale: x,
                y: plot_bottom,
                top: plot_top,
                ticks: 5,
                format: TickFormat::Hours,
                grid: false,
            }
            .render(),
        );
        root.extend(
            YAxis {
                scale: y,
                x: plot_left,
                right: plot_right,
                ticks: 2,
                format: TickFormat::Percent,
                grid: true,
            }
            .render(),
        );

        // One line per metric.
        for (i, metric) in Metric::ALL.into_iter().enumerate() {
            if let Some(series) = mv.usage(metric) {
                let raw: Vec<(f64, f64)> = series
                    .slice(window)
                    .iter()
                    .map(|(t, v)| (x.scale(t.seconds() as f64), y.scale(v)))
                    .collect();
                if raw.len() >= 2 {
                    root.push(Node::Polyline {
                        points: lttb(&raw, self.point_budget),
                        style: Style::stroked(metric_color(i), 1.3),
                    });
                }
            }
        }

        root.push(Node::Text {
            x: plot_left,
            y: 14.0,
            text: format!(
                "{machine} — CPU/mem/disk with {} co-located job(s)",
                jobs.len()
            ),
            size: 11.0,
            align: Align::Start,
            color: Color::rgb(40, 40, 40),
        });

        scene.push(Node::group_at((0.0, 0.0), root));
        scene
    }
}

fn metric_color(i: usize) -> Color {
    // CPU blue, memory orange, disk green (distinct from the band palette).
    const C: [&str; 3] = ["#1f77b4", "#ff7f0e", "#2ca02c"];
    Color::from_hex(C[i % 3]).expect("static hex")
}

fn note(w: f64, h: f64, text: &str) -> Node {
    Node::Text {
        x: w / 2.0,
        y: h / 2.0,
        text: text.to_string(),
        size: 14.0,
        align: Align::Middle,
        color: Color::rgb(120, 120, 120),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn renders_shared_node_with_bands() {
        let ds = scenario::fig3b(1).run().unwrap();
        // Pick a machine shared by several jobs.
        let idx = batchlens_analytics::CoallocationIndex::at(&ds, scenario::T_FIG3B);
        let shared = idx.shared_machines()[0].machine;
        let window = ds.span().unwrap();
        let scene = NodeDetail::new(800.0, 300.0).render(&ds, shared, &window);
        // Three metric lines.
        assert_eq!(scene.counts().polylines, 3);
        // At least two job bands (it is shared).
        assert!(scene.counts().rects >= 2);
    }

    #[test]
    fn missing_machine_notes() {
        let ds = scenario::fig1_sample(2).run().unwrap();
        let scene = NodeDetail::new(400.0, 200.0).render(
            &ds,
            MachineId::new(99999),
            &TimeRange::full_day(),
        );
        assert_eq!(scene.counts().polylines, 0);
        assert_eq!(scene.counts().texts, 1);
    }

    #[test]
    fn single_job_node_has_one_band() {
        let ds = scenario::fig1_sample(3).run().unwrap();
        let m = ds.machine(MachineId::new(0)).unwrap().id();
        let window = ds.span().unwrap();
        let scene = NodeDetail::new(600.0, 250.0).render(&ds, m, &window);
        assert!(scene.counts().polylines >= 1);
    }
}
