//! Co-allocation dotted links (paper Fig 3(b)): connecting the renderings of
//! one physical machine that appears inside several job bubbles.
//!
//! Given a bubble layout's per-(job, machine) glyph positions and a
//! [`CoallocationIndex`], this draws one colored dotted line per shared
//! machine between the bubbles that host it.

use std::collections::HashMap;

use batchlens_analytics::CoallocationIndex;
use batchlens_layout::color::link_color;
use batchlens_layout::geometry::Point;

use crate::scene::{Node, Stroke, Style};

/// Where a given machine's glyph sits inside a given job's bubble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlyphAnchor {
    /// The job bubble the glyph belongs to.
    pub job: batchlens_trace::JobId,
    /// The physical machine.
    pub machine: batchlens_trace::MachineId,
    /// The glyph center in scene coordinates.
    pub position: Point,
}

/// Builds dotted-link nodes from glyph anchors and the co-allocation index.
///
/// Returns one [`Node::Line`] per `(machine, job_a, job_b)` pair for which
/// both anchors are known. Colors cycle through the paper's green/orange/
/// purple link palette, keyed by machine so each shared machine keeps one
/// color across its links.
pub fn build_links(anchors: &[GlyphAnchor], index: &CoallocationIndex) -> Vec<Node> {
    // (job, machine) → position.
    let mut pos: HashMap<(batchlens_trace::JobId, batchlens_trace::MachineId), Point> =
        HashMap::new();
    for a in anchors {
        pos.insert((a.job, a.machine), a.position);
    }

    let mut out = Vec::new();
    for link in index.links() {
        let a = pos.get(&(link.job_a, link.machine));
        let b = pos.get(&(link.job_b, link.machine));
        if let (Some(pa), Some(pb)) = (a, b) {
            // All links of one machine share a hue, keyed by machine id.
            let color = link_color(link.machine.raw() as usize);
            out.push(Node::Line {
                from: (pa.x, pa.y),
                to: (pb.x, pb.y),
                style: Style::stroked(color.with_alpha(200), 1.2).dash(Stroke::Dotted),
            });
        }
    }
    out
}

/// Number of links that would be drawn given the available anchors — for
/// tests and sizing. Counts over the index's precomputed link slice without
/// building any scene nodes.
pub fn link_count(anchors: &[GlyphAnchor], index: &CoallocationIndex) -> usize {
    let known: std::collections::HashSet<(batchlens_trace::JobId, batchlens_trace::MachineId)> =
        anchors.iter().map(|a| (a.job, a.machine)).collect();
    index
        .links()
        .iter()
        .filter(|l| known.contains(&(l.job_a, l.machine)) && known.contains(&(l.job_b, l.machine)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::{JobId, MachineId};

    fn anchor(job: u32, machine: u32, x: f64, y: f64) -> GlyphAnchor {
        GlyphAnchor {
            job: JobId::new(job),
            machine: MachineId::new(machine),
            position: Point::new(x, y),
        }
    }

    #[test]
    fn links_connect_shared_glyphs() {
        // Build a co-allocation index directly from a tiny dataset.
        use batchlens_trace::{
            BatchInstanceRecord, BatchTaskRecord, TaskId, TaskStatus, Timestamp,
            TraceDatasetBuilder,
        };
        let mut b = TraceDatasetBuilder::new();
        for job in [1u32, 2] {
            b.push_task(BatchTaskRecord {
                create_time: Timestamp::new(0),
                modify_time: Timestamp::new(100),
                job: JobId::new(job),
                task: TaskId::new(1),
                instance_count: 1,
                status: TaskStatus::Terminated,
                plan_cpu: 1.0,
                plan_mem: 0.5,
            });
            b.push_instance(BatchInstanceRecord {
                start_time: Timestamp::new(0),
                end_time: Timestamp::new(100),
                job: JobId::new(job),
                task: TaskId::new(1),
                seq: 0,
                total: 1,
                machine: MachineId::new(5),
                status: TaskStatus::Terminated,
                cpu_avg: 0.1,
                cpu_max: 0.2,
                mem_avg: 0.1,
                mem_max: 0.2,
            });
        }
        let ds = b.build().unwrap();
        let index = CoallocationIndex::at(&ds, Timestamp::new(50));
        assert_eq!(index.len(), 1);

        let anchors = vec![anchor(1, 5, 100.0, 100.0), anchor(2, 5, 300.0, 200.0)];
        let links = build_links(&anchors, &index);
        assert_eq!(links.len(), 1);
        if let Node::Line { from, to, style } = &links[0] {
            assert_eq!(*from, (100.0, 100.0));
            assert_eq!(*to, (300.0, 200.0));
            assert_eq!(style.dash, Stroke::Dotted);
        } else {
            panic!("not a line");
        }
    }

    #[test]
    fn missing_anchor_drops_link() {
        use batchlens_trace::{
            BatchInstanceRecord, BatchTaskRecord, TaskId, TaskStatus, Timestamp,
            TraceDatasetBuilder,
        };
        let mut b = TraceDatasetBuilder::new();
        for job in [1u32, 2] {
            b.push_task(BatchTaskRecord {
                create_time: Timestamp::new(0),
                modify_time: Timestamp::new(100),
                job: JobId::new(job),
                task: TaskId::new(1),
                instance_count: 1,
                status: TaskStatus::Terminated,
                plan_cpu: 1.0,
                plan_mem: 0.5,
            });
            b.push_instance(BatchInstanceRecord {
                start_time: Timestamp::new(0),
                end_time: Timestamp::new(100),
                job: JobId::new(job),
                task: TaskId::new(1),
                seq: 0,
                total: 1,
                machine: MachineId::new(5),
                status: TaskStatus::Terminated,
                cpu_avg: 0.1,
                cpu_max: 0.2,
                mem_avg: 0.1,
                mem_max: 0.2,
            });
        }
        let ds = b.build().unwrap();
        let index = CoallocationIndex::at(&ds, Timestamp::new(50));
        // Only job 1's anchor known.
        let anchors = vec![anchor(1, 5, 100.0, 100.0)];
        assert_eq!(link_count(&anchors, &index), 0);
    }

    #[test]
    fn no_shared_machines_no_links() {
        let index = CoallocationIndex::default();
        assert_eq!(build_links(&[], &index).len(), 0);
    }
}
