//! The multi line chart (paper Fig 2) with start/end annotation lines and
//! the brushed detail view.
//!
//! Plots every node's metric series for one job. Green vertical rules mark
//! per-node start times; per-task colored rules mark end times (bundled into
//! clusters). The detail view colors each node's line by its task.

use batchlens_analytics::aggregate::JobMetricLines;
use batchlens_layout::color::{start_annotation_color, task_color};
use batchlens_layout::line::lttb;
use batchlens_layout::{Color, LinearScale};
use batchlens_trace::{TimeRange, Timestamp};

use crate::axis::{TickFormat, XAxis, YAxis};
use crate::scene::{Align, Node, Scene, Stroke, Style};

/// Renders a job's multi line chart for one metric.
#[derive(Debug, Clone, Copy)]
pub struct LineChart {
    width: f64,
    height: f64,
    margin: f64,
    /// Maximum points per line after simplification.
    point_budget: usize,
    /// When true, color each node's line by its task (the detail view);
    /// when false, draw all lines in one muted color (the overview).
    color_by_task: bool,
    show_annotations: bool,
}

impl LineChart {
    /// A line chart for the given viewport.
    pub fn new(width: f64, height: f64) -> Self {
        LineChart {
            width,
            height,
            margin: 40.0,
            point_budget: 240,
            color_by_task: false,
            show_annotations: true,
        }
    }

    /// Overview style: muted single-color lines (Fig 2(a)).
    #[must_use]
    pub fn overview(mut self) -> Self {
        self.color_by_task = false;
        self
    }

    /// Detail style: lines colored per task (Fig 2(b)).
    #[must_use]
    pub fn detail(mut self) -> Self {
        self.color_by_task = true;
        self
    }

    /// Toggles annotation rules (builder).
    #[must_use]
    pub fn annotations(mut self, show: bool) -> Self {
        self.show_annotations = show;
        self
    }

    /// Renders the line chart over the given time window.
    pub fn render(&self, lines: &JobMetricLines, window: &TimeRange) -> Scene {
        let mut scene = Scene::new(self.width, self.height);
        let plot_left = self.margin;
        let plot_right = self.width - self.margin / 2.0;
        let plot_top = self.margin / 2.0;
        let plot_bottom = self.height - self.margin;

        let x = LinearScale::new(
            (
                window.start().seconds() as f64,
                window.end().seconds() as f64,
            ),
            (plot_left, plot_right),
        )
        .clamped();
        // Utilization axis 0..1, inverted for SVG (0 at bottom).
        let y = LinearScale::new((0.0, 1.0), (plot_bottom, plot_top));

        let mut root = Vec::new();

        // Axes (shared helpers): time on x, 0–100 % utilization on y.
        root.extend(
            XAxis {
                scale: x,
                y: plot_bottom,
                top: plot_top,
                ticks: 6,
                format: TickFormat::Hours,
                grid: false,
            }
            .render(),
        );
        root.extend(
            YAxis {
                scale: y,
                x: plot_left,
                right: plot_right,
                ticks: 2,
                format: TickFormat::Percent,
                grid: true,
            }
            .render(),
        );
        root.push(Node::Text {
            x: (plot_left + plot_right) / 2.0,
            y: self.height - 4.0,
            text: format!("{} — {}", lines.job, lines.metric.label()),
            size: 11.0,
            align: Align::Middle,
            color: Color::rgb(40, 40, 40),
        });

        // Annotation rules first (behind the lines).
        if self.show_annotations {
            for line in &lines.lines {
                if window.contains(line.start) {
                    root.push(Node::Line {
                        from: (x.scale(line.start.seconds() as f64), plot_top),
                        to: (x.scale(line.start.seconds() as f64), plot_bottom),
                        style: Style::stroked(start_annotation_color().with_alpha(120), 0.8),
                    });
                }
            }
            for (ti, task) in lines.tasks().into_iter().enumerate() {
                let color = task_color(ti).with_alpha(150);
                for line in lines.lines.iter().filter(|l| l.task == task) {
                    if window.contains(line.end) {
                        root.push(Node::Line {
                            from: (x.scale(line.end.seconds() as f64), plot_top),
                            to: (x.scale(line.end.seconds() as f64), plot_bottom),
                            style: Style::stroked(color, 0.8).dash(Stroke::Dashed),
                        });
                    }
                }
            }
        }

        // Node lines.
        let task_index = |task| lines.tasks().iter().position(|&t| t == task).unwrap_or(0);
        for line in &lines.lines {
            let raw: Vec<(f64, f64)> = line
                .series
                .iter()
                .map(|(t, v)| (x.scale(t.seconds() as f64), y.scale(v)))
                .collect();
            if raw.len() < 2 {
                continue;
            }
            let simplified = lttb(&raw, self.point_budget);
            let color = if self.color_by_task {
                task_color(task_index(line.task)).with_alpha(200)
            } else {
                Color::rgb(70, 110, 170).with_alpha(110)
            };
            root.push(Node::Polyline {
                points: simplified,
                style: Style::stroked(color, 1.0),
            });
        }

        scene.push(Node::group_at((0.0, 0.0), root));
        scene
    }
}

/// Clamps a timestamp display into a window; used by dashboards for titles.
pub fn clamp_to_window(t: Timestamp, window: &TimeRange) -> Timestamp {
    window.clamp(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;
    use batchlens_trace::Metric;

    fn lines() -> (JobMetricLines, TimeRange) {
        let ds = scenario::fig2_sample(1).run().unwrap();
        let window = ds.span().unwrap();
        let l = JobMetricLines::build(&ds, scenario::JOB_7399, Metric::Cpu, &window).unwrap();
        (l, window)
    }

    #[test]
    fn overview_draws_a_polyline_per_node() {
        let (l, window) = lines();
        let scene = LineChart::new(800.0, 300.0).overview().render(&l, &window);
        // 20 node lines.
        assert_eq!(scene.counts().polylines, 20);
    }

    #[test]
    fn annotations_present_and_toggleable() {
        let (l, window) = lines();
        let with = LineChart::new(800.0, 300.0)
            .render(&l, &window)
            .counts()
            .lines;
        let without = LineChart::new(800.0, 300.0)
            .annotations(false)
            .render(&l, &window)
            .counts()
            .lines;
        // Annotations add vertical rules (20 starts + 20 ends) on top of the
        // axis lines/ticks, so enabling them strictly increases line count.
        assert_eq!(with - without, 40);
    }

    #[test]
    fn detail_colors_differ_by_task() {
        let (l, window) = lines();
        let scene = LineChart::new(800.0, 300.0).detail().render(&l, &window);
        // Collect distinct polyline stroke colors.
        let mut colors = std::collections::HashSet::new();
        fn walk(n: &Node, set: &mut std::collections::HashSet<String>) {
            match n {
                Node::Group { children, .. } => {
                    for c in children {
                        walk(c, set);
                    }
                }
                Node::Polyline { style, .. } => {
                    if let Some(s) = style.stroke {
                        set.insert(s.to_hex());
                    }
                }
                _ => {}
            }
        }
        for n in &scene.root {
            walk(n, &mut colors);
        }
        // Two tasks → at least two line colors.
        assert!(
            colors.len() >= 2,
            "expected per-task colors, got {colors:?}"
        );
    }

    #[test]
    fn brushed_window_restricts_rendering() {
        let ds = scenario::fig2_sample(2).run().unwrap();
        let full = ds.span().unwrap();
        let _full_lines =
            JobMetricLines::build(&ds, scenario::JOB_7399, Metric::Cpu, &full).unwrap();
        // Brush to the first quarter.
        let detail_win = TimeRange::new(
            full.start(),
            full.start() + batchlens_trace::TimeDelta::seconds(full.duration().as_seconds() / 4),
        )
        .unwrap();
        let l2 = JobMetricLines::build(&ds, scenario::JOB_7399, Metric::Cpu, &detail_win).unwrap();
        let scene = LineChart::new(800.0, 300.0)
            .detail()
            .render(&l2, &detail_win);
        assert!(scene.counts().polylines > 0);
    }

    #[test]
    fn empty_window_still_produces_axes() {
        let (l, _) = lines();
        let empty = TimeRange::new(Timestamp::new(0), Timestamp::new(1)).unwrap();
        let scene = LineChart::new(400.0, 200.0).render(&l, &empty);
        assert!(scene.counts().lines >= 2);
    }
}
