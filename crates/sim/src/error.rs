use std::fmt;

use batchlens_trace::TraceError;

/// Error type for simulation configuration and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Which parameter.
        parameter: &'static str,
        /// What was wrong with it.
        message: String,
    },
    /// A scripted job spec was inconsistent (e.g. dependency cycle).
    InvalidSpec {
        /// Description of the inconsistency.
        message: String,
    },
    /// The produced records failed trace-level validation.
    Trace(TraceError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { parameter, message } => {
                write!(f, "invalid config parameter {parameter}: {message}")
            }
            SimError::InvalidSpec { message } => write!(f, "invalid job spec: {message}"),
            SimError::Trace(e) => write!(f, "trace validation failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SimError::InvalidConfig {
            parameter: "machines",
            message: "must be > 0".into(),
        };
        assert!(e.to_string().contains("machines"));
        let e = SimError::InvalidSpec {
            message: "cycle a->b->a".into(),
        };
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn trace_errors_convert_and_chain() {
        use std::error::Error as _;
        let inner = TraceError::InvalidResolution { seconds: 0 };
        let e: SimError = inner.clone().into();
        assert_eq!(e, SimError::Trace(inner));
        assert!(e.source().is_some());
    }
}
