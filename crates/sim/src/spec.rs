use batchlens_trace::{JobId, MachineId, Timestamp};
use serde::{Deserialize, Serialize};

use crate::dag::TaskDag;
use crate::{Anomaly, FootprintProfile, SimError};

/// A fully scripted batch job: the mechanism scenarios use to plant the
/// paper's named jobs (`job_7901`, `job_11939`, …) with exact timing,
/// placement and anomaly behaviour on top of the random background workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The job's identity (must be unique in the run).
    pub job: JobId,
    /// Submission time; task start offsets are relative to this.
    pub submit: Timestamp,
    /// The job's tasks, indexed by the DAG.
    pub tasks: Vec<TaskSpec>,
    /// Dependency structure over `tasks` (same length).
    pub dag: TaskDag,
    /// Optional anomaly overriding the tasks' footprints.
    pub anomaly: Option<Anomaly>,
    /// When set, instances are placed round-robin over exactly these
    /// machines instead of going through the scheduler — used to co-allocate
    /// jobs on shared nodes (Fig 3(b)'s dotted links) and to park anomalous
    /// jobs on "busier" machines.
    pub pinned_machines: Option<Vec<MachineId>>,
}

/// One task inside a [`JobSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Number of instances.
    pub instances: u32,
    /// Nominal duration in seconds (before jitter).
    pub duration: i64,
    /// Load contribution of each instance.
    pub footprint: FootprintProfile,
    /// Max absolute start jitter per instance, seconds. The paper's Fig 2
    /// shows starts "bundling into one cluster": jitter is small but nonzero.
    pub start_jitter: i64,
    /// Max absolute end jitter per instance, seconds. Ends bundle per task.
    pub end_jitter: i64,
}

impl TaskSpec {
    /// A steady task with default small jitter.
    pub fn steady(instances: u32, duration: i64, cpu: f64, mem: f64, disk: f64) -> Self {
        TaskSpec {
            instances,
            duration,
            footprint: FootprintProfile::steady(cpu, mem, disk),
            start_jitter: 5,
            end_jitter: 30,
        }
    }
}

impl JobSpec {
    /// A single-task job (the 75 % case) with parallel instances.
    pub fn single_task(job: JobId, submit: Timestamp, task: TaskSpec) -> Self {
        JobSpec {
            job,
            submit,
            dag: TaskDag::parallel(1),
            tasks: vec![task],
            anomaly: None,
            pinned_machines: None,
        }
    }

    /// A job of `tasks.len()` parallel tasks (same start, per-task ends —
    /// the `job_6639` pattern of Fig 3(a)).
    pub fn parallel_tasks(job: JobId, submit: Timestamp, tasks: Vec<TaskSpec>) -> Self {
        JobSpec {
            job,
            submit,
            dag: TaskDag::parallel(tasks.len()),
            tasks,
            anomaly: None,
            pinned_machines: None,
        }
    }

    /// A job whose tasks form a chain (staged ends — the two-cluster end
    /// annotation pattern of Fig 2).
    pub fn chained_tasks(job: JobId, submit: Timestamp, tasks: Vec<TaskSpec>) -> Self {
        JobSpec {
            job,
            submit,
            dag: TaskDag::chain(tasks.len()),
            tasks,
            anomaly: None,
            pinned_machines: None,
        }
    }

    /// Attaches an anomaly (builder style).
    #[must_use]
    pub fn with_anomaly(mut self, anomaly: Anomaly) -> Self {
        self.anomaly = Some(anomaly);
        self
    }

    /// Pins placement to the given machines (builder style).
    #[must_use]
    pub fn pinned_to(mut self, machines: Vec<MachineId>) -> Self {
        self.pinned_machines = Some(machines);
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSpec`] when the DAG and task list disagree,
    /// a task has zero instances or a non-positive duration, or the pinned
    /// machine list is empty.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.tasks.is_empty() {
            return Err(SimError::InvalidSpec {
                message: format!("{} has no tasks", self.job),
            });
        }
        if self.dag.len() != self.tasks.len() {
            return Err(SimError::InvalidSpec {
                message: format!(
                    "{}: dag covers {} tasks but spec has {}",
                    self.job,
                    self.dag.len(),
                    self.tasks.len()
                ),
            });
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.instances == 0 {
                return Err(SimError::InvalidSpec {
                    message: format!("{} task {i} has zero instances", self.job),
                });
            }
            if t.duration <= 0 {
                return Err(SimError::InvalidSpec {
                    message: format!("{} task {i} has non-positive duration", self.job),
                });
            }
            if t.start_jitter < 0 || t.end_jitter < 0 {
                return Err(SimError::InvalidSpec {
                    message: format!("{} task {i} has negative jitter", self.job),
                });
            }
        }
        if let Some(pins) = &self.pinned_machines {
            if pins.is_empty() {
                return Err(SimError::InvalidSpec {
                    message: format!("{} pinned to an empty machine list", self.job),
                });
            }
        }
        self.dag.topo_order()?;
        Ok(())
    }

    /// Total instance count across tasks.
    pub fn instance_count(&self) -> u32 {
        self.tasks.iter().map(|t| t.instances).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::parallel_tasks(
            JobId::new(6639),
            Timestamp::new(47000),
            vec![
                TaskSpec::steady(4, 600, 0.1, 0.1, 0.05),
                TaskSpec::steady(3, 900, 0.1, 0.1, 0.05),
            ],
        )
    }

    #[test]
    fn constructors_produce_valid_specs() {
        spec().validate().unwrap();
        JobSpec::single_task(
            JobId::new(8124),
            Timestamp::ZERO,
            TaskSpec::steady(5, 300, 0.05, 0.05, 0.02),
        )
        .validate()
        .unwrap();
        JobSpec::chained_tasks(
            JobId::new(7399),
            Timestamp::ZERO,
            vec![TaskSpec::steady(2, 100, 0.1, 0.1, 0.1); 3],
        )
        .validate()
        .unwrap();
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = spec();
        s.tasks.clear();
        s.dag = TaskDag::parallel(0);
        assert!(s.validate().is_err());

        let mut s = spec();
        s.tasks[0].instances = 0;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.tasks[1].duration = 0;
        assert!(s.validate().is_err());

        let mut s = spec();
        s.dag = TaskDag::parallel(5);
        assert!(s.validate().is_err());

        let s = spec().pinned_to(vec![]);
        assert!(s.validate().is_err());
    }

    #[test]
    fn builder_methods_attach() {
        let s = spec()
            .with_anomaly(Anomaly::end_spike())
            .pinned_to(vec![MachineId::new(1), MachineId::new(2)]);
        assert!(s.anomaly.is_some());
        assert_eq!(s.pinned_machines.as_ref().unwrap().len(), 2);
        assert_eq!(s.instance_count(), 7);
    }
}
