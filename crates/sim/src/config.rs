use batchlens_trace::{TimeDelta, TimeRange, Timestamp};
use serde::{Deserialize, Serialize};

use crate::{SimError, WorkloadModel};

/// Complete configuration of a simulation run.
///
/// Use [`SimConfig::paper_scale`] for the full 1300-machine / 24-hour setup
/// matching the Alibaba v2017 trace, or [`SimConfig::small`] for fast tests.
/// All knobs are public data (C-STRUCT in the builder-vs-data tradeoff: the
/// config is a passive parameter bundle that scenarios tweak freely).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; equal seeds give bit-identical datasets.
    pub seed: u64,
    /// Number of machines in the cluster.
    pub machines: u32,
    /// Simulated window (usually `[0, 86400)`).
    pub window: TimeRange,
    /// Sampling period of the `server_usage` table. The paper quotes 1 s;
    /// defaults keep 60 s so default artifacts stay small. Figures are
    /// resolution-independent.
    pub usage_resolution: TimeDelta,
    /// Reporting grid of the batch tables (paper: 300 s).
    pub batch_resolution: TimeDelta,
    /// Statistical workload model for background jobs.
    pub workload: WorkloadModel,
    /// Mean baseline utilization each machine idles at, per metric
    /// `[cpu, mem, disk]`.
    pub baseline: [f64; 3],
    /// Std-dev of the per-sample Gaussian noise added to every usage value.
    pub noise_sigma: f64,
    /// Half-width of the static per-machine baseline offset ("personality"):
    /// machines idle at `baseline ± personality_spread`.
    pub personality_spread: f64,
    /// Per-step std-dev of the AR(1) baseline wander of each machine.
    pub walk_sigma: f64,
    /// Scheduler selection.
    pub scheduler: SchedulerKind,
    /// Stagger each machine's usage-reporting grid by a deterministic
    /// per-machine offset inside one `usage_resolution` period, as in the
    /// real trace — machines do **not** report on a globally aligned grid.
    /// On: the cluster-wide union grid has ~`usage_resolution` distinct
    /// timestamps per period instead of one, which is what timeline
    /// aggregation must actually sweep in production. Off: the pre-PR-3
    /// aligned grid (artificially easy for per-grid-point algorithms).
    pub stagger_reporting: bool,
}

/// Which placement policy the engine uses for background jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Place each instance on the machine with the fewest running instances.
    LeastLoaded,
    /// Cycle through machines.
    RoundRobin,
    /// Fill the currently busiest machine that still has headroom.
    Packing,
}

impl SimConfig {
    /// Full paper-scale configuration: 1300 machines, 24 hours.
    pub fn paper_scale(seed: u64) -> Self {
        SimConfig {
            seed,
            machines: 1300,
            window: TimeRange::full_day(),
            usage_resolution: TimeDelta::MINUTE,
            batch_resolution: TimeDelta::BATCH_RESOLUTION,
            workload: WorkloadModel::alibaba_v2017(),
            baseline: [0.15, 0.20, 0.10],
            noise_sigma: 0.015,
            personality_spread: 0.03,
            walk_sigma: 0.008,
            scheduler: SchedulerKind::LeastLoaded,
            stagger_reporting: true,
        }
    }

    /// Small configuration for unit tests and doctests: 20 machines, 2 hours.
    pub fn small(seed: u64) -> Self {
        SimConfig {
            machines: 20,
            window: TimeRange::new(Timestamp::ZERO, Timestamp::new(7200)).expect("static window"),
            ..SimConfig::paper_scale(seed)
        }
    }

    /// Medium configuration for benches: 200 machines, 6 hours.
    pub fn medium(seed: u64) -> Self {
        SimConfig {
            machines: 200,
            window: TimeRange::new(Timestamp::ZERO, Timestamp::new(6 * 3600))
                .expect("static window"),
            ..SimConfig::paper_scale(seed)
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.machines == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "machines",
                message: "must be at least 1".into(),
            });
        }
        if !self.usage_resolution.is_positive() {
            return Err(SimError::InvalidConfig {
                parameter: "usage_resolution",
                message: format!("must be positive, got {}", self.usage_resolution),
            });
        }
        if !self.batch_resolution.is_positive() {
            return Err(SimError::InvalidConfig {
                parameter: "batch_resolution",
                message: format!("must be positive, got {}", self.batch_resolution),
            });
        }
        if self.window.is_empty() {
            return Err(SimError::InvalidConfig {
                parameter: "window",
                message: "must span positive time".into(),
            });
        }
        for (i, b) in self.baseline.iter().enumerate() {
            if !(0.0..=1.0).contains(b) {
                return Err(SimError::InvalidConfig {
                    parameter: "baseline",
                    message: format!("baseline[{i}] = {b} outside 0..=1"),
                });
            }
        }
        if !(0.0..=0.5).contains(&self.noise_sigma) {
            return Err(SimError::InvalidConfig {
                parameter: "noise_sigma",
                message: format!("{} outside 0..=0.5", self.noise_sigma),
            });
        }
        if !(0.0..=0.5).contains(&self.personality_spread) {
            return Err(SimError::InvalidConfig {
                parameter: "personality_spread",
                message: format!("{} outside 0..=0.5", self.personality_spread),
            });
        }
        if !(0.0..=0.1).contains(&self.walk_sigma) {
            return Err(SimError::InvalidConfig {
                parameter: "walk_sigma",
                message: format!("{} outside 0..=0.1", self.walk_sigma),
            });
        }
        self.workload.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::paper_scale(1).validate().unwrap();
        SimConfig::small(1).validate().unwrap();
        SimConfig::medium(1).validate().unwrap();
    }

    #[test]
    fn paper_scale_matches_trace_shape() {
        let cfg = SimConfig::paper_scale(0);
        assert_eq!(cfg.machines, 1300);
        assert_eq!(cfg.window.duration(), TimeDelta::DAY);
        assert_eq!(cfg.batch_resolution, TimeDelta::BATCH_RESOLUTION);
    }

    #[test]
    fn invalid_configs_are_named() {
        let mut cfg = SimConfig::small(0);
        cfg.machines = 0;
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig {
                parameter: "machines",
                ..
            })
        ));

        let mut cfg = SimConfig::small(0);
        cfg.usage_resolution = TimeDelta::ZERO;
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig {
                parameter: "usage_resolution",
                ..
            })
        ));

        let mut cfg = SimConfig::small(0);
        cfg.baseline = [0.2, 1.5, 0.1];
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig {
                parameter: "baseline",
                ..
            })
        ));

        let mut cfg = SimConfig::small(0);
        cfg.noise_sigma = 0.9;
        assert!(matches!(
            cfg.validate(),
            Err(SimError::InvalidConfig {
                parameter: "noise_sigma",
                ..
            })
        ));
    }
}
