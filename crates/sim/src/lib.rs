//! # batchlens-sim
//!
//! A seeded cloud-cluster **workload simulator** that produces Alibaba
//! cluster-trace-v2017-shaped datasets ([`batchlens_trace::TraceDataset`]).
//!
//! The BatchLens paper evaluates on the public Alibaba v2017 trace (1300
//! machines, 24 hours). That dump is not available in this environment, so —
//! per the reproduction's substitution rule — this crate implements the
//! closest synthetic equivalent that exercises the same code paths:
//!
//! * **Workload model** ([`workload`]) calibrated to the paper's Section II
//!   statistics: ~75 % of jobs have a single task, ~94 % of tasks have
//!   multiple instances, each instance runs on exactly one machine and
//!   machines run many instances concurrently.
//! * **Task dependency DAGs** ([`dag`]) — downstream tasks start only after
//!   their parents complete, producing the multi-end-timestamp annotation
//!   clusters visible in the paper's Fig 2.
//! * **Pluggable schedulers** ([`scheduler`]) — least-loaded, round-robin and
//!   packing placement.
//! * **Usage synthesis** ([`shape`], [`Simulation`]) — per-instance
//!   utilization footprints (ramps, plateaus, end-of-job spikes, thrashing
//!   collapse) are summed onto per-machine baseline load plus noise.
//! * **Anomaly injection** ([`anomaly`]) — the ground-truth behaviours behind
//!   the paper's case study: end-of-job spike (Fig 3(b)), thrashing
//!   (Fig 3(c)), mass shutdown/relaunch (timestamp 44100), stragglers and
//!   memory leaks.
//! * **Scenario presets** ([`scenario`]) — `fig3a`, `fig3b`, `fig3c` windows
//!   and the full [`scenario::paper_day`] 24-hour trace containing all three
//!   regimes at the paper's exact timestamps.
//!
//! Everything is deterministic given a seed.
//!
//! ## Example
//!
//! ```
//! use batchlens_sim::{SimConfig, Simulation};
//!
//! let cfg = SimConfig::small(42); // 20 machines, 2 h — fast for tests
//! let ds = Simulation::new(cfg).run()?;
//! assert!(ds.job_count() > 0);
//! assert!(ds.machine_count() >= 20);
//! # Ok::<(), batchlens_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
mod config;
pub mod dag;
mod engine;
mod error;
pub mod failure;
pub mod rng;
pub mod scenario;
pub mod scheduler;
pub mod shape;
mod spec;
pub mod workload;

pub use anomaly::Anomaly;
pub use config::{SchedulerKind, SimConfig};
pub use engine::Simulation;
pub use error::SimError;
pub use failure::{CascadeModel, CrashRestartRegime, CrashStats, MachineFailure, MonitorCrash};
pub use scheduler::{LeastLoaded, Packing, RoundRobin, Scheduler};
pub use shape::{FootprintProfile, Shape};
pub use spec::{JobSpec, TaskSpec};
pub use workload::WorkloadModel;
