//! Distribution sampling built from uniform draws.
//!
//! The workspace's dependency policy allows `rand` but not `rand_distr`, so
//! the handful of distributions the workload model needs (exponential,
//! Poisson, normal, log-normal, geometric, weighted choice) are implemented
//! here via inverse-CDF / Box–Muller / Knuth methods. All of them take a
//! generic [`rand::Rng`], so the whole simulator is deterministic under
//! `StdRng::seed_from_u64`.

use rand::Rng;

/// Samples `Exp(rate)`; mean is `1/rate`.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive (programming error — rates come
/// from validated configs).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
    // Inverse CDF; 1 - u avoids ln(0).
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// Samples `Poisson(lambda)` by Knuth's product method (fine for the small
/// lambdas the workload model uses) with a normal approximation above 30.
///
/// # Panics
///
/// Panics if `lambda` is negative or NaN.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0,
        "poisson lambda must be non-negative, got {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let n = normal(rng, lambda, lambda.sqrt());
        return n.round().max(0.0) as u64;
    }
    let limit = (-lambda).exp();
    let mut product: f64 = rng.random();
    let mut count = 0u64;
    while product > limit {
        product *= rng.random::<f64>();
        count += 1;
    }
    count
}

/// Samples `N(mean, std_dev)` by the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Samples `LogNormal(mu, sigma)` (parameters of the underlying normal).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples a geometric count of failures before the first success,
/// `p ∈ (0, 1]`; returns values in `0..`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1]`.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(
        p > 0.0 && p <= 1.0,
        "geometric p must be in (0, 1], got {p}"
    );
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// Picks an index with probability proportional to `weights[i]`.
/// Zero-total or empty weights fall back to uniform choice (empty → `None`).
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    if weights.is_empty() {
        return None;
    }
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return Some(rng.random_range(0..weights.len()));
    }
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            target -= w;
            if target <= 0.0 {
                return Some(i);
            }
        }
    }
    Some(weights.len() - 1)
}

/// Uniform sample in `[lo, hi)`; returns `lo` when the interval is empty.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    lo + rng.random::<f64>() * (hi - lo)
}

/// Jitters `value` by a multiplicative factor in `[1-spread, 1+spread]`.
pub fn jitter<R: Rng + ?Sized>(rng: &mut R, value: f64, spread: f64) -> f64 {
    value * (1.0 + uniform(rng, -spread, spread))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBA7C4)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_converges_small_and_large_lambda() {
        let mut r = rng();
        for lambda in [0.5, 4.0, 50.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| poisson(&mut r, lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.08,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = rng();
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.08, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(log_normal(&mut r, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn geometric_mean_converges() {
        let mut r = rng();
        let p = 0.25;
        let n = 30_000;
        let mean: f64 = (0..n).map(|_| geometric(&mut r, p) as f64).sum::<f64>() / n as f64;
        let expected = (1.0 - p) / p; // 3.0
        assert!((mean - expected).abs() < 0.15, "mean {mean}");
        assert_eq!(geometric(&mut r, 1.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(weighted_index(&mut r, &[]), None);
        // All-zero weights: uniform fallback still returns an index.
        assert!(weighted_index(&mut r, &[0.0, 0.0]).is_some());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = uniform(&mut r, 2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
        }
        assert_eq!(uniform(&mut r, 3.0, 3.0), 3.0);
        assert_eq!(uniform(&mut r, 5.0, 2.0), 5.0);
    }

    #[test]
    fn determinism_under_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(exponential(&mut a, 1.0), exponential(&mut b, 1.0));
        }
    }
}
