//! Ground-truth anomaly injection.
//!
//! The paper's case study identifies anomalous behaviours *anecdotally* in
//! the real trace; the simulator plants them *deliberately*, which is what
//! makes the reproduction testable: detectors in `batchlens-analytics` must
//! find exactly these injected behaviours, and the regenerated Fig 3 views
//! must show them.

use batchlens_trace::{JobId, Timestamp};
use serde::{Deserialize, Serialize};

use crate::{FootprintProfile, Shape};

/// A per-job anomalous behaviour, attached to a [`crate::JobSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Anomaly {
    /// Fig 3(b): CPU and memory climb through the run and **peak when the
    /// job execution is over**, then drop back slowly. ("a notable spike
    /// emerges for CPU and memory usage after Job job_7901 is scheduled…
    /// Both metrics reach the peak of the utilization when the job execution
    /// is over, followed by a slow drop to the normal level.")
    EndSpike {
        /// CPU contribution at the peak.
        cpu_peak: f64,
        /// Memory contribution at the peak.
        mem_peak: f64,
    },
    /// Fig 3(c): virtual-memory thrashing. Memory stays pinned while CPU
    /// utilization *decreases* and the system stops making progress.
    Thrashing {
        /// Pinned memory contribution.
        mem_level: f64,
        /// CPU contribution at job start.
        cpu_initial: f64,
        /// CPU contribution the collapse decays toward.
        cpu_floor: f64,
    },
    /// Memory grows linearly through the run (leak).
    MemoryLeak {
        /// Memory contribution at start.
        mem_from: f64,
        /// Memory contribution at end.
        mem_to: f64,
    },
    /// One instance per task runs `factor`× the nominal duration,
    /// de-bundling that task's end annotation cluster.
    Straggler {
        /// Duration multiplier for the straggling instance (> 1).
        factor: f64,
    },
}

impl Anomaly {
    /// The default Fig 3(b) spike used by scenarios.
    pub fn end_spike() -> Self {
        Anomaly::EndSpike {
            cpu_peak: 0.55,
            mem_peak: 0.45,
        }
    }

    /// The default Fig 3(c) thrashing used by scenarios.
    pub fn thrashing() -> Self {
        Anomaly::Thrashing {
            mem_level: 0.65,
            cpu_initial: 0.55,
            cpu_floor: 0.06,
        }
    }

    /// Rewrites a task footprint according to the anomaly, if the anomaly
    /// works through footprints. `Straggler` leaves footprints alone (it
    /// perturbs durations instead — see [`Anomaly::straggler_factor`]).
    pub fn apply_to_footprint(&self, base: FootprintProfile) -> FootprintProfile {
        match *self {
            Anomaly::EndSpike { cpu_peak, mem_peak } => {
                FootprintProfile::end_spike(cpu_peak, mem_peak)
            }
            Anomaly::Thrashing {
                mem_level,
                cpu_initial,
                cpu_floor,
            } => FootprintProfile::thrashing(mem_level, cpu_initial, cpu_floor),
            Anomaly::MemoryLeak { mem_from, mem_to } => FootprintProfile {
                mem: Shape::Linear {
                    from: mem_from,
                    to: mem_to,
                },
                ..base
            },
            Anomaly::Straggler { .. } => base,
        }
    }

    /// For `Straggler`, the duration multiplier applied to one instance per
    /// task; `None` otherwise.
    pub fn straggler_factor(&self) -> Option<f64> {
        match *self {
            Anomaly::Straggler { factor } => Some(factor),
            _ => None,
        }
    }

    /// Short machine-readable kind name (used in reports and test asserts).
    pub fn kind(&self) -> &'static str {
        match self {
            Anomaly::EndSpike { .. } => "end_spike",
            Anomaly::Thrashing { .. } => "thrashing",
            Anomaly::MemoryLeak { .. } => "memory_leak",
            Anomaly::Straggler { .. } => "straggler",
        }
    }
}

/// A cluster-level scripted event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ClusterEvent {
    /// The paper's timestamp-44100 event: every running job is terminated
    /// (status `Cancelled`, end truncated to `at`) except the survivors.
    /// ("at Timestamp 44100, all of the preceding nodes on the system are
    /// shut down, and only Job job_11599 is left on the entire platform.")
    MassShutdown {
        /// When the shutdown happens.
        at: Timestamp,
        /// Jobs that keep running.
        survivors: Vec<JobId>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_spike_rewrites_cpu_and_mem() {
        let base = FootprintProfile::steady(0.1, 0.1, 0.1);
        let f = Anomaly::end_spike().apply_to_footprint(base);
        assert!(f.has_tail());
        assert!(f.cpu.max() > 0.5);
    }

    #[test]
    fn thrashing_pins_memory_and_collapses_cpu() {
        let base = FootprintProfile::steady(0.1, 0.1, 0.1);
        let f = Anomaly::thrashing().apply_to_footprint(base);
        assert!(f.mem.eval(0.8) > 0.6);
        assert!(f.cpu.eval(0.9) < f.cpu.eval(0.05));
    }

    #[test]
    fn memory_leak_only_touches_memory() {
        let base = FootprintProfile::steady(0.1, 0.1, 0.1);
        let f = Anomaly::MemoryLeak {
            mem_from: 0.05,
            mem_to: 0.8,
        }
        .apply_to_footprint(base);
        assert_eq!(f.cpu, base.cpu);
        assert_eq!(f.disk, base.disk);
        assert!(f.mem.eval(1.0) > 0.75);
    }

    #[test]
    fn straggler_exposes_factor_not_footprint() {
        let base = FootprintProfile::steady(0.1, 0.1, 0.1);
        let a = Anomaly::Straggler { factor: 4.0 };
        assert_eq!(a.apply_to_footprint(base), base);
        assert_eq!(a.straggler_factor(), Some(4.0));
        assert_eq!(Anomaly::end_spike().straggler_factor(), None);
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Anomaly::end_spike().kind(), "end_spike");
        assert_eq!(Anomaly::thrashing().kind(), "thrashing");
    }
}
