//! Statistical workload model calibrated to the Alibaba v2017 shape.
//!
//! The paper's Section II gives the distributional facts the generator must
//! hit: **75 % of batch jobs contain only one task** and **94 % of tasks have
//! multiple instances**. Job arrivals are Poisson; task durations are
//! log-normal (heavy-tailed, as in the published analyses of the trace).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng as dist;
use crate::SimError;

/// Parameters of the background workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Mean job arrivals per hour.
    pub jobs_per_hour: f64,
    /// Probability that a job has exactly one task (paper: 0.75).
    pub single_task_probability: f64,
    /// Geometric `p` for extra tasks beyond the first two in multi-task jobs.
    pub extra_task_p: f64,
    /// Maximum tasks per job.
    pub max_tasks: u32,
    /// Probability that a task has exactly one instance (paper: 1 − 0.94).
    pub single_instance_probability: f64,
    /// Log-normal `mu` of the instance count of multi-instance tasks.
    pub instance_count_mu: f64,
    /// Log-normal `sigma` of the instance count.
    pub instance_count_sigma: f64,
    /// Maximum instances per task.
    pub max_instances: u32,
    /// Log-normal `mu` of task duration in seconds.
    pub duration_mu: f64,
    /// Log-normal `sigma` of task duration.
    pub duration_sigma: f64,
    /// Minimum task duration in seconds.
    pub min_duration: i64,
    /// Maximum task duration in seconds.
    pub max_duration: i64,
    /// Probability that a multi-task job has a dependency chain (vs parallel
    /// tasks); chained tasks start when their parent ends.
    pub chain_probability: f64,
    /// Mean steady CPU footprint of an instance (plateau contribution).
    pub mean_cpu_footprint: f64,
    /// Mean steady memory footprint of an instance.
    pub mean_mem_footprint: f64,
    /// Mean steady disk footprint of an instance.
    pub mean_disk_footprint: f64,
}

impl WorkloadModel {
    /// Calibration matching the paper's Section II statistics.
    pub fn alibaba_v2017() -> Self {
        WorkloadModel {
            jobs_per_hour: 55.0,
            single_task_probability: 0.75,
            extra_task_p: 0.55,
            max_tasks: 8,
            single_instance_probability: 0.06,
            instance_count_mu: 2.1,
            instance_count_sigma: 0.9,
            max_instances: 96,
            duration_mu: 6.9, // e^6.9 ≈ 992 s ≈ 16.5 min median
            duration_sigma: 0.8,
            min_duration: 120,
            max_duration: 4 * 3600,
            chain_probability: 0.6,
            mean_cpu_footprint: 0.045,
            mean_mem_footprint: 0.035,
            mean_disk_footprint: 0.020,
        }
    }

    /// A light workload (fewer, smaller jobs) for low-utilization regimes.
    pub fn light() -> Self {
        WorkloadModel {
            jobs_per_hour: 25.0,
            instance_count_mu: 1.8,
            mean_cpu_footprint: 0.03,
            mean_mem_footprint: 0.025,
            mean_disk_footprint: 0.015,
            ..WorkloadModel::alibaba_v2017()
        }
    }

    /// A heavy workload for high-utilization regimes.
    pub fn heavy() -> Self {
        WorkloadModel {
            jobs_per_hour: 90.0,
            instance_count_mu: 2.4,
            mean_cpu_footprint: 0.08,
            mean_mem_footprint: 0.07,
            mean_disk_footprint: 0.03,
            ..WorkloadModel::alibaba_v2017()
        }
    }

    /// Validates all probabilities and ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        fn prob(name: &'static str, v: f64) -> Result<(), SimError> {
            if !(0.0..=1.0).contains(&v) {
                return Err(SimError::InvalidConfig {
                    parameter: name,
                    message: format!("{v} is not a probability"),
                });
            }
            Ok(())
        }
        prob("single_task_probability", self.single_task_probability)?;
        prob(
            "single_instance_probability",
            self.single_instance_probability,
        )?;
        prob("chain_probability", self.chain_probability)?;
        if !(self.extra_task_p > 0.0 && self.extra_task_p <= 1.0) {
            return Err(SimError::InvalidConfig {
                parameter: "extra_task_p",
                message: format!("{} outside (0, 1]", self.extra_task_p),
            });
        }
        if self.jobs_per_hour < 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "jobs_per_hour",
                message: "must be non-negative".into(),
            });
        }
        if self.max_tasks == 0 || self.max_instances == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "max_tasks/max_instances",
                message: "must be at least 1".into(),
            });
        }
        if self.min_duration <= 0 || self.max_duration < self.min_duration {
            return Err(SimError::InvalidConfig {
                parameter: "duration",
                message: format!(
                    "need 0 < min ({}) <= max ({})",
                    self.min_duration, self.max_duration
                ),
            });
        }
        Ok(())
    }

    /// Samples the number of tasks of a job.
    pub fn sample_task_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if rng.random::<f64>() < self.single_task_probability {
            1
        } else {
            let extra = dist::geometric(rng, self.extra_task_p) as u32;
            (2 + extra).min(self.max_tasks)
        }
    }

    /// Samples the number of instances of a task.
    pub fn sample_instance_count<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if rng.random::<f64>() < self.single_instance_probability {
            1
        } else {
            let n = dist::log_normal(rng, self.instance_count_mu, self.instance_count_sigma);
            (n.round() as u32).clamp(2, self.max_instances)
        }
    }

    /// Samples a task duration in seconds.
    pub fn sample_duration<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let d = dist::log_normal(rng, self.duration_mu, self.duration_sigma);
        (d.round() as i64).clamp(self.min_duration, self.max_duration)
    }

    /// Samples the number of job arrivals in a window of `hours`.
    pub fn sample_job_count<R: Rng + ?Sized>(&self, rng: &mut R, hours: f64) -> u64 {
        dist::poisson(rng, self.jobs_per_hour * hours.max(0.0))
    }

    /// Samples a steady footprint for one instance, jittered around the
    /// model's mean footprints.
    pub fn sample_footprint<R: Rng + ?Sized>(&self, rng: &mut R) -> crate::FootprintProfile {
        crate::FootprintProfile::steady(
            dist::jitter(rng, self.mean_cpu_footprint, 0.5).max(0.002),
            dist::jitter(rng, self.mean_mem_footprint, 0.5).max(0.002),
            dist::jitter(rng, self.mean_disk_footprint, 0.5).max(0.001),
        )
    }
}

impl Default for WorkloadModel {
    fn default() -> Self {
        WorkloadModel::alibaba_v2017()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn presets_validate() {
        WorkloadModel::alibaba_v2017().validate().unwrap();
        WorkloadModel::light().validate().unwrap();
        WorkloadModel::heavy().validate().unwrap();
    }

    #[test]
    fn task_count_fraction_matches_paper() {
        let m = WorkloadModel::alibaba_v2017();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let single = (0..n)
            .filter(|_| m.sample_task_count(&mut rng) == 1)
            .count();
        let frac = single as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "single-task fraction {frac}");
    }

    #[test]
    fn instance_count_fraction_matches_paper() {
        let m = WorkloadModel::alibaba_v2017();
        let mut rng = StdRng::seed_from_u64(12);
        let n = 40_000;
        let multi = (0..n)
            .filter(|_| m.sample_instance_count(&mut rng) > 1)
            .count();
        let frac = multi as f64 / n as f64;
        assert!((frac - 0.94).abs() < 0.02, "multi-instance fraction {frac}");
    }

    #[test]
    fn durations_respect_bounds() {
        let m = WorkloadModel::alibaba_v2017();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..5000 {
            let d = m.sample_duration(&mut rng);
            assert!(d >= m.min_duration && d <= m.max_duration);
        }
    }

    #[test]
    fn job_count_scales_with_hours() {
        let m = WorkloadModel::alibaba_v2017();
        let mut rng = StdRng::seed_from_u64(14);
        let trials = 300;
        let mean: f64 = (0..trials)
            .map(|_| m.sample_job_count(&mut rng, 24.0) as f64)
            .sum::<f64>()
            / trials as f64;
        let expected = m.jobs_per_hour * 24.0;
        assert!(
            (mean - expected).abs() < expected * 0.05,
            "mean {mean} vs {expected}"
        );
        assert_eq!(m.sample_job_count(&mut rng, 0.0), 0);
    }

    #[test]
    fn invalid_models_are_rejected() {
        let mut m = WorkloadModel::alibaba_v2017();
        m.single_task_probability = 1.2;
        assert!(m.validate().is_err());

        let mut m = WorkloadModel::alibaba_v2017();
        m.min_duration = 0;
        assert!(m.validate().is_err());

        let mut m = WorkloadModel::alibaba_v2017();
        m.max_duration = 10;
        m.min_duration = 20;
        assert!(m.validate().is_err());

        let mut m = WorkloadModel::alibaba_v2017();
        m.extra_task_p = 0.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn footprints_are_positive() {
        let m = WorkloadModel::alibaba_v2017();
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..100 {
            let f = m.sample_footprint(&mut rng);
            assert!(f.cpu.mean() > 0.0);
            assert!(f.mem.mean() > 0.0);
            assert!(f.disk.mean() > 0.0);
        }
    }
}
