//! Scenario presets reproducing the paper's figures.
//!
//! Each preset returns a configured [`Simulation`]; call
//! [`Simulation::run`] (or `run_with_truth`) to get the dataset. The named
//! jobs and timestamps match the paper's case study exactly:
//!
//! * [`fig3a`] — timestamp **47400**: healthy cluster at 20–40 % utilization,
//!   15 root jobs including two 2-task jobs (`job_8121`, `job_8123`), the
//!   lowest-utilization single-task `job_8124`, and `job_6639` whose four
//!   parallel tasks share one start timestamp but end at four different
//!   times.
//! * [`fig3b`] — timestamp **46200**: medium 50–80 % regime; `job_7901` runs
//!   on busier nodes and carries the end-of-job **spike** anomaly; three
//!   machines are shared with a neighbour job to exercise the co-allocation
//!   links.
//! * [`fig3c`] — timestamp **43800**: overloaded cluster; `job_7513` has a
//!   hot task and a cooler smaller task; `job_11939`'s five tasks **thrash**
//!   (memory pinned, CPU collapsing); at **44100** a mass shutdown cancels
//!   everything except `job_11599`.
//! * [`paper_day`] — the full 24-hour, 1300-machine trace containing all
//!   three regimes at the paper's timestamps, plus Poisson background
//!   workload calibrated to Section II statistics.
//! * [`fig1_sample`] / [`fig2_sample`] — the small datasets behind Fig 1's
//!   encoding diagram and Fig 2's annotated line charts (`job_7399`).

use batchlens_trace::{JobId, MachineId, TimeRange, Timestamp};

use crate::{Anomaly, FootprintProfile, JobSpec, SimConfig, Simulation, TaskSpec};

/// `job_8121` — Fig 3(a), two tasks on a substantial volume of nodes.
pub const JOB_8121: JobId = JobId::new(8121);
/// `job_8123` — Fig 3(a), two tasks on a substantial volume of nodes.
pub const JOB_8123: JobId = JobId::new(8123);
/// `job_8124` — Fig 3(a), single task, the lowest-utilization job.
pub const JOB_8124: JobId = JobId::new(8124);
/// `job_6639` — Fig 3(a), four parallel tasks, one start / four ends.
pub const JOB_6639: JobId = JobId::new(6639);
/// `job_11599` — the long-running job left alone after the mass shutdown.
pub const JOB_11599: JobId = JobId::new(11599);
/// `job_7901` — Fig 3(b), the end-of-job spike anomaly on busy nodes.
pub const JOB_7901: JobId = JobId::new(7901);
/// `job_7513` — Fig 3(c), two tasks: a hot one and a smaller cooler one.
pub const JOB_7513: JobId = JobId::new(7513);
/// `job_11939` — Fig 3(c), five tasks suffering thrashing.
pub const JOB_11939: JobId = JobId::new(11939);
/// `job_7399` — Fig 2's example job (two tasks, bundled annotations).
pub const JOB_7399: JobId = JobId::new(7399);

/// The Fig 3(a) snapshot timestamp.
pub const T_FIG3A: Timestamp = Timestamp::new(47400);
/// The Fig 3(b) snapshot timestamp.
pub const T_FIG3B: Timestamp = Timestamp::new(46200);
/// The Fig 3(c) snapshot timestamp.
pub const T_FIG3C: Timestamp = Timestamp::new(43800);
/// The mass-shutdown timestamp ("all of the preceding nodes are shut down").
pub const T_SHUTDOWN: Timestamp = Timestamp::new(44100);

fn window(start: i64, end: i64) -> TimeRange {
    TimeRange::new(Timestamp::new(start), Timestamp::new(end)).expect("static window")
}

/// A nondescript background-style job used to populate bubble charts.
fn filler(id: u32, submit: i64, tasks: &[(u32, i64)], level: f64) -> JobSpec {
    let specs: Vec<TaskSpec> = tasks
        .iter()
        .map(|&(instances, duration)| {
            TaskSpec::steady(instances, duration, level, level * 0.8, level * 0.5)
        })
        .collect();
    JobSpec::parallel_tasks(JobId::new(id), Timestamp::new(submit), specs)
}

/// Fig 3(a): the healthy low-utilization regime at timestamp 47400.
///
/// 60 machines, zero background workload (the 15 root jobs are scripted so
/// the paper's "15 root bubbles" count is exact).
pub fn fig3a(seed: u64) -> Simulation {
    let mut cfg = SimConfig::paper_scale(seed);
    cfg.machines = 60;
    cfg.window = window(46200, 49500);
    cfg.workload.jobs_per_hour = 0.0;
    cfg.baseline = [0.16, 0.20, 0.10];
    cfg.noise_sigma = 0.01;
    // Low machine-to-machine variance so the job ranking assertion of the
    // case study (job_8124 least utilized) is driven by footprints, not noise.
    cfg.personality_spread = 0.012;
    cfg.walk_sigma = 0.004;

    let jobs = vec![
        // Two primary 2-task jobs on many nodes.
        filler(8121, 46600, &[(10, 1600), (8, 2200)], 0.10),
        filler(8123, 46700, &[(9, 1500), (9, 2100)], 0.10),
        // The lowest-utilization job: single task, near-idle footprint,
        // pinned to reserved machines so nothing hotter lands there.
        JobSpec::single_task(
            JOB_8124,
            Timestamp::new(46900),
            TaskSpec::steady(6, 1800, 0.012, 0.010, 0.006),
        )
        .pinned_to((54..60).map(MachineId::new).collect()),
        // Four parallel tasks: one start cluster, four end clusters.
        JobSpec::parallel_tasks(
            JOB_6639,
            Timestamp::new(46800),
            vec![
                TaskSpec::steady(5, 900, 0.09, 0.08, 0.05),
                TaskSpec::steady(5, 1400, 0.09, 0.08, 0.05),
                TaskSpec::steady(4, 1900, 0.09, 0.08, 0.05),
                TaskSpec::steady(4, 2400, 0.09, 0.08, 0.05),
            ],
        ),
        // The long-running survivor job (also present in Fig 3(c)).
        filler(11599, 46300, &[(6, 3000), (6, 3000)], 0.09),
        // Ten background-style fillers to reach 15 root bubbles at t=47400.
        filler(8100, 46650, &[(5, 1500)], 0.09),
        filler(8101, 46750, &[(4, 1400)], 0.10),
        filler(8103, 46850, &[(6, 1300)], 0.09),
        filler(8105, 46950, &[(4, 1200)], 0.10),
        filler(8107, 47000, &[(5, 1100)], 0.09),
        filler(8109, 47050, &[(3, 1000), (3, 1600)], 0.10),
        filler(8111, 47100, &[(4, 900)], 0.09),
        filler(8113, 47150, &[(5, 800)], 0.10),
        filler(8115, 47200, &[(4, 700)], 0.09),
        filler(8117, 47250, &[(3, 600)], 0.10),
    ];
    Simulation::new(cfg)
        .with_jobs(jobs)
        .with_reserved_machines((54..60).map(MachineId::new).collect())
}

/// Fig 3(b): the medium-utilization regime at timestamp 46200 with the
/// `job_7901` end-of-job spike and shared (co-allocated) machines.
pub fn fig3b(seed: u64) -> Simulation {
    let mut cfg = SimConfig::paper_scale(seed);
    cfg.machines = 60;
    cfg.window = window(45000, 48000);
    cfg.workload.jobs_per_hour = 0.0;
    cfg.baseline = [0.18, 0.22, 0.12];
    cfg.noise_sigma = 0.012;

    // Medium regime: 50–80 % band comes from a cluster-wide load phase.
    let phase = window(45000, 48000);

    // job_7901 runs on machines 0..10; its neighbour job_7905 shares
    // machines 7, 8, 9 → three co-allocation link pairs, like the paper's
    // green/orange/purple dotted lines.
    let spike_pins: Vec<MachineId> = (0..10).map(MachineId::new).collect();
    let shared_pins: Vec<MachineId> = (7..13).map(MachineId::new).collect();

    let jobs = vec![
        JobSpec::single_task(
            JOB_7901,
            Timestamp::new(45600),
            TaskSpec {
                instances: 10,
                duration: 1200,
                footprint: FootprintProfile::steady(0.1, 0.1, 0.05),
                start_jitter: 4,
                end_jitter: 20,
            },
        )
        .with_anomaly(Anomaly::end_spike())
        .pinned_to(spike_pins),
        filler(7905, 45700, &[(6, 1500)], 0.08).pinned_to(shared_pins),
        filler(7910, 45300, &[(8, 1800), (6, 2300)], 0.09),
        filler(7912, 45500, &[(7, 1700)], 0.10),
        filler(7914, 45800, &[(6, 1500), (5, 2000)], 0.09),
        filler(7916, 45900, &[(8, 1400)], 0.10),
        filler(7918, 46000, &[(5, 1300)], 0.09),
        filler(7920, 46050, &[(6, 1250)], 0.10),
    ];
    Simulation::new(cfg)
        .with_jobs(jobs)
        .with_load_phase(phase, [0.38, 0.33, 0.20])
}

/// Fig 3(c): the overloaded regime at timestamp 43800 with thrashing
/// (`job_11939`), a hot/cool task pair (`job_7513`) and the mass shutdown at
/// 44100 sparing only `job_11599`.
pub fn fig3c(seed: u64) -> Simulation {
    let mut cfg = SimConfig::paper_scale(seed);
    cfg.machines = 60;
    cfg.window = window(42600, 45600);
    cfg.workload.jobs_per_hour = 0.0;
    cfg.baseline = [0.20, 0.24, 0.14];
    cfg.noise_sigma = 0.012;

    // Heavy regime until the shutdown clears the cluster. The CPU component
    // stays moderate so the thrashing machines' CPU *collapse* remains
    // visible below the cluster-wide floor; memory carries the overload.
    let heavy = window(42600, 44100);
    let after = window(44100, 45600);

    let jobs = vec![
        // Two tasks: the purple (smaller, cooler) cluster vs the blue one.
        JobSpec::parallel_tasks(
            JOB_7513,
            Timestamp::new(43000),
            vec![
                TaskSpec::steady(12, 1500, 0.22, 0.20, 0.10),
                TaskSpec::steady(5, 1500, 0.09, 0.08, 0.05),
            ],
        ),
        // Five tasks, all thrashing after creation: CPU drops, memory
        // pinned. Pinned to reserved machines so co-located work cannot mask
        // the collapse.
        JobSpec::parallel_tasks(
            JOB_11939,
            Timestamp::new(43200),
            vec![
                TaskSpec::steady(4, 2000, 0.1, 0.1, 0.05),
                TaskSpec::steady(4, 2100, 0.1, 0.1, 0.05),
                TaskSpec::steady(3, 2200, 0.1, 0.1, 0.05),
                TaskSpec::steady(3, 2300, 0.1, 0.1, 0.05),
                TaskSpec::steady(3, 2400, 0.1, 0.1, 0.05),
            ],
        )
        .with_anomaly(Anomaly::thrashing())
        .pinned_to((40..57).map(MachineId::new).collect()),
        // The survivor: spans the shutdown and keeps running.
        filler(11599, 42700, &[(6, 2600), (6, 2600)], 0.06),
        // Hot fillers pushing nodes toward capacity.
        filler(11900, 42800, &[(8, 1600)], 0.20),
        filler(11902, 42900, &[(7, 1700), (6, 1400)], 0.19),
        filler(11904, 43100, &[(8, 1500)], 0.20),
        filler(11906, 43300, &[(6, 1300)], 0.19),
        filler(11908, 43400, &[(7, 1200)], 0.20),
    ];
    Simulation::new(cfg)
        .with_jobs(jobs)
        .with_reserved_machines((40..57).map(MachineId::new).collect())
        .with_load_phase(heavy, [0.25, 0.42, 0.22])
        .with_load_phase(after, [0.06, 0.08, 0.04])
        .with_mass_shutdown(T_SHUTDOWN, vec![JOB_11599])
}

/// The full paper-scale day: 1300 machines, 24 hours, Poisson background
/// workload plus every named case-study job at its exact timestamp.
pub fn paper_day(seed: u64) -> Simulation {
    paper_day_with_machines(seed, 1300)
}

/// [`paper_day`] with a custom cluster size (smaller clusters keep tests and
/// debug builds fast while preserving every pattern).
pub fn paper_day_with_machines(seed: u64, machines: u32) -> Simulation {
    let mut cfg = SimConfig::paper_scale(seed);
    cfg.machines = machines;

    let mut sim = Simulation::new(cfg)
        // Regime phases: overload before the shutdown (memory-led, so the
        // thrashing CPU collapse stays visible), lull after it, medium
        // around 46200, low around 47400.
        .with_load_phase(window(42600, 44100), [0.25, 0.42, 0.22])
        .with_load_phase(window(44100, 45300), [0.02, 0.04, 0.02])
        .with_load_phase(window(45300, 47000), [0.30, 0.26, 0.16])
        .with_load_phase(window(47000, 49500), [0.05, 0.05, 0.03])
        .with_mass_shutdown(T_SHUTDOWN, vec![JOB_11599]);

    // Fig 3(c) cast.
    sim = sim
        .with_job(JobSpec::parallel_tasks(
            JOB_7513,
            Timestamp::new(43000),
            vec![
                TaskSpec::steady(12, 1500, 0.22, 0.20, 0.10),
                TaskSpec::steady(5, 1500, 0.09, 0.08, 0.05),
            ],
        ))
        .with_job(
            JobSpec::parallel_tasks(
                JOB_11939,
                Timestamp::new(43200),
                vec![
                    TaskSpec::steady(4, 2000, 0.1, 0.1, 0.05),
                    TaskSpec::steady(4, 2100, 0.1, 0.1, 0.05),
                    TaskSpec::steady(3, 2200, 0.1, 0.1, 0.05),
                    TaskSpec::steady(3, 2300, 0.1, 0.1, 0.05),
                    TaskSpec::steady(3, 2400, 0.1, 0.1, 0.05),
                ],
            )
            .with_anomaly(Anomaly::thrashing())
            .pinned_to((40..57).map(MachineId::new).collect()),
        )
        .with_reserved_machines((40..57).map(MachineId::new).collect())
        // The survivor spans from before the shutdown to past Fig 3(a).
        .with_job(filler(11599, 42000, &[(6, 6600), (6, 6600)], 0.05));

    // Fig 3(b) cast.
    let spike_pins: Vec<MachineId> = (0..10).map(MachineId::new).collect();
    let shared_pins: Vec<MachineId> = (7..13).map(MachineId::new).collect();
    sim = sim
        .with_job(
            JobSpec::single_task(
                JOB_7901,
                Timestamp::new(45600),
                TaskSpec {
                    instances: 10,
                    duration: 1200,
                    footprint: FootprintProfile::steady(0.1, 0.1, 0.05),
                    start_jitter: 4,
                    end_jitter: 20,
                },
            )
            .with_anomaly(Anomaly::end_spike())
            .pinned_to(spike_pins),
        )
        .with_job(filler(7905, 45700, &[(6, 1500)], 0.08).pinned_to(shared_pins));

    // Fig 3(a) cast.
    sim = sim
        .with_job(filler(8121, 46600, &[(10, 1600), (8, 2200)], 0.07))
        .with_job(filler(8123, 46700, &[(9, 1500), (9, 2100)], 0.07))
        .with_job(
            JobSpec::single_task(
                JOB_8124,
                Timestamp::new(46900),
                TaskSpec::steady(6, 1800, 0.012, 0.010, 0.006),
            )
            .pinned_to(
                // Reserved machines near the top of the range.
                (machines.saturating_sub(6)..machines)
                    .map(MachineId::new)
                    .collect(),
            ),
        )
        .with_reserved_machines(
            (machines.saturating_sub(6)..machines)
                .map(MachineId::new)
                .collect(),
        )
        .with_job(JobSpec::parallel_tasks(
            JOB_6639,
            Timestamp::new(46800),
            vec![
                TaskSpec::steady(5, 900, 0.06, 0.05, 0.03),
                TaskSpec::steady(5, 1400, 0.06, 0.05, 0.03),
                TaskSpec::steady(4, 1900, 0.06, 0.05, 0.03),
                TaskSpec::steady(4, 2400, 0.06, 0.05, 0.03),
            ],
        ));

    sim
}

/// The tiny dataset behind Fig 1's encoding diagram: one job, two tasks,
/// six nodes at assorted utilization levels.
pub fn fig1_sample(seed: u64) -> Simulation {
    let mut cfg = SimConfig::paper_scale(seed);
    cfg.machines = 8;
    cfg.window = window(0, 1800);
    cfg.workload.jobs_per_hour = 0.0;
    cfg.baseline = [0.15, 0.25, 0.35];
    let job = JobSpec::parallel_tasks(
        JobId::new(1),
        Timestamp::new(120),
        vec![
            TaskSpec::steady(3, 1500, 0.45, 0.25, 0.15),
            TaskSpec::steady(3, 1500, 0.15, 0.40, 0.30),
        ],
    );
    Simulation::new(cfg).with_job(job)
}

/// The dataset behind Fig 2: `job_7399` with two parallel tasks of different
/// durations (one start-annotation cluster, two end-annotation clusters)
/// across 20 nodes.
pub fn fig2_sample(seed: u64) -> Simulation {
    let mut cfg = SimConfig::paper_scale(seed);
    cfg.machines = 20;
    cfg.window = window(0, 7200);
    cfg.workload.jobs_per_hour = 0.0;
    cfg.baseline = [0.18, 0.20, 0.12];
    let job = JobSpec::parallel_tasks(
        JOB_7399,
        Timestamp::new(1200),
        vec![
            TaskSpec {
                instances: 10,
                duration: 2400,
                footprint: FootprintProfile::steady(0.25, 0.18, 0.10),
                start_jitter: 6,
                end_jitter: 40,
            },
            TaskSpec {
                instances: 10,
                duration: 3900,
                footprint: FootprintProfile::steady(0.20, 0.22, 0.12),
                start_jitter: 6,
                end_jitter: 40,
            },
        ],
    );
    Simulation::new(cfg).with_job(job)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3a_has_15_root_jobs_at_snapshot() {
        let ds = fig3a(1).run().unwrap();
        let running = ds.jobs_running_at(T_FIG3A);
        assert_eq!(running.len(), 15, "paper: 15 root bubbles at t47400");
        // Named cast present.
        let ids: Vec<JobId> = running.iter().map(|j| j.id()).collect();
        for id in [JOB_8121, JOB_8123, JOB_8124, JOB_6639, JOB_11599] {
            assert!(ids.contains(&id), "{id} missing at t47400");
        }
    }

    #[test]
    fn fig3a_job_8124_is_least_utilized() {
        let ds = fig3a(2).run().unwrap();
        let mut means: Vec<(JobId, f64)> = Vec::new();
        for job in ds.jobs_running_at(T_FIG3A) {
            let mut total = 0.0;
            let mut n = 0usize;
            for m in job.machines() {
                if let Some(u) = ds.machine(m).unwrap().util_at(T_FIG3A) {
                    total += u.mean().fraction();
                    n += 1;
                }
            }
            if n > 0 {
                means.push((job.id(), total / n as f64));
            }
        }
        let min = means
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(min.0, JOB_8124, "rankings: {means:?}");
    }

    #[test]
    fn fig3a_utilization_in_low_band() {
        let ds = fig3a(3).run().unwrap();
        let mut cpu_sum = 0.0;
        let mut n = 0;
        for m in ds.machines() {
            if let Some(u) = m.util_at(T_FIG3A) {
                cpu_sum += u.cpu.fraction();
                n += 1;
            }
        }
        let mean = cpu_sum / n as f64;
        assert!(
            (0.10..=0.45).contains(&mean),
            "mean cpu {mean} outside the paper's low band"
        );
    }

    #[test]
    fn fig3a_job_6639_one_start_four_ends() {
        let ds = fig3a(4).run().unwrap();
        let job = ds.job(JOB_6639).unwrap();
        assert_eq!(job.task_count(), 4);
        let starts: Vec<i64> = job
            .tasks()
            .filter_map(|t| t.observed_start())
            .map(|t| t.seconds())
            .collect();
        let spread = starts.iter().max().unwrap() - starts.iter().min().unwrap();
        assert!(spread <= 10, "task starts should bundle, spread {spread}");
        let mut ends: Vec<i64> = job
            .tasks()
            .filter_map(|t| t.observed_end())
            .map(|t| t.seconds())
            .collect();
        ends.sort_unstable();
        for w in ends.windows(2) {
            assert!(w[1] - w[0] > 200, "task ends should separate: {ends:?}");
        }
    }

    #[test]
    fn fig3b_regime_is_medium_and_7901_hotter() {
        let ds = fig3b(5).run().unwrap();
        let mut all = Vec::new();
        for m in ds.machines() {
            if let Some(u) = m.util_at(T_FIG3B) {
                all.push(u.cpu.fraction());
            }
        }
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        assert!(
            (0.45..=0.85).contains(&mean),
            "mean cpu {mean} outside medium band"
        );

        // job_7901's nodes are busier than the cluster average.
        let job = ds.job(JOB_7901).unwrap();
        let mut hot = Vec::new();
        for m in job.machines() {
            if let Some(u) = ds.machine(m).unwrap().util_at(T_FIG3B) {
                hot.push(u.cpu.fraction());
            }
        }
        let hot_mean = hot.iter().sum::<f64>() / hot.len() as f64;
        assert!(
            hot_mean > mean,
            "job_7901 nodes {hot_mean} vs cluster {mean}"
        );
    }

    #[test]
    fn fig3b_has_shared_machines() {
        let (_, truth) = fig3b(6).run_with_truth().unwrap();
        assert!(
            truth.coallocated_machines.len() >= 3,
            "need ≥3 shared machines for the link interaction, got {:?}",
            truth.coallocated_machines
        );
    }

    #[test]
    fn fig3c_shutdown_leaves_only_survivor() {
        let ds = fig3c(7).run().unwrap();
        let after: Vec<JobId> = ds
            .jobs_running_at(Timestamp::new(T_SHUTDOWN.seconds() + 60))
            .iter()
            .map(|j| j.id())
            .collect();
        assert_eq!(after, vec![JOB_11599]);
        // Before the shutdown the cluster is crowded.
        assert!(ds.jobs_running_at(T_FIG3C).len() >= 7);
    }

    #[test]
    fn fig3c_thrashing_signature_on_11939_nodes() {
        let ds = fig3c(8).run().unwrap();
        let job = ds.job(JOB_11939).unwrap();
        // Late in the job's run, memory should exceed CPU markedly on its
        // machines (paper: CPU decreases while virtual memory is overused).
        let late = Timestamp::new(44000);
        let mut gaps = Vec::new();
        for m in job.machines() {
            if let Some(u) = ds.machine(m).unwrap().util_at(late) {
                gaps.push(u.mem.fraction() - u.cpu.fraction());
            }
        }
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            mean_gap > 0.15,
            "mem-cpu gap {mean_gap} too small for thrashing"
        );
    }

    #[test]
    fn fig2_sample_has_two_end_clusters() {
        let ds = fig2_sample(9).run().unwrap();
        let job = ds.job(JOB_7399).unwrap();
        assert_eq!(job.task_count(), 2);
        let ends: Vec<i64> = job
            .tasks()
            .filter_map(|t| t.observed_end())
            .map(|t| t.seconds())
            .collect();
        assert!(
            (ends[0] - ends[1]).abs() > 1000,
            "ends {ends:?} should separate"
        );
    }

    #[test]
    fn fig1_sample_is_tiny() {
        let ds = fig1_sample(10).run().unwrap();
        assert_eq!(ds.job_count(), 1);
        assert_eq!(ds.job(JobId::new(1)).unwrap().task_count(), 2);
        assert!(ds.machine_count() <= 8);
    }

    #[test]
    fn paper_day_scaled_contains_all_regimes() {
        // 80 machines keeps this fast while preserving every pattern.
        let ds = paper_day_with_machines(11, 80).run().unwrap();
        // All named jobs exist.
        for id in [
            JOB_7513, JOB_11939, JOB_11599, JOB_7901, JOB_8121, JOB_8123, JOB_8124, JOB_6639,
        ] {
            assert!(ds.job(id).is_some(), "{id} missing from paper day");
        }
        // Shutdown leaves the survivor plus at most stragglers that started after.
        let after = ds.jobs_running_at(Timestamp::new(T_SHUTDOWN.seconds() + 30));
        assert!(after.iter().any(|j| j.id() == JOB_11599));
        // Regime ordering: overload band at 43800 is hotter than the healthy
        // band at 47400.
        let mean_at = |t: Timestamp| {
            let mut s = 0.0;
            let mut n = 0;
            for m in ds.machines() {
                if let Some(u) = m.util_at(t) {
                    s += u.cpu.fraction();
                    n += 1;
                }
            }
            s / n as f64
        };
        let hot = mean_at(T_FIG3C);
        let cool = mean_at(T_FIG3A);
        assert!(hot > cool + 0.15, "overload {hot} vs healthy {cool}");
    }
}
