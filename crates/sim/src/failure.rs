//! Machine failure injection.
//!
//! The paper motivates anomaly analysis with *"software bugs and hardware
//! crashes"*. This module models hardware failures as scripted machine
//! lifecycle events: a machine hits a soft error (stops accepting work),
//! optionally escalates to a hard error (crashes), and may later recover
//! (rejoins). Failures can **cascade**: a crash raises the failure
//! probability of topological neighbours for a window, modelling correlated
//! rack/power failures.

use batchlens_trace::{MachineEvent, MachineEventRecord, MachineId, TimeDelta, Timestamp};
use serde::{Deserialize, Serialize};

/// A scripted failure of one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineFailure {
    /// The affected machine.
    pub machine: MachineId,
    /// When the failure begins.
    pub at: Timestamp,
    /// Whether it escalates to a hard crash (`Remove`) vs a soft error.
    pub hard: bool,
    /// Recovery delay after the failure; `None` means the machine never
    /// rejoins within the trace.
    pub recover_after: Option<TimeDelta>,
}

impl MachineFailure {
    /// The machine-event records this failure emits, in time order.
    pub fn events(&self) -> Vec<MachineEventRecord> {
        let mut out = vec![MachineEventRecord {
            time: self.at,
            machine: self.machine,
            event: if self.hard {
                MachineEvent::HardError
            } else {
                MachineEvent::SoftError
            },
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        }];
        if self.hard {
            out.push(MachineEventRecord {
                time: self.at,
                machine: self.machine,
                event: MachineEvent::Remove,
                capacity_cpu: 0.0,
                capacity_mem: 0.0,
                capacity_disk: 0.0,
            });
        }
        if let Some(delay) = self.recover_after {
            out.push(MachineEventRecord {
                time: self.at + delay,
                machine: self.machine,
                event: MachineEvent::Add,
                capacity_cpu: 1.0,
                capacity_mem: 1.0,
                capacity_disk: 1.0,
            });
        }
        out
    }
}

/// A cascade model: a failure of machine `m` raises the near-term failure
/// odds of machines `m±1 … m±radius` (a simple linear-rack adjacency).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeModel {
    /// How many neighbours on each side are affected.
    pub radius: u32,
    /// Delay before a cascaded neighbour fails.
    pub propagation_delay: TimeDelta,
    /// Whether cascaded failures are hard.
    pub hard: bool,
}

impl CascadeModel {
    /// Expands a set of seed failures with their cascaded neighbours.
    ///
    /// Cascades propagate one hop from each *seed* (not transitively) to keep
    /// the blast radius bounded and deterministic. Neighbour ids are clamped
    /// to `0..machines`.
    pub fn expand(&self, seeds: &[MachineFailure], machines: u32) -> Vec<MachineFailure> {
        let mut out = seeds.to_vec();
        for seed in seeds {
            if !seed.hard {
                continue; // only crashes cascade
            }
            let m = seed.machine.raw() as i64;
            for d in 1..=self.radius as i64 {
                for side in [-d, d] {
                    let n = m + side;
                    if n < 0 || n >= machines as i64 {
                        continue;
                    }
                    out.push(MachineFailure {
                        machine: MachineId::new(n as u32),
                        at: seed.at + self.propagation_delay,
                        hard: self.hard,
                        recover_after: seed.recover_after,
                    });
                }
            }
        }
        out
    }
}

/// Collects the machine-event records for a set of failures, time-sorted and
/// de-duplicated (a machine can appear in several cascades; the earliest
/// failure wins).
pub fn failure_events(failures: &[MachineFailure]) -> Vec<MachineEventRecord> {
    use std::collections::BTreeMap;
    // Keep the earliest failure per machine.
    let mut earliest: BTreeMap<MachineId, MachineFailure> = BTreeMap::new();
    for f in failures {
        earliest
            .entry(f.machine)
            .and_modify(|e| {
                if f.at < e.at {
                    *e = *f;
                }
            })
            .or_insert(*f);
    }
    let mut events: Vec<MachineEventRecord> = earliest.values().flat_map(|f| f.events()).collect();
    events.sort_by_key(|e| (e.time, e.machine));
    events
}

/// A scripted crash of the **monitoring process itself** (as opposed to
/// [`MachineFailure`], which models monitored machines dying): the process
/// is killed at [`MonitorCrash::at`] — possibly tearing the tail of its
/// write-ahead log — and restarts [`MonitorCrash::restart_after`] later by
/// recovering from the log. Deliveries arriving while the process is down
/// are lost, exactly as they would be against a dead collector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorCrash {
    /// When the process dies.
    pub at: Timestamp,
    /// Downtime before it restarts from the WAL.
    pub restart_after: TimeDelta,
    /// Bytes of the active WAL segment torn off by the crash (un-synced
    /// page-cache tail lost to the power failure). Zero models a clean
    /// process kill after a completed `write`.
    pub torn_tail_bytes: u64,
}

impl MonitorCrash {
    /// When the process is back up.
    pub fn restart_at(&self) -> Timestamp {
        self.at + self.restart_after
    }

    /// Whether the process is down at `t` (down from `at` inclusive to
    /// `restart_at` exclusive).
    pub fn covers(&self, t: Timestamp) -> bool {
        self.at <= t && t < self.restart_at()
    }
}

/// Outcome of driving a delivery timeline through a
/// [`CrashRestartRegime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CrashStats {
    /// Deliveries handed to the live process.
    pub delivered: u64,
    /// Deliveries lost to downtime windows.
    pub lost: u64,
    /// Crashes that actually fired within the driven timeline.
    pub crashes: u64,
}

/// A schedule of monitor crashes and restarts — the scenario-level driver
/// for crash-recovery experiments.
///
/// The regime partitions a time-ordered delivery stream into up/down
/// windows and invokes caller hooks at each transition; what "crash" and
/// "restart" mean (drop the monitor and tear the log; recover and re-open
/// the writer) is the caller's business, which keeps this crate free of a
/// dependency on the monitor. See `examples/crash_recovery.rs` for the
/// full wiring against a real `StreamMonitor`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRestartRegime {
    crashes: Vec<MonitorCrash>,
}

impl CrashRestartRegime {
    /// Builds a regime from a crash list: crashes are time-sorted, and a
    /// crash scheduled while the process is already down from an earlier
    /// one is dropped (a dead process cannot die again).
    pub fn new(mut crashes: Vec<MonitorCrash>) -> Self {
        crashes.sort_by_key(|c| c.at);
        let mut kept: Vec<MonitorCrash> = Vec::with_capacity(crashes.len());
        for c in crashes {
            if kept.last().is_none_or(|prev| c.at >= prev.restart_at()) {
                kept.push(c);
            }
        }
        CrashRestartRegime { crashes: kept }
    }

    /// The normalized (sorted, non-overlapping) crash schedule.
    pub fn crashes(&self) -> &[MonitorCrash] {
        &self.crashes
    }

    /// Whether the process is down at `t`.
    pub fn is_down(&self, t: Timestamp) -> bool {
        self.crashes.iter().any(|c| c.covers(t))
    }

    /// Drives a **time-ordered** delivery stream through the schedule.
    ///
    /// For each delivery `(t, item)` the regime first fires, in event
    /// order, any `crash`/`restart` transition at or before `t`, then
    /// routes the item: `deliver` while the process is up, counted lost
    /// while it is down. After the stream ends, a crashed process is
    /// restarted (its `restart` hook fires) so the caller always ends with
    /// a live, recovered monitor; crashes scheduled entirely after the
    /// last delivery never fire.
    pub fn drive<T>(
        &self,
        deliveries: impl IntoIterator<Item = (Timestamp, T)>,
        mut deliver: impl FnMut(T),
        mut crash: impl FnMut(&MonitorCrash),
        mut restart: impl FnMut(&MonitorCrash),
    ) -> CrashStats {
        let mut stats = CrashStats::default();
        let mut next = 0usize; // first crash not yet fired
        let mut down: Option<usize> = None; // fired but not yet restarted
        for (t, item) in deliveries {
            if let Some(i) = down {
                if self.crashes[i].restart_at() <= t {
                    restart(&self.crashes[i]);
                    down = None;
                }
            }
            while down.is_none() && next < self.crashes.len() && self.crashes[next].at <= t {
                crash(&self.crashes[next]);
                stats.crashes += 1;
                if self.crashes[next].restart_at() <= t {
                    restart(&self.crashes[next]);
                } else {
                    down = Some(next);
                }
                next += 1;
            }
            if down.is_some() {
                stats.lost += 1;
            } else {
                deliver(item);
                stats.delivered += 1;
            }
        }
        if let Some(i) = down {
            restart(&self.crashes[i]);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_failure_emits_one_event() {
        let f = MachineFailure {
            machine: MachineId::new(3),
            at: Timestamp::new(1000),
            hard: false,
            recover_after: None,
        };
        let ev = f.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].event, MachineEvent::SoftError);
    }

    #[test]
    fn hard_failure_removes_and_recovers() {
        let f = MachineFailure {
            machine: MachineId::new(3),
            at: Timestamp::new(1000),
            hard: true,
            recover_after: Some(TimeDelta::minutes(30)),
        };
        let ev = f.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].event, MachineEvent::HardError);
        assert_eq!(ev[1].event, MachineEvent::Remove);
        assert_eq!(ev[2].event, MachineEvent::Add);
        assert_eq!(ev[2].time, Timestamp::new(1000 + 1800));
    }

    #[test]
    fn cascade_affects_neighbours() {
        let seed = MachineFailure {
            machine: MachineId::new(10),
            at: Timestamp::new(5000),
            hard: true,
            recover_after: None,
        };
        let model = CascadeModel {
            radius: 2,
            propagation_delay: TimeDelta::minutes(1),
            hard: true,
        };
        let expanded = model.expand(&[seed], 100);
        // seed + 4 neighbours (8,9,11,12).
        assert_eq!(expanded.len(), 5);
        let machines: Vec<u32> = expanded.iter().map(|f| f.machine.raw()).collect();
        for n in [8, 9, 11, 12] {
            assert!(machines.contains(&n), "missing neighbour {n}");
        }
    }

    #[test]
    fn cascade_clamps_at_boundaries() {
        let seed = MachineFailure {
            machine: MachineId::new(0),
            at: Timestamp::new(0),
            hard: true,
            recover_after: None,
        };
        let model = CascadeModel {
            radius: 3,
            propagation_delay: TimeDelta::ZERO,
            hard: true,
        };
        let expanded = model.expand(&[seed], 5);
        // Only machines 1,2,3 on the positive side (no negative ids).
        assert_eq!(expanded.len(), 1 + 3);
    }

    #[test]
    fn soft_failures_do_not_cascade() {
        let seed = MachineFailure {
            machine: MachineId::new(10),
            at: Timestamp::new(0),
            hard: false,
            recover_after: None,
        };
        let model = CascadeModel {
            radius: 2,
            propagation_delay: TimeDelta::ZERO,
            hard: true,
        };
        assert_eq!(model.expand(&[seed], 100).len(), 1);
    }

    #[test]
    fn events_are_sorted_and_deduped() {
        let a = MachineFailure {
            machine: MachineId::new(5),
            at: Timestamp::new(2000),
            hard: false,
            recover_after: None,
        };
        let b = MachineFailure {
            machine: MachineId::new(5),
            at: Timestamp::new(1000),
            hard: false,
            recover_after: None,
        };
        let events = failure_events(&[a, b]);
        // Earliest failure per machine wins → one event at t=1000.
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time, Timestamp::new(1000));
    }

    fn crash(at: i64, down: i64) -> MonitorCrash {
        MonitorCrash {
            at: Timestamp::new(at),
            restart_after: TimeDelta::seconds(down),
            torn_tail_bytes: 0,
        }
    }

    #[test]
    fn regime_drops_crashes_during_downtime_and_sorts() {
        let regime = CrashRestartRegime::new(vec![
            crash(500, 100),
            crash(100, 300), // down over [100, 400)
            crash(250, 50),  // inside the first downtime: dropped
        ]);
        let ats: Vec<i64> = regime.crashes().iter().map(|c| c.at.seconds()).collect();
        assert_eq!(ats, vec![100, 500]);
        assert!(regime.is_down(Timestamp::new(100)), "crash instant is down");
        assert!(regime.is_down(Timestamp::new(399)));
        assert!(
            !regime.is_down(Timestamp::new(400)),
            "restart instant is up"
        );
        assert!(!regime.is_down(Timestamp::new(450)));
    }

    #[test]
    fn drive_partitions_deliveries_and_fires_hooks_in_order() {
        let regime = CrashRestartRegime::new(vec![crash(300, 200)]);
        let deliveries = (0..8).map(|i| (Timestamp::new(i * 100), i));
        let log = std::cell::RefCell::new(Vec::<String>::new());
        let mut got: Vec<i64> = Vec::new();
        let stats = regime.drive(
            deliveries,
            |i| got.push(i),
            |c| log.borrow_mut().push(format!("crash@{}", c.at.seconds())),
            |c| {
                log.borrow_mut()
                    .push(format!("restart@{}", c.restart_at().seconds()))
            },
        );
        // t=300 and t=400 fall inside the [300, 500) downtime.
        assert_eq!(got, vec![0, 1, 2, 5, 6, 7]);
        assert_eq!(
            stats,
            CrashStats {
                delivered: 6,
                lost: 2,
                crashes: 1
            }
        );
        assert_eq!(log.into_inner(), vec!["crash@300", "restart@500"]);
    }

    #[test]
    fn drive_restarts_a_crashed_process_after_the_stream_ends() {
        let regime = CrashRestartRegime::new(vec![crash(100, 1_000_000)]);
        let mut restarts = 0;
        let stats = regime.drive(
            (0..3).map(|i| (Timestamp::new(i * 100), ())),
            |()| {},
            |_| {},
            |_| restarts += 1,
        );
        assert_eq!(stats.delivered, 1, "only t=0 lands before the crash");
        assert_eq!(stats.lost, 2);
        assert_eq!(restarts, 1, "final restart fires so the caller recovers");
    }

    #[test]
    fn crashes_after_the_last_delivery_never_fire() {
        let regime = CrashRestartRegime::new(vec![crash(10_000, 10)]);
        let mut fired = 0;
        let stats = regime.drive([(Timestamp::new(0), ())], |()| {}, |_| fired += 1, |_| {});
        assert_eq!(fired, 0);
        assert_eq!(stats.crashes, 0);
        assert_eq!(stats.delivered, 1);
    }
}
