//! Machine failure injection.
//!
//! The paper motivates anomaly analysis with *"software bugs and hardware
//! crashes"*. This module models hardware failures as scripted machine
//! lifecycle events: a machine hits a soft error (stops accepting work),
//! optionally escalates to a hard error (crashes), and may later recover
//! (rejoins). Failures can **cascade**: a crash raises the failure
//! probability of topological neighbours for a window, modelling correlated
//! rack/power failures.

use batchlens_trace::{MachineEvent, MachineEventRecord, MachineId, TimeDelta, Timestamp};
use serde::{Deserialize, Serialize};

/// A scripted failure of one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineFailure {
    /// The affected machine.
    pub machine: MachineId,
    /// When the failure begins.
    pub at: Timestamp,
    /// Whether it escalates to a hard crash (`Remove`) vs a soft error.
    pub hard: bool,
    /// Recovery delay after the failure; `None` means the machine never
    /// rejoins within the trace.
    pub recover_after: Option<TimeDelta>,
}

impl MachineFailure {
    /// The machine-event records this failure emits, in time order.
    pub fn events(&self) -> Vec<MachineEventRecord> {
        let mut out = vec![MachineEventRecord {
            time: self.at,
            machine: self.machine,
            event: if self.hard {
                MachineEvent::HardError
            } else {
                MachineEvent::SoftError
            },
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        }];
        if self.hard {
            out.push(MachineEventRecord {
                time: self.at,
                machine: self.machine,
                event: MachineEvent::Remove,
                capacity_cpu: 0.0,
                capacity_mem: 0.0,
                capacity_disk: 0.0,
            });
        }
        if let Some(delay) = self.recover_after {
            out.push(MachineEventRecord {
                time: self.at + delay,
                machine: self.machine,
                event: MachineEvent::Add,
                capacity_cpu: 1.0,
                capacity_mem: 1.0,
                capacity_disk: 1.0,
            });
        }
        out
    }
}

/// A cascade model: a failure of machine `m` raises the near-term failure
/// odds of machines `m±1 … m±radius` (a simple linear-rack adjacency).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeModel {
    /// How many neighbours on each side are affected.
    pub radius: u32,
    /// Delay before a cascaded neighbour fails.
    pub propagation_delay: TimeDelta,
    /// Whether cascaded failures are hard.
    pub hard: bool,
}

impl CascadeModel {
    /// Expands a set of seed failures with their cascaded neighbours.
    ///
    /// Cascades propagate one hop from each *seed* (not transitively) to keep
    /// the blast radius bounded and deterministic. Neighbour ids are clamped
    /// to `0..machines`.
    pub fn expand(&self, seeds: &[MachineFailure], machines: u32) -> Vec<MachineFailure> {
        let mut out = seeds.to_vec();
        for seed in seeds {
            if !seed.hard {
                continue; // only crashes cascade
            }
            let m = seed.machine.raw() as i64;
            for d in 1..=self.radius as i64 {
                for side in [-d, d] {
                    let n = m + side;
                    if n < 0 || n >= machines as i64 {
                        continue;
                    }
                    out.push(MachineFailure {
                        machine: MachineId::new(n as u32),
                        at: seed.at + self.propagation_delay,
                        hard: self.hard,
                        recover_after: seed.recover_after,
                    });
                }
            }
        }
        out
    }
}

/// Collects the machine-event records for a set of failures, time-sorted and
/// de-duplicated (a machine can appear in several cascades; the earliest
/// failure wins).
pub fn failure_events(failures: &[MachineFailure]) -> Vec<MachineEventRecord> {
    use std::collections::BTreeMap;
    // Keep the earliest failure per machine.
    let mut earliest: BTreeMap<MachineId, MachineFailure> = BTreeMap::new();
    for f in failures {
        earliest
            .entry(f.machine)
            .and_modify(|e| {
                if f.at < e.at {
                    *e = *f;
                }
            })
            .or_insert(*f);
    }
    let mut events: Vec<MachineEventRecord> = earliest.values().flat_map(|f| f.events()).collect();
    events.sort_by_key(|e| (e.time, e.machine));
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_failure_emits_one_event() {
        let f = MachineFailure {
            machine: MachineId::new(3),
            at: Timestamp::new(1000),
            hard: false,
            recover_after: None,
        };
        let ev = f.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].event, MachineEvent::SoftError);
    }

    #[test]
    fn hard_failure_removes_and_recovers() {
        let f = MachineFailure {
            machine: MachineId::new(3),
            at: Timestamp::new(1000),
            hard: true,
            recover_after: Some(TimeDelta::minutes(30)),
        };
        let ev = f.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].event, MachineEvent::HardError);
        assert_eq!(ev[1].event, MachineEvent::Remove);
        assert_eq!(ev[2].event, MachineEvent::Add);
        assert_eq!(ev[2].time, Timestamp::new(1000 + 1800));
    }

    #[test]
    fn cascade_affects_neighbours() {
        let seed = MachineFailure {
            machine: MachineId::new(10),
            at: Timestamp::new(5000),
            hard: true,
            recover_after: None,
        };
        let model = CascadeModel {
            radius: 2,
            propagation_delay: TimeDelta::minutes(1),
            hard: true,
        };
        let expanded = model.expand(&[seed], 100);
        // seed + 4 neighbours (8,9,11,12).
        assert_eq!(expanded.len(), 5);
        let machines: Vec<u32> = expanded.iter().map(|f| f.machine.raw()).collect();
        for n in [8, 9, 11, 12] {
            assert!(machines.contains(&n), "missing neighbour {n}");
        }
    }

    #[test]
    fn cascade_clamps_at_boundaries() {
        let seed = MachineFailure {
            machine: MachineId::new(0),
            at: Timestamp::new(0),
            hard: true,
            recover_after: None,
        };
        let model = CascadeModel {
            radius: 3,
            propagation_delay: TimeDelta::ZERO,
            hard: true,
        };
        let expanded = model.expand(&[seed], 5);
        // Only machines 1,2,3 on the positive side (no negative ids).
        assert_eq!(expanded.len(), 1 + 3);
    }

    #[test]
    fn soft_failures_do_not_cascade() {
        let seed = MachineFailure {
            machine: MachineId::new(10),
            at: Timestamp::new(0),
            hard: false,
            recover_after: None,
        };
        let model = CascadeModel {
            radius: 2,
            propagation_delay: TimeDelta::ZERO,
            hard: true,
        };
        assert_eq!(model.expand(&[seed], 100).len(), 1);
    }

    #[test]
    fn events_are_sorted_and_deduped() {
        let a = MachineFailure {
            machine: MachineId::new(5),
            at: Timestamp::new(2000),
            hard: false,
            recover_after: None,
        };
        let b = MachineFailure {
            machine: MachineId::new(5),
            at: Timestamp::new(1000),
            hard: false,
            recover_after: None,
        };
        let events = failure_events(&[a, b]);
        // Earliest failure per machine wins → one event at t=1000.
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time, Timestamp::new(1000));
    }
}
