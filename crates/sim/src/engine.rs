use std::collections::BTreeSet;

use batchlens_trace::{
    BatchInstanceRecord, BatchTaskRecord, JobId, MachineEvent, MachineEventRecord, MachineId,
    MachineInfo, ServerUsageRecord, TaskId, TaskStatus, TimeRange, Timestamp, TraceDataset,
    TraceDatasetBuilder, UtilizationTriple,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::anomaly::ClusterEvent;
use crate::config::SchedulerKind;
use crate::rng as dist;
use crate::scheduler::{LeastLoaded, Packing, RoundRobin, Scheduler};
use crate::{Anomaly, JobSpec, SimConfig, SimError, TaskSpec};

/// A configured simulation run: background workload plus scripted jobs and
/// cluster events.
///
/// `Simulation` is a consuming builder ([`Simulation::with_job`] etc. return
/// `self`); [`Simulation::run`] executes it and produces a validated
/// [`TraceDataset`]. [`Simulation::run_with_truth`] additionally returns the
/// injected ground truth so tests and benches can score detectors.
#[derive(Debug, Clone)]
pub struct Simulation {
    cfg: SimConfig,
    scripted: Vec<JobSpec>,
    cluster_events: Vec<ClusterEvent>,
    /// Additive cluster-wide background load per window, `[cpu, mem, disk]`.
    load_phases: Vec<(TimeRange, [f64; 3])>,
    /// Machines the scheduler must not auto-place on; only jobs explicitly
    /// pinned there use them.
    reserved: Vec<MachineId>,
    /// Scripted hardware failures (emitted as machine events).
    failures: Vec<crate::MachineFailure>,
}

/// What the simulator deliberately planted, for scoring detectors.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Jobs carrying injected anomalies.
    pub anomalous_jobs: Vec<(JobId, Anomaly)>,
    /// Mass shutdowns `(time, survivors)`.
    pub shutdowns: Vec<(Timestamp, Vec<JobId>)>,
    /// Machines that executed instances of more than one job at some moment
    /// (co-allocation ground truth).
    pub coallocated_machines: Vec<MachineId>,
}

/// One instance after placement — the engine's working record.
#[derive(Debug, Clone)]
struct Placed {
    job: JobId,
    task: TaskId,
    seq: u32,
    total: u32,
    machine: MachineId,
    start: Timestamp,
    end: Timestamp,
    footprint: crate::FootprintProfile,
    status: TaskStatus,
}

impl Simulation {
    /// Creates a simulation from a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Simulation {
            cfg,
            scripted: Vec::new(),
            cluster_events: Vec::new(),
            load_phases: Vec::new(),
            reserved: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Adds one scripted job.
    #[must_use]
    pub fn with_job(mut self, job: JobSpec) -> Self {
        self.scripted.push(job);
        self
    }

    /// Adds several scripted jobs.
    #[must_use]
    pub fn with_jobs(mut self, jobs: impl IntoIterator<Item = JobSpec>) -> Self {
        self.scripted.extend(jobs);
        self
    }

    /// Schedules a mass shutdown at `at`, sparing `survivors`.
    #[must_use]
    pub fn with_mass_shutdown(mut self, at: Timestamp, survivors: Vec<JobId>) -> Self {
        self.cluster_events
            .push(ClusterEvent::MassShutdown { at, survivors });
        self
    }

    /// Adds a cluster-wide background load phase (additive per metric).
    #[must_use]
    pub fn with_load_phase(mut self, window: TimeRange, add: [f64; 3]) -> Self {
        self.load_phases.push((window, add));
        self
    }

    /// Reserves machines: the scheduler never auto-places background work on
    /// them, so only explicitly pinned jobs run there. Scenarios use this to
    /// keep `job_8124`'s nodes the least utilized, as in the paper's Fig 3(a).
    #[must_use]
    pub fn with_reserved_machines(mut self, machines: Vec<MachineId>) -> Self {
        self.reserved.extend(machines);
        self
    }

    /// Injects scripted hardware failures; their machine-lifecycle events are
    /// merged into the dataset's `machine_events` table (see
    /// [`crate::failure`]).
    #[must_use]
    pub fn with_failures(mut self, failures: Vec<crate::MachineFailure>) -> Self {
        self.failures.extend(failures);
        self
    }

    /// Runs the simulation, discarding ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for invalid configuration/specs or if the
    /// produced records fail trace validation.
    pub fn run(&self) -> Result<TraceDataset, SimError> {
        Ok(self.run_with_truth()?.0)
    }

    /// Runs the simulation and returns the dataset together with the
    /// injected [`GroundTruth`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run`].
    pub fn run_with_truth(&self) -> Result<(TraceDataset, GroundTruth), SimError> {
        self.cfg.validate()?;
        for spec in &self.scripted {
            spec.validate()?;
        }
        let mut seen = BTreeSet::new();
        for spec in &self.scripted {
            if !seen.insert(spec.job) {
                return Err(SimError::InvalidSpec {
                    message: format!("duplicate scripted job {}", spec.job),
                });
            }
        }

        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        // 1. Background jobs from the workload model.
        let mut specs = self.scripted.clone();
        specs.extend(self.generate_background(&mut rng, &seen));
        specs.sort_by_key(|s| (s.submit, s.job));

        // 2. Place instances on machines.
        let mut placed = self.place(&specs, &mut rng)?;

        // 3. Apply cluster events (mass shutdowns).
        let mut truth = GroundTruth::default();
        for ev in &self.cluster_events {
            let ClusterEvent::MassShutdown { at, survivors } = ev;
            truth.shutdowns.push((*at, survivors.clone()));
            for p in &mut placed {
                if !survivors.contains(&p.job) && p.start < *at && p.end > *at {
                    p.end = *at;
                    p.status = TaskStatus::Cancelled;
                }
            }
        }
        for spec in &specs {
            if let Some(a) = spec.anomaly {
                truth.anomalous_jobs.push((spec.job, a));
            }
        }

        // 4. Emit batch tables.
        let mut builder = TraceDatasetBuilder::new();
        for m in 0..self.cfg.machines {
            builder.declare_machine(
                MachineId::new(m),
                MachineInfo {
                    capacity_cpu: 1.0,
                    capacity_mem: 1.0,
                    capacity_disk: 1.0,
                },
            );
            builder.push_machine_event(MachineEventRecord {
                time: self.cfg.window.start(),
                machine: MachineId::new(m),
                event: MachineEvent::Add,
                capacity_cpu: 1.0,
                capacity_mem: 1.0,
                capacity_disk: 1.0,
            });
        }
        self.emit_batch_tables(&specs, &placed, &mut builder);

        // 5. Synthesize usage and note co-allocation ground truth.
        self.synthesize_usage(&placed, &mut rng, &mut builder);
        truth.coallocated_machines = coallocated_machines(&placed);

        // Scripted hardware failures → machine lifecycle events.
        for ev in crate::failure::failure_events(&self.failures) {
            if (ev.machine.raw() as usize) < self.cfg.machines as usize {
                builder.push_machine_event(ev);
            }
        }

        // SoftError events for machines hit by a shutdown (flavour for the
        // machine_events table; usage reporting continues, as in the paper).
        for (at, survivors) in &truth.shutdowns {
            let mut hit: BTreeSet<MachineId> = BTreeSet::new();
            for p in &placed {
                if p.status == TaskStatus::Cancelled && p.end == *at && !survivors.contains(&p.job)
                {
                    hit.insert(p.machine);
                }
            }
            for m in hit {
                builder.push_machine_event(MachineEventRecord {
                    time: *at,
                    machine: m,
                    event: MachineEvent::SoftError,
                    capacity_cpu: 0.0,
                    capacity_mem: 0.0,
                    capacity_disk: 0.0,
                });
            }
        }

        Ok((builder.build()?, truth))
    }

    /// Generates background jobs from the workload model.
    fn generate_background(&self, rng: &mut StdRng, taken: &BTreeSet<JobId>) -> Vec<JobSpec> {
        let w = &self.cfg.workload;
        let hours = self.cfg.window.duration().as_secs_f64() / 3600.0;
        let count = w.sample_job_count(rng, hours);
        let mut next_id = 10_000u32;
        let mut out = Vec::with_capacity(count as usize);
        let start_s = self.cfg.window.start().seconds();
        let end_s = self.cfg.window.end().seconds();
        for _ in 0..count {
            while taken.contains(&JobId::new(next_id)) {
                next_id += 1;
            }
            let job = JobId::new(next_id);
            next_id += 1;

            let submit = Timestamp::new(dist::uniform(rng, start_s as f64, end_s as f64) as i64);
            let n_tasks = w.sample_task_count(rng);
            let tasks: Vec<TaskSpec> = (0..n_tasks)
                .map(|_| TaskSpec {
                    instances: w.sample_instance_count(rng),
                    duration: w.sample_duration(rng),
                    footprint: w.sample_footprint(rng),
                    start_jitter: 5,
                    end_jitter: 45,
                })
                .collect();
            let chain = n_tasks > 1 && rng.random::<f64>() < w.chain_probability;
            let spec = if chain {
                JobSpec::chained_tasks(job, submit, tasks)
            } else {
                JobSpec::parallel_tasks(job, submit, tasks)
            };
            out.push(spec);
        }
        out
    }

    /// Places every instance of every spec onto a machine.
    fn place(&self, specs: &[JobSpec], rng: &mut StdRng) -> Result<Vec<Placed>, SimError> {
        let n_machines = self.cfg.machines as usize;
        let bucket = self.cfg.batch_resolution.as_seconds();
        let window_s = self.cfg.window.duration().as_seconds();
        // Extra slack: tasks may end past the window (they get truncated to
        // the load grid, not the records).
        let n_buckets = ((window_s * 2) / bucket).max(1) as usize;
        let mut active: Vec<Vec<u32>> = vec![vec![0u32; n_machines]; n_buckets];
        // Reserved machines carry a sentinel load so every policy avoids them.
        const RESERVED_SENTINEL: u32 = 1 << 30;
        for m in &self.reserved {
            let idx = m.raw() as usize;
            if idx < n_machines {
                for row in &mut active {
                    row[idx] = RESERVED_SENTINEL;
                }
            }
        }

        let mut scheduler: Box<dyn Scheduler> = match self.cfg.scheduler {
            SchedulerKind::LeastLoaded => Box::new(LeastLoaded),
            SchedulerKind::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerKind::Packing => Box::new(Packing::default()),
        };

        let origin = self.cfg.window.start().seconds();
        let bucket_of =
            |t: Timestamp| -> usize { (((t.seconds() - origin).max(0)) / bucket) as usize };

        let mut placed = Vec::new();
        for spec in specs {
            let durations: Vec<i64> = spec.tasks.iter().map(|t| t.duration).collect();
            let windows = spec.dag.schedule(&durations)?;
            let straggler = spec.anomaly.and_then(|a| a.straggler_factor());
            let mut pin_cursor = 0usize;

            for (task_idx, (task, &(start_off, _))) in
                spec.tasks.iter().zip(windows.iter()).enumerate()
            {
                let footprint = match spec.anomaly {
                    Some(a) => a.apply_to_footprint(task.footprint),
                    None => task.footprint,
                };
                let task_start = spec.submit + batchlens_trace::TimeDelta::seconds(start_off);
                for seq in 0..task.instances {
                    let sj = if task.start_jitter > 0 {
                        rng.random_range(0..=task.start_jitter)
                    } else {
                        0
                    };
                    let ej = if task.end_jitter > 0 {
                        rng.random_range(-task.end_jitter..=task.end_jitter)
                    } else {
                        0
                    };
                    let mut duration = task.duration + ej;
                    // One straggler per task: the first instance runs long.
                    if seq == 0 {
                        if let Some(factor) = straggler {
                            duration = (task.duration as f64 * factor) as i64;
                        }
                    }
                    let start = task_start + batchlens_trace::TimeDelta::seconds(sj);
                    let end = start + batchlens_trace::TimeDelta::seconds(duration.max(1));

                    let machine = match &spec.pinned_machines {
                        Some(pins) => {
                            // Wrap pinned ids into the cluster so a scenario's
                            // fixed pin range stays valid at any cluster size.
                            let raw = pins[pin_cursor % pins.len()].raw() as usize;
                            pin_cursor += 1;
                            MachineId::new((raw % n_machines) as u32)
                        }
                        None => {
                            let b = bucket_of(start).min(n_buckets - 1);
                            MachineId::new(scheduler.pick(&active[b]) as u32)
                        }
                    };

                    // Update the load grid across the instance's span.
                    let b0 = bucket_of(start).min(n_buckets - 1);
                    let b1 = bucket_of(end).min(n_buckets - 1);
                    for row in active.iter_mut().take(b1 + 1).skip(b0) {
                        row[machine.raw() as usize] += 1;
                    }

                    placed.push(Placed {
                        job: spec.job,
                        task: TaskId::new(task_idx as u32 + 1),
                        seq,
                        total: task.instances,
                        machine,
                        start,
                        end,
                        footprint,
                        status: if end <= self.cfg.window.end() {
                            TaskStatus::Terminated
                        } else {
                            TaskStatus::Running
                        },
                    });
                }
            }
        }
        Ok(placed)
    }

    /// Emits `batch_task` + `batch_instance` records from placements.
    fn emit_batch_tables(
        &self,
        specs: &[JobSpec],
        placed: &[Placed],
        builder: &mut TraceDatasetBuilder,
    ) {
        for spec in specs {
            for (task_idx, task) in spec.tasks.iter().enumerate() {
                let task_id = TaskId::new(task_idx as u32 + 1);
                let win_end = self.cfg.window.end();
                // Instances that never start within the observation window are
                // not in the trace (the window simply ends before them).
                let mine: Vec<&Placed> = placed
                    .iter()
                    .filter(|p| p.job == spec.job && p.task == task_id && p.start < win_end)
                    .collect();
                if mine.is_empty() {
                    continue;
                }
                // The observation window cuts off at its end: instances still
                // running at `window.end()` are recorded with a truncated end
                // and `Running` status, exactly as the real 24-hour v2017
                // trace reports boundary jobs. (The footprint shape still uses
                // the untruncated lifetime via `Placed::end`.)
                let rec_end = |p: &Placed| p.end.min(win_end);
                let rec_status = |p: &Placed| {
                    if p.status == TaskStatus::Cancelled {
                        TaskStatus::Cancelled
                    } else if p.end > win_end {
                        TaskStatus::Running
                    } else {
                        p.status
                    }
                };
                let create = mine.iter().map(|p| p.start).min().expect("non-empty");
                let modify = mine.iter().map(|p| rec_end(p)).max().expect("non-empty");
                let status = if mine.iter().any(|p| p.status == TaskStatus::Cancelled) {
                    TaskStatus::Cancelled
                } else if mine.iter().any(|p| p.end > win_end) {
                    TaskStatus::Running
                } else {
                    TaskStatus::Terminated
                };
                let fp = mine[0].footprint;
                builder.push_task(BatchTaskRecord {
                    create_time: create,
                    modify_time: modify,
                    job: spec.job,
                    task: task_id,
                    instance_count: task.instances,
                    status,
                    plan_cpu: fp.cpu.max(),
                    plan_mem: fp.mem.max(),
                });
                for p in &mine {
                    builder.push_instance(BatchInstanceRecord {
                        start_time: p.start,
                        end_time: rec_end(p),
                        job: p.job,
                        task: p.task,
                        seq: p.seq,
                        total: p.total,
                        machine: p.machine,
                        status: rec_status(p),
                        cpu_avg: p.footprint.cpu.mean(),
                        cpu_max: p.footprint.cpu.max(),
                        mem_avg: p.footprint.mem.mean(),
                        mem_max: p.footprint.mem.max(),
                    });
                }
            }
        }
    }

    /// Synthesizes per-machine usage series: baseline AR(1) walk + load
    /// phases + instance footprints + Gaussian noise, clamped to `0..=1`.
    #[allow(clippy::needless_range_loop)] // metric index keys several arrays
    fn synthesize_usage(
        &self,
        placed: &[Placed],
        rng: &mut StdRng,
        builder: &mut TraceDatasetBuilder,
    ) {
        let res = self.cfg.usage_resolution.as_seconds();
        let start_s = self.cfg.window.start().seconds();
        let n_points = (self.cfg.window.duration().as_seconds() / res).max(1) as usize;
        let n_machines = self.cfg.machines as usize;

        // Group instances per machine.
        let mut by_machine: Vec<Vec<&Placed>> = vec![Vec::new(); n_machines];
        for p in placed {
            let m = p.machine.raw() as usize;
            if m < n_machines {
                by_machine[m].push(p);
            }
        }

        let mut values = [0.0f64; 3]; // scratch
        for (m, instances) in by_machine.iter().enumerate() {
            // Per-machine reporting offset inside one sampling period, as
            // in the real trace (machines are not globally grid-aligned).
            // 131 is coprime with the common 60/300 s resolutions, so
            // offsets spread over the whole period as `m` grows.
            let off = if self.cfg.stagger_reporting {
                (m as i64 * 131) % res
            } else {
                0
            };
            let grid_start = start_s + off;

            // Per-machine personality: slight offset so machines differ.
            let spread = self.cfg.personality_spread;
            let personality: [f64; 3] = [
                dist::uniform(rng, -spread, spread),
                dist::uniform(rng, -spread, spread),
                dist::uniform(rng, -spread * 0.7, spread * 0.7),
            ];
            let mut walk = [0.0f64; 3];

            // Accumulate footprint contributions over the machine's grid.
            let mut contrib = vec![[0.0f64; 3]; n_points];
            for p in instances {
                let dur = (p.end - p.start).as_secs_f64().max(1.0);
                // How far past the end this footprint still matters.
                let tail_s = if p.footprint.has_tail() {
                    (dur * 1.5) as i64
                } else {
                    0
                };
                let i0 = (((p.start.seconds() - grid_start).max(0)) / res) as usize;
                let last = p.end.seconds() + tail_s;
                let i1 = ((((last - grid_start) / res) + 1).max(0) as usize).min(n_points);
                for (i, c) in contrib.iter_mut().enumerate().take(i1).skip(i0) {
                    let t = grid_start + i as i64 * res;
                    let prog = (t - p.start.seconds()) as f64 / dur;
                    for k in 0..3 {
                        c[k] += p.footprint.by_index(k).eval(prog);
                    }
                }
            }

            for (i, c) in contrib.iter().enumerate() {
                let t = Timestamp::new(grid_start + i as i64 * res);
                // Additive load phases, evaluated at the machine's actual
                // (staggered) sample time.
                let mut phase = [0.0f64; 3];
                for (window, add) in &self.load_phases {
                    if window.contains(t) {
                        for k in 0..3 {
                            phase[k] += add[k];
                        }
                    }
                }
                for k in 0..3 {
                    // AR(1) baseline wander, pulled back toward zero.
                    walk[k] = 0.97 * walk[k] + dist::normal(rng, 0.0, self.cfg.walk_sigma);
                    let noise = dist::normal(rng, 0.0, self.cfg.noise_sigma);
                    values[k] =
                        self.cfg.baseline[k] + personality[k] + phase[k] + walk[k] + c[k] + noise;
                }
                builder.push_usage(ServerUsageRecord {
                    time: t,
                    machine: MachineId::new(m as u32),
                    util: UtilizationTriple::clamped(values[0], values[1], values[2]),
                });
            }
        }
    }
}

/// Machines that host instances of at least two distinct jobs whose windows
/// overlap — the ground truth behind the hover-linking interaction.
fn coallocated_machines(placed: &[Placed]) -> Vec<MachineId> {
    use std::collections::BTreeMap;
    let mut by_machine: BTreeMap<MachineId, Vec<&Placed>> = BTreeMap::new();
    for p in placed {
        by_machine.entry(p.machine).or_default().push(p);
    }
    let mut out = Vec::new();
    'machines: for (m, list) in by_machine {
        for (i, a) in list.iter().enumerate() {
            for b in &list[i + 1..] {
                if a.job != b.job && a.start < b.end && b.start < a.end {
                    out.push(m);
                    continue 'machines;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::stats::DatasetStats;
    use batchlens_trace::Metric;

    #[test]
    fn small_run_produces_consistent_dataset() {
        let ds = Simulation::new(SimConfig::small(1)).run().unwrap();
        assert!(ds.job_count() > 0, "no jobs generated");
        assert_eq!(ds.machine_count(), 20);
        // Every machine has usage over the window.
        for m in ds.machines() {
            let cpu = m.usage(Metric::Cpu).unwrap();
            assert_eq!(cpu.len(), 7200 / 60);
        }
        // Hierarchy integrity comes from the builder's strict mode passing.
        let st = DatasetStats::compute(&ds);
        assert!(st.instances >= st.tasks);
        assert!(st.tasks >= st.jobs);
    }

    #[test]
    fn reporting_grids_are_staggered_per_machine() {
        let ds = Simulation::new(SimConfig::small(1)).run().unwrap();
        let res = SimConfig::small(1).usage_resolution.as_seconds();
        // Machines report at distinct sub-period offsets…
        let offsets: BTreeSet<i64> = ds
            .machines()
            .map(|m| m.usage(Metric::Cpu).unwrap().times()[0].seconds() % res)
            .collect();
        assert!(offsets.len() > 1, "grids still globally aligned");
        // …each on its own regular grid.
        for m in ds.machines() {
            let times = m.usage(Metric::Cpu).unwrap().times().to_vec();
            let off = times[0].seconds() % res;
            assert!(times.iter().all(|t| t.seconds() % res == off));
        }
        // Opting out restores the aligned grid.
        let mut cfg = SimConfig::small(1);
        cfg.stagger_reporting = false;
        let aligned = Simulation::new(cfg).run().unwrap();
        for m in aligned.machines() {
            assert_eq!(m.usage(Metric::Cpu).unwrap().times()[0].seconds() % res, 0);
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = Simulation::new(SimConfig::small(7)).run().unwrap();
        let b = Simulation::new(SimConfig::small(7)).run().unwrap();
        assert_eq!(a.job_count(), b.job_count());
        assert_eq!(a.instance_count(), b.instance_count());
        let ma = a.machine(MachineId::new(3)).unwrap();
        let mb = b.machine(MachineId::new(3)).unwrap();
        assert_eq!(
            ma.usage(Metric::Cpu).unwrap().values(),
            mb.usage(Metric::Cpu).unwrap().values()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::new(SimConfig::small(1)).run().unwrap();
        let b = Simulation::new(SimConfig::small(2)).run().unwrap();
        let ma = a.machine(MachineId::new(0)).unwrap();
        let mb = b.machine(MachineId::new(0)).unwrap();
        assert_ne!(
            ma.usage(Metric::Cpu).unwrap().values(),
            mb.usage(Metric::Cpu).unwrap().values()
        );
    }

    #[test]
    fn scripted_job_appears_with_exact_shape() {
        let spec = JobSpec::parallel_tasks(
            JobId::new(6639),
            Timestamp::new(1000),
            vec![
                TaskSpec::steady(3, 600, 0.2, 0.2, 0.1),
                TaskSpec::steady(2, 1200, 0.2, 0.2, 0.1),
            ],
        );
        let mut cfg = SimConfig::small(3);
        cfg.workload.jobs_per_hour = 0.0; // only the scripted job
        let ds = Simulation::new(cfg).with_job(spec).run().unwrap();
        assert_eq!(ds.job_count(), 1);
        let job = ds.job(JobId::new(6639)).unwrap();
        assert_eq!(job.task_count(), 2);
        assert_eq!(job.instance_count(), 5);
        assert!(job.running_at(Timestamp::new(1100)));
    }

    #[test]
    fn duplicate_scripted_ids_rejected() {
        let j = |id| {
            JobSpec::single_task(
                JobId::new(id),
                Timestamp::ZERO,
                TaskSpec::steady(1, 100, 0.1, 0.1, 0.1),
            )
        };
        let sim = Simulation::new(SimConfig::small(0)).with_jobs([j(5), j(5)]);
        assert!(matches!(sim.run(), Err(SimError::InvalidSpec { .. })));
    }

    #[test]
    fn mass_shutdown_truncates_and_spares_survivors() {
        let victim = JobSpec::single_task(
            JobId::new(100),
            Timestamp::new(0),
            TaskSpec::steady(2, 5000, 0.2, 0.2, 0.1),
        );
        let survivor = JobSpec::single_task(
            JobId::new(11599),
            Timestamp::new(0),
            TaskSpec::steady(2, 5000, 0.2, 0.2, 0.1),
        );
        let mut cfg = SimConfig::small(4);
        cfg.workload.jobs_per_hour = 0.0;
        let (ds, truth) = Simulation::new(cfg)
            .with_jobs([victim, survivor])
            .with_mass_shutdown(Timestamp::new(2000), vec![JobId::new(11599)])
            .run_with_truth()
            .unwrap();

        let at_2100 = ds.jobs_running_at(Timestamp::new(2100));
        let ids: Vec<JobId> = at_2100.iter().map(|j| j.id()).collect();
        assert_eq!(ids, vec![JobId::new(11599)]);
        // Victim instances are cancelled at the shutdown time.
        let victim_job = ds.job(JobId::new(100)).unwrap();
        for task in victim_job.tasks() {
            for inst in task.instances() {
                assert_eq!(inst.record.status, TaskStatus::Cancelled);
                assert_eq!(inst.record.end_time, Timestamp::new(2000));
            }
        }
        assert_eq!(truth.shutdowns.len(), 1);
        // Usage reporting continues for affected machines after the event
        // (the paper's "general metrics still exist" observation).
        let m = victim_job.machines()[0];
        let mv = ds.machine(m).unwrap();
        assert!(mv.util_at(Timestamp::new(2500)).is_some());
    }

    #[test]
    fn pinned_jobs_land_on_their_machines() {
        let pins = vec![MachineId::new(1), MachineId::new(3)];
        let spec = JobSpec::single_task(
            JobId::new(7901),
            Timestamp::new(100),
            TaskSpec::steady(6, 500, 0.3, 0.3, 0.1),
        )
        .pinned_to(pins.clone());
        let mut cfg = SimConfig::small(5);
        cfg.workload.jobs_per_hour = 0.0;
        let ds = Simulation::new(cfg).with_job(spec).run().unwrap();
        let job = ds.job(JobId::new(7901)).unwrap();
        assert_eq!(job.machines(), pins);
    }

    #[test]
    fn load_phase_raises_utilization() {
        let mut cfg = SimConfig::small(6);
        cfg.workload.jobs_per_hour = 0.0;
        cfg.noise_sigma = 0.0;
        let window = TimeRange::new(Timestamp::new(3600), Timestamp::new(7200)).unwrap();
        let ds = Simulation::new(cfg)
            .with_load_phase(window, [0.4, 0.3, 0.2])
            .run()
            .unwrap();
        let m = ds.machine(MachineId::new(0)).unwrap();
        let cpu = m.usage(Metric::Cpu).unwrap();
        let early = cpu.stats_in(&TimeRange::new(Timestamp::ZERO, Timestamp::new(3600)).unwrap());
        let late = cpu.stats_in(&window);
        assert!(late.unwrap().mean > early.unwrap().mean + 0.3);
    }

    #[test]
    fn end_spike_peaks_near_job_end() {
        let spec = JobSpec::single_task(
            JobId::new(7901),
            Timestamp::new(1800),
            TaskSpec::steady(1, 2400, 0.1, 0.1, 0.05),
        )
        .with_anomaly(Anomaly::end_spike())
        .pinned_to(vec![MachineId::new(2)]);
        let mut cfg = SimConfig::small(8);
        cfg.workload.jobs_per_hour = 0.0;
        cfg.noise_sigma = 0.0;
        cfg.personality_spread = 0.0;
        cfg.walk_sigma = 0.0;
        let ds = Simulation::new(cfg).with_job(spec).run().unwrap();
        let m = ds.machine(MachineId::new(2)).unwrap();
        let cpu = m.usage(Metric::Cpu).unwrap();
        // Peak CPU sample should fall within ±2 samples of the job end (4200).
        let (peak_t, _) = cpu
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        let diff = (peak_t.seconds() - 4200).abs();
        assert!(diff <= 240, "peak at {peak_t}, expected near t4200");
    }

    #[test]
    fn thrashing_decouples_cpu_and_mem() {
        let spec = JobSpec::single_task(
            JobId::new(11939),
            Timestamp::new(600),
            TaskSpec::steady(4, 4000, 0.1, 0.1, 0.05),
        )
        .with_anomaly(Anomaly::thrashing())
        .pinned_to(vec![MachineId::new(1)]);
        let mut cfg = SimConfig::small(9);
        cfg.workload.jobs_per_hour = 0.0;
        cfg.noise_sigma = 0.0;
        let ds = Simulation::new(cfg).with_job(spec).run().unwrap();
        let m = ds.machine(MachineId::new(1)).unwrap();
        let win_late = TimeRange::new(Timestamp::new(3000), Timestamp::new(4500)).unwrap();
        let cpu_late = m
            .usage(Metric::Cpu)
            .unwrap()
            .stats_in(&win_late)
            .unwrap()
            .mean;
        let mem_late = m
            .usage(Metric::Memory)
            .unwrap()
            .stats_in(&win_late)
            .unwrap()
            .mean;
        assert!(
            mem_late > cpu_late + 0.3,
            "mem {mem_late} vs cpu {cpu_late}"
        );
    }

    #[test]
    fn truth_reports_coallocation() {
        let a = JobSpec::single_task(
            JobId::new(1),
            Timestamp::new(0),
            TaskSpec::steady(1, 1000, 0.1, 0.1, 0.1),
        )
        .pinned_to(vec![MachineId::new(5)]);
        let b = JobSpec::single_task(
            JobId::new(2),
            Timestamp::new(500),
            TaskSpec::steady(1, 1000, 0.1, 0.1, 0.1),
        )
        .pinned_to(vec![MachineId::new(5)]);
        let mut cfg = SimConfig::small(10);
        cfg.workload.jobs_per_hour = 0.0;
        let (_, truth) = Simulation::new(cfg)
            .with_jobs([a, b])
            .run_with_truth()
            .unwrap();
        assert_eq!(truth.coallocated_machines, vec![MachineId::new(5)]);
    }

    #[test]
    fn injected_failures_appear_as_machine_events() {
        use crate::MachineFailure;
        use batchlens_trace::{MachineEvent, TimeDelta};
        let mut cfg = SimConfig::small(12);
        cfg.workload.jobs_per_hour = 0.0;
        let fail = MachineFailure {
            machine: MachineId::new(2),
            at: Timestamp::new(1000),
            hard: true,
            recover_after: Some(TimeDelta::minutes(10)),
        };
        let ds = Simulation::new(cfg)
            .with_failures(vec![fail])
            .run()
            .unwrap();
        let m = ds.machine(MachineId::new(2)).unwrap();
        // Alive at start, dead after the crash, alive again after recovery.
        assert!(m.alive_at(Timestamp::new(500)));
        assert!(!m.alive_at(Timestamp::new(1200)));
        assert!(m.alive_at(Timestamp::new(2000)));
        // The events table carries a hard error and a remove.
        let kinds: Vec<MachineEvent> = ds
            .machine_events()
            .iter()
            .filter(|e| e.machine == MachineId::new(2))
            .map(|e| e.event)
            .collect();
        assert!(kinds.contains(&MachineEvent::HardError));
        assert!(kinds.contains(&MachineEvent::Remove));
    }

    #[test]
    fn straggler_extends_one_instance() {
        let spec = JobSpec::single_task(
            JobId::new(42),
            Timestamp::new(0),
            TaskSpec {
                instances: 4,
                duration: 600,
                footprint: crate::FootprintProfile::steady(0.1, 0.1, 0.1),
                start_jitter: 0,
                end_jitter: 0,
            },
        )
        .with_anomaly(Anomaly::Straggler { factor: 3.0 });
        let mut cfg = SimConfig::small(11);
        cfg.workload.jobs_per_hour = 0.0;
        let ds = Simulation::new(cfg).with_job(spec).run().unwrap();
        let job = ds.job(JobId::new(42)).unwrap();
        let task = job.tasks().next().unwrap();
        let ends: Vec<i64> = task
            .instances()
            .map(|i| i.record.end_time.seconds())
            .collect();
        assert_eq!(ends.iter().filter(|&&e| e == 1800).count(), 1);
        assert_eq!(ends.iter().filter(|&&e| e == 600).count(), 3);
    }
}
