//! Task dependency DAGs within a job.
//!
//! The Alibaba batch workloads are DAGs of tasks ("DAG batch workloads" in
//! the paper's Section II): a task may only start when all of its parents
//! have completed. This module provides a small adjacency-list DAG with
//! cycle detection and topological scheduling of task start offsets — the
//! mechanism that produces the paper's "same start timestamp but multiple
//! end timestamps" (chained tasks) and "four separated tasks ... same start
//! timestamp" (parallel tasks) annotation patterns.

use serde::{Deserialize, Serialize};

use crate::SimError;

/// A dependency DAG over task indices `0..n`.
///
/// Edges point parent → child; a child starts after all parents end.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TaskDag {
    n: usize,
    /// `edges[c]` lists the parents of child `c`.
    parents: Vec<Vec<usize>>,
}

impl TaskDag {
    /// A DAG of `n` independent (parallel) tasks.
    pub fn parallel(n: usize) -> Self {
        TaskDag {
            n,
            parents: vec![Vec::new(); n],
        }
    }

    /// A linear chain `0 → 1 → … → n-1`.
    pub fn chain(n: usize) -> Self {
        let mut parents = vec![Vec::new(); n];
        for (i, p) in parents.iter_mut().enumerate().skip(1) {
            p.push(i - 1);
        }
        TaskDag { n, parents }
    }

    /// A fan-out: task 0 is the root, tasks `1..n` all depend on it.
    pub fn fan_out(n: usize) -> Self {
        let mut parents = vec![Vec::new(); n];
        for p in parents.iter_mut().skip(1) {
            p.push(0);
        }
        TaskDag { n, parents }
    }

    /// Builds a DAG from explicit `(parent, child)` edges over `n` tasks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSpec`] for out-of-range indices, self
    /// loops, or cycles.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, SimError> {
        let mut parents = vec![Vec::new(); n];
        for &(p, c) in edges {
            if p >= n || c >= n {
                return Err(SimError::InvalidSpec {
                    message: format!("edge ({p}, {c}) out of range for {n} tasks"),
                });
            }
            if p == c {
                return Err(SimError::InvalidSpec {
                    message: format!("self loop on task {p}"),
                });
            }
            parents[c].push(p);
        }
        let dag = TaskDag { n, parents };
        dag.topo_order()?; // cycle check
        Ok(dag)
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the DAG has no tasks.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The parents of task `i`.
    pub fn parents_of(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// A topological order of the tasks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSpec`] when the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, SimError> {
        let mut indegree = vec![0usize; self.n];
        let mut children = vec![Vec::new(); self.n];
        for (c, ps) in self.parents.iter().enumerate() {
            indegree[c] = ps.len();
            for &p in ps {
                children[p].push(c);
            }
        }
        let mut queue: Vec<usize> = (0..self.n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(i) = queue.pop() {
            order.push(i);
            for &c in &children[i] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() != self.n {
            return Err(SimError::InvalidSpec {
                message: "task dependency graph has a cycle".into(),
            });
        }
        Ok(order)
    }

    /// Computes each task's start offset given per-task durations: a task
    /// starts at the max end time of its parents (0 for roots). Returns
    /// `(start_offset, end_offset)` pairs in seconds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSpec`] on cycles or when `durations`
    /// disagrees in length.
    pub fn schedule(&self, durations: &[i64]) -> Result<Vec<(i64, i64)>, SimError> {
        if durations.len() != self.n {
            return Err(SimError::InvalidSpec {
                message: format!("{} durations for {} tasks", durations.len(), self.n),
            });
        }
        let order = self.topo_order()?;
        let mut windows = vec![(0i64, 0i64); self.n];
        for &i in &order {
            let start = self.parents[i]
                .iter()
                .map(|&p| windows[p].1)
                .max()
                .unwrap_or(0);
            windows[i] = (start, start + durations[i].max(0));
        }
        Ok(windows)
    }

    /// The length of the critical path under the given durations.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TaskDag::schedule`].
    pub fn critical_path(&self, durations: &[i64]) -> Result<i64, SimError> {
        Ok(self
            .schedule(durations)?
            .iter()
            .map(|&(_, end)| end)
            .max()
            .unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_tasks_all_start_at_zero() {
        let dag = TaskDag::parallel(4);
        let w = dag.schedule(&[100, 200, 300, 50]).unwrap();
        assert!(w.iter().all(|&(s, _)| s == 0));
        // Paper Fig 3(a), job_6639: same start, multiple ends.
        let ends: Vec<i64> = w.iter().map(|&(_, e)| e).collect();
        assert_eq!(ends, vec![100, 200, 300, 50]);
    }

    #[test]
    fn chain_serializes_starts() {
        let dag = TaskDag::chain(3);
        let w = dag.schedule(&[100, 50, 25]).unwrap();
        assert_eq!(w, vec![(0, 100), (100, 150), (150, 175)]);
        assert_eq!(dag.critical_path(&[100, 50, 25]).unwrap(), 175);
    }

    #[test]
    fn fan_out_waits_for_root() {
        let dag = TaskDag::fan_out(3);
        let w = dag.schedule(&[60, 10, 20]).unwrap();
        assert_eq!(w[0], (0, 60));
        assert_eq!(w[1], (60, 70));
        assert_eq!(w[2], (60, 80));
    }

    #[test]
    fn diamond_takes_max_parent_end() {
        // 0 → 1, 0 → 2, {1,2} → 3
        let dag = TaskDag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let w = dag.schedule(&[10, 100, 20, 5]).unwrap();
        assert_eq!(w[3].0, 110); // waits for the slower branch
    }

    #[test]
    fn cycles_and_bad_edges_rejected() {
        assert!(TaskDag::from_edges(2, &[(0, 1), (1, 0)]).is_err());
        assert!(TaskDag::from_edges(2, &[(0, 0)]).is_err());
        assert!(TaskDag::from_edges(2, &[(0, 5)]).is_err());
    }

    #[test]
    fn duration_length_mismatch_rejected() {
        let dag = TaskDag::parallel(3);
        assert!(dag.schedule(&[1, 2]).is_err());
    }

    #[test]
    fn empty_dag() {
        let dag = TaskDag::parallel(0);
        assert!(dag.is_empty());
        assert_eq!(dag.schedule(&[]).unwrap(), vec![]);
        assert_eq!(dag.critical_path(&[]).unwrap(), 0);
    }

    #[test]
    fn topo_order_is_valid() {
        let dag = TaskDag::from_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]).unwrap();
        let order = dag.topo_order().unwrap();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        assert!(pos(2) < pos(4));
    }
}
