//! Instance placement policies.
//!
//! The trace's co-allocation patterns — the same machine executing instances
//! of several jobs at once, which BatchLens surfaces with dotted links —
//! emerge from how the scheduler packs instances onto machines. Three
//! classic policies are provided; all operate on a per-machine snapshot of
//! current load (active instance count at the placement time).

use std::fmt;

/// A placement policy: given per-machine active-instance counts, pick the
/// machine index for the next instance.
///
/// Implementations are deterministic; any tie-breaking is by lowest index so
/// simulation runs are reproducible.
pub trait Scheduler: fmt::Debug {
    /// Picks a machine index in `0..loads.len()`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `loads` is empty; the engine never
    /// calls with an empty cluster.
    fn pick(&mut self, loads: &[u32]) -> usize;

    /// Policy name for reports and benches.
    fn name(&self) -> &'static str;
}

/// Places each instance on the machine with the fewest active instances
/// (spreading / load balancing — the default, and the reason the paper's
/// Fig 3(a) shows "uniform color distribution due to the load balance").
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl Scheduler for LeastLoaded {
    fn pick(&mut self, loads: &[u32]) -> usize {
        assert!(!loads.is_empty(), "cannot schedule on an empty cluster");
        let mut best = 0usize;
        for (i, &l) in loads.iter().enumerate() {
            if l < loads[best] {
                best = i;
            }
        }
        best
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Cycles through machines regardless of load.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at machine 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, loads: &[u32]) -> usize {
        assert!(!loads.is_empty(), "cannot schedule on an empty cluster");
        let i = self.next % loads.len();
        self.next = self.next.wrapping_add(1);
        i
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Fills the busiest machine that still has headroom (`< cap` active
/// instances); falls back to the least-loaded machine when all are at cap.
/// Packing concentrates co-allocation, making shared-node links denser.
#[derive(Debug, Clone, Copy)]
pub struct Packing {
    cap: u32,
}

impl Packing {
    /// Creates a packing scheduler with the given per-machine instance cap.
    pub fn new(cap: u32) -> Self {
        Packing { cap: cap.max(1) }
    }
}

impl Default for Packing {
    fn default() -> Self {
        Packing::new(48)
    }
}

impl Scheduler for Packing {
    fn pick(&mut self, loads: &[u32]) -> usize {
        assert!(!loads.is_empty(), "cannot schedule on an empty cluster");
        let mut best: Option<usize> = None;
        for (i, &l) in loads.iter().enumerate() {
            if l < self.cap {
                match best {
                    Some(b) if loads[b] >= l => {}
                    _ => best = Some(i),
                }
            }
        }
        best.unwrap_or_else(|| LeastLoaded.pick(loads))
    }

    fn name(&self) -> &'static str {
        "packing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_spreads() {
        let mut s = LeastLoaded;
        let mut loads = vec![0u32; 4];
        for _ in 0..8 {
            let i = s.pick(&loads);
            loads[i] += 1;
        }
        assert_eq!(loads, vec![2, 2, 2, 2]);
    }

    #[test]
    fn least_loaded_breaks_ties_low_index() {
        let mut s = LeastLoaded;
        assert_eq!(s.pick(&[3, 1, 1, 2]), 1);
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::new();
        let loads = vec![0u32; 3];
        let picks: Vec<usize> = (0..6).map(|_| s.pick(&loads)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn packing_concentrates_until_cap() {
        let mut s = Packing::new(3);
        let mut loads = vec![0u32; 3];
        for _ in 0..3 {
            let i = s.pick(&loads);
            loads[i] += 1;
        }
        // All three went to the same machine.
        assert!(loads.contains(&3));
        assert_eq!(loads.iter().sum::<u32>(), 3);
        // Next pick must go elsewhere (machine at cap).
        let i = s.pick(&loads);
        assert_eq!(loads[i], 0);
    }

    #[test]
    fn packing_falls_back_when_all_full() {
        let mut s = Packing::new(1);
        let loads = vec![5u32, 4, 6];
        assert_eq!(s.pick(&loads), 1); // least loaded fallback
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn empty_cluster_panics() {
        LeastLoaded.pick(&[]);
    }
}
