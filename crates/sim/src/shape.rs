//! Utilization footprint shapes.
//!
//! Every running instance contributes load to its machine. The contribution
//! over the instance's lifetime is described by a [`Shape`] per metric,
//! evaluated at normalized progress `p ∈ [0, 1]` (0 = instance start,
//! 1 = instance end). Shapes are what make the paper's case-study patterns
//! visible in line charts:
//!
//! * a normal task is a [`Shape::RampPlateau`] — quick ramp, steady level
//!   (Fig 3(a): "fairly constant with only small increase"),
//! * the Fig 3(b) anomaly is a [`Shape::SpikeToEnd`] — utilization climbs
//!   through the run, *peaks exactly when the job execution is over*, then
//!   decays back after the end (the tail extends beyond `p = 1`),
//! * the Fig 3(c) thrashing signature combines a high flat memory shape with
//!   a [`Shape::Collapse`] CPU shape — CPU falls away while memory stays
//!   pinned.

use serde::{Deserialize, Serialize};

/// A scalar load contribution over normalized instance progress.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// Constant `level` for the whole run.
    Constant {
        /// Contribution level.
        level: f64,
    },
    /// Linear ramp from 0 to `level` over the first `ramp` fraction of the
    /// run, flat `level` afterwards, symmetric ramp-down over the last
    /// `ramp` fraction.
    RampPlateau {
        /// Plateau contribution level.
        level: f64,
        /// Fraction of the run spent ramping on each side, `0..=0.5`.
        ramp: f64,
    },
    /// Grows from `base` to `peak` over the run, peaking at the end; after
    /// the instance ends the contribution decays exponentially with time
    /// constant `tail` (fraction of the run length).
    SpikeToEnd {
        /// Starting contribution.
        base: f64,
        /// Contribution at the moment the instance ends.
        peak: f64,
        /// Post-end exponential decay constant as a fraction of run length.
        tail: f64,
    },
    /// Starts at `from` and decays exponentially toward `to` (thrashing CPU:
    /// the system stops making progress).
    Collapse {
        /// Initial contribution.
        from: f64,
        /// Asymptotic contribution.
        to: f64,
        /// How many e-foldings fit in the run; larger = faster collapse.
        rate: f64,
    },
    /// Linear interpolation from `from` to `to` (memory leak).
    Linear {
        /// Contribution at `p = 0`.
        from: f64,
        /// Contribution at `p = 1`.
        to: f64,
    },
}

impl Shape {
    /// Evaluates the contribution at progress `p`.
    ///
    /// `p` may exceed 1.0: shapes with a post-end tail ([`Shape::SpikeToEnd`])
    /// return their decayed value, all others return 0 past the end. Negative
    /// `p` (before start) always returns 0.
    pub fn eval(&self, p: f64) -> f64 {
        if p < 0.0 {
            return 0.0;
        }
        match *self {
            Shape::Constant { level } => {
                if p <= 1.0 {
                    level
                } else {
                    0.0
                }
            }
            Shape::RampPlateau { level, ramp } => {
                if p > 1.0 {
                    return 0.0;
                }
                let ramp = ramp.clamp(0.0, 0.5);
                if ramp == 0.0 {
                    return level;
                }
                if p < ramp {
                    level * (p / ramp)
                } else if p > 1.0 - ramp {
                    level * ((1.0 - p) / ramp)
                } else {
                    level
                }
            }
            Shape::SpikeToEnd { base, peak, tail } => {
                if p <= 1.0 {
                    // Quadratic growth reads as "drastic fluctuation then spike".
                    base + (peak - base) * p * p
                } else {
                    let tail = tail.max(1e-6);
                    peak * (-(p - 1.0) / tail).exp()
                }
            }
            Shape::Collapse { from, to, rate } => {
                if p > 1.0 {
                    return 0.0;
                }
                to + (from - to) * (-rate * p).exp()
            }
            Shape::Linear { from, to } => {
                if p > 1.0 {
                    return 0.0;
                }
                from + (to - from) * p
            }
        }
    }

    /// True when the shape still contributes after the instance end
    /// (needed by the engine to know how far past `end` to keep adding).
    pub fn has_tail(&self) -> bool {
        matches!(self, Shape::SpikeToEnd { .. })
    }

    /// Mean contribution over the run `[0, 1]`, sampled; used to fill the
    /// `cpu_avg`/`mem_avg` columns of `batch_instance` records.
    pub fn mean(&self) -> f64 {
        const N: usize = 64;
        (0..N)
            .map(|i| self.eval((i as f64 + 0.5) / N as f64))
            .sum::<f64>()
            / N as f64
    }

    /// Peak contribution over the run `[0, 1]`, sampled; fills the
    /// `cpu_max`/`mem_max` columns.
    pub fn max(&self) -> f64 {
        const N: usize = 64;
        (0..=N)
            .map(|i| self.eval(i as f64 / N as f64))
            .fold(0.0, f64::max)
    }
}

/// Per-metric footprint of one instance: CPU, memory and disk shapes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FootprintProfile {
    /// CPU contribution shape.
    pub cpu: Shape,
    /// Memory contribution shape.
    pub mem: Shape,
    /// Disk I/O contribution shape.
    pub disk: Shape,
}

impl FootprintProfile {
    /// A steady batch-work footprint at roughly the given per-metric levels.
    pub fn steady(cpu: f64, mem: f64, disk: f64) -> Self {
        FootprintProfile {
            cpu: Shape::RampPlateau {
                level: cpu,
                ramp: 0.08,
            },
            mem: Shape::RampPlateau {
                level: mem,
                ramp: 0.05,
            },
            disk: Shape::RampPlateau {
                level: disk,
                ramp: 0.10,
            },
        }
    }

    /// The Fig 3(b) anomaly: CPU and memory spike, peaking at job end,
    /// decaying afterwards. Disk stays modest.
    pub fn end_spike(cpu_peak: f64, mem_peak: f64) -> Self {
        FootprintProfile {
            cpu: Shape::SpikeToEnd {
                base: cpu_peak * 0.35,
                peak: cpu_peak,
                tail: 0.35,
            },
            mem: Shape::SpikeToEnd {
                base: mem_peak * 0.40,
                peak: mem_peak,
                tail: 0.45,
            },
            disk: Shape::RampPlateau {
                level: 0.10,
                ramp: 0.1,
            },
        }
    }

    /// The Fig 3(c) thrashing signature: memory pinned high, CPU collapsing
    /// as the machine stops making progress, disk busy with paging.
    pub fn thrashing(mem_level: f64, cpu_initial: f64, cpu_floor: f64) -> Self {
        FootprintProfile {
            cpu: Shape::Collapse {
                from: cpu_initial,
                to: cpu_floor,
                rate: 4.0,
            },
            mem: Shape::Constant { level: mem_level },
            disk: Shape::Constant { level: 0.45 },
        }
    }

    /// A memory-leak footprint: memory grows linearly through the run.
    pub fn memory_leak(mem_from: f64, mem_to: f64, cpu: f64) -> Self {
        FootprintProfile {
            cpu: Shape::RampPlateau {
                level: cpu,
                ramp: 0.08,
            },
            mem: Shape::Linear {
                from: mem_from,
                to: mem_to,
            },
            disk: Shape::RampPlateau {
                level: 0.08,
                ramp: 0.1,
            },
        }
    }

    /// The shape for a given metric index (`0` cpu, `1` mem, `2` disk).
    ///
    /// # Panics
    ///
    /// Panics on indexes above 2.
    pub fn by_index(&self, index: usize) -> Shape {
        match index {
            0 => self.cpu,
            1 => self.mem,
            2 => self.disk,
            other => panic!("metric index {other} out of range"),
        }
    }

    /// True when any metric has a post-end tail.
    pub fn has_tail(&self) -> bool {
        self.cpu.has_tail() || self.mem.has_tail() || self.disk.has_tail()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat_and_ends() {
        let s = Shape::Constant { level: 0.4 };
        assert_eq!(s.eval(0.0), 0.4);
        assert_eq!(s.eval(1.0), 0.4);
        assert_eq!(s.eval(1.01), 0.0);
        assert_eq!(s.eval(-0.1), 0.0);
    }

    #[test]
    fn ramp_plateau_profile() {
        let s = Shape::RampPlateau {
            level: 0.6,
            ramp: 0.1,
        };
        assert_eq!(s.eval(0.0), 0.0);
        assert!((s.eval(0.05) - 0.3).abs() < 1e-12);
        assert_eq!(s.eval(0.5), 0.6);
        assert!((s.eval(0.95) - 0.3).abs() < 1e-12);
        assert!(s.eval(1.0).abs() < 1e-12);
    }

    #[test]
    fn ramp_plateau_degenerate_ramp() {
        let s = Shape::RampPlateau {
            level: 0.6,
            ramp: 0.0,
        };
        assert_eq!(s.eval(0.5), 0.6);
        // ramp is clamped to 0.5 at most
        let s = Shape::RampPlateau {
            level: 0.6,
            ramp: 0.9,
        };
        assert!((s.eval(0.5) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn spike_peaks_at_end_and_decays() {
        let s = Shape::SpikeToEnd {
            base: 0.2,
            peak: 0.9,
            tail: 0.5,
        };
        assert!((s.eval(0.0) - 0.2).abs() < 1e-12);
        assert!((s.eval(1.0) - 0.9).abs() < 1e-12);
        // Monotone growth during the run.
        assert!(s.eval(0.5) < s.eval(0.9));
        // Decays after the end but is still positive (the paper's "slow drop").
        let after = s.eval(1.2);
        assert!(after > 0.0 && after < 0.9);
        assert!(s.eval(2.0) < after);
        assert!(s.has_tail());
    }

    #[test]
    fn collapse_falls_toward_floor() {
        let s = Shape::Collapse {
            from: 0.8,
            to: 0.1,
            rate: 4.0,
        };
        assert!((s.eval(0.0) - 0.8).abs() < 1e-12);
        assert!(s.eval(0.5) < 0.35);
        assert!(s.eval(1.0) > 0.1 && s.eval(1.0) < 0.15);
        assert!(!s.has_tail());
    }

    #[test]
    fn linear_interpolates() {
        let s = Shape::Linear { from: 0.1, to: 0.5 };
        assert!((s.eval(0.5) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mean_and_max_are_sane() {
        let flat = Shape::Constant { level: 0.4 };
        assert!((flat.mean() - 0.4).abs() < 1e-9);
        assert!((flat.max() - 0.4).abs() < 1e-9);
        let spike = Shape::SpikeToEnd {
            base: 0.2,
            peak: 0.9,
            tail: 0.3,
        };
        assert!(spike.mean() > 0.2 && spike.mean() < 0.9);
        assert!((spike.max() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn profiles_expose_expected_signatures() {
        let t = FootprintProfile::thrashing(0.9, 0.7, 0.1);
        // Memory stays pinned while CPU collapses: the detector's signature.
        assert!(t.mem.eval(0.9) > 0.85);
        assert!(t.cpu.eval(0.9) < 0.2);
        let s = FootprintProfile::end_spike(0.8, 0.7);
        assert!(s.has_tail());
        assert!(!t.has_tail());
    }

    #[test]
    #[should_panic(expected = "metric index")]
    fn by_index_panics_out_of_range() {
        FootprintProfile::steady(0.1, 0.1, 0.1).by_index(3);
    }
}
