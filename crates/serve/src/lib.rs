//! # batchlens-serve
//!
//! A multi-session HTTP serving layer over one shared
//! [`batchlens::BatchLens`] — the "deploy it as a team dashboard" face of
//! the BatchLens reproduction (DATE 2022).
//!
//! One process holds one lens (batch, or attached to a live
//! [`batchlens::stream::StreamMonitor`]); any number of dashboard
//! sessions connect over plain HTTP/1.1 and independently scrub, select,
//! brush, render and poll alerts. The layer is built from five pieces:
//!
//! * [`codec`] — a hand-rolled HTTP/1.1 subset (request-line + headers +
//!   `Content-Length` bodies, keep-alive), server and client halves;
//! * [`session`] — the [`session::SessionManager`] multiplexing
//!   per-session [`batchlens::ViewState`]s over the shared lens, with
//!   every render and frame query going through **one**
//!   [`batchlens::BatchLens::frame_at`] capture per request (the frame
//!   cache deduplicates concurrent sessions onto one capture);
//! * [`cursor`] — [`cursor::AlertCursor`], a non-destructive,
//!   independently positioned reader over the monitor's retained alert
//!   buffer that observes eviction gaps instead of silently skipping;
//! * [`server`] — the [`std::net::TcpListener`] accept loop and a
//!   bounded worker pool built on [`batchlens_exec::run_workers`];
//! * [`router`] + [`stats`] — endpoint dispatch and the `/statsz`
//!   observability payload (per-session request counts, frame-cache hit
//!   rate, worker-pool queue depth).
//!
//! ## Example
//!
//! ```
//! use batchlens::BatchLens;
//! use batchlens_serve::session::SessionManager;
//! use batchlens_serve::server::{ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let ds = batchlens_sim::scenario::fig3b(1).run().unwrap();
//! let manager = Arc::new(SessionManager::new(Arc::new(BatchLens::new(ds))));
//! let server = Arc::new(Server::bind(
//!     ("127.0.0.1", 0),
//!     manager,
//!     ServeConfig::default(),
//! ).unwrap());
//! let handle = server.handle();
//! let runner = Arc::clone(&server);
//! let join = std::thread::spawn(move || runner.serve());
//! // ... speak HTTP to server.local_addr() ...
//! handle.shutdown();
//! join.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod cursor;
pub mod router;
pub mod server;
pub mod session;
pub mod stats;

pub use cursor::AlertCursor;
pub use server::{ServeConfig, Server, ServerHandle};
pub use session::{SessionConfig, SessionError, SessionManager};
pub use stats::ServeStats;
