//! Server observability: the counters behind the `/statsz` endpoint.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use crate::session::{SessionManager, SessionStats};

/// Shared atomic counters the accept loop, workers and router all update.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests served, across all sessions and endpoints.
    total_requests: AtomicU64,
    /// Connections accepted.
    connections: AtomicU64,
    /// Connections currently queued between the accept loop and the
    /// worker pool (the pool's backlog depth).
    queue_depth: AtomicUsize,
    /// Requests rejected with a 4xx status.
    client_errors: AtomicU64,
    /// Connections shed with `503 + Retry-After` because the queue was
    /// full when they arrived.
    connections_shed: AtomicU64,
    /// Request handlers that panicked and were caught (`catch_unwind`).
    worker_panics: AtomicU64,
    /// Responses whose write failed or timed out partway (slow clients).
    write_timeouts: AtomicU64,
    /// Requests that overran the per-request deadline.
    deadlines_exceeded: AtomicU64,
}

impl ServeStats {
    /// A zeroed counter set.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// Counts one routed request (and its status class).
    pub fn record_request(&self, status: u16) {
        self.total_requests.fetch_add(1, Ordering::Relaxed);
        if (400..500).contains(&status) {
            self.client_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one accepted connection entering the queue.
    pub fn connection_queued(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection leaving the queue for a worker.
    pub fn connection_claimed(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts one connection shed with `503 + Retry-After`.
    pub fn connection_shed(&self) {
        self.connections_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one caught request-handler panic.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one response write that failed or timed out partway.
    pub fn record_write_timeout(&self) {
        self.write_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request that overran its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// The current accept-to-worker queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Connections shed so far.
    pub fn connections_shed(&self) -> u64 {
        self.connections_shed.load(Ordering::Relaxed)
    }

    /// Caught handler panics so far.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Requests served so far.
    pub fn total_requests(&self) -> u64 {
        self.total_requests.load(Ordering::Relaxed)
    }

    /// Builds the `/statsz` payload from these counters plus the session
    /// manager's per-session rows and the lens's cache counters.
    pub fn snapshot(&self, manager: &SessionManager, workers: usize) -> StatszPayload {
        let (frame_hits, frame_misses) = manager.lens().frame_cache_stats();
        let (snap_hits, snap_misses) = manager.lens().snapshot_cache_stats();
        let total = frame_hits + frame_misses;
        StatszPayload {
            total_requests: self.total_requests.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            client_errors: self.client_errors.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            write_timeouts: self.write_timeouts.load(Ordering::Relaxed),
            deadlines_exceeded: self.deadlines_exceeded.load(Ordering::Relaxed),
            degraded: manager.degraded(),
            stale_served: manager.stale_served_total(),
            sessions_evicted: manager.evicted_total(),
            live: manager.lens().live_source().is_some(),
            wal_healthy: manager.lens().live_source().is_none_or(|s| s.wal_healthy()),
            shard_wal_errors: manager
                .lens()
                .live_source()
                .map_or_else(Vec::new, |s| s.shard_wal_errors()),
            shard_ingested: manager
                .lens()
                .live_source()
                .map_or_else(Vec::new, |s| s.shard_ingested()),
            worker_pool: WorkerPoolStats {
                workers,
                queue_depth: self.queue_depth(),
            },
            frame_cache: CacheStats {
                hits: frame_hits,
                misses: frame_misses,
                hit_rate: if total == 0 {
                    0.0
                } else {
                    frame_hits as f64 / total as f64
                },
            },
            snapshot_cache: CacheStats {
                hits: snap_hits,
                misses: snap_misses,
                hit_rate: if snap_hits + snap_misses == 0 {
                    0.0
                } else {
                    snap_hits as f64 / (snap_hits + snap_misses) as f64
                },
            },
            sessions: manager.session_stats(),
        }
    }
}

/// Hit/miss counters for one shared cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to compute.
    pub misses: u64,
    /// `hits / (hits + misses)`, 0 when empty.
    pub hit_rate: f64,
}

/// Worker-pool observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerPoolStats {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Connections queued waiting for a worker, right now.
    pub queue_depth: usize,
}

/// The `/statsz` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatszPayload {
    /// Requests served, across all sessions and endpoints.
    pub total_requests: u64,
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Requests answered with a 4xx status.
    pub client_errors: u64,
    /// Connections shed with `503 + Retry-After` (queue full on arrival).
    pub connections_shed: u64,
    /// Request-handler panics caught by the worker supervision.
    pub worker_panics: u64,
    /// Response writes that failed or timed out partway.
    pub write_timeouts: u64,
    /// Requests that overran the per-request deadline.
    pub deadlines_exceeded: u64,
    /// Whether frame serving is currently degraded (last-good frames).
    pub degraded: bool,
    /// Stale (last good) frames served instead of fresh captures.
    pub stale_served: u64,
    /// Idle sessions evicted by the TTL sweep.
    pub sessions_evicted: u64,
    /// Whether the lens is live-monitor-backed (single or sharded).
    pub live: bool,
    /// Whether **every** attached WAL is healthy. `false` as soon as any
    /// shard's log has a failed append — mirrored by `/readyz` going 503.
    /// Vacuously `true` without a live source.
    pub wal_healthy: bool,
    /// Failed WAL appends per shard, indexed by shard id. One entry for a
    /// single (unsharded) monitor; empty without a live source. A nonzero
    /// entry pinpoints *which* shard's log is lossy.
    pub shard_wal_errors: Vec<u64>,
    /// Records ingested per shard, indexed by shard id — the routing
    /// balance observability for sharded ingestion. One entry for a
    /// single monitor; empty without a live source.
    pub shard_ingested: Vec<u64>,
    /// Worker-pool depth observability.
    pub worker_pool: WorkerPoolStats,
    /// The shared frame cache — `hit_rate` is the fraction of frame
    /// requests that shared another request's capture.
    pub frame_cache: CacheStats,
    /// The snapshot/co-allocation cache.
    pub snapshot_cache: CacheStats,
    /// Per-session request counts and cursor positions.
    pub sessions: Vec<SessionStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens::BatchLens;
    use batchlens_sim::scenario;
    use std::sync::Arc;

    #[test]
    fn snapshot_reports_queue_and_cache_state() {
        let ds = scenario::fig3b(12).run().unwrap();
        let manager = SessionManager::new(Arc::new(BatchLens::new(ds)));
        let stats = ServeStats::new();
        stats.connection_queued();
        stats.connection_queued();
        stats.connection_claimed();
        stats.record_request(200);
        stats.record_request(404);
        stats.connection_shed();
        stats.record_worker_panic();
        stats.record_write_timeout();
        stats.record_deadline_exceeded();
        let id = manager.create().session;
        manager.frame_info(id).unwrap();
        manager.frame_info(id).unwrap();
        let payload = stats.snapshot(&manager, 4);
        assert_eq!(payload.total_requests, 2);
        assert_eq!(payload.client_errors, 1);
        assert_eq!(payload.connections, 2);
        assert_eq!(payload.worker_pool.queue_depth, 1);
        assert_eq!(payload.worker_pool.workers, 4);
        assert_eq!(payload.frame_cache.hits, 1);
        assert_eq!(payload.frame_cache.misses, 1);
        assert!((payload.frame_cache.hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(payload.connections_shed, 1);
        assert_eq!(payload.worker_panics, 1);
        assert_eq!(payload.write_timeouts, 1);
        assert_eq!(payload.deadlines_exceeded, 1);
        assert!(!payload.degraded);
        assert_eq!(payload.stale_served, 0);
        assert_eq!(payload.sessions_evicted, 0);
        assert_eq!(payload.sessions.len(), 1);
        assert_eq!(payload.sessions[0].requests, 2);
        // The payload is JSON-serializable end to end.
        let json = serde_json::to_string(&payload).unwrap();
        assert!(json.contains("\"frame_cache\""));
    }
}
