//! Multi-session state over one shared [`BatchLens`].
//!
//! The manager multiplexes N independent dashboard sessions over a single
//! lens (batch or live-monitor-attached). Each session owns its own
//! [`ViewState`] and [`SessionLog`] — what the user is looking at — plus a
//! non-destructive [`AlertCursor`] over the attached monitor's retained
//! alert buffer. Everything derived from the *data* is shared through the
//! lens: renders and frame queries go through exactly one
//! [`BatchLens::frame_at`] capture per request, so concurrent sessions
//! viewing the same instant of the same source state share one immutable
//! frame (see the frame-cache sharing rule on [`BatchLens::frame_at`]).

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use batchlens::interaction::{reduce, Event};
use batchlens::render::ascii::AsciiCanvas;
use batchlens::render::dashboard::Dashboard;
use batchlens::render::svg::to_svg;
use batchlens::stream::Alert;
use batchlens::{BatchLens, SessionLog, ViewState};
use batchlens_trace::{JobId, MachineId, QueryFrame, TimeRange, Timestamp};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::cursor::AlertCursor;

/// Failpoint site evaluated before every real frame capture — arming it
/// simulates a failing or slow frame source (see `capture_frame`).
pub const FAILPOINT_CAPTURE: &str = "serve.capture";

/// A request referenced a session the manager does not hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownSession(
    /// The session id the request named.
    pub u64,
);

impl std::fmt::Display for UnknownSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown session {}", self.0)
    }
}

impl std::error::Error for UnknownSession {}

/// Why a frame-backed request could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The request named a session the manager does not hold.
    Unknown(u64),
    /// The frame source failed and the session holds no last good frame
    /// to degrade to — the request maps to `503`.
    Unavailable,
}

impl From<UnknownSession> for SessionError {
    fn from(e: UnknownSession) -> SessionError {
        SessionError::Unknown(e.0)
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Unknown(id) => write!(f, "unknown session {id}"),
            SessionError::Unavailable => write!(f, "frame source unavailable"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Robustness knobs for [`SessionManager`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Sessions idle longer than this are evicted by the opportunistic
    /// sweep (on creates and `/statsz` snapshots). `None` disables
    /// eviction.
    pub idle_ttl: Option<Duration>,
    /// A frame capture taking longer than this flips the manager into
    /// degraded mode (serve-last-good). `None` disables the budget.
    pub frame_budget: Option<Duration>,
    /// In degraded mode, every `probe_every`-th frame request attempts a
    /// real capture; a success within budget leaves degraded mode.
    /// Clamped to at least 1.
    pub probe_every: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            idle_ttl: Some(Duration::from_secs(600)),
            frame_budget: None,
            probe_every: 8,
        }
    }
}

/// One dashboard session's private state.
#[derive(Debug)]
struct Session {
    view: ViewState,
    log: SessionLog,
    cursor: AlertCursor,
    requests: u64,
    /// The most recent successful capture — what degraded mode serves.
    last_frame: Option<Arc<QueryFrame>>,
    /// When the session last served a request (eviction clock).
    last_used: Instant,
}

/// The response body of session creation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCreated {
    /// The new session's id.
    pub session: u64,
    /// The session's initial snapshot timestamp.
    pub at: Timestamp,
    /// The view extent (the dataset span).
    pub extent: TimeRange,
    /// The alert sequence number the session's cursor starts at.
    pub cursor: u64,
}

/// The view state summary returned by interaction requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewSummary {
    /// The session id.
    pub session: u64,
    /// Whether the event changed the view.
    pub changed: bool,
    /// The selected snapshot timestamp.
    pub at: Timestamp,
    /// The selected job, when one is selected.
    pub selected_job: Option<JobId>,
    /// The hovered machine, when one is hovered.
    pub hovered_machine: Option<MachineId>,
    /// The active brush window, when one is set.
    pub brush: Option<TimeRange>,
    /// Jobs pinned into the detail sidebar.
    pub pinned: Vec<JobId>,
    /// Whether the anomaly overlay is on.
    pub anomalies: bool,
    /// Events recorded in this session's log so far.
    pub events: usize,
}

/// One transactional frame capture, summarized as JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameInfo {
    /// The session id.
    pub session: u64,
    /// The instant the frame captures.
    pub at: Timestamp,
    /// The source state version the frame saw (0 = batch dataset).
    pub version: u64,
    /// Jobs with at least one running instance, ascending.
    pub jobs_running: Vec<JobId>,
    /// Running `(job, task, machine)` placements, as a count.
    pub running_instances: usize,
    /// Machines alive at the instant, ascending.
    pub machines_active: Vec<MachineId>,
    /// All machines the source knows, as a count.
    pub machines_known: usize,
    /// Mean CPU utilization across machines with a sample (when any).
    pub mean_cpu: Option<f64>,
    /// Mean memory utilization across machines with a sample (when any).
    pub mean_mem: Option<f64>,
    /// Whether this is a *last good* frame served in degraded mode rather
    /// than a fresh capture (mirrored by the `x-batchlens-stale` response
    /// header).
    pub stale: bool,
}

/// The response body of an alert poll.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertsPayload {
    /// The session id.
    pub session: u64,
    /// Whether the lens has a live monitor attached at all.
    pub live: bool,
    /// Newly observed alerts, in firing order.
    pub alerts: Vec<Alert>,
    /// The cursor position after this poll.
    pub next_seq: u64,
    /// Alerts evicted before this poll could read them (this poll only).
    pub missed: u64,
    /// Alerts delivered through this session's cursor, in total.
    pub delivered_total: u64,
    /// Alerts this session's cursor missed, in total.
    pub missed_total: u64,
}

/// Per-session observability for `/statsz`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// The session id.
    pub id: u64,
    /// Requests this session has served.
    pub requests: u64,
    /// The session's alert cursor position.
    pub cursor: u64,
    /// Alerts the session's cursor missed in total.
    pub missed: u64,
}

/// Multiplexes dashboard sessions over one shared [`BatchLens`].
///
/// Thread-safe by construction: the session table is a mutex over
/// per-session mutexes, so requests for *different* sessions run
/// concurrently (sharing frame captures through the lens cache) while two
/// requests for the *same* session serialize — a session is one dashboard,
/// and its view must not interleave mid-request.
#[derive(Debug)]
pub struct SessionManager {
    lens: Arc<BatchLens>,
    cfg: SessionConfig,
    sessions: Mutex<BTreeMap<u64, Arc<Mutex<Session>>>>,
    next_id: AtomicU64,
    /// Serving last-good frames instead of capturing (see `capture_frame`).
    degraded: AtomicBool,
    /// Frame requests answered while degraded, for probe scheduling.
    degraded_requests: AtomicU64,
    /// Stale (last good) frames served, in total.
    stale_served: AtomicU64,
    /// Idle sessions evicted, in total.
    evicted: AtomicU64,
}

impl SessionManager {
    /// A manager over `lens` with default [`SessionConfig`]. The lens is
    /// never mutated — sessions carry their own view state and only use
    /// the lens's shared query/render surface.
    pub fn new(lens: Arc<BatchLens>) -> SessionManager {
        SessionManager::with_config(lens, SessionConfig::default())
    }

    /// A manager over `lens` with explicit robustness knobs.
    pub fn with_config(lens: Arc<BatchLens>, cfg: SessionConfig) -> SessionManager {
        SessionManager {
            lens,
            cfg,
            sessions: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            degraded: AtomicBool::new(false),
            degraded_requests: AtomicU64::new(0),
            stale_served: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The shared lens.
    pub fn lens(&self) -> &Arc<BatchLens> {
        &self.lens
    }

    /// Whether the manager is in degraded mode: the last capture failed
    /// or blew its budget, and frame requests are served the session's
    /// last good frame (tagged stale) until a probe capture succeeds.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Stale (last good) frames served instead of fresh captures, total.
    pub fn stale_served_total(&self) -> u64 {
        self.stale_served.load(Ordering::Relaxed)
    }

    /// Idle sessions evicted by the TTL sweep, total.
    pub fn evicted_total(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Evicts sessions idle past the configured TTL, returning how many
    /// were removed. Runs opportunistically on session creation and
    /// `/statsz` snapshots — no background thread. A session whose lock is
    /// held (a request in flight) is never evicted.
    pub fn evict_idle(&self) -> usize {
        let Some(ttl) = self.cfg.idle_ttl else {
            return 0;
        };
        let mut table = self.sessions.lock();
        let before = table.len();
        table.retain(|_, slot| match slot.try_lock() {
            Some(session) => session.last_used.elapsed() <= ttl,
            None => true,
        });
        let evicted = before - table.len();
        if evicted > 0 {
            self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        evicted
    }

    /// Creates a session. Its view starts at the lens's extent defaults;
    /// its alert cursor starts at the **current** alert sequence, so a new
    /// dashboard only observes alerts fired after it connected.
    pub fn create(&self) -> SessionCreated {
        self.evict_idle();
        let extent = self.lens.view().extent();
        let cursor_start = self
            .lens
            .live_source()
            .map_or(0, |s| s.alert_source().next_alert_seq());
        let view = ViewState::new(extent);
        let at = view.selected_timestamp();
        let session = Session {
            view,
            log: SessionLog::new(extent),
            cursor: AlertCursor::at(cursor_start),
            requests: 0,
            last_frame: None,
            last_used: Instant::now(),
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions
            .lock()
            .insert(id, Arc::new(Mutex::new(session)));
        SessionCreated {
            session: id,
            at,
            extent,
            cursor: cursor_start,
        }
    }

    /// Removes a session; `false` when it did not exist.
    pub fn remove(&self, id: u64) -> bool {
        self.sessions.lock().remove(&id).is_some()
    }

    /// The number of sessions currently held.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Whether no sessions are held.
    pub fn is_empty(&self) -> bool {
        self.sessions.lock().is_empty()
    }

    /// Runs `f` on session `id`, holding only that session's lock.
    fn with_session<R>(
        &self,
        id: u64,
        f: impl FnOnce(&mut Session) -> R,
    ) -> Result<R, UnknownSession> {
        let slot = self
            .sessions
            .lock()
            .get(&id)
            .cloned()
            .ok_or(UnknownSession(id))?;
        let mut session = slot.lock();
        session.requests += 1;
        session.last_used = Instant::now();
        Ok(f(&mut session))
    }

    /// The degraded-mode frame path: every frame-backed request funnels
    /// through here instead of calling [`BatchLens::frame_at`] directly.
    ///
    /// * Healthy: capture, remember it as the session's last good frame,
    ///   return it fresh. A capture that panics or reports a source fault
    ///   (the [`FAILPOINT_CAPTURE`] site) flips the manager degraded; a
    ///   capture exceeding [`SessionConfig::frame_budget`] does too (but
    ///   its frame, already paid for, is still returned fresh).
    /// * Degraded: serve the session's last good frame tagged stale
    ///   *without* capturing — except every
    ///   [`SessionConfig::probe_every`]-th request, which attempts a real
    ///   capture and, on an in-budget success, restores healthy mode.
    /// * `None` (→ `503`) only when the source fails and the session has
    ///   no last good frame to fall back on.
    fn capture_frame(&self, session: &mut Session) -> Option<(Arc<QueryFrame>, bool)> {
        let at = session.view.selected_timestamp();
        if self.degraded.load(Ordering::Relaxed) {
            let nth = self.degraded_requests.fetch_add(1, Ordering::Relaxed);
            let probe = nth.is_multiple_of(self.cfg.probe_every.max(1));
            if !probe {
                if let Some(frame) = &session.last_frame {
                    self.stale_served.fetch_add(1, Ordering::Relaxed);
                    return Some((Arc::clone(frame), true));
                }
                // No last good frame to serve: attempt a capture anyway.
            }
        }
        let start = Instant::now();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if batchlens_fault::fire(FAILPOINT_CAPTURE).is_some() {
                return None;
            }
            Some(self.lens.frame_at(at))
        }));
        match attempt {
            Ok(Some(frame)) => {
                let over_budget = self.cfg.frame_budget.is_some_and(|b| start.elapsed() > b);
                self.degraded.store(over_budget, Ordering::Relaxed);
                session.last_frame = Some(Arc::clone(&frame));
                Some((frame, false))
            }
            // Source fault or a panic inside the capture: degrade.
            Ok(None) | Err(_) => {
                self.degraded.store(true, Ordering::Relaxed);
                let frame = session.last_frame.as_ref()?;
                self.stale_served.fetch_add(1, Ordering::Relaxed);
                Some((Arc::clone(frame), true))
            }
        }
    }

    /// Applies an interaction event to session `id`'s view, recording it
    /// in the session's log.
    ///
    /// # Errors
    ///
    /// [`UnknownSession`] when `id` does not exist.
    pub fn interact(&self, id: u64, event: Event) -> Result<ViewSummary, UnknownSession> {
        self.with_session(id, |s| {
            s.log.record(event);
            let changed = reduce(&mut s.view, event);
            ViewSummary {
                session: id,
                changed,
                at: s.view.selected_timestamp(),
                selected_job: s.view.selected_job(),
                hovered_machine: s.view.hovered_machine(),
                brush: s.view.brush(),
                pinned: s.view.pinned_jobs().to_vec(),
                anomalies: s.view.show_anomalies(),
                events: s.log.len(),
            }
        })
    }

    /// Summarizes the one transactional frame at session `id`'s selected
    /// instant — the JSON face of [`BatchLens::frame_at`], shared across
    /// sessions by the frame cache. In degraded mode the session's last
    /// good frame is summarized instead, with `stale: true`.
    ///
    /// # Errors
    ///
    /// [`SessionError::Unknown`] when `id` does not exist;
    /// [`SessionError::Unavailable`] when the source fails and the session
    /// has no last good frame.
    pub fn frame_info(&self, id: u64) -> Result<FrameInfo, SessionError> {
        self.with_session(id, |s| {
            let (frame, stale) = self.capture_frame(s).ok_or(SessionError::Unavailable)?;
            let mean = frame.mean_utilization();
            Ok(FrameInfo {
                session: id,
                at: frame.at(),
                version: frame.version(),
                jobs_running: frame.jobs_running(),
                running_instances: frame.running_instance_count(),
                machines_active: frame.machines_active(),
                machines_known: frame.machine_ids().len(),
                mean_cpu: mean.map(|u| u.cpu.fraction()),
                mean_mem: mean.map(|u| u.mem.fraction()),
                stale,
            })
        })?
    }

    /// Renders session `id`'s dashboard as SVG — through exactly one
    /// [`BatchLens::frame_at`] capture. The `bool` is the staleness flag:
    /// `true` when degraded mode rendered the last good frame.
    ///
    /// # Errors
    ///
    /// See [`SessionManager::frame_info`].
    pub fn render_svg(
        &self,
        id: u64,
        width: f64,
        height: f64,
    ) -> Result<(String, bool), SessionError> {
        self.with_session(id, |s| {
            let (frame, stale) = self.capture_frame(s).ok_or(SessionError::Unavailable)?;
            let scene = Dashboard::new(width, height)
                .detail_metric(s.view.detail_metric())
                .render_from_frame(&frame, self.lens.timeline());
            Ok((to_svg(&scene), stale))
        })?
    }

    /// Renders session `id`'s dashboard as ascii art — same single-frame
    /// path as [`SessionManager::render_svg`], rasterized to `cols`×`rows`.
    ///
    /// # Errors
    ///
    /// See [`SessionManager::frame_info`].
    pub fn render_ascii(
        &self,
        id: u64,
        cols: usize,
        rows: usize,
    ) -> Result<(String, bool), SessionError> {
        self.with_session(id, |s| {
            let (frame, stale) = self.capture_frame(s).ok_or(SessionError::Unavailable)?;
            let scene = Dashboard::new(4.0 * cols as f64, 8.0 * rows as f64)
                .detail_metric(s.view.detail_metric())
                .render_from_frame(&frame, self.lens.timeline());
            Ok((AsciiCanvas::render(&scene, cols, rows).to_text(), stale))
        })?
    }

    /// Polls session `id`'s alert cursor against the attached monitor.
    /// Without a live monitor the poll is empty with `live == false`.
    ///
    /// # Errors
    ///
    /// [`UnknownSession`] when `id` does not exist.
    pub fn poll_alerts(&self, id: u64) -> Result<AlertsPayload, UnknownSession> {
        self.with_session(id, |s| match self.lens.live_source() {
            Some(source) => {
                let batch = s.cursor.poll(source.alert_source());
                AlertsPayload {
                    session: id,
                    live: true,
                    next_seq: batch.next_seq,
                    missed: batch.missed,
                    alerts: batch.alerts,
                    delivered_total: s.cursor.delivered(),
                    missed_total: s.cursor.missed(),
                }
            }
            None => AlertsPayload {
                session: id,
                live: false,
                alerts: Vec::new(),
                next_seq: s.cursor.position(),
                missed: 0,
                delivered_total: s.cursor.delivered(),
                missed_total: s.cursor.missed(),
            },
        })
    }

    /// Per-session observability rows for `/statsz`, ascending by id.
    /// Doubles as the idle-eviction sweep point: `/statsz` is the endpoint
    /// production pollers hit periodically.
    pub fn session_stats(&self) -> Vec<SessionStats> {
        self.evict_idle();
        let slots: Vec<(u64, Arc<Mutex<Session>>)> = self
            .sessions
            .lock()
            .iter()
            .map(|(id, slot)| (*id, Arc::clone(slot)))
            .collect();
        slots
            .into_iter()
            .map(|(id, slot)| {
                let s = slot.lock();
                SessionStats {
                    id,
                    requests: s.requests,
                    cursor: s.cursor.position(),
                    missed: s.cursor.missed(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    fn manager() -> SessionManager {
        let ds = scenario::fig3b(11).run().unwrap();
        SessionManager::new(Arc::new(BatchLens::new(ds)))
    }

    #[test]
    fn sessions_are_independent() {
        let m = manager();
        let a = m.create().session;
        let b = m.create().session;
        assert_ne!(a, b);
        m.interact(a, Event::SelectTimestamp(scenario::T_FIG3B))
            .unwrap();
        let fa = m.frame_info(a).unwrap();
        let fb = m.frame_info(b).unwrap();
        assert_eq!(fa.at, scenario::T_FIG3B);
        assert_ne!(fa.at, fb.at, "b's view is untouched by a's interaction");
        assert!(m.remove(b));
        assert!(!m.remove(b));
        assert_eq!(m.frame_info(b), Err(SessionError::Unknown(b)));
    }

    #[test]
    fn same_instant_sessions_share_one_capture() {
        let m = manager();
        let a = m.create().session;
        let b = m.create().session;
        for id in [a, b] {
            m.interact(id, Event::SelectTimestamp(scenario::T_FIG3B))
                .unwrap();
        }
        let before = m.lens().frame_cache_stats();
        let fa = m.frame_info(a).unwrap();
        let fb = m.frame_info(b).unwrap();
        assert_eq!(fa.version, fb.version);
        assert_eq!(fa.jobs_running, fb.jobs_running);
        let after = m.lens().frame_cache_stats();
        assert_eq!(
            after.1 - before.1,
            1,
            "two sessions at one instant: exactly one capture"
        );
        assert!(after.0 > before.0, "the second request hit the cache");
    }

    #[test]
    fn renders_are_frame_driven() {
        let m = manager();
        let id = m.create().session;
        m.interact(id, Event::SelectTimestamp(scenario::T_FIG3B))
            .unwrap();
        let (svg, stale) = m.render_svg(id, 800.0, 600.0).unwrap();
        assert!(svg.contains("<svg"));
        assert!(svg.contains("<circle"), "bubbles render from the frame");
        assert!(!stale);
        let (ascii, _) = m.render_ascii(id, 100, 30).unwrap();
        assert_eq!(ascii.lines().count(), 30);
    }

    #[test]
    fn idle_sessions_are_evicted_after_the_ttl() {
        let ds = scenario::fig3b(11).run().unwrap();
        let m = SessionManager::with_config(
            Arc::new(BatchLens::new(ds)),
            SessionConfig {
                idle_ttl: Some(Duration::from_millis(0)),
                ..SessionConfig::default()
            },
        );
        let a = m.create().session;
        std::thread::sleep(Duration::from_millis(5));
        // The sweep runs on create: the next create evicts the idle `a`.
        let b = m.create().session;
        assert_eq!(m.frame_info(a), Err(SessionError::Unknown(a)));
        assert_eq!(m.evicted_total(), 1);
        // session_stats sweeps too.
        std::thread::sleep(Duration::from_millis(5));
        assert!(m.session_stats().is_empty());
        assert_eq!(m.evicted_total(), 2);
        assert_eq!(m.frame_info(b), Err(SessionError::Unknown(b)));
    }

    #[test]
    fn capture_faults_degrade_to_the_last_good_frame() {
        let _g = batchlens_fault::test_guard();
        let m = manager();
        let id = m.create().session;
        let fresh = m.frame_info(id).unwrap();
        assert!(!fresh.stale);
        assert!(!m.degraded());

        // Source starts failing: the session serves its last good frame,
        // tagged stale, and the manager reports degraded.
        batchlens_fault::arm(
            FAILPOINT_CAPTURE,
            batchlens_fault::FaultSpec::new(
                batchlens_fault::Fault::Error,
                batchlens_fault::Trigger::Always,
            ),
        );
        let stale = m.frame_info(id).unwrap();
        assert!(stale.stale);
        assert_eq!(stale.version, fresh.version);
        assert_eq!(stale.jobs_running, fresh.jobs_running);
        assert!(m.degraded());
        assert!(m.stale_served_total() >= 1);
        let (_, render_stale) = m.render_ascii(id, 40, 10).unwrap();
        assert!(render_stale);

        // A brand-new session has no last good frame: 503.
        let empty = m.create().session;
        assert_eq!(m.frame_info(empty), Err(SessionError::Unavailable));

        // Source recovers: the next probe capture restores healthy mode.
        batchlens_fault::disarm_all();
        let mut recovered = false;
        for _ in 0..SessionConfig::default().probe_every + 1 {
            if !m.frame_info(id).unwrap().stale {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "probe capture must leave degraded mode");
        assert!(!m.degraded());
    }

    #[test]
    fn capture_panics_are_caught_and_degrade() {
        let _g = batchlens_fault::test_guard();
        let m = manager();
        let id = m.create().session;
        m.frame_info(id).unwrap();
        batchlens_fault::arm(
            FAILPOINT_CAPTURE,
            batchlens_fault::FaultSpec::new(
                batchlens_fault::Fault::Panic,
                batchlens_fault::Trigger::Times(1),
            ),
        );
        let served = m.frame_info(id).unwrap();
        assert!(served.stale, "panic inside capture degrades, not crashes");
        assert!(m.degraded());
    }

    #[test]
    fn batch_lens_alert_poll_is_empty_but_well_formed() {
        let m = manager();
        let id = m.create().session;
        let poll = m.poll_alerts(id).unwrap();
        assert!(!poll.live);
        assert!(poll.alerts.is_empty());
        let stats = m.session_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].requests, 1);
    }
}
