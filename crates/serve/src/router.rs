//! Request routing: the HTTP face of the [`SessionManager`].
//!
//! ## Endpoints
//!
//! | Method   | Path                        | Body / query                         |
//! |----------|-----------------------------|--------------------------------------|
//! | `POST`   | `/sessions`                 | — → [`crate::session::SessionCreated`] |
//! | `DELETE` | `/sessions/{id}`            | —                                    |
//! | `POST`   | `/sessions/{id}/events`     | one [`Event`] as JSON, e.g. `{"SelectTimestamp": 46200}` |
//! | `GET`    | `/sessions/{id}/render`     | `?format=svg\|ascii&width=&height=&cols=&rows=` |
//! | `GET`    | `/sessions/{id}/frame`      | — → [`crate::session::FrameInfo`]    |
//! | `GET`    | `/sessions/{id}/alerts`     | — → [`crate::session::AlertsPayload`] |
//! | `GET`    | `/statsz`                   | — → [`crate::stats::StatszPayload`]  |
//! | `GET`    | `/healthz`                  | — liveness: `200` while the process serves |
//! | `GET`    | `/readyz`                   | — readiness: `200` when the lens answers, the WAL is healthy and serving is not degraded; `503` otherwise |
//!
//! Frame-backed responses served from a last good frame in degraded mode
//! carry an `x-batchlens-stale: true` header (and `FrameInfo.stale`).

use std::panic::{catch_unwind, AssertUnwindSafe};

use batchlens::interaction::Event;

use crate::codec::{Request, Response};
use crate::session::{SessionError, SessionManager, UnknownSession};
use crate::stats::ServeStats;

/// Failpoint site evaluated at the top of request dispatch — arming it
/// injects handler errors, delays, or panics (exercising the
/// `catch_unwind` supervision in [`route`]).
pub const FAILPOINT_ROUTE: &str = "serve.route";

/// The header marking a response rendered from a last good frame.
pub const STALE_HEADER: &str = "x-batchlens-stale";

/// Everything a routed request may need.
pub struct RouterContext<'a> {
    /// The session multiplexer.
    pub manager: &'a SessionManager,
    /// The shared counters (`/statsz`).
    pub stats: &'a ServeStats,
    /// Worker threads in the pool, for the `/statsz` payload.
    pub workers: usize,
}

fn json_or_500<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::ok_json(body),
        Err(e) => Response::server_error(format!("serialization failed: {e}")),
    }
}

fn session_result<T: serde::Serialize>(result: Result<T, UnknownSession>) -> Response {
    match result {
        Ok(value) => json_or_500(&value),
        Err(e) => Response::not_found(e.to_string()),
    }
}

fn session_error(e: SessionError) -> Response {
    match e {
        SessionError::Unknown(_) => Response::not_found(e.to_string()),
        // Degraded with nothing to degrade to: a retryable 503 that keeps
        // the connection (unlike the shed 503, nothing here is overloaded).
        SessionError::Unavailable => {
            let mut resp = Response::service_unavailable(e.to_string(), 1);
            resp.close = false;
            resp
        }
    }
}

/// Tags a response that served a last good frame (degraded mode).
fn mark_stale(resp: Response, stale: bool) -> Response {
    if stale {
        resp.with_header(STALE_HEADER, "true".to_string())
    } else {
        resp
    }
}

/// Routes one request and records it in the stats counters.
///
/// Dispatch runs under `catch_unwind`: a panicking handler is counted in
/// `/statsz` (`worker_panics`) and answered with a closing `500` instead
/// of unwinding into the worker pool — one bad request must never take
/// down the server.
pub fn route(ctx: &RouterContext<'_>, req: &Request) -> Response {
    let response = catch_unwind(AssertUnwindSafe(|| dispatch(ctx, req))).unwrap_or_else(|_| {
        ctx.stats.record_worker_panic();
        Response::server_error("request handler panicked".to_string()).closing()
    });
    ctx.stats.record_request(response.status);
    response
}

fn dispatch(ctx: &RouterContext<'_>, req: &Request) -> Response {
    if batchlens_fault::fire(FAILPOINT_ROUTE).is_some() {
        return Response::server_error("injected route fault".to_string());
    }
    let segments: Vec<&str> = req.path().split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => Response::ok_text(
            "batchlens-serve: POST /sessions, then interact under /sessions/{id}\n".to_string(),
        ),
        ("GET", ["healthz"]) => Response::ok_text("ok\n".to_string()),
        ("GET", ["readyz"]) => readyz(ctx),
        ("GET", ["statsz"]) => json_or_500(&ctx.stats.snapshot(ctx.manager, ctx.workers)),
        ("POST", ["sessions"]) => json_or_500(&ctx.manager.create()),
        (method, ["sessions"]) if method != "POST" => Response::method_not_allowed(),
        ("DELETE", ["sessions", id]) => match parse_id(id) {
            Some(id) if ctx.manager.remove(id) => {
                Response::ok_json(format!("{{\"removed\":{id}}}"))
            }
            Some(id) => Response::not_found(UnknownSession(id).to_string()),
            None => Response::bad_request(format!("bad session id: {id}")),
        },
        ("POST", ["sessions", id, "events"]) => with_id(id, |id| {
            match serde_json::from_str::<Event>(std::str::from_utf8(&req.body).unwrap_or("")) {
                Ok(event) => session_result(ctx.manager.interact(id, event)),
                Err(e) => Response::bad_request(format!("bad event: {e}")),
            }
        }),
        ("GET", ["sessions", id, "frame"]) => with_id(id, |id| match ctx.manager.frame_info(id) {
            Ok(info) => {
                let stale = info.stale;
                mark_stale(json_or_500(&info), stale)
            }
            Err(e) => session_error(e),
        }),
        ("GET", ["sessions", id, "alerts"]) => {
            with_id(id, |id| session_result(ctx.manager.poll_alerts(id)))
        }
        ("GET", ["sessions", id, "render"]) => with_id(id, |id| render(ctx, req, id)),
        _ => Response::not_found(format!("no route for {} {}", req.method, req.path())),
    }
}

/// Readiness: the lens answers a probe query, the attached monitor's WAL
/// (when any) has taken no IO errors, and frame serving is not degraded.
/// Not ready maps to a keep-alive `503` so orchestrators stop routing new
/// traffic without tearing down probes.
fn readyz(ctx: &RouterContext<'_>) -> Response {
    let lens = ctx.manager.lens();
    let responsive = catch_unwind(AssertUnwindSafe(|| {
        let _ = lens.view().extent();
    }))
    .is_ok();
    // Readiness is all-or-nothing across shards: a sharded source is
    // healthy only while *every* shard's WAL is — one lossy shard log
    // means recovery can no longer reproduce the full state.
    let wal_healthy = lens.live_source().is_none_or(|s| s.wal_healthy());
    let degraded = ctx.manager.degraded();
    let ready = responsive && wal_healthy && !degraded;
    let body = format!(
        "{{\"ready\":{ready},\"lens_responsive\":{responsive},\"wal_healthy\":{wal_healthy},\"degraded\":{degraded}}}"
    );
    if ready {
        Response::ok_json(body)
    } else {
        let mut resp = Response::service_unavailable(body, 1);
        resp.close = false;
        resp.content_type = "application/json";
        resp
    }
}

fn render(ctx: &RouterContext<'_>, req: &Request, id: u64) -> Response {
    match req.query_param("format").unwrap_or("svg") {
        "svg" => {
            let width = num_param(req, "width", 1200.0);
            let height = num_param(req, "height", 800.0);
            match ctx.manager.render_svg(id, width, height) {
                Ok((svg, stale)) => mark_stale(Response::ok_svg(svg), stale),
                Err(e) => session_error(e),
            }
        }
        "ascii" => {
            let cols = num_param(req, "cols", 120.0).max(8.0) as usize;
            let rows = num_param(req, "rows", 36.0).max(4.0) as usize;
            match ctx.manager.render_ascii(id, cols, rows) {
                Ok((text, stale)) => mark_stale(Response::ok_text(text), stale),
                Err(e) => session_error(e),
            }
        }
        other => Response::bad_request(format!("unknown render format: {other}")),
    }
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse::<u64>().ok()
}

fn with_id(raw: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match parse_id(raw) {
        Some(id) => f(id),
        None => Response::bad_request(format!("bad session id: {raw}")),
    }
}

fn num_param(req: &Request, key: &str, default: f64) -> f64 {
    req.query_param(key)
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens::BatchLens;
    use batchlens_sim::scenario;
    use std::sync::Arc;

    fn ctx_fixture() -> (SessionManager, ServeStats) {
        let ds = scenario::fig3b(13).run().unwrap();
        (
            SessionManager::new(Arc::new(BatchLens::new(ds))),
            ServeStats::new(),
        )
    }

    fn get(target: &str) -> Request {
        Request {
            method: "GET".to_string(),
            target: target.to_string(),
            minor_version: 1,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(target: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            target: target.to_string(),
            minor_version: 1,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn full_session_lifecycle_over_the_router() {
        let (manager, stats) = ctx_fixture();
        let ctx = RouterContext {
            manager: &manager,
            stats: &stats,
            workers: 2,
        };
        let created = route(&ctx, &post("/sessions", ""));
        assert_eq!(created.status, 200);
        let payload: crate::session::SessionCreated =
            serde_json::from_str(std::str::from_utf8(&created.body).unwrap()).unwrap();
        let id = payload.session;

        let event = format!("{{\"SelectTimestamp\": {}}}", scenario::T_FIG3B.seconds());
        let summary = route(&ctx, &post(&format!("/sessions/{id}/events"), &event));
        assert_eq!(summary.status, 200);
        let frame = route(&ctx, &get(&format!("/sessions/{id}/frame")));
        assert_eq!(frame.status, 200);
        assert!(String::from_utf8_lossy(&frame.body).contains("\"jobs_running\""));
        let svg = route(
            &ctx,
            &get(&format!(
                "/sessions/{id}/render?format=svg&width=640&height=480"
            )),
        );
        assert_eq!(svg.status, 200);
        assert_eq!(svg.content_type, "image/svg+xml");
        let ascii = route(
            &ctx,
            &get(&format!(
                "/sessions/{id}/render?format=ascii&cols=80&rows=24"
            )),
        );
        assert_eq!(ascii.status, 200);
        assert_eq!(String::from_utf8_lossy(&ascii.body).lines().count(), 24);
        let alerts = route(&ctx, &get(&format!("/sessions/{id}/alerts")));
        assert_eq!(alerts.status, 200);
        let statsz = route(&ctx, &get("/statsz"));
        assert_eq!(statsz.status, 200);
        let removed = route(
            &ctx,
            &Request {
                method: "DELETE".to_string(),
                target: format!("/sessions/{id}"),
                minor_version: 1,
                headers: Vec::new(),
                body: Vec::new(),
            },
        );
        assert_eq!(removed.status, 200);
        assert_eq!(
            route(&ctx, &get(&format!("/sessions/{id}/frame"))).status,
            404
        );
        assert_eq!(stats.total_requests(), 9);
    }

    #[test]
    fn errors_map_to_http_statuses() {
        let (manager, stats) = ctx_fixture();
        let ctx = RouterContext {
            manager: &manager,
            stats: &stats,
            workers: 1,
        };
        assert_eq!(route(&ctx, &get("/nope")).status, 404);
        assert_eq!(route(&ctx, &get("/sessions")).status, 405);
        assert_eq!(route(&ctx, &get("/sessions/abc/frame")).status, 400);
        assert_eq!(route(&ctx, &get("/sessions/99/frame")).status, 404);
        let id = manager.create().session;
        assert_eq!(
            route(&ctx, &post(&format!("/sessions/{id}/events"), "not json")).status,
            400
        );
        assert_eq!(
            route(&ctx, &get(&format!("/sessions/{id}/render?format=jpeg"))).status,
            400
        );
    }

    #[test]
    fn health_and_readiness_endpoints_answer() {
        let (manager, stats) = ctx_fixture();
        let ctx = RouterContext {
            manager: &manager,
            stats: &stats,
            workers: 1,
        };
        assert_eq!(route(&ctx, &get("/healthz")).status, 200);
        let ready = route(&ctx, &get("/readyz"));
        assert_eq!(ready.status, 200);
        assert!(String::from_utf8_lossy(&ready.body).contains("\"ready\":true"));
    }

    #[test]
    fn injected_route_panics_are_caught_and_counted() {
        let _g = batchlens_fault::test_guard();
        let (manager, stats) = ctx_fixture();
        let ctx = RouterContext {
            manager: &manager,
            stats: &stats,
            workers: 1,
        };
        batchlens_fault::arm(
            FAILPOINT_ROUTE,
            batchlens_fault::FaultSpec::new(
                batchlens_fault::Fault::Panic,
                batchlens_fault::Trigger::Times(1),
            ),
        );
        let resp = route(&ctx, &get("/statsz"));
        assert_eq!(resp.status, 500);
        assert!(resp.close, "unknown handler state: close the connection");
        assert_eq!(stats.worker_panics(), 1);
        // The server keeps serving afterwards.
        assert_eq!(route(&ctx, &get("/statsz")).status, 200);
    }

    #[test]
    fn degraded_frames_carry_the_stale_header() {
        let _g = batchlens_fault::test_guard();
        let (manager, stats) = ctx_fixture();
        let ctx = RouterContext {
            manager: &manager,
            stats: &stats,
            workers: 1,
        };
        let id = manager.create().session;
        let fresh = route(&ctx, &get(&format!("/sessions/{id}/frame")));
        assert_eq!(fresh.status, 200);
        assert!(fresh.extra_headers.is_empty());
        batchlens_fault::arm(
            crate::session::FAILPOINT_CAPTURE,
            batchlens_fault::FaultSpec::new(
                batchlens_fault::Fault::Error,
                batchlens_fault::Trigger::Always,
            ),
        );
        let stale = route(&ctx, &get(&format!("/sessions/{id}/frame")));
        assert_eq!(stale.status, 200);
        assert!(stale
            .extra_headers
            .iter()
            .any(|(n, v)| *n == STALE_HEADER && v == "true"));
        assert!(String::from_utf8_lossy(&stale.body).contains("\"stale\":true"));
        // Readiness reflects the degradation.
        let ready = route(&ctx, &get("/readyz"));
        assert_eq!(ready.status, 503);
        assert_eq!(
            ready
                .extra_headers
                .iter()
                .find(|(n, _)| *n == "retry-after")
                .map(|(_, v)| v.as_str()),
            Some("1")
        );
        // A fresh session with no last good frame: retryable 503.
        let empty = manager.create().session;
        let unavailable = route(&ctx, &get(&format!("/sessions/{empty}/frame")));
        assert_eq!(unavailable.status, 503);
        assert!(!unavailable.close);
    }
}
