//! Request routing: the HTTP face of the [`SessionManager`].
//!
//! ## Endpoints
//!
//! | Method   | Path                        | Body / query                         |
//! |----------|-----------------------------|--------------------------------------|
//! | `POST`   | `/sessions`                 | — → [`crate::session::SessionCreated`] |
//! | `DELETE` | `/sessions/{id}`            | —                                    |
//! | `POST`   | `/sessions/{id}/events`     | one [`Event`] as JSON, e.g. `{"SelectTimestamp": 46200}` |
//! | `GET`    | `/sessions/{id}/render`     | `?format=svg\|ascii&width=&height=&cols=&rows=` |
//! | `GET`    | `/sessions/{id}/frame`      | — → [`crate::session::FrameInfo`]    |
//! | `GET`    | `/sessions/{id}/alerts`     | — → [`crate::session::AlertsPayload`] |
//! | `GET`    | `/statsz`                   | — → [`crate::stats::StatszPayload`]  |

use batchlens::interaction::Event;

use crate::codec::{Request, Response};
use crate::session::{SessionManager, UnknownSession};
use crate::stats::ServeStats;

/// Everything a routed request may need.
pub struct RouterContext<'a> {
    /// The session multiplexer.
    pub manager: &'a SessionManager,
    /// The shared counters (`/statsz`).
    pub stats: &'a ServeStats,
    /// Worker threads in the pool, for the `/statsz` payload.
    pub workers: usize,
}

fn json_or_500<T: serde::Serialize>(value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::ok_json(body),
        Err(e) => Response {
            status: 500,
            reason: "Internal Server Error",
            content_type: "text/plain; charset=utf-8",
            body: format!("serialization failed: {e}").into_bytes(),
            close: false,
        },
    }
}

fn session_result<T: serde::Serialize>(result: Result<T, UnknownSession>) -> Response {
    match result {
        Ok(value) => json_or_500(&value),
        Err(e) => Response::not_found(e.to_string()),
    }
}

/// Routes one request and records it in the stats counters.
pub fn route(ctx: &RouterContext<'_>, req: &Request) -> Response {
    let response = dispatch(ctx, req);
    ctx.stats.record_request(response.status);
    response
}

fn dispatch(ctx: &RouterContext<'_>, req: &Request) -> Response {
    let segments: Vec<&str> = req.path().split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => Response::ok_text(
            "batchlens-serve: POST /sessions, then interact under /sessions/{id}\n".to_string(),
        ),
        ("GET", ["statsz"]) => json_or_500(&ctx.stats.snapshot(ctx.manager, ctx.workers)),
        ("POST", ["sessions"]) => json_or_500(&ctx.manager.create()),
        (method, ["sessions"]) if method != "POST" => Response::method_not_allowed(),
        ("DELETE", ["sessions", id]) => match parse_id(id) {
            Some(id) if ctx.manager.remove(id) => {
                Response::ok_json(format!("{{\"removed\":{id}}}"))
            }
            Some(id) => Response::not_found(UnknownSession(id).to_string()),
            None => Response::bad_request(format!("bad session id: {id}")),
        },
        ("POST", ["sessions", id, "events"]) => with_id(id, |id| {
            match serde_json::from_str::<Event>(std::str::from_utf8(&req.body).unwrap_or("")) {
                Ok(event) => session_result(ctx.manager.interact(id, event)),
                Err(e) => Response::bad_request(format!("bad event: {e}")),
            }
        }),
        ("GET", ["sessions", id, "frame"]) => {
            with_id(id, |id| session_result(ctx.manager.frame_info(id)))
        }
        ("GET", ["sessions", id, "alerts"]) => {
            with_id(id, |id| session_result(ctx.manager.poll_alerts(id)))
        }
        ("GET", ["sessions", id, "render"]) => with_id(id, |id| render(ctx, req, id)),
        _ => Response::not_found(format!("no route for {} {}", req.method, req.path())),
    }
}

fn render(ctx: &RouterContext<'_>, req: &Request, id: u64) -> Response {
    match req.query_param("format").unwrap_or("svg") {
        "svg" => {
            let width = num_param(req, "width", 1200.0);
            let height = num_param(req, "height", 800.0);
            match ctx.manager.render_svg(id, width, height) {
                Ok(svg) => Response::ok_svg(svg),
                Err(e) => Response::not_found(e.to_string()),
            }
        }
        "ascii" => {
            let cols = num_param(req, "cols", 120.0).max(8.0) as usize;
            let rows = num_param(req, "rows", 36.0).max(4.0) as usize;
            match ctx.manager.render_ascii(id, cols, rows) {
                Ok(text) => Response::ok_text(text),
                Err(e) => Response::not_found(e.to_string()),
            }
        }
        other => Response::bad_request(format!("unknown render format: {other}")),
    }
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse::<u64>().ok()
}

fn with_id(raw: &str, f: impl FnOnce(u64) -> Response) -> Response {
    match parse_id(raw) {
        Some(id) => f(id),
        None => Response::bad_request(format!("bad session id: {raw}")),
    }
}

fn num_param(req: &Request, key: &str, default: f64) -> f64 {
    req.query_param(key)
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens::BatchLens;
    use batchlens_sim::scenario;
    use std::sync::Arc;

    fn ctx_fixture() -> (SessionManager, ServeStats) {
        let ds = scenario::fig3b(13).run().unwrap();
        (
            SessionManager::new(Arc::new(BatchLens::new(ds))),
            ServeStats::new(),
        )
    }

    fn get(target: &str) -> Request {
        Request {
            method: "GET".to_string(),
            target: target.to_string(),
            minor_version: 1,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(target: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            target: target.to_string(),
            minor_version: 1,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn full_session_lifecycle_over_the_router() {
        let (manager, stats) = ctx_fixture();
        let ctx = RouterContext {
            manager: &manager,
            stats: &stats,
            workers: 2,
        };
        let created = route(&ctx, &post("/sessions", ""));
        assert_eq!(created.status, 200);
        let payload: crate::session::SessionCreated =
            serde_json::from_str(std::str::from_utf8(&created.body).unwrap()).unwrap();
        let id = payload.session;

        let event = format!("{{\"SelectTimestamp\": {}}}", scenario::T_FIG3B.seconds());
        let summary = route(&ctx, &post(&format!("/sessions/{id}/events"), &event));
        assert_eq!(summary.status, 200);
        let frame = route(&ctx, &get(&format!("/sessions/{id}/frame")));
        assert_eq!(frame.status, 200);
        assert!(String::from_utf8_lossy(&frame.body).contains("\"jobs_running\""));
        let svg = route(
            &ctx,
            &get(&format!(
                "/sessions/{id}/render?format=svg&width=640&height=480"
            )),
        );
        assert_eq!(svg.status, 200);
        assert_eq!(svg.content_type, "image/svg+xml");
        let ascii = route(
            &ctx,
            &get(&format!(
                "/sessions/{id}/render?format=ascii&cols=80&rows=24"
            )),
        );
        assert_eq!(ascii.status, 200);
        assert_eq!(String::from_utf8_lossy(&ascii.body).lines().count(), 24);
        let alerts = route(&ctx, &get(&format!("/sessions/{id}/alerts")));
        assert_eq!(alerts.status, 200);
        let statsz = route(&ctx, &get("/statsz"));
        assert_eq!(statsz.status, 200);
        let removed = route(
            &ctx,
            &Request {
                method: "DELETE".to_string(),
                target: format!("/sessions/{id}"),
                minor_version: 1,
                headers: Vec::new(),
                body: Vec::new(),
            },
        );
        assert_eq!(removed.status, 200);
        assert_eq!(
            route(&ctx, &get(&format!("/sessions/{id}/frame"))).status,
            404
        );
        assert_eq!(stats.total_requests(), 9);
    }

    #[test]
    fn errors_map_to_http_statuses() {
        let (manager, stats) = ctx_fixture();
        let ctx = RouterContext {
            manager: &manager,
            stats: &stats,
            workers: 1,
        };
        assert_eq!(route(&ctx, &get("/nope")).status, 404);
        assert_eq!(route(&ctx, &get("/sessions")).status, 405);
        assert_eq!(route(&ctx, &get("/sessions/abc/frame")).status, 400);
        assert_eq!(route(&ctx, &get("/sessions/99/frame")).status, 404);
        let id = manager.create().session;
        assert_eq!(
            route(&ctx, &post(&format!("/sessions/{id}/events"), "not json")).status,
            400
        );
        assert_eq!(
            route(&ctx, &get(&format!("/sessions/{id}/render?format=jpeg"))).status,
            400
        );
    }
}
