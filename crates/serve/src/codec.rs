//! A minimal hand-rolled HTTP/1.1 codec: request-line + headers +
//! `Content-Length` bodies, nothing else.
//!
//! The serving layer deliberately avoids an HTTP dependency — the build
//! environment is offline, and the subset a dashboard API needs is tiny:
//!
//! * requests are `METHOD SP target SP HTTP/1.x CRLF`, headers until an
//!   empty line, then an optional body of exactly `Content-Length` bytes
//!   (no chunked transfer encoding; a `Transfer-Encoding` header is
//!   rejected rather than misparsed),
//! * responses always carry an explicit `Content-Length`, so keep-alive
//!   framing is unambiguous,
//! * connection persistence follows HTTP/1.1 defaults: keep-alive unless
//!   `Connection: close` (HTTP/1.0 is the inverse).
//!
//! Both halves are here — [`read_request`]/[`Response::write_to`] for the
//! server, [`read_response`] for in-process clients (tests, examples) —
//! so the differential suites exercise the same framing code the server
//! runs.

use std::io::{BufRead, Write};

/// Longest accepted request/status/header line, in bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per message.
const MAX_HEADERS: usize = 64;
/// Largest accepted message body, in bytes.
const MAX_BODY: usize = 1024 * 1024;

/// A framing or I/O failure while reading an HTTP message.
#[derive(Debug)]
pub enum CodecError {
    /// The underlying transport failed (including read timeouts).
    Io(std::io::Error),
    /// The peer sent bytes that are not the HTTP subset we speak. The
    /// payload is a short human-readable reason.
    Malformed(&'static str),
    /// A line, header count or body length exceeded its hard limit.
    TooLarge(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o: {e}"),
            CodecError::Malformed(why) => write!(f, "malformed message: {why}"),
            CodecError::TooLarge(what) => write!(f, "limit exceeded: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// The raw request target, e.g. `/sessions/3/render?format=ascii`.
    pub target: String,
    /// `1` for HTTP/1.1, `0` for HTTP/1.0.
    pub minor_version: u8,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component (the part before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }

    /// The target's raw query string, when present.
    pub fn query(&self) -> Option<&str> {
        let mut parts = self.target.splitn(2, '?');
        parts.next();
        parts.next()
    }

    /// Looks up the first value of `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// A single query parameter's value (undecoded), when present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query()?
            .split('&')
            .filter_map(|pair| {
                let mut kv = pair.splitn(2, '=');
                Some((kv.next()?, kv.next().unwrap_or("")))
            })
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Whether the connection must close after this exchange, per the
    /// HTTP/1.x persistence rules.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.minor_version == 0,
        }
    }
}

/// Reads one CRLF (or bare-LF) terminated line, without its terminator.
/// `Ok(None)` means the stream ended before any byte arrived.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, CodecError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1];
    loop {
        // Byte-at-a-time over a BufReader: each read is a memcpy from the
        // buffer, and we never consume past the line terminator.
        match reader.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(CodecError::Malformed("eof inside a line"));
            }
            Ok(_) => {
                if chunk[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| CodecError::Malformed("non-utf8 line"))?;
                    return Ok(Some(line));
                }
                buf.push(chunk[0]);
                if buf.len() > MAX_LINE {
                    return Err(CodecError::TooLarge("line"));
                }
            }
            Err(e) => return Err(CodecError::Io(e)),
        }
    }
}

/// Lowercased header names paired with their trimmed values.
type Headers = Vec<(String, String)>;

/// Reads the header block (after a start line) and the body it frames.
fn read_headers_and_body<R: BufRead>(reader: &mut R) -> Result<(Headers, Vec<u8>), CodecError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or(CodecError::Malformed("eof inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(CodecError::TooLarge("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(CodecError::Malformed("header without a colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("transfer-encoding"))
    {
        return Err(CodecError::Malformed("transfer-encoding is not supported"));
    }
    let length = match headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
    {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| CodecError::Malformed("bad content-length"))?,
        None => 0,
    };
    if length > MAX_BODY {
        return Err(CodecError::TooLarge("body"));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok((headers, body))
}

/// Reads one request from `reader`.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly between
/// requests (the normal end of a keep-alive conversation). Errors mean the
/// connection is unusable and must be dropped — the framing state is
/// unknown.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, CodecError> {
    let Some(line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(CodecError::Malformed("empty request line"))?;
    let target = parts
        .next()
        .ok_or(CodecError::Malformed("request line without a target"))?;
    let version = parts
        .next()
        .ok_or(CodecError::Malformed("request line without a version"))?;
    if parts.next().is_some() {
        return Err(CodecError::Malformed("request line with extra fields"));
    }
    let minor_version = match version {
        "HTTP/1.1" => 1,
        "HTTP/1.0" => 0,
        _ => return Err(CodecError::Malformed("unsupported http version")),
    };
    let (headers, body) = read_headers_and_body(reader)?;
    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        minor_version,
        headers,
        body,
    }))
}

/// An HTTP response the server writes (and the in-process client reads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The reason phrase on the status line.
    pub reason: &'static str,
    /// The `Content-Type` value.
    pub content_type: &'static str,
    /// The body bytes (always framed by an explicit `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the server will close the connection after writing this.
    pub close: bool,
    /// Extra `(name, value)` headers appended after the standard three
    /// (e.g. `retry-after` on a 503, the staleness marker on a degraded
    /// frame). Names must be lowercase; values must be header-safe.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn ok_json(body: String) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A `200 OK` SVG response.
    pub fn ok_svg(body: String) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type: "image/svg+xml",
            body: body.into_bytes(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A `200 OK` plain-text response.
    pub fn ok_text(body: String) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A `400 Bad Request` with a plain-text reason.
    pub fn bad_request(why: String) -> Response {
        Response {
            status: 400,
            reason: "Bad Request",
            content_type: "text/plain; charset=utf-8",
            body: why.into_bytes(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A `404 Not Found` with a plain-text reason.
    pub fn not_found(why: String) -> Response {
        Response {
            status: 404,
            reason: "Not Found",
            content_type: "text/plain; charset=utf-8",
            body: why.into_bytes(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A `405 Method Not Allowed`.
    pub fn method_not_allowed() -> Response {
        Response {
            status: 405,
            reason: "Method Not Allowed",
            content_type: "text/plain; charset=utf-8",
            body: b"method not allowed".to_vec(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// A `503 Service Unavailable` carrying a `retry-after` header.
    ///
    /// This is the **shed contract**: when the accept-to-worker queue is
    /// full, the server answers new connections with exactly this response
    /// — immediately, from the accept loop, without occupying a worker —
    /// and closes. `retry-after` tells well-behaved clients how many
    /// seconds to back off before reconnecting; the body repeats the
    /// reason. Shedding is deliberate load *rejection*, not failure: the
    /// connection was never queued, no session state was touched, and the
    /// request body (if any) was never read.
    pub fn service_unavailable(why: String, retry_after_secs: u64) -> Response {
        Response {
            status: 503,
            reason: "Service Unavailable",
            content_type: "text/plain; charset=utf-8",
            body: why.into_bytes(),
            close: true,
            extra_headers: vec![("retry-after", retry_after_secs.to_string())],
        }
    }

    /// A `500 Internal Server Error` with a plain-text reason.
    pub fn server_error(why: String) -> Response {
        Response {
            status: 500,
            reason: "Internal Server Error",
            content_type: "text/plain; charset=utf-8",
            body: why.into_bytes(),
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// Marks the connection for closing after this response (builder).
    #[must_use]
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }

    /// Appends an extra header (builder). `name` must be lowercase and
    /// both halves must be free of CR/LF.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.extra_headers.push((name, value));
        self
    }

    /// Writes the response with explicit length framing.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from `writer`.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )?;
        for (name, value) in &self.extra_headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// A response as seen by the in-process client half.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Looks up the first value of `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response from `reader`; `Ok(None)` on clean EOF.
///
/// The client half of the codec, used by the test suites and examples to
/// speak to the server over real sockets with the same framing rules.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Option<ClientResponse>, CodecError> {
    let Some(line) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(CodecError::Malformed("bad status line"));
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or(CodecError::Malformed("bad status code"))?;
    let (headers, body) = read_headers_and_body(reader)?;
    Ok(Some(ClientResponse {
        status,
        headers,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, CodecError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_request_with_body_and_keep_alive() {
        let req = parse(
            b"POST /sessions/3/events?x=1 HTTP/1.1\r\nHost: localhost\r\n\
              Content-Length: 4\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path(), "/sessions/3/events");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("localhost"));
        assert!(!req.wants_close());
    }

    #[test]
    fn connection_persistence_follows_http_version() {
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(old.wants_close());
        let pinned = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!pinned.wants_close());
        let closing = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(closing.wants_close());
    }

    #[test]
    fn clean_eof_is_none_torn_eof_is_error() {
        assert!(parse(b"").unwrap().is_none());
        assert!(parse(b"GET / HT").is_err());
        assert!(parse(b"GET / HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort").is_err());
    }

    #[test]
    fn rejects_what_it_cannot_frame() {
        assert!(parse(b"GET / HTTP/2\r\n\r\n").is_err());
        assert!(parse(b"GET /\r\n\r\n").is_err());
        assert!(parse(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").is_err());
        assert!(parse(b"GET / HTTP/1.1\r\nContent-Length: nine\r\n\r\n").is_err());
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_LINE + 1));
        assert!(parse(huge.as_bytes()).is_err());
    }

    #[test]
    fn response_round_trips_through_client_half() {
        let mut wire = Vec::new();
        Response::ok_json("{\"ok\":true}".to_string())
            .write_to(&mut wire)
            .unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.text(), "{\"ok\":true}");
        // Two pipelined responses frame cleanly back-to-back.
        let mut twice = wire.clone();
        Response::ok_text("bye".to_string())
            .closing()
            .write_to(&mut twice)
            .unwrap();
        let mut reader = BufReader::new(&twice[..]);
        assert_eq!(read_response(&mut reader).unwrap().unwrap().status, 200);
        let second = read_response(&mut reader).unwrap().unwrap();
        assert_eq!(second.text(), "bye");
        assert_eq!(second.header("connection"), Some("close"));
        assert!(read_response(&mut reader).unwrap().is_none());
    }

    #[test]
    fn shed_response_carries_retry_after_and_closes() {
        let mut wire = Vec::new();
        Response::service_unavailable("server overloaded".to_string(), 2)
            .write_to(&mut wire)
            .unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.header("connection"), Some("close"));
        assert_eq!(resp.text(), "server overloaded");
        // Builder headers frame identically.
        let mut wire = Vec::new();
        Response::ok_json("{}".to_string())
            .with_header("x-batchlens-stale", "true".to_string())
            .write_to(&mut wire)
            .unwrap();
        let resp = read_response(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        assert_eq!(resp.header("x-batchlens-stale"), Some("true"));
    }

    #[test]
    fn keep_alive_parses_consecutive_requests() {
        let wire = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut reader = BufReader::new(&wire[..]);
        let a = read_request(&mut reader).unwrap().unwrap();
        let b = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(a.path(), "/a");
        assert_eq!(b.path(), "/b");
        assert_eq!(b.body, b"hi");
        assert!(read_request(&mut reader).unwrap().is_none());
    }
}
