//! The TCP front: a [`std::net::TcpListener`] accept loop feeding a
//! bounded pool of connection workers.
//!
//! The pool reuses [`batchlens_exec::run_workers`]: `workers + 1` scoped
//! threads, index 0 running the accept loop and the rest draining a
//! bounded `crossbeam` channel of accepted connections. The channel bound
//! is the server's backpressure: when every worker is busy and the queue
//! is full, the accept loop blocks and excess clients wait in the kernel
//! backlog instead of accumulating unbounded state in the process.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] flips a flag and
//! pokes the listener awake with a loopback connection; the accept loop
//! exits, the channel's sender is dropped, and workers finish their
//! current exchanges (marking responses `Connection: close`) before
//! [`Server::serve`] joins them all and returns.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::codec::{read_request, CodecError, Response};
use crate::router::{route, RouterContext};
use crate::session::SessionManager;
use crate::stats::ServeStats;

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connection worker threads. `0` means "pick a small default"
    /// (process parallelism capped at 4 — dashboard serving is not a
    /// throughput workload).
    pub workers: usize,
    /// Accepted connections that may queue between the accept loop and
    /// the workers before accepting blocks. Clamped to at least 1.
    pub queue_depth: usize,
    /// How long a worker waits on an idle keep-alive connection before
    /// closing it. Also bounds how long shutdown can take to drain.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

impl ServeConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            batchlens_exec::default_threads().clamp(1, 4)
        } else {
            self.workers
        }
    }
}

/// A handle that can stop a running [`Server::serve`] call from another
/// thread. Cloneable; shutdown is idempotent.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and wakes the accept loop. Returns once the
    /// request is delivered (not once the server has drained).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the blocking accept() awake; the connection itself is
        // discarded by the flag check on the other side.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The multi-session dashboard server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    stats: Arc<ServeStats>,
    cfg: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) over `manager`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        manager: Arc<SessionManager>,
        cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            manager,
            stats: Arc::new(ServeStats::new()),
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the ephemeral port after binding port 0).
    ///
    /// # Panics
    ///
    /// Never in practice: a bound listener has a local address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// The server's shared counters.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// The session manager this server fronts.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.local_addr(),
        }
    }

    /// Runs the accept loop and worker pool, blocking until
    /// [`ServerHandle::shutdown`] is called. All threads are scoped and
    /// joined before this returns — no detached state survives.
    pub fn serve(&self) {
        let workers = self.cfg.resolved_workers();
        let (tx, rx) = bounded::<TcpStream>(self.cfg.queue_depth.max(1));
        // The sender lives in an Option so the accept loop (worker 0) can
        // drop it on exit — that is what unblocks the workers' recv().
        let tx: Mutex<Option<Sender<TcpStream>>> = Mutex::new(Some(tx));
        let rx: Mutex<Receiver<TcpStream>> = Mutex::new(rx);
        batchlens_exec::run_workers(workers + 1, |i| {
            if i == 0 {
                self.accept_loop(&tx);
            } else {
                self.worker_loop(&rx, workers);
            }
        });
    }

    fn accept_loop(&self, tx: &Mutex<Option<Sender<TcpStream>>>) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    self.stats.connection_queued();
                    let sent = tx
                        .lock()
                        .as_ref()
                        .map(|t| t.send(stream).is_ok())
                        .unwrap_or(false);
                    if !sent {
                        self.stats.connection_claimed();
                        break;
                    }
                }
                Err(_) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
        }
        *tx.lock() = None;
    }

    fn worker_loop(&self, rx: &Mutex<Receiver<TcpStream>>, workers: usize) {
        loop {
            // Hold the receiver lock only while waiting: handling runs
            // unlocked so workers serve connections concurrently.
            let stream = { rx.lock().recv() };
            match stream {
                Ok(stream) => {
                    self.stats.connection_claimed();
                    self.handle_connection(stream, workers);
                }
                Err(_) => break,
            }
        }
    }

    /// One connection's keep-alive conversation: requests are read and
    /// routed until the peer closes, asks to close, errors, idles past
    /// the timeout, or the server is shutting down.
    fn handle_connection(&self, stream: TcpStream, workers: usize) {
        let _ = stream.set_read_timeout(Some(self.cfg.idle_timeout));
        let _ = stream.set_nodelay(true);
        let Ok(reader_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(reader_half);
        let mut writer = stream;
        let ctx = RouterContext {
            manager: &self.manager,
            stats: &self.stats,
            workers,
        };
        loop {
            match read_request(&mut reader) {
                Ok(Some(req)) => {
                    let mut response = route(&ctx, &req);
                    if req.wants_close() || self.shutdown.load(Ordering::SeqCst) {
                        response = response.closing();
                    }
                    if response.write_to(&mut writer).is_err() || response.close {
                        break;
                    }
                }
                Ok(None) => break,
                Err(CodecError::Io(_)) => break,
                Err(err) => {
                    // The peer spoke something we can't frame: answer with
                    // a closing 400 (best effort) and drop the connection —
                    // its framing state is unknown.
                    let _ = Response::bad_request(err.to_string())
                        .closing()
                        .write_to(&mut writer);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_response, ClientResponse};
    use batchlens::BatchLens;
    use batchlens_sim::scenario;
    use std::io::Write;

    fn start_server() -> (Arc<Server>, ServerHandle, std::thread::JoinHandle<()>) {
        let ds = scenario::fig3b(21).run().unwrap();
        let manager = Arc::new(SessionManager::new(Arc::new(BatchLens::new(ds))));
        let server = Arc::new(
            Server::bind(
                ("127.0.0.1", 0),
                manager,
                ServeConfig {
                    workers: 2,
                    queue_depth: 8,
                    idle_timeout: Duration::from_millis(500),
                },
            )
            .unwrap(),
        );
        let handle = server.handle();
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.serve());
        (server, handle, join)
    }

    fn request(stream: &mut TcpStream, method: &str, target: &str, body: &str) -> ClientResponse {
        write!(
            stream,
            "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        read_response(&mut reader).unwrap().unwrap()
    }

    #[test]
    fn serves_sessions_over_real_sockets_with_keep_alive() {
        let (server, handle, join) = start_server();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        // Three requests down one keep-alive connection.
        let created = request(&mut conn, "POST", "/sessions", "");
        assert_eq!(created.status, 200);
        let id: crate::session::SessionCreated = serde_json::from_str(&created.text()).unwrap();
        let seek = request(
            &mut conn,
            "POST",
            &format!("/sessions/{}/events", id.session),
            &format!("{{\"SelectTimestamp\": {}}}", scenario::T_FIG3B.seconds()),
        );
        assert_eq!(seek.status, 200);
        let frame = request(
            &mut conn,
            "GET",
            &format!("/sessions/{}/frame", id.session),
            "",
        );
        assert_eq!(frame.status, 200);
        assert!(frame.text().contains("\"version\""));
        assert_eq!(frame.header("connection"), Some("keep-alive"));
        drop(conn);
        // A second, parallel connection sees the same session table.
        let mut conn2 = TcpStream::connect(server.local_addr()).unwrap();
        let statsz = request(&mut conn2, "GET", "/statsz", "");
        assert!(statsz.text().contains("\"sessions\""));
        drop(conn2);
        handle.shutdown();
        join.join().unwrap();
        assert!(server.stats().total_requests() >= 4);
    }

    #[test]
    fn malformed_requests_get_a_closing_400() {
        let (server, handle, join) = start_server();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let resp = read_response(&mut reader).unwrap().unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(resp.header("connection"), Some("close"));
        drop(conn);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let (_server, handle, join) = start_server();
        handle.shutdown();
        handle.shutdown(); // idempotent
        join.join().unwrap();
    }
}
