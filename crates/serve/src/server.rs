//! The TCP front: a [`std::net::TcpListener`] accept loop feeding a
//! bounded pool of connection workers.
//!
//! The pool reuses [`batchlens_exec::run_workers`]: `workers + 1` scoped
//! threads, index 0 running the accept loop and the rest draining a
//! bounded `crossbeam` channel of accepted connections. The channel bound
//! is the server's backpressure: when every worker is busy and the queue
//! is full, new connections are **shed** — answered `503 + Retry-After`
//! straight from the accept loop and closed — so the listener never
//! blocks and overload never accumulates unbounded state in the process.
//!
//! Shutdown is cooperative: [`ServerHandle::shutdown`] flips a flag and
//! pokes the listener awake with a loopback connection; the accept loop
//! exits, the channel's sender is dropped, and workers finish their
//! current exchanges (marking responses `Connection: close`) before
//! [`Server::serve`] joins them all and returns.

use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;

use crate::codec::{read_request, CodecError, Response};
use crate::router::{route, RouterContext};
use crate::session::SessionManager;
use crate::stats::ServeStats;

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connection worker threads. `0` means "pick a small default"
    /// (process parallelism capped at 4 — dashboard serving is not a
    /// throughput workload).
    pub workers: usize,
    /// Accepted connections that may queue between the accept loop and
    /// the workers; arrivals beyond that are shed with `503 +
    /// Retry-After`. Clamped to at least 1.
    pub queue_depth: usize,
    /// How long a worker waits on an idle keep-alive connection before
    /// closing it. Also bounds how long shutdown can take to drain.
    pub idle_timeout: Duration,
    /// Socket write timeout: a client that stops draining its receive
    /// window for this long loses the connection (counted in `/statsz`
    /// as `write_timeouts`) instead of wedging a worker.
    pub write_timeout: Duration,
    /// Per-request deadline, armed when a request's first byte arrives:
    /// it bounds the remaining codec reads (via the socket read timeout)
    /// and, checked after routing, closes connections whose handler work
    /// overran (counted as `deadlines_exceeded`).
    pub request_deadline: Duration,
    /// The `Retry-After` value shed responses advertise.
    pub retry_after: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(10),
            retry_after: Duration::from_secs(1),
        }
    }
}

impl ServeConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            batchlens_exec::default_threads().clamp(1, 4)
        } else {
            self.workers
        }
    }
}

/// A handle that can stop a running [`Server::serve`] call from another
/// thread. Cloneable; shutdown is idempotent.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and wakes the accept loop. Returns once the
    /// request is delivered (not once the server has drained).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the blocking accept() awake; the connection itself is
        // discarded by the flag check on the other side.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The multi-session dashboard server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    manager: Arc<SessionManager>,
    stats: Arc<ServeStats>,
    cfg: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) over `manager`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        manager: Arc<SessionManager>,
        cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            manager,
            stats: Arc::new(ServeStats::new()),
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the ephemeral port after binding port 0).
    ///
    /// # Panics
    ///
    /// Never in practice: a bound listener has a local address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// The server's shared counters.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// The session manager this server fronts.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.local_addr(),
        }
    }

    /// Runs the accept loop and worker pool, blocking until
    /// [`ServerHandle::shutdown`] is called. All threads are scoped and
    /// joined before this returns — no detached state survives.
    pub fn serve(&self) {
        let workers = self.cfg.resolved_workers();
        let (tx, rx) = bounded::<TcpStream>(self.cfg.queue_depth.max(1));
        // The sender lives in an Option so the accept loop (worker 0) can
        // drop it on exit — that is what unblocks the workers' recv().
        let tx: Mutex<Option<Sender<TcpStream>>> = Mutex::new(Some(tx));
        let rx: Mutex<Receiver<TcpStream>> = Mutex::new(rx);
        batchlens_exec::run_workers(workers + 1, |i| {
            if i == 0 {
                self.accept_loop(&tx);
            } else {
                self.worker_loop(&rx, workers);
            }
        });
    }

    fn accept_loop(&self, tx: &Mutex<Option<Sender<TcpStream>>>) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    // Shed-don't-block: a full queue answers the new
                    // connection `503 + Retry-After` immediately instead
                    // of stalling the accept loop (which would push
                    // overload into the opaque kernel backlog).
                    let queued = {
                        let guard = tx.lock();
                        match guard.as_ref() {
                            None => break,
                            Some(t) => {
                                self.stats.connection_queued();
                                match t.try_send(stream) {
                                    Ok(()) => Ok(()),
                                    Err(e) => {
                                        self.stats.connection_claimed();
                                        Err(e)
                                    }
                                }
                            }
                        }
                    };
                    match queued {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => self.shed(stream),
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                Err(_) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
        }
        *tx.lock() = None;
    }

    /// Answers one over-capacity connection with the shed `503` (see
    /// [`Response::service_unavailable`] for the contract) — best effort,
    /// bounded by the write timeout, never read from.
    fn shed(&self, mut stream: TcpStream) {
        self.stats.connection_shed();
        let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
        let _ = stream.set_nodelay(true);
        let _ = Response::service_unavailable(
            "server overloaded".to_string(),
            self.cfg.retry_after.as_secs().max(1),
        )
        .write_to(&mut stream);
    }

    fn worker_loop(&self, rx: &Mutex<Receiver<TcpStream>>, workers: usize) {
        loop {
            // Hold the receiver lock only while waiting: handling runs
            // unlocked so workers serve connections concurrently.
            let stream = { rx.lock().recv() };
            match stream {
                Ok(stream) => {
                    self.stats.connection_claimed();
                    // Belt-and-braces on top of the per-request
                    // catch_unwind in `route`: a panic anywhere else in
                    // the connection path drops that connection only —
                    // run_workers joins with expect(), so an escaped
                    // panic would take down the whole server.
                    if catch_unwind(AssertUnwindSafe(|| self.handle_connection(stream, workers)))
                        .is_err()
                    {
                        self.stats.record_worker_panic();
                    }
                }
                Err(_) => break,
            }
        }
    }

    /// One connection's keep-alive conversation: requests are read and
    /// routed until the peer closes, asks to close, errors, idles past
    /// the timeout, overruns its deadline, or the server is shutting
    /// down.
    fn handle_connection(&self, stream: TcpStream, workers: usize) {
        let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
        let _ = stream.set_nodelay(true);
        let Ok(reader_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(DeadlineReader::new(
            reader_half,
            self.cfg.idle_timeout,
            self.cfg.request_deadline,
        ));
        let mut writer = stream;
        let ctx = RouterContext {
            manager: &self.manager,
            stats: &self.stats,
            workers,
        };
        loop {
            reader.get_mut().start_idle();
            match read_request(&mut reader) {
                Ok(Some(req)) => {
                    let mut response = route(&ctx, &req);
                    if reader.get_ref().deadline_exceeded() {
                        // The handler overran the request deadline: the
                        // response still goes out, but the connection does
                        // not get another turn.
                        self.stats.record_deadline_exceeded();
                        response = response.closing();
                    }
                    if req.wants_close() || self.shutdown.load(Ordering::SeqCst) {
                        response = response.closing();
                    }
                    match response.write_to(&mut writer) {
                        Ok(()) => {
                            if response.close {
                                break;
                            }
                        }
                        Err(e) => {
                            if is_timeout(&e) {
                                self.stats.record_write_timeout();
                            }
                            break;
                        }
                    }
                }
                Ok(None) => break,
                Err(CodecError::Io(e)) => {
                    // A timeout while the deadline is armed can only be the
                    // deadline itself: idle waits run with it disarmed.
                    if reader.get_ref().deadline_armed() && is_timeout(&e) {
                        // Mid-request deadline expiry: best-effort 408 so
                        // the slow client learns why it was cut off.
                        self.stats.record_deadline_exceeded();
                        let _ = Response {
                            status: 408,
                            reason: "Request Timeout",
                            content_type: "text/plain; charset=utf-8",
                            body: b"request deadline exceeded".to_vec(),
                            close: true,
                            extra_headers: Vec::new(),
                        }
                        .write_to(&mut writer);
                    }
                    break;
                }
                Err(err) => {
                    // The peer spoke something we can't frame: answer with
                    // a closing 400 (best effort) and drop the connection —
                    // its framing state is unknown.
                    let _ = Response::bad_request(err.to_string())
                        .closing()
                        .write_to(&mut writer);
                    break;
                }
            }
        }
    }
}

/// Whether an IO error is a socket timeout (`read`/`write` deadline) —
/// unix read timeouts surface as `WouldBlock`, windows as `TimedOut`.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// The reader half of a connection with a per-request deadline.
///
/// Between requests (`start_idle`) reads wait under the idle keep-alive
/// timeout. The first byte of a request arms a deadline `request_budget`
/// from now; every subsequent read re-arms the socket read timeout with
/// the *remaining* budget, so a trickling client cannot hold a worker
/// past the deadline no matter how many bytes it dribbles.
#[derive(Debug)]
struct DeadlineReader {
    stream: TcpStream,
    idle_timeout: Duration,
    request_budget: Duration,
    deadline: Option<Instant>,
}

impl DeadlineReader {
    fn new(stream: TcpStream, idle_timeout: Duration, request_budget: Duration) -> DeadlineReader {
        DeadlineReader {
            stream,
            idle_timeout,
            request_budget,
            deadline: None,
        }
    }

    /// Disarms the deadline: the next read waits for a new request under
    /// the idle timeout, and that request's first byte re-arms it.
    fn start_idle(&mut self) {
        self.deadline = None;
    }

    /// Whether a request is mid-flight (its deadline is armed).
    fn deadline_armed(&self) -> bool {
        self.deadline.is_some()
    }

    /// Whether the armed deadline has passed.
    fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }
}

impl Read for DeadlineReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.deadline {
            None => {
                let _ = self.stream.set_read_timeout(Some(self.idle_timeout));
            }
            Some(deadline) => {
                let remaining = deadline
                    .checked_duration_since(Instant::now())
                    .filter(|r| !r.is_zero())
                    .ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "request deadline exceeded",
                        )
                    })?;
                let _ = self.stream.set_read_timeout(Some(remaining));
            }
        }
        let n = self.stream.read(buf)?;
        if n > 0 && self.deadline.is_none() {
            self.deadline = Some(Instant::now() + self.request_budget);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_response, ClientResponse};
    use batchlens::BatchLens;
    use batchlens_sim::scenario;
    use std::io::Write;

    fn start_server_with(
        cfg: ServeConfig,
    ) -> (Arc<Server>, ServerHandle, std::thread::JoinHandle<()>) {
        let ds = scenario::fig3b(21).run().unwrap();
        let manager = Arc::new(SessionManager::new(Arc::new(BatchLens::new(ds))));
        let server = Arc::new(Server::bind(("127.0.0.1", 0), manager, cfg).unwrap());
        let handle = server.handle();
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.serve());
        (server, handle, join)
    }

    fn start_server() -> (Arc<Server>, ServerHandle, std::thread::JoinHandle<()>) {
        start_server_with(ServeConfig {
            workers: 2,
            queue_depth: 8,
            idle_timeout: Duration::from_millis(500),
            ..ServeConfig::default()
        })
    }

    fn request(stream: &mut TcpStream, method: &str, target: &str, body: &str) -> ClientResponse {
        write!(
            stream,
            "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        read_response(&mut reader).unwrap().unwrap()
    }

    #[test]
    fn serves_sessions_over_real_sockets_with_keep_alive() {
        let (server, handle, join) = start_server();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        // Three requests down one keep-alive connection.
        let created = request(&mut conn, "POST", "/sessions", "");
        assert_eq!(created.status, 200);
        let id: crate::session::SessionCreated = serde_json::from_str(&created.text()).unwrap();
        let seek = request(
            &mut conn,
            "POST",
            &format!("/sessions/{}/events", id.session),
            &format!("{{\"SelectTimestamp\": {}}}", scenario::T_FIG3B.seconds()),
        );
        assert_eq!(seek.status, 200);
        let frame = request(
            &mut conn,
            "GET",
            &format!("/sessions/{}/frame", id.session),
            "",
        );
        assert_eq!(frame.status, 200);
        assert!(frame.text().contains("\"version\""));
        assert_eq!(frame.header("connection"), Some("keep-alive"));
        drop(conn);
        // A second, parallel connection sees the same session table.
        let mut conn2 = TcpStream::connect(server.local_addr()).unwrap();
        let statsz = request(&mut conn2, "GET", "/statsz", "");
        assert!(statsz.text().contains("\"sessions\""));
        drop(conn2);
        handle.shutdown();
        join.join().unwrap();
        assert!(server.stats().total_requests() >= 4);
    }

    #[test]
    fn malformed_requests_get_a_closing_400() {
        let (server, handle, join) = start_server();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        conn.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let resp = read_response(&mut reader).unwrap().unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(resp.header("connection"), Some("close"));
        drop(conn);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let (_server, handle, join) = start_server();
        handle.shutdown();
        handle.shutdown(); // idempotent
        join.join().unwrap();
    }

    #[test]
    fn saturated_queue_sheds_with_retry_after() {
        // One worker, queue of one — and the worker is parked inside a
        // slow request, so held + queued connections saturate the server.
        let (server, handle, join) = start_server_with(ServeConfig {
            workers: 1,
            queue_depth: 1,
            idle_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        });
        // Park the worker: a connection that has sent nothing yet holds
        // its worker until the idle timeout.
        let parked = TcpStream::connect(server.local_addr()).unwrap();
        // Give the worker time to claim it, then fill the queue.
        std::thread::sleep(Duration::from_millis(100));
        let queued = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // Every further connection must be shed immediately.
        let shed = TcpStream::connect(server.local_addr()).unwrap();
        let resp = read_response(&mut BufReader::new(shed.try_clone().unwrap()))
            .unwrap()
            .expect("shed connections get a response, not silence");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.header("connection"), Some("close"));
        assert!(server.stats().connections_shed() >= 1);
        drop(shed);
        drop(queued);
        drop(parked);
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn trickling_requests_hit_the_deadline() {
        let (server, handle, join) = start_server_with(ServeConfig {
            workers: 1,
            queue_depth: 4,
            idle_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_millis(200),
            ..ServeConfig::default()
        });
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        // First bytes arm the deadline; then the client stalls mid-request.
        conn.write_all(b"GET /statsz HT").unwrap();
        let started = std::time::Instant::now();
        let resp = read_response(&mut BufReader::new(conn.try_clone().unwrap())).unwrap();
        // The worker cut us off around the deadline — either with the
        // best-effort 408 or a bare close — well before the idle timeout.
        assert!(started.elapsed() < Duration::from_secs(3));
        if let Some(resp) = resp {
            assert_eq!(resp.status, 408);
        }
        drop(conn);
        handle.shutdown();
        join.join().unwrap();
        assert!(
            server
                .stats()
                .snapshot(server.manager(), 1)
                .deadlines_exceeded
                >= 1,
            "the overrun is visible in /statsz"
        );
    }
}
