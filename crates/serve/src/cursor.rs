//! Per-session alert cursors over an [`AlertSource`]'s retained buffer
//! (a [`StreamMonitor`] or a sharded facade).

#[cfg(doc)]
use batchlens::stream::StreamMonitor;
use batchlens::stream::{AlertBatch, AlertSource};

/// A non-destructive, independently positioned cursor over the alert
/// sequence of one [`AlertSource`] — a [`StreamMonitor`] or a
/// [`batchlens::shard::ShardedMonitor`] facade.
///
/// # Contract
///
/// * **Non-destructive.** Polling never consumes from the monitor: it
///   reads via [`StreamMonitor::alerts_since`], so any number of cursors
///   (and a separate draining consumer) coexist without stealing each
///   other's alerts.
/// * **Exactly-once per cursor.** The cursor remembers the next sequence
///   number it has not yet seen and advances it to the batch's
///   `next_seq` on every poll: each alert the monitor ever retains is
///   delivered to each cursor at most once, and exactly once while the
///   cursor keeps up with the retention capacity.
/// * **Independently positioned.** Two cursors over the same monitor
///   advance separately; a fast poller and a slow poller each see the
///   full sequence from their own position.
/// * **Gaps are observed, never silent.** A cursor that lags behind the
///   monitor's bounded retention (alerts evicted by
///   [`StreamMonitor::alerts_overflowed`] before this cursor read them)
///   is told how many alerts it can no longer read: each poll's `missed`
///   count is accumulated into [`AlertCursor::missed`], and the
///   invariant `position() == delivered() + missed() + <start offset>`
///   holds at all times (start offset is 0 for [`AlertCursor::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlertCursor {
    /// The first sequence number this cursor has not yet observed.
    next_seq: u64,
    /// Alerts delivered through this cursor so far.
    delivered: u64,
    /// Alerts this cursor can never read: evicted from the bounded
    /// retention buffer before it polled.
    missed: u64,
}

impl AlertCursor {
    /// A cursor positioned at the beginning of the alert sequence: the
    /// first poll delivers the monitor's whole retained buffer (and
    /// reports anything already evicted as missed).
    pub fn new() -> AlertCursor {
        AlertCursor::at(0)
    }

    /// A cursor positioned at sequence number `seq`. Use
    /// `AlertCursor::at(monitor.next_alert_seq())` for a cursor that only
    /// observes alerts fired after its creation.
    pub fn at(seq: u64) -> AlertCursor {
        AlertCursor {
            next_seq: seq,
            delivered: 0,
            missed: 0,
        }
    }

    /// Reads everything retained at or past this cursor's position and
    /// advances past it. Returns the batch exactly as the monitor
    /// reported it (alerts in firing order, `missed` = gap to this
    /// cursor's position).
    pub fn poll<S: AlertSource + ?Sized>(&mut self, source: &S) -> AlertBatch {
        let batch = source.alerts_since(self.next_seq);
        self.next_seq = batch.next_seq;
        self.delivered += batch.alerts.len() as u64;
        self.missed += batch.missed;
        batch
    }

    /// The next sequence number this cursor will read.
    pub fn position(&self) -> u64 {
        self.next_seq
    }

    /// Total alerts delivered through this cursor.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Total alerts this cursor missed (evicted before it polled).
    pub fn missed(&self) -> u64 {
        self.missed
    }
}

impl Default for AlertCursor {
    fn default() -> Self {
        AlertCursor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens::stream::{StreamConfig, StreamMonitor};
    use batchlens_trace::{MachineId, ServerUsageRecord, Timestamp, UtilizationTriple};

    /// Drives the monitor's saturation detector into firing: a run of
    /// fully saturated CPU samples on one machine.
    fn fire_alerts(monitor: &StreamMonitor, machine: u32, t0: i64, n: usize) {
        for k in 0..n {
            monitor.ingest(ServerUsageRecord {
                time: Timestamp::new(t0 + (k as i64) * 60),
                machine: MachineId::new(machine),
                util: UtilizationTriple::clamped(0.95, 0.3, 0.3),
            });
        }
    }

    fn tiny_monitor(capacity: usize) -> StreamMonitor {
        StreamMonitor::new(StreamConfig {
            alert_capacity: capacity,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn two_cursors_advance_independently() {
        let monitor = tiny_monitor(64);
        fire_alerts(&monitor, 1, 0, 30);
        let fired = monitor.next_alert_seq();
        assert!(fired > 0, "scenario must fire alerts");

        let mut fast = AlertCursor::new();
        let mut slow = AlertCursor::new();
        let first = fast.poll(&monitor);
        assert_eq!(first.alerts.len() as u64, fired);
        assert_eq!(fast.position(), fired);
        // Polling again delivers nothing new — exactly-once per cursor.
        assert!(fast.poll(&monitor).alerts.is_empty());
        // The slow cursor still sees everything from its own position.
        let late = slow.poll(&monitor);
        assert_eq!(late.alerts.len() as u64, fired);
        assert_eq!(late.alerts, first.alerts);
        // Sequence numbers are contiguous in a batch.
        for pair in first.alerts.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
    }

    #[test]
    fn lagging_cursor_observes_the_gap() {
        let monitor = tiny_monitor(2);
        fire_alerts(&monitor, 1, 0, 40);
        let fired = monitor.next_alert_seq();
        assert!(fired > 2, "must overflow the 2-slot buffer");

        let mut cursor = AlertCursor::new();
        let batch = cursor.poll(&monitor);
        assert_eq!(batch.alerts.len(), 2, "only the retained tail is readable");
        assert_eq!(batch.missed, fired - 2);
        assert_eq!(cursor.missed(), fired - 2);
        assert_eq!(cursor.delivered(), 2);
        // position == delivered + missed (the documented invariant).
        assert_eq!(cursor.position(), cursor.delivered() + cursor.missed());
    }

    #[test]
    fn cursor_at_now_skips_history() {
        let monitor = tiny_monitor(64);
        fire_alerts(&monitor, 1, 0, 30);
        let mut cursor = AlertCursor::at(monitor.next_alert_seq());
        assert!(cursor.poll(&monitor).alerts.is_empty());
        assert_eq!(cursor.missed(), 0);
        // New alerts on another machine are observed from here on.
        fire_alerts(&monitor, 2, 3600, 30);
        let batch = cursor.poll(&monitor);
        assert!(!batch.alerts.is_empty());
        assert_eq!(batch.missed, 0);
    }
}
