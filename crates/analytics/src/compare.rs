//! Temporal and spatial comparison of cluster regimes.
//!
//! The case study's first-order observation is a *comparison*: Fig 3(b)'s
//! nodes are "heavier than that in Fig 3(a) through the color distribution",
//! Fig 3(c) shows "a tremendous amount of nodes … at high CPU- or
//! memory-utilization". This module quantifies those statements so the
//! reproduction can assert them.

use batchlens_trace::{Metric, Timestamp, TraceDataset, Utilization};
use serde::{Deserialize, Serialize};

/// The utilization band a snapshot falls into, mirroring the paper's three
/// case-study regimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegimeBand {
    /// Roughly the paper's Fig 3(a): most machines at 20–40 %.
    Low,
    /// Roughly Fig 3(b): 50–80 %.
    Medium,
    /// Roughly Fig 3(c): approaching capacity.
    High,
}

/// Distribution summary of machine utilization at one timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegimeSummary {
    /// Snapshot time.
    pub at: Timestamp,
    /// Machines with usage data at the snapshot.
    pub machines: usize,
    /// Mean of per-machine mean-of-triple utilization.
    pub mean: f64,
    /// Mean CPU utilization.
    pub mean_cpu: f64,
    /// Mean memory utilization.
    pub mean_mem: f64,
    /// Mean disk utilization.
    pub mean_disk: f64,
    /// 10th percentile of per-machine mean utilization.
    pub p10: f64,
    /// 90th percentile of per-machine mean utilization.
    pub p90: f64,
    /// Fraction of machines whose *max* metric exceeds 90 % ("reaching the
    /// respective capacity").
    pub saturated_fraction: f64,
}

impl RegimeSummary {
    /// Summarizes machine utilization at `at`.
    pub fn at(ds: &TraceDataset, at: Timestamp) -> RegimeSummary {
        let mut means: Vec<f64> = Vec::new();
        let (mut c, mut m, mut d) = (0.0f64, 0.0f64, 0.0f64);
        let mut saturated = 0usize;
        for machine in ds.machines() {
            if let Some(u) = machine.util_at(at) {
                means.push(u.mean().fraction());
                c += u.cpu.fraction();
                m += u.mem.fraction();
                d += u.disk.fraction();
                if u.max() > Utilization::clamped(0.9) {
                    saturated += 1;
                }
            }
        }
        let n = means.len();
        let nf = n.max(1) as f64;
        let mean = means.iter().sum::<f64>() / nf;
        // Selection instead of a full sort; O(n) per percentile.
        let (p10, p90) = if n == 0 {
            (0.0, 0.0)
        } else {
            (
                batchlens_trace::quantile_select(&mut means, 0.10),
                batchlens_trace::quantile_select(&mut means, 0.90),
            )
        };
        RegimeSummary {
            at,
            machines: n,
            mean,
            mean_cpu: c / nf,
            mean_mem: m / nf,
            mean_disk: d / nf,
            p10,
            p90,
            saturated_fraction: saturated as f64 / nf,
        }
    }

    /// Classifies the snapshot into the paper's three bands.
    pub fn band(&self) -> RegimeBand {
        if self.mean < 0.45 {
            RegimeBand::Low
        } else if self.mean < 0.75 && self.saturated_fraction < 0.3 {
            RegimeBand::Medium
        } else {
            RegimeBand::High
        }
    }

    /// Mean utilization of the given metric.
    pub fn mean_of(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Cpu => self.mean_cpu,
            Metric::Memory => self.mean_mem,
            Metric::Disk => self.mean_disk,
        }
    }
}

/// Spatial comparison: a specific set of machines vs the whole cluster at
/// one timestamp. Returns `(subset_mean, cluster_mean)` of mean-of-triple
/// utilization; used for claims like "job_7901 running on busier nodes than
/// those hosting other jobs".
pub fn subset_vs_cluster(
    ds: &TraceDataset,
    machines: &[batchlens_trace::MachineId],
    at: Timestamp,
) -> (f64, f64) {
    let mut subset_sum = 0.0;
    let mut subset_n = 0usize;
    for m in machines {
        if let Some(u) = ds.machine(*m).and_then(|mv| mv.util_at(at)) {
            subset_sum += u.mean().fraction();
            subset_n += 1;
        }
    }
    let summary = RegimeSummary::at(ds, at);
    (subset_sum / subset_n.max(1) as f64, summary.mean)
}

/// A temporal comparison of the cluster between two timestamps — the paper's
/// "temporal analysis ... facilitates the detection of anomalous performances
/// of compute nodes over time".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDiff {
    /// Earlier snapshot.
    pub before: RegimeSummary,
    /// Later snapshot.
    pub after: RegimeSummary,
    /// Change in mean utilization (`after - before`).
    pub delta_mean: f64,
    /// Change in the saturated-machine fraction.
    pub delta_saturated: f64,
}

impl SnapshotDiff {
    /// Compares `ds` at two timestamps.
    pub fn between(ds: &TraceDataset, before: Timestamp, after: Timestamp) -> SnapshotDiff {
        let b = RegimeSummary::at(ds, before);
        let a = RegimeSummary::at(ds, after);
        SnapshotDiff {
            delta_mean: a.mean - b.mean,
            delta_saturated: a.saturated_fraction - b.saturated_fraction,
            before: b,
            after: a,
        }
    }

    /// True when the later snapshot is meaningfully busier than the earlier
    /// one (mean utilization up by more than `threshold`).
    pub fn escalated(&self, threshold: f64) -> bool {
        self.delta_mean > threshold
    }

    /// True when load dropped sharply (e.g. the mass-shutdown cliff).
    pub fn collapsed(&self, threshold: f64) -> bool {
        self.delta_mean < -threshold
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let dir = if self.delta_mean > 0.0 {
            "rose"
        } else {
            "fell"
        };
        format!(
            "utilization {dir} {:.1} pts ({:.1}% → {:.1}%); saturation {:+.1} pts",
            self.delta_mean.abs() * 100.0,
            self.before.mean * 100.0,
            self.after.mean * 100.0,
            self.delta_saturated * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn regimes_classify_in_paper_order() {
        let low = RegimeSummary::at(&scenario::fig3a(31).run().unwrap(), scenario::T_FIG3A);
        let med = RegimeSummary::at(&scenario::fig3b(31).run().unwrap(), scenario::T_FIG3B);
        let high = RegimeSummary::at(&scenario::fig3c(31).run().unwrap(), scenario::T_FIG3C);
        assert_eq!(low.band(), RegimeBand::Low, "low: {low:?}");
        assert!(
            med.mean > low.mean,
            "medium {:.2} vs low {:.2}",
            med.mean,
            low.mean
        );
        assert!(
            high.mean > med.mean * 0.9,
            "high {:.2} vs med {:.2}",
            high.mean,
            med.mean
        );
        assert_ne!(med.band(), RegimeBand::Low);
        assert_ne!(high.band(), RegimeBand::Low);
        // The overload regime saturates machines; the healthy one does not.
        assert!(high.saturated_fraction > low.saturated_fraction);
    }

    #[test]
    fn percentiles_are_ordered() {
        let s = RegimeSummary::at(&scenario::fig3b(32).run().unwrap(), scenario::T_FIG3B);
        assert!(s.p10 <= s.mean && s.mean <= s.p90);
        assert!(s.machines > 0);
    }

    #[test]
    fn spike_job_sits_on_busier_nodes() {
        let ds = scenario::fig3b(33).run().unwrap();
        let job = ds.job(scenario::JOB_7901).unwrap();
        let (subset, cluster) = subset_vs_cluster(&ds, &job.machines(), scenario::T_FIG3B);
        assert!(subset > cluster, "subset {subset} cluster {cluster}");
    }

    #[test]
    fn snapshot_diff_detects_shutdown_collapse() {
        // fig3c: overloaded at 43800, cleared after the 44100 shutdown.
        let ds = scenario::fig3c(34).run().unwrap();
        let diff = SnapshotDiff::between(
            &ds,
            scenario::T_FIG3C,
            Timestamp::new(scenario::T_SHUTDOWN.seconds() + 600),
        );
        assert!(diff.collapsed(0.1), "{}", diff.summary());
        assert!(!diff.escalated(0.0));
        assert!(diff.delta_mean < 0.0);
    }

    #[test]
    fn snapshot_diff_detects_escalation() {
        // paper day: healthy 47400 is cooler than overloaded 43800.
        let ds = scenario::paper_day_with_machines(35, 80).run().unwrap();
        let diff = SnapshotDiff::between(&ds, scenario::T_FIG3A, scenario::T_FIG3C);
        assert!(diff.escalated(0.1), "{}", diff.summary());
        assert!(diff.summary().contains("rose"));
    }

    #[test]
    fn empty_dataset_summary_is_zeroed() {
        let ds = batchlens_trace::TraceDatasetBuilder::new().build().unwrap();
        let s = RegimeSummary::at(&ds, Timestamp::ZERO);
        assert_eq!(s.machines, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.band(), RegimeBand::Low);
    }
}
