//! The batch hierarchy snapshot: the data model of the hierarchical bubble
//! chart (paper Fig 1 and the main views of Fig 3).
//!
//! At a chosen timestamp, the cluster's running work forms a three-level
//! tree: **jobs** (blue dotted bubbles) contain **tasks** (purple dotted
//! bubbles) contain **compute nodes** (three-annuli glyphs colored by CPU /
//! memory / disk utilization).

use batchlens_trace::{DatasetQuery, JobId, MachineId, TaskId, Timestamp, UtilizationTriple};
use serde::{Deserialize, Serialize};

/// Run-length encodes an **ascending** triple slice into
/// `((job, task, machine), count)` pairs — the grouped form the shared
/// materialization paths consume, without a map allocation.
pub(crate) fn count_runs(
    triples: &[(JobId, TaskId, MachineId)],
) -> impl Iterator<Item = ((JobId, TaskId, MachineId), u32)> + '_ {
    let mut i = 0usize;
    std::iter::from_fn(move || {
        if i >= triples.len() {
            return None;
        }
        let key = triples[i];
        let mut n = 0u32;
        while i < triples.len() && triples[i] == key {
            i += 1;
            n += 1;
        }
        Some((key, n))
    })
}

/// One compute node inside a task bubble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeEntry {
    /// The machine.
    pub machine: MachineId,
    /// How many of this task's instances run on it at the snapshot time.
    pub instances: u32,
    /// The machine's utilization triple at the snapshot time (sample-and-
    /// hold); `None` when the trace has no usage for it yet.
    pub util: Option<UtilizationTriple>,
}

/// One task bubble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskEntry {
    /// The task id within its job.
    pub task: TaskId,
    /// Nodes executing this task at the snapshot time, in machine order.
    pub nodes: Vec<NodeEntry>,
}

impl TaskEntry {
    /// Mean utilization over this task's nodes (ignoring nodes without
    /// usage data); `None` if no node has data.
    pub fn mean_util(&self) -> Option<UtilizationTriple> {
        UtilizationTriple::mean_of(self.nodes.iter().filter_map(|n| n.util.as_ref()))
    }
}

/// One job bubble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEntry {
    /// The job id.
    pub job: JobId,
    /// The job's tasks that have at least one running instance, task order.
    pub tasks: Vec<TaskEntry>,
    /// Distinct machines under the job, ascending — computed once at
    /// snapshot build/delta-apply time (see [`JobEntry::machines`]).
    machines: Vec<MachineId>,
}

impl JobEntry {
    /// All distinct machines under this job at the snapshot time,
    /// ascending. Precomputed at construction — a borrow, not a per-call
    /// re-derivation.
    pub fn machines(&self) -> &[MachineId] {
        &self.machines
    }

    /// An entry with no running work yet — the delta engine's insertion
    /// point for a job entering the running set.
    pub(crate) fn empty(job: JobId) -> JobEntry {
        JobEntry {
            job,
            tasks: Vec::new(),
            machines: Vec::new(),
        }
    }

    /// Records `machine` in the precomputed distinct-machine list (sorted
    /// insert, no-op when present) — the delta engine's counterpart of the
    /// build-time derivation.
    pub(crate) fn insert_machine(&mut self, machine: MachineId) {
        if let Err(i) = self.machines.binary_search(&machine) {
            self.machines.insert(i, machine);
        }
    }

    /// Drops `machine` from the distinct-machine list (no-op when absent).
    /// The caller asserts no node under this job references it anymore.
    pub(crate) fn remove_machine(&mut self, machine: MachineId) {
        if let Ok(i) = self.machines.binary_search(&machine) {
            self.machines.remove(i);
        }
    }

    /// Mean utilization over all nodes of all tasks.
    pub fn mean_util(&self) -> Option<UtilizationTriple> {
        UtilizationTriple::mean_of(
            self.tasks
                .iter()
                .flat_map(|t| t.nodes.iter())
                .filter_map(|n| n.util.as_ref()),
        )
    }

    /// Total node glyph count (a machine appearing under two tasks counts
    /// twice, matching the paper's job-based rendering).
    pub fn node_count(&self) -> usize {
        self.tasks.iter().map(|t| t.nodes.len()).sum()
    }
}

/// The full bubble-chart model at one timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchySnapshot {
    /// Snapshot time.
    pub at: Timestamp,
    /// Jobs with at least one running instance, in job-id order.
    pub jobs: Vec<JobEntry>,
}

impl HierarchySnapshot {
    /// Builds the snapshot of `src` at time `at`.
    ///
    /// A job/task/node appears iff an instance of it is *running* at `at`
    /// (half-open execution windows). Node utilization is the machine's
    /// sample-and-hold value at `at`.
    ///
    /// Generic over [`DatasetQuery`], so the same code snapshots a batch
    /// [`batchlens_trace::TraceDataset`] or a live monitor window — the two
    /// sources answer the underlying queries bit-identically.
    pub fn at<Q: DatasetQuery + ?Sized>(src: &Q, at: Timestamp) -> HierarchySnapshot {
        // One interval-index stab gives every running instance; grouping by
        // (job, task, machine) in a BTreeMap reproduces the job → task →
        // machine ordering of the per-job walk it replaces, in
        // O(k log k) for k running instances instead of a scan of every
        // instance of every running job.
        let mut grouped: std::collections::BTreeMap<(JobId, TaskId, MachineId), u32> =
            std::collections::BTreeMap::new();
        for (job, task, machine) in src.running_triples_at(at) {
            *grouped.entry((job, task, machine)).or_default() += 1;
        }
        // Machines repeat across tasks/jobs; look their utilization up once.
        let mut util_cache: std::collections::BTreeMap<MachineId, Option<UtilizationTriple>> =
            std::collections::BTreeMap::new();
        Self::from_grouped(at, grouped.iter().map(|(&k, &n)| (k, n)), |machine| {
            *util_cache
                .entry(machine)
                .or_insert_with(|| src.util_at(machine, at))
        })
    }

    /// Builds the snapshot from a [`batchlens_trace::QueryFrame`] — every
    /// structural and utilization answer comes from the frame's single
    /// captured state, so the result is transactionally consistent with any
    /// other product derived from the same frame. Bit-identical to
    /// [`HierarchySnapshot::at`] over the state the frame captured.
    pub fn from_frame(frame: &batchlens_trace::QueryFrame) -> HierarchySnapshot {
        Self::from_grouped(frame.at(), count_runs(frame.running_triples()), |machine| {
            frame.util_of(machine)
        })
    }

    /// The one materialization path every construction route shares —
    /// [`HierarchySnapshot::at`], [`HierarchySnapshot::from_frame`] and the
    /// delta engine ([`crate::scrub::SnapshotScrubber`]) all feed it, which
    /// is what makes "scrubbed == from-scratch" a structural identity
    /// rather than a coincidence. `grouped` must yield
    /// `((job, task, machine), instance count)` entries in ascending key
    /// order with positive counts.
    pub(crate) fn from_grouped(
        at: Timestamp,
        grouped: impl IntoIterator<Item = ((JobId, TaskId, MachineId), u32)>,
        mut util_of: impl FnMut(MachineId) -> Option<UtilizationTriple>,
    ) -> HierarchySnapshot {
        let mut jobs: Vec<JobEntry> = Vec::new();
        let mut iter = grouped.into_iter().peekable();
        while let Some(&((job, _, _), _)) = iter.peek() {
            let entry = Self::job_entry(
                job,
                std::iter::from_fn(|| {
                    iter.next_if(|&((j, _, _), _)| j == job)
                        .map(|((_, task, machine), n)| ((task, machine), n))
                }),
                &mut util_of,
            );
            jobs.extend(entry);
        }
        HierarchySnapshot { at, jobs }
    }

    /// Builds one job's entry from its ascending `((task, machine), count)`
    /// rows — the per-job unit [`HierarchySnapshot::from_grouped`] chunks
    /// into and the delta engine's patch path rebuilds per dirty job, so
    /// both produce identical entries by construction. `None` when the job
    /// has no rows (it left the running set).
    pub(crate) fn job_entry(
        job: JobId,
        rows: impl IntoIterator<Item = ((TaskId, MachineId), u32)>,
        mut util_of: impl FnMut(MachineId) -> Option<UtilizationTriple>,
    ) -> Option<JobEntry> {
        let mut tasks: Vec<TaskEntry> = Vec::new();
        for ((task, machine), instances) in rows {
            debug_assert!(instances > 0);
            let node = NodeEntry {
                machine,
                instances,
                util: util_of(machine),
            };
            match tasks.last_mut() {
                Some(te) if te.task == task => te.nodes.push(node),
                _ => tasks.push(TaskEntry {
                    task,
                    nodes: vec![node],
                }),
            }
        }
        if tasks.is_empty() {
            return None;
        }
        // Distinct machines, computed once here rather than per
        // `JobEntry::machines` call.
        let mut machines: Vec<MachineId> = tasks
            .iter()
            .flat_map(|t| t.nodes.iter().map(|n| n.machine))
            .collect();
        machines.sort_unstable();
        machines.dedup();
        Some(JobEntry {
            job,
            tasks,
            machines,
        })
    }

    /// Looks up one job entry.
    pub fn job(&self, id: JobId) -> Option<&JobEntry> {
        self.jobs.iter().find(|j| j.job == id)
    }

    /// Jobs ranked by ascending mean utilization (the case study's "lowest
    /// utilization" ordering). Jobs without usage data sort last.
    pub fn jobs_by_mean_util(&self) -> Vec<(JobId, Option<UtilizationTriple>)> {
        let mut out: Vec<(JobId, Option<UtilizationTriple>)> =
            self.jobs.iter().map(|j| (j.job, j.mean_util())).collect();
        out.sort_by(|a, b| match (&a.1, &b.1) {
            (Some(x), Some(y)) => x
                .mean()
                .fraction()
                .partial_cmp(&y.mean().fraction())
                .unwrap_or(std::cmp::Ordering::Equal),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        });
        out
    }

    /// Total node glyphs across all jobs.
    pub fn total_nodes(&self) -> usize {
        self.jobs.iter().map(|j| j.node_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::{
        BatchInstanceRecord, BatchTaskRecord, ServerUsageRecord, TaskStatus, TraceDataset,
        TraceDatasetBuilder,
    };

    fn build() -> TraceDataset {
        let mut b = TraceDatasetBuilder::new();
        // job 1: task 1 with 2 instances on machines 0 and 1 (machine 0 ×2),
        //        task 2 with 1 instance on machine 0.
        for (task, n) in [(1u32, 3u32), (2, 1)] {
            b.push_task(BatchTaskRecord {
                create_time: Timestamp::new(0),
                modify_time: Timestamp::new(1000),
                job: JobId::new(1),
                task: TaskId::new(task),
                instance_count: n,
                status: TaskStatus::Terminated,
                plan_cpu: 1.0,
                plan_mem: 0.5,
            });
        }
        let inst = |task: u32, seq: u32, machine: u32, t0: i64, t1: i64| BatchInstanceRecord {
            start_time: Timestamp::new(t0),
            end_time: Timestamp::new(t1),
            job: JobId::new(1),
            task: TaskId::new(task),
            seq,
            total: 3,
            machine: MachineId::new(machine),
            status: TaskStatus::Terminated,
            cpu_avg: 0.2,
            cpu_max: 0.4,
            mem_avg: 0.2,
            mem_max: 0.4,
        };
        b.push_instance(inst(1, 0, 0, 0, 1000));
        b.push_instance(inst(1, 1, 0, 0, 1000));
        b.push_instance(inst(1, 2, 1, 0, 500)); // ends before t=600
        b.push_instance(inst(2, 0, 0, 0, 1000));
        for t in [0i64, 300, 600, 900] {
            for m in [0u32, 1] {
                b.push_usage(ServerUsageRecord {
                    time: Timestamp::new(t),
                    machine: MachineId::new(m),
                    util: UtilizationTriple::clamped(0.3 + m as f64 * 0.2, 0.3, 0.3),
                });
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn snapshot_reflects_running_instances() {
        let ds = build();
        let snap = HierarchySnapshot::at(&ds, Timestamp::new(100));
        assert_eq!(snap.jobs.len(), 1);
        let job = &snap.jobs[0];
        assert_eq!(job.tasks.len(), 2);
        // Task 1 at t=100: machines 0 (2 instances) and 1 (1 instance).
        let t1 = &job.tasks[0];
        assert_eq!(t1.nodes.len(), 2);
        assert_eq!(t1.nodes[0].machine, MachineId::new(0));
        assert_eq!(t1.nodes[0].instances, 2);
        assert_eq!(t1.nodes[1].instances, 1);
        // Node glyph count double-counts machine 0 (appears under both tasks).
        assert_eq!(job.node_count(), 3);
        assert_eq!(job.machines(), vec![MachineId::new(0), MachineId::new(1)]);
    }

    #[test]
    fn finished_instances_drop_out() {
        let ds = build();
        let snap = HierarchySnapshot::at(&ds, Timestamp::new(600));
        let t1 = &snap.jobs[0].tasks[0];
        // Machine 1's instance ended at 500.
        assert_eq!(t1.nodes.len(), 1);
        assert_eq!(t1.nodes[0].machine, MachineId::new(0));
    }

    #[test]
    fn empty_when_nothing_runs() {
        let ds = build();
        let snap = HierarchySnapshot::at(&ds, Timestamp::new(5000));
        assert!(snap.jobs.is_empty());
        assert_eq!(snap.total_nodes(), 0);
    }

    #[test]
    fn utilization_is_attached() {
        let ds = build();
        let snap = HierarchySnapshot::at(&ds, Timestamp::new(100));
        let n = &snap.jobs[0].tasks[0].nodes[1]; // machine 1
        let u = n.util.unwrap();
        assert!((u.cpu.fraction() - 0.5).abs() < 1e-9);
        let mean = snap.jobs[0].mean_util().unwrap();
        assert!(mean.cpu.fraction() > 0.3);
    }

    #[test]
    fn ranking_sorts_by_mean() {
        let ds = build();
        let snap = HierarchySnapshot::at(&ds, Timestamp::new(100));
        let ranked = snap.jobs_by_mean_util();
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].0, JobId::new(1));
        assert!(snap.job(JobId::new(1)).is_some());
        assert!(snap.job(JobId::new(9)).is_none());
    }
}
