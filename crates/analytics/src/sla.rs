//! Service-Level-Agreement violation analysis.
//!
//! The paper's introduction frames the whole problem around SLAs: *"Anomalous
//! behaviors of batch jobs can potentially indicate existing software bugs
//! and hardware crashes, which will eventually result in the violation of the
//! Service Level Agreement."* This module turns that into concrete,
//! measurable policies over a dataset: saturation budgets, job-completion
//! deadlines, and availability floors.

use batchlens_trace::{
    JobId, MachineId, Metric, TaskStatus, TimeDelta, TimeRange, Timestamp, TraceDataset,
};
use serde::{Deserialize, Serialize};

/// A set of SLA thresholds to check a dataset against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaPolicy {
    /// A machine violates if any metric stays above this for longer than
    /// `max_saturation`.
    pub saturation_level: f64,
    /// Maximum continuous saturation allowed before a violation.
    pub max_saturation: TimeDelta,
    /// A job violates if it ends in a non-success terminal state
    /// (`Failed`/`Cancelled`) while others complete — a proxy for a missed
    /// completion guarantee.
    pub penalize_failures: bool,
}

impl Default for SlaPolicy {
    fn default() -> Self {
        SlaPolicy {
            saturation_level: 0.95,
            max_saturation: TimeDelta::minutes(10),
            penalize_failures: true,
        }
    }
}

/// A concrete SLA violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// A machine's metric exceeded the saturation level for too long.
    Saturation {
        /// The machine.
        machine: MachineId,
        /// Which metric.
        metric: Metric,
        /// The interval of continuous over-threshold utilization.
        range: TimeRange,
    },
    /// A job ended in a failure/cancellation terminal state.
    JobFailure {
        /// The job.
        job: JobId,
        /// The worst terminal status observed among its tasks.
        status: TaskStatus,
    },
}

impl Violation {
    /// A short machine-readable kind name.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Saturation { .. } => "saturation",
            Violation::JobFailure { .. } => "job_failure",
        }
    }
}

/// The outcome of checking a dataset against a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaReport {
    /// Every violation found, in discovery order (machines then jobs).
    pub violations: Vec<Violation>,
    /// Machines checked.
    pub machines_checked: usize,
    /// Jobs checked.
    pub jobs_checked: usize,
}

impl SlaReport {
    /// Fraction of machines with at least one saturation violation.
    pub fn saturated_machine_fraction(&self) -> f64 {
        if self.machines_checked == 0 {
            return 0.0;
        }
        let mut set = std::collections::BTreeSet::new();
        for v in &self.violations {
            if let Violation::Saturation { machine, .. } = v {
                set.insert(*machine);
            }
        }
        set.len() as f64 / self.machines_checked as f64
    }

    /// Number of job-failure violations.
    pub fn job_failures(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| matches!(v, Violation::JobFailure { .. }))
            .count()
    }

    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks `ds` against `policy` with the process-default worker count.
pub fn check(ds: &TraceDataset, policy: &SlaPolicy) -> SlaReport {
    check_with_threads(ds, policy, 0)
}

/// [`check`] across an explicit worker count (`0` = process default,
/// `1` = serial).
///
/// Machines (saturation runs over three metrics each) and jobs (terminal
/// status scans) are independent work items; per-item violation lists are
/// concatenated in machine/job order, so the report is identical to the
/// serial scan at every thread count.
pub fn check_with_threads(ds: &TraceDataset, policy: &SlaPolicy, threads: usize) -> SlaReport {
    let machines: Vec<MachineId> = ds.machines().map(|m| m.id()).collect();
    let machines_checked = machines.len();
    let per_machine = batchlens_exec::par_map(threads, &machines, |&id| {
        let machine = ds.machine(id).expect("machine listed by dataset");
        let mut out = Vec::new();
        for metric in Metric::ALL {
            let Some(series) = machine.usage(metric) else {
                continue;
            };
            for range in over_threshold_runs(series, policy.saturation_level, policy.max_saturation)
            {
                out.push(Violation::Saturation {
                    machine: id,
                    metric,
                    range,
                });
            }
        }
        out
    });
    let mut violations: Vec<Violation> = per_machine.into_iter().flatten().collect();

    let jobs_checked;
    if policy.penalize_failures {
        let jobs: Vec<JobId> = ds.jobs().map(|j| j.id()).collect();
        jobs_checked = jobs.len();
        let per_job = batchlens_exec::par_map(threads, &jobs, |&id| {
            let job = ds.job(id).expect("job listed by dataset");
            let mut worst: Option<TaskStatus> = None;
            for task in job.tasks() {
                let s = task.record().status;
                if matches!(s, TaskStatus::Failed | TaskStatus::Cancelled) {
                    // Failed outranks Cancelled.
                    worst = Some(match (worst, s) {
                        (Some(TaskStatus::Failed), _) | (_, TaskStatus::Failed) => {
                            TaskStatus::Failed
                        }
                        _ => TaskStatus::Cancelled,
                    });
                }
            }
            worst.map(|status| Violation::JobFailure { job: id, status })
        });
        violations.extend(per_job.into_iter().flatten());
    } else {
        jobs_checked = ds.job_count();
    }

    SlaReport {
        violations,
        machines_checked,
        jobs_checked,
    }
}

/// Maximal intervals where the series stays strictly above `level` for at
/// least `min_duration` — the shared threshold kernel with a duration
/// filter, so SLA saturation checking and threshold anomaly detection can
/// never disagree about what "over threshold" means.
fn over_threshold_runs(
    series: &batchlens_trace::TimeSeries,
    level: f64,
    min_duration: TimeDelta,
) -> Vec<TimeRange> {
    use crate::detect::{Detector, ThresholdDetector};
    ThresholdDetector {
        high: level,
        min_samples: 1,
    }
    .detect(series)
    .into_iter()
    .map(|span| span.range)
    .filter(|range| range.duration() >= min_duration)
    .collect()
}

/// Cluster-wide availability over a window: the fraction of `[start, end)`
/// during which at least `min_jobs` jobs are running (a coarse "is the
/// platform doing useful work" SLA).
pub fn availability(
    ds: &TraceDataset,
    window: &TimeRange,
    min_jobs: usize,
    step: TimeDelta,
) -> f64 {
    let mut up = 0usize;
    let mut total = 0usize;
    for t in window.steps(step) {
        total += 1;
        if ds.jobs_running_at(t).len() >= min_jobs {
            up += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        up as f64 / total as f64
    }
}

/// Convenience: the first saturation violation at or after `from`, if any.
pub fn first_saturation(report: &SlaReport, from: Timestamp) -> Option<&Violation> {
    report.violations.iter().find(|v| match v {
        Violation::Saturation { range, .. } => range.start() >= from,
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn healthy_regime_has_few_saturation_violations() {
        let ds = scenario::fig3a(1).run().unwrap();
        let report = check(&ds, &SlaPolicy::default());
        assert!(report.machines_checked > 0);
        // Fig 3(a) is explicitly low-utilization: essentially no saturation.
        assert!(
            report.saturated_machine_fraction() < 0.1,
            "{:?}",
            report.saturated_machine_fraction()
        );
    }

    #[test]
    fn overload_regime_has_more_saturation() {
        let low = check(&scenario::fig3a(2).run().unwrap(), &SlaPolicy::default());
        let high = check(&scenario::fig3c(2).run().unwrap(), &SlaPolicy::default());
        assert!(
            high.saturated_machine_fraction() >= low.saturated_machine_fraction(),
            "high {} vs low {}",
            high.saturated_machine_fraction(),
            low.saturated_machine_fraction()
        );
    }

    #[test]
    fn mass_shutdown_produces_job_failures() {
        // fig3c cancels all but job_11599 at t=44100.
        let ds = scenario::fig3c(3).run().unwrap();
        let report = check(&ds, &SlaPolicy::default());
        assert!(
            report.job_failures() > 0,
            "expected cancelled jobs to count as failures"
        );
    }

    #[test]
    fn availability_is_high_when_jobs_run() {
        let ds = scenario::fig3b(4).run().unwrap();
        let window = ds.span().unwrap();
        let avail = availability(&ds, &window, 1, TimeDelta::minutes(5));
        assert!(avail > 0.5, "availability {avail}");
    }

    #[test]
    fn over_threshold_respects_min_duration() {
        use batchlens_trace::TimeSeries;
        // A 2-sample blip above 0.95 at 60 s spacing = 120 s, below a 10-min
        // minimum → no violation.
        let s: TimeSeries = (0..20)
            .map(|i| {
                (
                    Timestamp::new(i * 60),
                    if (5..7).contains(&i) { 0.99 } else { 0.3 },
                )
            })
            .collect();
        assert!(over_threshold_runs(&s, 0.95, TimeDelta::minutes(10)).is_empty());
        // A long run does violate.
        let s2: TimeSeries = (0..40)
            .map(|i| (Timestamp::new(i * 60), if i >= 5 { 0.99 } else { 0.3 }))
            .collect();
        assert_eq!(
            over_threshold_runs(&s2, 0.95, TimeDelta::minutes(10)).len(),
            1
        );
    }

    #[test]
    fn clean_report_on_empty_dataset() {
        let ds = batchlens_trace::TraceDatasetBuilder::new().build().unwrap();
        let report = check(&ds, &SlaPolicy::default());
        assert!(report.is_clean());
        assert_eq!(report.saturated_machine_fraction(), 0.0);
    }

    #[test]
    fn violation_kinds() {
        let ds = scenario::fig3c(5).run().unwrap();
        let report = check(&ds, &SlaPolicy::default());
        assert!(report
            .violations
            .iter()
            .all(|v| { matches!(v.kind(), "saturation" | "job_failure") }));
    }
}
