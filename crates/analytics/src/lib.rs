//! # batchlens-analytics
//!
//! The analysis layer of BatchLens: everything the paper's linked views
//! *show* is computed here, decoupled from layout and rendering.
//!
//! * [`hierarchy`] — the batch hierarchy **snapshot** at a timestamp: jobs →
//!   tasks → compute nodes with their CPU/memory/disk utilization triples
//!   (the data behind the hierarchical bubble chart).
//! * [`coalloc`] — the **co-allocation index**: which machines execute
//!   instances of several jobs simultaneously (the data behind the dotted
//!   link interaction in Fig 3(b)).
//! * [`aggregate`] — per-job node series grouped by task and the
//!   cluster-wide aggregated timeline (the data behind the line-chart views
//!   and the brushable timeline).
//! * [`detect`] — the incremental anomaly-detection engine: every detector
//!   is an online kernel ([`detect::DetectorState`], O(1) amortized per
//!   sample) and batch detection is a provided method over it. Generic
//!   metric detectors (threshold, z-score, EWMA, MAD, CUSUM, IQR, voting
//!   ensemble) plus signature detectors for the paper's two case-study
//!   behaviours (end-of-job **spike**, **thrashing**).
//! * [`scrub`] — the **delta snapshot engine**: a [`scrub::SnapshotScrubber`]
//!   advances the hierarchy snapshot and co-allocation index across
//!   timestamps by applying interval entry/exit deltas
//!   ([`batchlens_trace::DatasetQuery::running_delta`]) — O(Δ log k) per
//!   scrub step instead of a from-scratch rebuild — rebasing on source
//!   version changes and periodically, bit-identical to the from-scratch
//!   builders.
//! * [`rootcause`] — turns detector output plus hierarchy/co-allocation
//!   context into per-job diagnoses, reproducing the case study's narrative
//!   conclusions programmatically.
//! * [`compare`] — temporal and spatial comparison summaries ("Fig 3(b) is
//!   heavier than Fig 3(a)").
//! * [`baseline`] — a deliberately naive raw-table-scan analysis used by the
//!   benches as the "no visualization structures" comparator.
//!
//! ## Example
//!
//! ```
//! use batchlens_analytics::hierarchy::HierarchySnapshot;
//! use batchlens_sim::{scenario, SimConfig, Simulation};
//! use batchlens_trace::Timestamp;
//!
//! let ds = scenario::fig1_sample(7).run().unwrap();
//! let snap = HierarchySnapshot::at(&ds, Timestamp::new(600));
//! assert_eq!(snap.jobs.len(), 1);
//! assert_eq!(snap.jobs[0].tasks.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod baseline;
pub mod behavior;
pub mod coalloc;
pub mod compare;
pub mod detect;
pub mod hierarchy;
pub mod rootcause;
pub mod scrub;
pub mod sla;
pub mod temporal;

pub use coalloc::CoallocationIndex;
pub use detect::{AnomalyKind, AnomalySpan, Detector, DetectorState, PairedDetectorState};
pub use hierarchy::HierarchySnapshot;
pub use rootcause::{Diagnosis, RootCauseAnalyzer};
pub use scrub::{ScrubStats, SnapshotScrubber};
