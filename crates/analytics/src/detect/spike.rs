//! The Fig 3(b) signature: utilization climbs through a job's execution,
//! **peaks when the job ends**, then decays back. ("a notable spike emerges
//! for CPU and memory usage after Job job_7901 is scheduled into the
//! corresponding machines. Both metrics reach the peak of the utilization
//! when the job execution is over, followed by a slow drop to the normal
//! level.")

use batchlens_trace::{TimeDelta, TimeRange, TimeSeries, Timestamp};
use serde::{Deserialize, Serialize};

use super::{AnomalyKind, AnomalySpan, DetectorState, Step};

/// Detects the end-of-job spike signature on one machine series given the
/// job's execution window on that machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeDetector {
    /// Minimum rise from the pre-job level to the peak (fraction points).
    pub min_rise: f64,
    /// The peak must fall within the job window stretched by this fraction
    /// of the job duration past its end.
    pub end_slack: f64,
    /// The series must drop below `peak - decay_fraction * rise` after the
    /// peak for the pattern to count as a spike (not a step change).
    pub decay_fraction: f64,
}

/// A matched spike pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeMatch {
    /// When the peak occurred.
    pub peak_time: Timestamp,
    /// Peak value.
    pub peak: f64,
    /// Pre-job baseline level.
    pub baseline: f64,
    /// Rise magnitude (`peak - baseline`).
    pub rise: f64,
}

impl SpikeDetector {
    /// Detector with the default thresholds used by the case study.
    ///
    /// `min_rise` is deliberately high (30 points): a plateau-shaped batch
    /// task co-located with another job can produce a ~10–20 point rise
    /// that is normal multiplexing, not the Fig 3(b) anomaly.
    pub fn new() -> Self {
        SpikeDetector {
            min_rise: 0.30,
            end_slack: 0.6,
            decay_fraction: 0.3,
        }
    }

    /// A fresh incremental matcher scoped to one job window: push the
    /// machine's metric samples in time order and the state emits the spike
    /// span as soon as the signature is confirmed.
    pub fn state_for(&self, job_window: TimeRange) -> SpikeState {
        SpikeState::new(*self, job_window)
    }

    /// Scans one machine's metric series for the spike signature relative to
    /// a job executed on that machine during `job_window` — a thin wrapper
    /// feeding the series through [`SpikeDetector::state_for`].
    ///
    /// Returns `None` when any part of the signature is missing: no
    /// sufficient rise, peak not aligned with the job end, or no post-peak
    /// decay visible in the data.
    pub fn match_spike(&self, series: &TimeSeries, job_window: &TimeRange) -> Option<SpikeMatch> {
        if series.is_empty() || job_window.is_empty() {
            return None;
        }
        let mut state = self.state_for(*job_window);
        for (t, v) in series.iter() {
            state.push(t, v);
        }
        state.finish();
        state.matched()
    }

    /// Converts a match into a generic [`AnomalySpan`] covering the job
    /// window plus slack.
    pub fn span_for(&self, m: &SpikeMatch, job_window: &TimeRange) -> AnomalySpan {
        let slack = (job_window.duration().as_seconds() as f64 * self.end_slack) as i64;
        AnomalySpan {
            kind: AnomalyKind::EndSpike,
            range: TimeRange::new(
                job_window.start(),
                job_window.end() + batchlens_trace::TimeDelta::seconds(slack),
            )
            .expect("window is ordered"),
            peak: m.peak,
            peak_time: m.peak_time,
            severity: m.rise,
        }
    }
}

impl Default for SpikeDetector {
    fn default() -> Self {
        SpikeDetector::new()
    }
}

/// Incremental spike matcher for one job window.
///
/// O(1) per sample, O(1) memory: a rolling pre-window baseline sum, the
/// running peak inside the stretched search window, and the running minimum
/// after the current peak (for decay confirmation). The span is emitted at
/// the first sample at which the signature is fully confirmed *and* the
/// search window is behind us (so the peak is final) — the emitted match is
/// identical to what a whole-series scan would report.
///
/// Unlike the per-sample kernels, the spike signature is only decidable in
/// retrospect (the confirming sample lies *after* the anomaly), so this
/// state never sets [`Step::flagged`]: consumers act on [`Step::closed`]
/// (and [`SpikeState::matched`]), not on instantaneous flags.
#[derive(Debug, Clone)]
pub struct SpikeState {
    det: SpikeDetector,
    window: TimeRange,
    pre_start: Timestamp,
    search_end: Timestamp,
    last_third: Timestamp,
    pre_sum: f64,
    pre_count: usize,
    first: Option<f64>,
    peak: Option<(Timestamp, f64)>,
    min_after_peak: f64,
    found: Option<SpikeMatch>,
    emitted: bool,
}

impl SpikeState {
    /// A matcher for `det` scoped to `job_window`.
    pub fn new(det: SpikeDetector, job_window: TimeRange) -> Self {
        let dur = job_window.duration().as_seconds();
        let slack = (dur as f64 * det.end_slack) as i64;
        SpikeState {
            det,
            window: job_window,
            pre_start: job_window.start() - job_window.duration(),
            search_end: job_window.end() + TimeDelta::seconds(slack),
            last_third: job_window.start() + TimeDelta::seconds((dur as f64 * 0.66) as i64),
            pre_sum: 0.0,
            pre_count: 0,
            first: None,
            peak: None,
            min_after_peak: f64::INFINITY,
            found: None,
            emitted: false,
        }
    }

    /// The confirmed match, if the signature has been observed.
    pub fn matched(&self) -> Option<SpikeMatch> {
        self.found
    }

    /// Evaluates the signature against the state so far.
    fn evaluate(&self) -> Option<SpikeMatch> {
        if self.window.is_empty() {
            return None;
        }
        let (peak_time, peak) = self.peak?;
        let baseline = if self.pre_count > 0 {
            self.pre_sum / self.pre_count as f64
        } else {
            self.first?
        };
        let rise = peak - baseline;
        if rise < self.det.min_rise {
            return None;
        }
        // The peak must be near the job end: in the last third of the run or
        // within the slack after it.
        if peak_time < self.last_third {
            return None;
        }
        // Post-peak decay: some later sample fell below
        // peak - decay_fraction * rise.
        let decay_level = peak - self.det.decay_fraction * rise;
        if self.min_after_peak >= decay_level {
            return None;
        }
        Some(SpikeMatch {
            peak_time,
            peak,
            baseline,
            rise,
        })
    }

    fn confirm(&mut self) -> Option<AnomalySpan> {
        if self.emitted {
            return None;
        }
        let m = self.evaluate()?;
        self.found = Some(m);
        self.emitted = true;
        Some(self.det.span_for(&m, &self.window))
    }
}

impl DetectorState for SpikeState {
    fn push(&mut self, t: Timestamp, value: f64) -> Step {
        if self.first.is_none() {
            self.first = Some(value);
        }
        // Pre-job baseline: mean over a window of the same length before
        // the job start.
        if t >= self.pre_start && t < self.window.start() {
            self.pre_sum += value;
            self.pre_count += 1;
        }
        // Running peak within [start, end + slack). `>=` keeps the *last*
        // maximal sample, matching the batch scan's tie-breaking.
        if t >= self.window.start() && t < self.search_end {
            match self.peak {
                Some((_, p)) if value < p => {}
                _ => {
                    self.peak = Some((t, value));
                    self.min_after_peak = f64::INFINITY;
                }
            }
        }
        if let Some((pt, _)) = self.peak {
            if t > pt {
                self.min_after_peak = self.min_after_peak.min(value);
            }
        }
        // Emit only once the search window is behind us: the peak (and
        // hence the rise) is final, and the decay condition is monotone.
        let closed = if t >= self.search_end {
            self.confirm()
        } else {
            None
        };
        // The confirming sample itself is quiet — it sits after the spike —
        // so per-sample flags stay false; the verdict travels in `closed`.
        Step::new(false, 0.0, closed)
    }

    fn finish(&mut self) -> Option<AnomalySpan> {
        self.confirm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesizes a series with an end-of-job spike: baseline, quadratic
    /// climb during the job, exponential decay after.
    fn spike_series(base: f64, peak: f64) -> (TimeSeries, TimeRange) {
        let start = 1800i64;
        let end = 4200i64;
        let mut s = TimeSeries::new();
        for i in 0..120 {
            let t = i * 60;
            let v = if t < start {
                base
            } else if t < end {
                let p = (t - start) as f64 / (end - start) as f64;
                base + (peak - base) * p * p
            } else {
                peak * (-((t - end) as f64) / 900.0).exp()
            };
            s.push(Timestamp::new(t), v).unwrap();
        }
        (
            s,
            TimeRange::new(Timestamp::new(start), Timestamp::new(end)).unwrap(),
        )
    }

    #[test]
    fn matches_textbook_spike() {
        let (s, w) = spike_series(0.2, 0.85);
        let m = SpikeDetector::new().match_spike(&s, &w).unwrap();
        assert!(m.rise > 0.5);
        // Peak within a sample of the job end.
        assert!(
            (m.peak_time.seconds() - 4200).abs() <= 60,
            "peak at {}",
            m.peak_time
        );
        let span = SpikeDetector::new().span_for(&m, &w);
        assert_eq!(span.kind, AnomalyKind::EndSpike);
        assert!(span.range.contains(m.peak_time));
    }

    #[test]
    fn rejects_flat_series() {
        let s: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.3)).collect();
        let w = TimeRange::new(Timestamp::new(1800), Timestamp::new(4200)).unwrap();
        assert!(SpikeDetector::new().match_spike(&s, &w).is_none());
    }

    #[test]
    fn rejects_early_peak() {
        // Peak right at job start, decaying through the job: not the signature.
        let mut s = TimeSeries::new();
        for i in 0..100 {
            let t = i * 60;
            let v = if (1800..2400).contains(&t) { 0.9 } else { 0.2 };
            s.push(Timestamp::new(t), v).unwrap();
        }
        let w = TimeRange::new(Timestamp::new(1800), Timestamp::new(4200)).unwrap();
        assert!(SpikeDetector::new().match_spike(&s, &w).is_none());
    }

    #[test]
    fn rejects_step_change_without_decay() {
        // Rises to a new level and stays: a regime change, not a spike.
        let mut s = TimeSeries::new();
        for i in 0..100 {
            let t = i * 60;
            let v = if t < 4000 {
                0.2 + 0.6 * ((t - 1800).max(0) as f64 / 2400.0).powi(2).min(1.0)
            } else {
                0.8
            };
            s.push(Timestamp::new(t), v).unwrap();
        }
        let w = TimeRange::new(Timestamp::new(1800), Timestamp::new(4200)).unwrap();
        assert!(SpikeDetector::new().match_spike(&s, &w).is_none());
    }

    #[test]
    fn empty_inputs() {
        let d = SpikeDetector::new();
        let w = TimeRange::new(Timestamp::new(0), Timestamp::new(100)).unwrap();
        assert!(d.match_spike(&TimeSeries::new(), &w).is_none());
        let (s, _) = spike_series(0.2, 0.9);
        let empty = TimeRange::new(Timestamp::new(50), Timestamp::new(50)).unwrap();
        assert!(d.match_spike(&s, &empty).is_none());
    }
}
