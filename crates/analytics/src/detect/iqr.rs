use batchlens_trace::TimeSeries;
use serde::{Deserialize, Serialize};

use super::{spans_from_flags, AnomalyKind, AnomalySpan, Detector};

/// Tukey interquartile-range outlier detector: flags samples outside
/// `[Q1 - k·IQR, Q3 + k·IQR]`. Distribution-free and robust; a good
/// complement to the parametric z-score when the utilization histogram is
/// skewed (as batch load usually is).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IqrDetector {
    /// Whisker multiplier (1.5 = Tukey's "outlier", 3.0 = "far out").
    pub k: f64,
    /// Minimum consecutive flagged samples for a span.
    pub min_samples: usize,
}

impl IqrDetector {
    /// A detector with Tukey's 1.5 whisker.
    pub fn new(k: f64) -> Self {
        IqrDetector { k, min_samples: 2 }
    }
}

impl Default for IqrDetector {
    fn default() -> Self {
        IqrDetector::new(1.5)
    }
}

impl Detector for IqrDetector {
    fn name(&self) -> &'static str {
        "iqr"
    }

    fn detect(&self, series: &TimeSeries) -> Vec<AnomalySpan> {
        let q1 = match series.quantile(0.25) {
            Some(v) => v,
            None => return Vec::new(),
        };
        let q3 = series.quantile(0.75).expect("non-empty if q1 exists");
        let iqr = q3 - q1;
        if iqr < 1e-12 {
            return Vec::new();
        }
        let lo = q1 - self.k * iqr;
        let hi = q3 + self.k * iqr;
        let flags: Vec<bool> = series.values().iter().map(|&v| v < lo || v > hi).collect();
        spans_from_flags(
            series,
            &flags,
            self.min_samples,
            AnomalyKind::Outlier,
            |i| {
                let v = series.values()[i];
                ((v - hi).max(lo - v)).max(0.0) / iqr
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::Timestamp;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    #[test]
    fn flags_far_out_samples() {
        let mut vals: Vec<f64> = (0..100).map(|i| 0.3 + 0.001 * (i % 10) as f64).collect();
        for v in vals.iter_mut().skip(50).take(3) {
            *v = 0.95;
        }
        let spans = IqrDetector::new(1.5).detect(&series(&vals));
        assert_eq!(spans.len(), 1);
        assert!(spans[0].severity > 0.0);
    }

    #[test]
    fn constant_series_has_zero_iqr() {
        assert!(IqrDetector::default()
            .detect(&series(&[0.4; 50]))
            .is_empty());
        assert!(IqrDetector::default().detect(&TimeSeries::new()).is_empty());
    }

    #[test]
    fn larger_k_flags_fewer() {
        let mut vals: Vec<f64> = (0..100).map(|i| 0.3 + 0.02 * (i % 5) as f64).collect();
        vals[50] = 0.6;
        let tight = IqrDetector::new(1.5).detect(&series(&vals)).len();
        let loose = IqrDetector::new(3.0).detect(&series(&vals)).len();
        assert!(tight >= loose);
    }
}
