use batchlens_trace::Timestamp;
use serde::{Deserialize, Serialize};

use super::{AnomalyKind, AnomalySpan, Detector, DetectorState, SpanBuilder, Step};

/// Tukey interquartile-range outlier detector: flags samples outside
/// `[Q1 - k·IQR, Q3 + k·IQR]`. Distribution-free and robust; a good
/// complement to the parametric z-score when the utilization histogram is
/// skewed (as batch load usually is).
///
/// The incremental kernel estimates Q1 and Q3 with the P² algorithm (Jain &
/// Chlamtac, 1985): five markers per quantile, O(1) per sample, no sample
/// retention. Estimates are exact for the first five samples and
/// asymptotically exact after.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IqrDetector {
    /// Whisker multiplier (1.5 = Tukey's "outlier", 3.0 = "far out").
    pub k: f64,
    /// Minimum consecutive flagged samples for a span.
    pub min_samples: usize,
    /// Samples observed before flagging starts (quartile estimates from a
    /// handful of samples are noise).
    pub warmup: usize,
}

impl IqrDetector {
    /// A detector with Tukey's 1.5 whisker and a 10-sample warm-up.
    pub fn new(k: f64) -> Self {
        IqrDetector {
            k,
            min_samples: 2,
            warmup: 10,
        }
    }
}

impl Default for IqrDetector {
    fn default() -> Self {
        IqrDetector::new(1.5)
    }
}

/// A P² streaming quantile estimator: five markers whose heights converge on
/// the `q`-quantile without retaining samples. O(1) per observation.
#[derive(Debug, Clone)]
struct P2Quantile {
    q: f64,
    /// Marker heights; exact sorted samples until five are seen.
    heights: [f64; 5],
    /// Actual marker positions (1-based sample counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
    /// Samples seen so far.
    n: usize,
}

impl P2Quantile {
    fn new(q: f64) -> Self {
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            n: 0,
        }
    }

    fn push(&mut self, x: f64) {
        if self.n < 5 {
            // Initialization phase: keep the first five samples sorted.
            let mut i = self.n;
            self.heights[i] = x;
            while i > 0 && self.heights[i - 1] > self.heights[i] {
                self.heights.swap(i - 1, i);
                i -= 1;
            }
            self.n += 1;
            return;
        }
        // Find the cell containing x, stretching the extremes if needed.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k + 1]
            (1..4).rfind(|&i| self.heights[i] <= x).unwrap_or(0)
        };
        for p in &mut self.positions[k + 1..] {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust the interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let gap_next = self.positions[i + 1] - self.positions[i];
            let gap_prev = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && gap_next > 1.0) || (d <= -1.0 && gap_prev < -1.0) {
                let d = d.signum();
                let parabolic = self.heights[i]
                    + d / (self.positions[i + 1] - self.positions[i - 1])
                        * ((self.positions[i] - self.positions[i - 1] + d)
                            * (self.heights[i + 1] - self.heights[i])
                            / gap_next
                            + (self.positions[i + 1] - self.positions[i] - d)
                                * (self.heights[i] - self.heights[i - 1])
                                / -gap_prev);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        // Linear fallback toward the neighbour in direction d.
                        let j = if d > 0.0 { i + 1 } else { i - 1 };
                        self.heights[i]
                            + d * (self.heights[j] - self.heights[i])
                                / (self.positions[j] - self.positions[i])
                    };
                self.positions[i] += d;
            }
        }
        self.n += 1;
    }

    /// The current quantile estimate, or `None` before any sample.
    fn estimate(&self) -> Option<f64> {
        match self.n {
            0 => None,
            n @ 1..=5 => {
                // Exact interpolated order statistic over the sorted buffer.
                let pos = self.q * (n - 1) as f64;
                let lo = pos.floor() as usize;
                let frac = pos - lo as f64;
                let lo_v = self.heights[lo];
                if frac == 0.0 {
                    Some(lo_v)
                } else {
                    Some(lo_v + (self.heights[lo + 1] - lo_v) * frac)
                }
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Incremental IQR state: two P² estimators (Q1, Q3).
///
/// O(1) per sample, O(1) memory.
#[derive(Debug, Clone)]
pub struct IqrState {
    k: f64,
    warmup: usize,
    q1: P2Quantile,
    q3: P2Quantile,
    builder: SpanBuilder,
}

impl DetectorState for IqrState {
    fn push(&mut self, t: Timestamp, value: f64) -> Step {
        self.q1.push(value);
        self.q3.push(value);
        let q1 = self.q1.estimate().expect("just pushed");
        let q3 = self.q3.estimate().expect("just pushed");
        let iqr = q3 - q1;
        let (flagged, severity) = if iqr < 1e-12 {
            (false, 0.0)
        } else {
            let lo = q1 - self.k * iqr;
            let hi = q3 + self.k * iqr;
            let severity = ((value - hi).max(lo - value)).max(0.0) / iqr;
            let fire = self.q1.n > self.warmup && (value < lo || value > hi);
            (fire, severity)
        };
        let closed = self.builder.observe(t, value, flagged, severity);
        Step::new(flagged, severity, closed)
    }

    fn finish(&mut self) -> Option<AnomalySpan> {
        self.builder.finish()
    }
}

impl Detector for IqrDetector {
    fn name(&self) -> &'static str {
        "iqr"
    }

    fn kind(&self) -> AnomalyKind {
        AnomalyKind::Outlier
    }

    fn state(&self) -> Box<dyn DetectorState> {
        Box::new(IqrState {
            k: self.k,
            warmup: self.warmup,
            q1: P2Quantile::new(0.25),
            q3: P2Quantile::new(0.75),
            builder: SpanBuilder::new(AnomalyKind::Outlier, self.min_samples),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::TimeSeries;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    #[test]
    fn flags_far_out_samples() {
        let mut vals: Vec<f64> = (0..100).map(|i| 0.3 + 0.001 * (i % 10) as f64).collect();
        for v in vals.iter_mut().skip(50).take(3) {
            *v = 0.95;
        }
        let spans = IqrDetector::new(1.5).detect(&series(&vals));
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert!(spans[0].severity > 0.0);
    }

    #[test]
    fn constant_series_has_zero_iqr() {
        assert!(IqrDetector::default()
            .detect(&series(&[0.4; 50]))
            .is_empty());
        assert!(IqrDetector::default().detect(&TimeSeries::new()).is_empty());
    }

    #[test]
    fn larger_k_flags_fewer() {
        let mut vals: Vec<f64> = (0..100).map(|i| 0.3 + 0.02 * (i % 5) as f64).collect();
        vals[50] = 0.6;
        let tight = IqrDetector::new(1.5).detect(&series(&vals)).len();
        let loose = IqrDetector::new(3.0).detect(&series(&vals)).len();
        assert!(tight >= loose);
    }

    #[test]
    fn p2_estimates_converge_on_true_quartiles() {
        // A deterministic uniform-ish stream over [0, 1).
        let mut q1 = P2Quantile::new(0.25);
        let mut q3 = P2Quantile::new(0.75);
        for i in 0..10_000u64 {
            // Weyl sequence: equidistributed in [0, 1).
            let x = (i as f64 * 0.754_877_666).fract();
            q1.push(x);
            q3.push(x);
        }
        assert!((q1.estimate().unwrap() - 0.25).abs() < 0.02);
        assert!((q3.estimate().unwrap() - 0.75).abs() < 0.02);
    }
}
