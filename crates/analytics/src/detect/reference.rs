//! Reference scan implementations of the causal detectors, kept for
//! differential testing and as benchmark baselines.
//!
//! These are the pre-incremental whole-series algorithms. For the detectors
//! whose semantics are purely causal — threshold, EWMA, CUSUM, the spike
//! matcher and (window-max) thrashing — a scan must produce *bit-identical*
//! spans to feeding the series through the corresponding
//! [`super::DetectorState`]; the workspace's `incremental_detectors`
//! property suite asserts exactly that. Do not call these on hot paths.

use batchlens_trace::{TimeRange, TimeSeries};

use super::spike::SpikeMatch;
use super::{
    spans_from_flags, AnomalyKind, AnomalySpan, CusumDetector, EwmaDetector, SpikeDetector,
    ThrashingDetector, ThresholdDetector,
};

/// Reference [`ThresholdDetector`] scan.
pub fn threshold(det: &ThresholdDetector, series: &TimeSeries) -> Vec<AnomalySpan> {
    let flags: Vec<bool> = series.values().iter().map(|&v| v > det.high).collect();
    spans_from_flags(
        series,
        &flags,
        det.min_samples,
        AnomalyKind::HighUtilization,
        |i| series.values()[i] - det.high,
    )
}

/// Reference [`EwmaDetector`] scan.
pub fn ewma(det: &EwmaDetector, series: &TimeSeries) -> Vec<AnomalySpan> {
    let values = series.values();
    if values.is_empty() {
        return Vec::new();
    }
    let mut mean = values[0];
    let mut var = 0.0f64;
    let mut flags = vec![false; values.len()];
    let mut scores = vec![0.0f64; values.len()];
    for (i, &v) in values.iter().enumerate().skip(1) {
        let sd = var.sqrt().max(1e-3);
        let score = (v - mean).abs() / sd;
        if i >= det.warmup && score > det.k {
            flags[i] = true;
            scores[i] = score;
            // Do not absorb the anomaly into the baseline.
            continue;
        }
        mean += det.alpha * (v - mean);
        var = (1.0 - det.alpha) * (var + det.alpha * (v - mean) * (v - mean));
    }
    spans_from_flags(
        series,
        &flags,
        det.min_samples,
        AnomalyKind::Deviation,
        |i| scores[i],
    )
}

/// Reference [`CusumDetector`] scan.
pub fn cusum(det: &CusumDetector, series: &TimeSeries) -> Vec<AnomalySpan> {
    let values = series.values();
    if values.is_empty() {
        return Vec::new();
    }
    let mut target = values[0];
    let mut hi = 0.0f64;
    let mut lo = 0.0f64;
    let mut flags = vec![false; values.len()];
    let mut scores = vec![0.0f64; values.len()];
    for (i, &v) in values.iter().enumerate() {
        hi = (hi + v - target - det.slack).max(0.0);
        lo = (lo - (v - target) - det.slack).max(0.0);
        let score = if det.positive_only { hi } else { hi.max(lo) };
        scores[i] = score;
        if score > det.threshold {
            flags[i] = true;
        } else {
            target += det.alpha * (v - target);
        }
    }
    spans_from_flags(
        series,
        &flags,
        det.min_samples,
        AnomalyKind::Deviation,
        |i| scores[i],
    )
}

/// Reference [`SpikeDetector::match_spike`] scan — the original two-pass
/// whole-series implementation.
pub fn match_spike(
    det: &SpikeDetector,
    series: &TimeSeries,
    job_window: &TimeRange,
) -> Option<SpikeMatch> {
    if series.is_empty() || job_window.is_empty() {
        return None;
    }
    let dur = job_window.duration().as_seconds();
    let slack = (dur as f64 * det.end_slack) as i64;

    // Pre-job baseline: mean over a window of the same length before start
    // (falling back to the first observed value).
    let pre_start = job_window.start() - job_window.duration();
    let pre = TimeRange::new(pre_start, job_window.start()).ok()?;
    let baseline = series
        .stats_in(&pre)
        .map(|s| s.mean)
        .or_else(|| series.first().map(|(_, v)| v))?;

    // Peak within [start, end + slack).
    let search = TimeRange::new(
        job_window.start(),
        job_window.end() + batchlens_trace::TimeDelta::seconds(slack),
    )
    .ok()?;
    let windowed = series.slice(&search);
    let (peak_time, peak) = windowed
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))?;

    let rise = peak - baseline;
    if rise < det.min_rise {
        return None;
    }

    // The peak must be near the job end: in the last third of the run or
    // within the slack after it.
    let last_third =
        job_window.start() + batchlens_trace::TimeDelta::seconds((dur as f64 * 0.66) as i64);
    if peak_time < last_third {
        return None;
    }

    // Post-peak decay: some later sample must fall below
    // peak - decay_fraction * rise.
    let decay_level = peak - det.decay_fraction * rise;
    let decayed = series
        .iter()
        .filter(|(t, _)| *t > peak_time)
        .any(|(_, v)| v < decay_level);
    if !decayed {
        return None;
    }

    Some(SpikeMatch {
        peak_time,
        peak,
        baseline,
        rise,
    })
}

/// Reference [`ThrashingDetector`] scan: aligns memory with binary-search
/// sample-and-hold and recomputes the trailing-window CPU maximum from
/// scratch per sample — O(n·w) where the state is O(n).
pub fn thrashing(det: &ThrashingDetector, cpu: &TimeSeries, mem: &TimeSeries) -> Vec<AnomalySpan> {
    if cpu.is_empty() || mem.is_empty() {
        return Vec::new();
    }
    // Aligned sub-grid: CPU samples at which memory has started reporting.
    let mut times = Vec::new();
    let mut cpus = Vec::new();
    let mut mems = Vec::new();
    for (t, c) in cpu.iter() {
        if let Some(m) = mem.value_at_or_before(t) {
            times.push(t);
            cpus.push(c);
            mems.push(m);
        }
    }
    let aligned: TimeSeries = times.iter().copied().zip(mems.iter().copied()).collect();
    let mut flags = vec![false; times.len()];
    let mut gaps = vec![0.0f64; times.len()];
    for i in 0..times.len() {
        let cutoff = times[i] - det.horizon;
        let window_max = (0..=i)
            .filter(|&j| times[j] >= cutoff)
            .map(|j| cpus[j])
            .fold(f64::NEG_INFINITY, f64::max);
        let decline = window_max - cpus[i];
        gaps[i] = mems[i] - cpus[i];
        flags[i] =
            mems[i] > det.mem_high && gaps[i] > det.min_gap && decline >= det.min_cpu_decline;
    }
    spans_from_flags(
        &aligned,
        &flags,
        det.min_samples,
        AnomalyKind::Thrashing,
        |i| gaps[i],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::Detector;
    use batchlens_trace::Timestamp;

    #[test]
    fn references_agree_with_states_on_a_smoke_series() {
        let series: TimeSeries = (0..200)
            .map(|i| {
                let base = 0.3 + 0.02 * ((i % 7) as f64 - 3.0) / 3.0;
                let v = if (80..95).contains(&i) { 0.97 } else { base };
                (Timestamp::new(i * 60), v)
            })
            .collect();
        let t = ThresholdDetector::new(0.9);
        assert_eq!(t.detect(&series), threshold(&t, &series));
        let e = EwmaDetector::default();
        assert_eq!(e.detect(&series), ewma(&e, &series));
        let c = CusumDetector::default();
        assert_eq!(c.detect(&series), cusum(&c, &series));
    }
}
