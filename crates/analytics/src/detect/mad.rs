use batchlens_trace::TimeSeries;
use serde::{Deserialize, Serialize};

use super::{spans_from_flags, AnomalyKind, AnomalySpan, Detector};

/// Flags samples whose robust z-score (median absolute deviation) exceeds
/// `z`. Outlier-resistant: a few extreme values cannot inflate the scale
/// estimate the way they inflate a standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MadDetector {
    /// Robust z-score magnitude above which a sample is anomalous.
    pub z: f64,
    /// Minimum consecutive samples for a span to be reported.
    pub min_samples: usize,
}

/// Consistency constant making MAD comparable to a standard deviation for
/// normal data.
const MAD_SCALE: f64 = 1.4826;

impl MadDetector {
    /// A robust 3.5-sigma-equivalent detector.
    pub fn new(z: f64) -> Self {
        MadDetector { z, min_samples: 2 }
    }
}

impl Default for MadDetector {
    fn default() -> Self {
        MadDetector::new(3.5)
    }
}

/// In-place median by selection — O(n) expected, no full sort.
fn median(values: &mut [f64]) -> f64 {
    batchlens_trace::quantile_select(values, 0.5)
}

impl Detector for MadDetector {
    fn name(&self) -> &'static str {
        "mad"
    }

    fn detect(&self, series: &TimeSeries) -> Vec<AnomalySpan> {
        if series.is_empty() {
            return Vec::new();
        }
        let mut scratch = series.values().to_vec();
        let med = median(&mut scratch);
        // Reuse the scratch buffer for the absolute deviations.
        for (dst, &v) in scratch.iter_mut().zip(series.values()) {
            *dst = (v - med).abs();
        }
        let mad = median(&mut scratch);
        if mad < 1e-12 {
            return Vec::new();
        }
        let score = |v: f64| (v - med).abs() / (MAD_SCALE * mad);
        let flags: Vec<bool> = series.values().iter().map(|&v| score(v) > self.z).collect();
        spans_from_flags(
            series,
            &flags,
            self.min_samples,
            AnomalyKind::Outlier,
            |i| score(series.values()[i]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::Timestamp;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    fn wobble(n: usize, level: f64) -> Vec<f64> {
        (0..n)
            .map(|i| level + 0.02 * ((i % 5) as f64 - 2.0) / 2.0)
            .collect()
    }

    #[test]
    fn robust_to_the_outliers_it_finds() {
        let mut vals = wobble(100, 0.3);
        // A huge burst that would drag a plain std-dev estimate.
        for v in vals.iter_mut().skip(60).take(5) {
            *v = 1.0;
        }
        let spans = MadDetector::default().detect(&series(&vals));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].range.start(), Timestamp::new(60 * 60));
        assert!(spans[0].severity > 3.5);
    }

    #[test]
    fn constant_series_is_clean() {
        assert!(MadDetector::default()
            .detect(&series(&[0.4; 40]))
            .is_empty());
        assert!(MadDetector::default().detect(&TimeSeries::new()).is_empty());
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
    }
}
