use std::cmp::Reverse;
use std::collections::BinaryHeap;

use batchlens_trace::Timestamp;
use serde::{Deserialize, Serialize};

use super::{AnomalyKind, AnomalySpan, Detector, DetectorState, SpanBuilder, Step};

/// Flags samples whose robust z-score (median absolute deviation) exceeds
/// `z`. Outlier-resistant: a few extreme values cannot inflate the scale
/// estimate the way they inflate a standard deviation.
///
/// The incremental kernel tracks the running median of the values seen so
/// far and the running median of each sample's absolute deviation from the
/// median current at its arrival — both exactly, with two-heap medians.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MadDetector {
    /// Robust z-score magnitude above which a sample is anomalous.
    pub z: f64,
    /// Minimum consecutive samples for a span to be reported.
    pub min_samples: usize,
    /// Samples observed before flagging starts (the early median is noisy).
    pub warmup: usize,
}

/// Consistency constant making MAD comparable to a standard deviation for
/// normal data.
const MAD_SCALE: f64 = 1.4826;

impl MadDetector {
    /// A robust 3.5-sigma-equivalent detector with a 5-sample warm-up.
    pub fn new(z: f64) -> Self {
        MadDetector {
            z,
            min_samples: 2,
            warmup: 5,
        }
    }
}

impl Default for MadDetector {
    fn default() -> Self {
        MadDetector::new(3.5)
    }
}

/// Total-order f64 wrapper for heap storage.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Exact running median over an insert-only stream: a max-heap of the lower
/// half and a min-heap of the upper half, rebalanced so
/// `lo.len() ∈ {hi.len(), hi.len() + 1}`.
///
/// O(log n) per insert, O(1) median lookup, O(n) memory.
#[derive(Debug, Clone, Default)]
struct RunningMedian {
    lo: BinaryHeap<OrdF64>,
    hi: BinaryHeap<Reverse<OrdF64>>,
}

impl RunningMedian {
    fn insert(&mut self, v: f64) {
        if self.lo.peek().is_none_or(|&OrdF64(m)| v <= m) {
            self.lo.push(OrdF64(v));
        } else {
            self.hi.push(Reverse(OrdF64(v)));
        }
        if self.lo.len() > self.hi.len() + 1 {
            let OrdF64(v) = self.lo.pop().expect("lo non-empty");
            self.hi.push(Reverse(OrdF64(v)));
        } else if self.hi.len() > self.lo.len() {
            let Reverse(OrdF64(v)) = self.hi.pop().expect("hi non-empty");
            self.lo.push(OrdF64(v));
        }
    }

    /// The interpolated median (mean of the two middle order statistics for
    /// even counts), or `None` when empty.
    fn median(&self) -> Option<f64> {
        let &OrdF64(lo_top) = self.lo.peek()?;
        if self.lo.len() > self.hi.len() {
            Some(lo_top)
        } else {
            let &Reverse(OrdF64(hi_top)) = self.hi.peek().expect("balanced halves");
            Some((lo_top + hi_top) / 2.0)
        }
    }
}

/// Incremental MAD state.
///
/// O(log n) per sample (heap inserts), O(n) memory — the one detector in the
/// family that is not O(1), spelled out in the [`super::state`] table.
#[derive(Debug, Clone)]
pub struct MadState {
    z: f64,
    warmup: usize,
    seen: usize,
    values: RunningMedian,
    deviations: RunningMedian,
    builder: SpanBuilder,
}

impl DetectorState for MadState {
    fn push(&mut self, t: Timestamp, value: f64) -> Step {
        self.values.insert(value);
        let med = self.values.median().expect("just inserted");
        let deviation = (value - med).abs();
        self.deviations.insert(deviation);
        let mad = self.deviations.median().expect("just inserted");
        self.seen += 1;
        let scale = MAD_SCALE * mad;
        let (flagged, severity) = if scale < 1e-12 {
            (false, 0.0)
        } else {
            let score = deviation / scale;
            (self.seen > self.warmup && score > self.z, score)
        };
        let closed = self.builder.observe(t, value, flagged, severity);
        Step::new(flagged, severity, closed)
    }

    fn finish(&mut self) -> Option<AnomalySpan> {
        self.builder.finish()
    }
}

impl Detector for MadDetector {
    fn name(&self) -> &'static str {
        "mad"
    }

    fn kind(&self) -> AnomalyKind {
        AnomalyKind::Outlier
    }

    fn state(&self) -> Box<dyn DetectorState> {
        Box::new(MadState {
            z: self.z,
            warmup: self.warmup,
            seen: 0,
            values: RunningMedian::default(),
            deviations: RunningMedian::default(),
            builder: SpanBuilder::new(AnomalyKind::Outlier, self.min_samples),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::TimeSeries;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    fn wobble(n: usize, level: f64) -> Vec<f64> {
        (0..n)
            .map(|i| level + 0.02 * ((i % 5) as f64 - 2.0) / 2.0)
            .collect()
    }

    #[test]
    fn robust_to_the_outliers_it_finds() {
        let mut vals = wobble(100, 0.3);
        // A huge burst that would drag a plain std-dev estimate.
        for v in vals.iter_mut().skip(60).take(5) {
            *v = 1.0;
        }
        let spans = MadDetector::default().detect(&series(&vals));
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert_eq!(spans[0].range.start(), Timestamp::new(60 * 60));
        assert!(spans[0].severity > 3.5);
    }

    #[test]
    fn constant_series_is_clean() {
        assert!(MadDetector::default()
            .detect(&series(&[0.4; 40]))
            .is_empty());
        assert!(MadDetector::default().detect(&TimeSeries::new()).is_empty());
    }

    #[test]
    fn running_median_matches_sorted_definition() {
        let mut rm = RunningMedian::default();
        assert_eq!(rm.median(), None);
        for (i, v) in [3.0, 1.0, 2.0, 4.0].iter().enumerate() {
            rm.insert(*v);
            let mut sorted = [3.0, 1.0, 2.0, 4.0][..=i].to_vec();
            sorted.sort_by(f64::total_cmp);
            let mid = sorted.len() / 2;
            let expect = if sorted.len() % 2 == 1 {
                sorted[mid]
            } else {
                (sorted[mid - 1] + sorted[mid]) / 2.0
            };
            assert_eq!(rm.median(), Some(expect));
        }
    }
}
