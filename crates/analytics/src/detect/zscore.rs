use batchlens_trace::Timestamp;
use serde::{Deserialize, Serialize};

use super::{AnomalyKind, AnomalySpan, Detector, DetectorState, SpanBuilder, Step};

/// Flags samples whose z-score against the *running* distribution exceeds
/// `z`.
///
/// The baseline mean and standard deviation are maintained online (Welford's
/// algorithm) over the samples accepted so far; flagged samples are not
/// absorbed into the baseline, so a sustained excursion stays flagged
/// instead of normalizing itself away. This is the causal counterpart of
/// the classic whole-series z-score (fooled by regime changes — which is
/// exactly why the paper argues for visual inspection alongside statistics),
/// and it is what lets batch and streaming detection share one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZScoreDetector {
    /// Z-score magnitude above which a sample is anomalous.
    pub z: f64,
    /// Minimum consecutive samples for a span to be reported.
    pub min_samples: usize,
    /// When true, only positive deviations (spikes) are flagged; negative
    /// deviations (drops, e.g. the thrashing CPU collapse) otherwise count
    /// too.
    pub positive_only: bool,
    /// Baseline samples accepted before flagging starts.
    pub warmup: usize,
}

/// Floor on the running standard deviation, so a perfectly flat baseline
/// still yields finite scores (a constant series scores exactly 0).
const MIN_SIGMA: f64 = 1e-3;

impl ZScoreDetector {
    /// A symmetric 3-sigma detector with a 10-sample warm-up.
    pub fn new(z: f64) -> Self {
        ZScoreDetector {
            z,
            min_samples: 2,
            positive_only: false,
            warmup: 10,
        }
    }

    /// Spike-only variant.
    #[must_use]
    pub fn positive_only(mut self) -> Self {
        self.positive_only = true;
        self
    }
}

impl Default for ZScoreDetector {
    fn default() -> Self {
        ZScoreDetector::new(3.0)
    }
}

/// Incremental z-score state: Welford running moments over accepted
/// (unflagged) samples.
///
/// O(1) per sample, O(1) memory.
#[derive(Debug, Clone)]
pub struct ZScoreState {
    z: f64,
    positive_only: bool,
    warmup: usize,
    /// Accepted (baseline) sample count.
    count: usize,
    mean: f64,
    /// Sum of squared deviations of accepted samples (Welford's M2).
    m2: f64,
    builder: SpanBuilder,
}

impl DetectorState for ZScoreState {
    fn push(&mut self, t: Timestamp, value: f64) -> Step {
        let (flagged, severity) = if self.count == 0 {
            (false, 0.0)
        } else {
            let sd = (self.m2 / self.count as f64).sqrt().max(MIN_SIGMA);
            let score = (value - self.mean) / sd;
            let fire = self.count >= self.warmup
                && if self.positive_only {
                    score > self.z
                } else {
                    score.abs() > self.z
                };
            (fire, score.abs())
        };
        if !flagged {
            self.count += 1;
            let delta = value - self.mean;
            self.mean += delta / self.count as f64;
            self.m2 += delta * (value - self.mean);
        }
        let closed = self.builder.observe(t, value, flagged, severity);
        Step::new(flagged, severity, closed)
    }

    fn finish(&mut self) -> Option<AnomalySpan> {
        self.builder.finish()
    }
}

impl Detector for ZScoreDetector {
    fn name(&self) -> &'static str {
        "zscore"
    }

    fn kind(&self) -> AnomalyKind {
        AnomalyKind::Outlier
    }

    fn state(&self) -> Box<dyn DetectorState> {
        Box::new(ZScoreState {
            z: self.z,
            positive_only: self.positive_only,
            warmup: self.warmup.max(1),
            count: 0,
            mean: 0.0,
            m2: 0.0,
            builder: SpanBuilder::new(AnomalyKind::Outlier, self.min_samples),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::TimeSeries;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    #[test]
    fn finds_positive_burst() {
        let mut vals = vec![0.3; 100];
        for v in vals.iter_mut().skip(50).take(4) {
            *v = 0.95;
        }
        let spans = ZScoreDetector::new(3.0).detect(&series(&vals));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, AnomalyKind::Outlier);
        assert_eq!(spans[0].range.start(), Timestamp::new(50 * 60));
        assert!(spans[0].severity > 3.0);
    }

    #[test]
    fn symmetric_finds_drops_positive_only_does_not() {
        let mut vals = vec![0.6; 100];
        for v in vals.iter_mut().skip(40).take(4) {
            *v = 0.05;
        }
        let sym = ZScoreDetector::new(3.0).detect(&series(&vals));
        assert_eq!(sym.len(), 1);
        let pos = ZScoreDetector::new(3.0)
            .positive_only()
            .detect(&series(&vals));
        assert!(pos.is_empty());
    }

    #[test]
    fn burst_is_not_absorbed_into_the_baseline() {
        // A long excursion: every sample of it stays flagged because the
        // baseline refuses to learn from flagged samples.
        let mut vals = vec![0.3; 120];
        for v in vals.iter_mut().skip(60).take(30) {
            *v = 0.9;
        }
        let spans = ZScoreDetector::new(3.0).detect(&series(&vals));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].range.start(), Timestamp::new(60 * 60));
        assert_eq!(spans[0].range.end(), Timestamp::new(90 * 60));
    }

    #[test]
    fn warmup_suppresses_early_flags() {
        let mut vals = vec![0.3; 40];
        vals[3] = 0.99; // inside warm-up: absorbed, not flagged
        vals[4] = 0.99;
        let spans = ZScoreDetector::new(3.0).detect(&series(&vals));
        assert!(spans
            .iter()
            .all(|s| s.range.start() > Timestamp::new(4 * 60)));
    }

    #[test]
    fn constant_series_has_no_outliers() {
        let spans = ZScoreDetector::default().detect(&series(&[0.5; 50]));
        assert!(spans.is_empty());
        assert!(ZScoreDetector::default()
            .detect(&TimeSeries::new())
            .is_empty());
    }
}
