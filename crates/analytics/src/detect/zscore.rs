use batchlens_trace::TimeSeries;
use serde::{Deserialize, Serialize};

use super::{spans_from_flags, AnomalyKind, AnomalySpan, Detector};

/// Flags samples whose z-score against the whole series exceeds `z`.
///
/// Robust for stationary series; fooled by regime changes (which is exactly
/// why the paper argues for visual inspection alongside statistics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZScoreDetector {
    /// Z-score magnitude above which a sample is anomalous.
    pub z: f64,
    /// Minimum consecutive samples for a span to be reported.
    pub min_samples: usize,
    /// When true, only positive deviations (spikes) are flagged; negative
    /// deviations (drops, e.g. the thrashing CPU collapse) otherwise count
    /// too.
    pub positive_only: bool,
}

impl ZScoreDetector {
    /// A symmetric 3-sigma detector.
    pub fn new(z: f64) -> Self {
        ZScoreDetector {
            z,
            min_samples: 2,
            positive_only: false,
        }
    }

    /// Spike-only variant.
    #[must_use]
    pub fn positive_only(mut self) -> Self {
        self.positive_only = true;
        self
    }
}

impl Default for ZScoreDetector {
    fn default() -> Self {
        ZScoreDetector::new(3.0)
    }
}

impl Detector for ZScoreDetector {
    fn name(&self) -> &'static str {
        "zscore"
    }

    fn detect(&self, series: &TimeSeries) -> Vec<AnomalySpan> {
        let Some(stats) = series.stats() else {
            return Vec::new();
        };
        if stats.std_dev < 1e-12 {
            return Vec::new();
        }
        let score = |v: f64| (v - stats.mean) / stats.std_dev;
        let flags: Vec<bool> = series
            .values()
            .iter()
            .map(|&v| {
                let s = score(v);
                if self.positive_only {
                    s > self.z
                } else {
                    s.abs() > self.z
                }
            })
            .collect();
        spans_from_flags(
            series,
            &flags,
            self.min_samples,
            AnomalyKind::Outlier,
            |i| score(series.values()[i]).abs(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::Timestamp;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    #[test]
    fn finds_positive_burst() {
        let mut vals = vec![0.3; 100];
        for v in vals.iter_mut().skip(50).take(4) {
            *v = 0.95;
        }
        let spans = ZScoreDetector::new(3.0).detect(&series(&vals));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, AnomalyKind::Outlier);
        assert!(spans[0].severity > 3.0);
    }

    #[test]
    fn symmetric_finds_drops_positive_only_does_not() {
        let mut vals = vec![0.6; 100];
        for v in vals.iter_mut().skip(40).take(4) {
            *v = 0.05;
        }
        let sym = ZScoreDetector::new(3.0).detect(&series(&vals));
        assert_eq!(sym.len(), 1);
        let pos = ZScoreDetector::new(3.0)
            .positive_only()
            .detect(&series(&vals));
        assert!(pos.is_empty());
    }

    #[test]
    fn constant_series_has_no_outliers() {
        let spans = ZScoreDetector::default().detect(&series(&[0.5; 50]));
        assert!(spans.is_empty());
        assert!(ZScoreDetector::default()
            .detect(&TimeSeries::new())
            .is_empty());
    }
}
