//! The incremental detection engine: push-based detector state machines.
//!
//! Every detector in this module family is an **online kernel**: a
//! [`DetectorState`] consumes one `(Timestamp, f64)` sample at a time and
//! emits [`AnomalySpan`]s as soon as they can be closed. Batch detection
//! ([`super::Detector::detect`]) is a thin provided method that feeds a whole
//! [`batchlens_trace::TimeSeries`] through the same state, so the batch and
//! streaming families can never disagree.
//!
//! # Per-sample complexity contract
//!
//! Each detector documents what one [`DetectorState::push`] costs; `n` is the
//! number of samples pushed so far and `w` the number of samples inside a
//! rolling horizon:
//!
//! | detector | per-sample cost | working memory | notes |
//! |---|---|---|---|
//! | threshold | O(1) | O(1) | pure comparison |
//! | EWMA | O(1) | O(1) | running mean/variance |
//! | CUSUM | O(1) | O(1) | two accumulators + EWMA target |
//! | z-score | O(1) | O(1) | Welford running moments over accepted samples |
//! | IQR | O(1) | O(1) | two P² quantile estimators (Q1, Q3) |
//! | MAD | O(log n) | O(n) | two two-heap running medians |
//! | ensemble | Σ members | Σ members | one push per member kernel |
//! | spike | O(1) | O(1) | rolling baseline sum + running peak/min |
//! | thrashing | O(1) amortized | O(w) | monotonic deque of CPU maxima |
//!
//! All other states are strictly O(1) amortized per sample, so per-sample
//! ingest cost is independent of how long the stream (or rolling window) is —
//! the property the `stream_ingest` bench pins down.

use batchlens_trace::{TimeDelta, TimeRange, Timestamp};

use super::{AnomalyKind, AnomalySpan};

/// The instantaneous outcome of pushing one sample into a state.
///
/// `flagged`/`severity` describe the *current* sample (this is what online
/// consumers such as `StreamMonitor` alert on, and what [`EnsembleState`]
/// members vote with); `closed` carries a span that this sample finished
/// (always a span of *earlier* samples — a sample never closes a span it
/// belongs to).
///
/// [`EnsembleState`]: super::Ensemble
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Step {
    /// Whether this sample is anomalous by the detector's rule.
    pub flagged: bool,
    /// Detector-specific severity of this sample (0.0 when unflagged).
    pub severity: f64,
    /// A span closed by this sample, if any.
    pub closed: Option<AnomalySpan>,
}

impl Step {
    pub(crate) fn new(flagged: bool, severity: f64, closed: Option<AnomalySpan>) -> Step {
        Step {
            flagged,
            severity: if flagged { severity } else { 0.0 },
            closed,
        }
    }
}

/// An incremental single-series detector: push samples in time order, get
/// spans out as soon as they close.
///
/// # Contract
///
/// * Timestamps must be pushed in strictly increasing order; behaviour on
///   out-of-order input is unspecified (callers such as `StreamMonitor` drop
///   and count stragglers instead of pushing them).
/// * `push` is O(1) amortized per sample for every built-in detector except
///   MAD (O(log n), see the [module table](self)).
/// * [`DetectorState::finish`] closes the run still open at end-of-stream;
///   after `finish` the state must not be pushed again.
pub trait DetectorState: std::fmt::Debug + Send {
    /// Consumes the next sample, returning the instantaneous verdict plus
    /// any span this sample closed.
    fn push(&mut self, t: Timestamp, value: f64) -> Step;

    /// Ends the stream, closing any still-open run.
    fn finish(&mut self) -> Option<AnomalySpan>;
}

/// An incremental **paired-series** detector (e.g. thrashing, which needs
/// CPU *and* memory). Same contract as [`DetectorState`], but each push
/// carries the two metrics already aligned on one time grid.
pub trait PairedDetectorState: std::fmt::Debug + Send {
    /// Consumes the next aligned sample pair.
    fn push(&mut self, t: Timestamp, primary: f64, secondary: f64) -> Step;

    /// Ends the stream, closing any still-open run.
    fn finish(&mut self) -> Option<AnomalySpan>;
}

/// Groups a stream of per-sample flags into [`AnomalySpan`]s online — the
/// incremental counterpart of `spans_from_flags`, reproducing its grouping
/// exactly: runs shorter than `min_samples` are dropped, a span's
/// peak/severity come from its most severe sample (first one wins ties), and
/// the half-open end extends one *local* sample gap past the last flagged
/// sample.
///
/// O(1) per observation, O(1) memory. Detector states compose this with
/// their per-sample kernel; custom detectors can do the same.
#[derive(Debug, Clone)]
pub struct SpanBuilder {
    kind: AnomalyKind,
    min_samples: usize,
    /// Gap in seconds between the last two observed samples (≥ 1); 1 until
    /// two samples have been seen. Used to size the final span at
    /// end-of-stream, mirroring the batch kernel's tail fallback.
    prev_gap: i64,
    prev_t: Option<Timestamp>,
    open: Option<OpenRun>,
}

#[derive(Debug, Clone, Copy)]
struct OpenRun {
    start: Timestamp,
    last: Timestamp,
    count: usize,
    peak: f64,
    peak_time: Timestamp,
    severity: f64,
}

impl SpanBuilder {
    /// A builder emitting spans of `kind`, dropping runs shorter than
    /// `min_samples` (clamped to ≥ 1).
    pub fn new(kind: AnomalyKind, min_samples: usize) -> Self {
        SpanBuilder {
            kind,
            min_samples: min_samples.max(1),
            prev_gap: 1,
            prev_t: None,
            open: None,
        }
    }

    /// Feeds the verdict for the next sample (strictly increasing `t`).
    /// `value` is the sample value recorded as the span peak if this sample
    /// ends up the most severe of its run. Returns the span closed by this
    /// sample, if any.
    pub fn observe(
        &mut self,
        t: Timestamp,
        value: f64,
        flagged: bool,
        severity: f64,
    ) -> Option<AnomalySpan> {
        let closed = if flagged {
            match &mut self.open {
                Some(run) => {
                    run.last = t;
                    run.count += 1;
                    if severity > run.severity {
                        run.severity = severity;
                        run.peak = value;
                        run.peak_time = t;
                    }
                    None
                }
                None => {
                    self.open = Some(OpenRun {
                        start: t,
                        last: t,
                        count: 1,
                        peak: value,
                        peak_time: t,
                        severity,
                    });
                    None
                }
            }
        } else {
            // The unflagged sample is the run's successor in the grid, so
            // the span end extends by exactly the local gap to it.
            self.open
                .take()
                .and_then(|run| self.close(run, (t - run.last).as_seconds().max(1)))
        };
        if let Some(p) = self.prev_t {
            self.prev_gap = (t - p).as_seconds().max(1);
        }
        self.prev_t = Some(t);
        closed
    }

    /// Ends the stream: closes a run that reaches the final sample, sizing
    /// its end by the gap *before* that sample (the batch tail rule).
    pub fn finish(&mut self) -> Option<AnomalySpan> {
        let run = self.open.take()?;
        self.close(run, self.prev_gap)
    }

    fn close(&self, run: OpenRun, period: i64) -> Option<AnomalySpan> {
        if run.count < self.min_samples {
            return None;
        }
        let range = TimeRange::new(run.start, run.last + TimeDelta::seconds(period))
            .expect("samples observed in increasing time order");
        Some(AnomalySpan {
            kind: self.kind,
            range,
            peak: run.peak,
            peak_time: run.peak_time,
            severity: run.severity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(builder: &mut SpanBuilder, samples: &[(i64, f64, bool)]) -> Vec<AnomalySpan> {
        let mut out = Vec::new();
        for &(t, v, f) in samples {
            out.extend(builder.observe(Timestamp::new(t), v, f, v));
        }
        out.extend(builder.finish());
        out
    }

    #[test]
    fn groups_consecutive_flags() {
        let mut b = SpanBuilder::new(AnomalyKind::HighUtilization, 1);
        let spans = feed(
            &mut b,
            &[
                (0, 0.1, false),
                (60, 0.9, true),
                (120, 0.8, true),
                (180, 0.1, false),
                (240, 0.7, true),
            ],
        );
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].range.start(), Timestamp::new(60));
        assert_eq!(spans[0].range.end(), Timestamp::new(180));
        assert_eq!(spans[0].peak, 0.9);
        // Tail run extends by the gap before the final sample.
        assert_eq!(spans[1].range.end(), Timestamp::new(300));
    }

    #[test]
    fn short_runs_are_dropped() {
        let mut b = SpanBuilder::new(AnomalyKind::Outlier, 3);
        let spans = feed(
            &mut b,
            &[
                (0, 0.9, true),
                (60, 0.9, true),
                (120, 0.1, false),
                (180, 0.9, true),
                (240, 0.9, true),
                (300, 0.9, true),
            ],
        );
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].range.start(), Timestamp::new(180));
    }

    #[test]
    fn irregular_gap_sizes_span_end() {
        let mut b = SpanBuilder::new(AnomalyKind::Deviation, 1);
        // Run closes right before a 600 s reporting gap.
        let spans = feed(
            &mut b,
            &[(0, 0.9, true), (60, 0.9, true), (660, 0.1, false)],
        );
        assert_eq!(spans[0].range.end(), Timestamp::new(660));
    }

    #[test]
    fn first_most_severe_sample_wins_ties() {
        let mut b = SpanBuilder::new(AnomalyKind::Outlier, 1);
        let mut out = Vec::new();
        out.extend(b.observe(Timestamp::new(0), 1.0, true, 5.0));
        out.extend(b.observe(Timestamp::new(60), 2.0, true, 5.0));
        out.extend(b.finish());
        assert_eq!(out[0].peak, 1.0);
        assert_eq!(out[0].peak_time, Timestamp::new(0));
    }

    #[test]
    fn single_sample_stream() {
        let mut b = SpanBuilder::new(AnomalyKind::Outlier, 1);
        let spans = feed(&mut b, &[(100, 0.9, true)]);
        assert_eq!(spans.len(), 1);
        // No neighbours: the period falls back to one second.
        assert_eq!(spans[0].range.end(), Timestamp::new(101));
    }
}
