//! A voting ensemble over generic [`Detector`]s.
//!
//! The paper argues visual inspection beats any single statistic because
//! each metric-based method has blind spots. An ensemble approximates that
//! robustness programmatically: a sample is anomalous when at least `quorum`
//! member detectors flag it. This reduces the false positives of any one
//! detector (the paper's complaint about inflexible metric monitors) while
//! keeping recall.

use batchlens_trace::TimeSeries;

use super::{spans_from_flags, AnomalyKind, AnomalySpan, Detector};

/// Combines several detectors by per-sample majority vote.
pub struct Ensemble {
    detectors: Vec<Box<dyn Detector>>,
    quorum: usize,
    min_samples: usize,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field(
                "members",
                &self.detectors.iter().map(|d| d.name()).collect::<Vec<_>>(),
            )
            .field("quorum", &self.quorum)
            .finish()
    }
}

impl Ensemble {
    /// Builds an ensemble from member detectors; `quorum` is the minimum
    /// number of members that must flag a sample. `quorum` is clamped to
    /// `1..=members`.
    pub fn new(detectors: Vec<Box<dyn Detector>>, quorum: usize) -> Self {
        let n = detectors.len().max(1);
        Ensemble {
            detectors,
            quorum: quorum.clamp(1, n),
            min_samples: 2,
        }
    }

    /// Member detector names (for reports).
    pub fn members(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// Per-member vote counts over a series, indexed by sample.
    fn vote_counts(&self, series: &TimeSeries) -> Vec<u32> {
        let mut votes = vec![0u32; series.len()];
        let times = series.times();
        for d in &self.detectors {
            for span in d.detect(series) {
                // Times are sorted; a half-open span maps to a contiguous
                // sample range found by binary search.
                let lo = times.partition_point(|&t| t < span.range.start());
                let hi = times.partition_point(|&t| t < span.range.end());
                for v in &mut votes[lo..hi] {
                    *v += 1;
                }
            }
        }
        votes
    }
}

impl Detector for Ensemble {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn detect(&self, series: &TimeSeries) -> Vec<AnomalySpan> {
        if series.is_empty() {
            return Vec::new();
        }
        let votes = self.vote_counts(series);
        let flags: Vec<bool> = votes.iter().map(|&v| v as usize >= self.quorum).collect();
        spans_from_flags(
            series,
            &flags,
            self.min_samples,
            AnomalyKind::Outlier,
            |i| votes[i] as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{MadDetector, ThresholdDetector, ZScoreDetector};
    use batchlens_trace::Timestamp;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    fn ensemble(quorum: usize) -> Ensemble {
        Ensemble::new(
            vec![
                Box::new(ThresholdDetector::new(0.9)),
                Box::new(ZScoreDetector::new(3.0)),
                Box::new(MadDetector::new(3.5)),
            ],
            quorum,
        )
    }

    #[test]
    fn unanimous_burst_is_flagged_by_all_quora() {
        // A gently wobbling baseline so MAD has a non-zero scale estimate.
        let mut vals: Vec<f64> = (0..100).map(|i| 0.3 + 0.01 * (i % 5) as f64).collect();
        for v in vals.iter_mut().skip(50).take(5) {
            *v = 0.98; // high, outlier, far-out — all three fire
        }
        let s = series(&vals);
        assert!(!ensemble(1).detect(&s).is_empty());
        assert!(!ensemble(3).detect(&s).is_empty());
    }

    #[test]
    fn a_moderate_outlier_needs_lower_quorum() {
        // 0.7 is a statistical outlier (z/mad) but below the 0.9 threshold,
        // so only 2 of 3 detectors fire.
        let mut vals: Vec<f64> = (0..100).map(|i| 0.3 + 0.001 * (i % 7) as f64).collect();
        for v in vals.iter_mut().skip(50).take(4) {
            *v = 0.7;
        }
        let s = series(&vals);
        assert!(!ensemble(2).detect(&s).is_empty(), "2/3 should flag");
        assert!(ensemble(3).detect(&s).is_empty(), "unanimous should not");
    }

    #[test]
    fn quorum_is_clamped() {
        let e = Ensemble::new(vec![Box::new(ThresholdDetector::new(0.9))], 99);
        assert_eq!(e.quorum, 1);
        assert_eq!(e.members(), vec!["threshold"]);
    }

    #[test]
    fn empty_series() {
        assert!(ensemble(2).detect(&TimeSeries::new()).is_empty());
    }

    #[test]
    fn debug_lists_members() {
        let text = format!("{:?}", ensemble(2));
        assert!(text.contains("threshold"));
        assert!(text.contains("quorum"));
    }
}
