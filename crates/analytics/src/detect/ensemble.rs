//! A voting ensemble over generic [`Detector`]s.
//!
//! The paper argues visual inspection beats any single statistic because
//! each metric-based method has blind spots. An ensemble approximates that
//! robustness programmatically: a sample is anomalous when at least `quorum`
//! member kernels flag it. This reduces the false positives of any one
//! detector (the paper's complaint about inflexible metric monitors) while
//! keeping recall.
//!
//! The ensemble is itself an incremental kernel: its state holds one live
//! member state per detector and votes on each sample as it arrives, so it
//! streams at the cost of the sum of its members.

use batchlens_trace::Timestamp;

use super::{
    AnomalyKind, AnomalySpan, Detector, DetectorState, MadDetector, SpanBuilder, Step,
    ThresholdDetector, ZScoreDetector,
};

/// Combines several detectors by per-sample majority vote.
pub struct Ensemble {
    detectors: Vec<Box<dyn Detector>>,
    quorum: usize,
    min_samples: usize,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field(
                "members",
                &self.detectors.iter().map(|d| d.name()).collect::<Vec<_>>(),
            )
            .field("quorum", &self.quorum)
            .finish()
    }
}

impl Ensemble {
    /// Builds an ensemble from member detectors; `quorum` is the minimum
    /// number of members that must flag a sample. `quorum` is clamped to
    /// `1..=members`.
    pub fn new(detectors: Vec<Box<dyn Detector>>, quorum: usize) -> Self {
        let n = detectors.len().max(1);
        Ensemble {
            detectors,
            quorum: quorum.clamp(1, n),
            min_samples: 2,
        }
    }

    /// The shared default trio — threshold (0.9), running z-score (3.0) and
    /// running MAD (3.5) at quorum 2 — used by the behavioral features and
    /// the app's anomaly overlay.
    pub fn standard() -> Self {
        Ensemble::new(
            vec![
                Box::new(ThresholdDetector::new(0.9)),
                Box::new(ZScoreDetector::new(3.0)),
                Box::new(MadDetector::new(3.5)),
            ],
            2,
        )
    }

    /// Member detector names (for reports).
    pub fn members(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }
}

/// Incremental ensemble state: one live member state per detector, votes
/// tallied per sample.
///
/// Per-sample cost and memory are the sum of the members'.
#[derive(Debug)]
pub struct EnsembleState {
    members: Vec<Box<dyn DetectorState>>,
    quorum: usize,
    builder: SpanBuilder,
}

impl DetectorState for EnsembleState {
    fn push(&mut self, t: Timestamp, value: f64) -> Step {
        let votes = self
            .members
            .iter_mut()
            .map(|m| m.push(t, value).flagged)
            .filter(|&f| f)
            .count();
        let flagged = votes >= self.quorum;
        let severity = votes as f64;
        let closed = self.builder.observe(t, value, flagged, severity);
        Step::new(flagged, severity, closed)
    }

    fn finish(&mut self) -> Option<AnomalySpan> {
        for m in &mut self.members {
            // Members may hold open runs; their spans are not surfaced (the
            // ensemble votes on instantaneous flags), but finishing keeps
            // their contract honest.
            let _ = m.finish();
        }
        self.builder.finish()
    }
}

impl Detector for Ensemble {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn kind(&self) -> AnomalyKind {
        AnomalyKind::Outlier
    }

    fn state(&self) -> Box<dyn DetectorState> {
        Box::new(EnsembleState {
            members: self.detectors.iter().map(|d| d.state()).collect(),
            quorum: self.quorum,
            builder: SpanBuilder::new(AnomalyKind::Outlier, self.min_samples),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::TimeSeries;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    fn ensemble(quorum: usize) -> Ensemble {
        Ensemble::new(
            vec![
                Box::new(ThresholdDetector::new(0.9)),
                Box::new(ZScoreDetector::new(3.0)),
                Box::new(MadDetector::new(3.5)),
            ],
            quorum,
        )
    }

    #[test]
    fn unanimous_burst_is_flagged_by_all_quora() {
        // A gently wobbling baseline so MAD has a non-zero scale estimate.
        let mut vals: Vec<f64> = (0..100).map(|i| 0.3 + 0.01 * (i % 5) as f64).collect();
        for v in vals.iter_mut().skip(50).take(5) {
            *v = 0.98; // high, outlier, far-out — all three fire
        }
        let s = series(&vals);
        assert!(!ensemble(1).detect(&s).is_empty());
        assert!(!ensemble(3).detect(&s).is_empty());
    }

    #[test]
    fn a_moderate_outlier_needs_lower_quorum() {
        // 0.7 is a statistical outlier (z/mad) but below the 0.9 threshold,
        // so only 2 of 3 detectors fire.
        let mut vals: Vec<f64> = (0..100).map(|i| 0.3 + 0.001 * (i % 7) as f64).collect();
        for v in vals.iter_mut().skip(50).take(4) {
            *v = 0.7;
        }
        let s = series(&vals);
        assert!(!ensemble(2).detect(&s).is_empty(), "2/3 should flag");
        assert!(ensemble(3).detect(&s).is_empty(), "unanimous should not");
    }

    #[test]
    fn quorum_is_clamped() {
        let e = Ensemble::new(vec![Box::new(ThresholdDetector::new(0.9))], 99);
        assert_eq!(e.quorum, 1);
        assert_eq!(e.members(), vec!["threshold"]);
    }

    #[test]
    fn empty_series() {
        assert!(ensemble(2).detect(&TimeSeries::new()).is_empty());
    }

    #[test]
    fn severity_counts_votes() {
        let mut vals: Vec<f64> = (0..60).map(|i| 0.3 + 0.01 * (i % 5) as f64).collect();
        for v in vals.iter_mut().skip(40).take(4) {
            *v = 0.98;
        }
        let spans = ensemble(1).detect(&series(&vals));
        assert!(!spans.is_empty());
        // All three members flag the burst, so the vote severity is 3.
        assert_eq!(spans[0].severity, 3.0);
    }

    #[test]
    fn debug_lists_members() {
        let text = format!("{:?}", ensemble(2));
        assert!(text.contains("threshold"));
        assert!(text.contains("quorum"));
    }
}
