use batchlens_trace::Timestamp;
use serde::{Deserialize, Serialize};

use super::{AnomalyKind, AnomalySpan, Detector, DetectorState, SpanBuilder, Step};

/// Flags sustained runs above a fixed utilization threshold — the simplest
/// "metric-based" monitor and the mental model behind the paper's color
/// scale (nodes "reaching the respective capacity of node performance").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdDetector {
    /// Values strictly above this are anomalous (fraction, e.g. `0.9`).
    pub high: f64,
    /// Minimum consecutive samples for a span to be reported.
    pub min_samples: usize,
}

impl ThresholdDetector {
    /// A 90 %-for-3-samples detector, the conventional pager rule.
    pub fn new(high: f64) -> Self {
        ThresholdDetector {
            high,
            min_samples: 3,
        }
    }
}

impl Default for ThresholdDetector {
    fn default() -> Self {
        ThresholdDetector::new(0.9)
    }
}

/// Incremental threshold state: a pure comparison per sample.
///
/// O(1) per sample, O(1) memory.
#[derive(Debug, Clone)]
pub struct ThresholdState {
    high: f64,
    builder: SpanBuilder,
}

impl DetectorState for ThresholdState {
    fn push(&mut self, t: Timestamp, value: f64) -> Step {
        let flagged = value > self.high;
        let severity = value - self.high;
        let closed = self.builder.observe(t, value, flagged, severity);
        Step::new(flagged, severity, closed)
    }

    fn finish(&mut self) -> Option<AnomalySpan> {
        self.builder.finish()
    }
}

impl Detector for ThresholdDetector {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn kind(&self) -> AnomalyKind {
        AnomalyKind::HighUtilization
    }

    fn state(&self) -> Box<dyn DetectorState> {
        Box::new(ThresholdState {
            high: self.high,
            builder: SpanBuilder::new(AnomalyKind::HighUtilization, self.min_samples),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::TimeSeries;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    #[test]
    fn flags_sustained_high_runs() {
        let mut vals = vec![0.3; 20];
        for v in vals.iter_mut().skip(8).take(5) {
            *v = 0.97;
        }
        let spans = ThresholdDetector::new(0.9).detect(&series(&vals));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, AnomalyKind::HighUtilization);
        assert_eq!(spans[0].range.start(), Timestamp::new(8 * 60));
        assert!((spans[0].peak - 0.97).abs() < 1e-12);
        assert!(spans[0].severity > 0.0);
    }

    #[test]
    fn ignores_short_blips() {
        let mut vals = vec![0.3; 10];
        vals[4] = 0.99; // single-sample blip
        let spans = ThresholdDetector::new(0.9).detect(&series(&vals));
        assert!(spans.is_empty());
    }

    #[test]
    fn clean_series_is_clean() {
        let spans = ThresholdDetector::default().detect(&series(&[0.2; 50]));
        assert!(spans.is_empty());
        assert!(ThresholdDetector::default()
            .detect(&TimeSeries::new())
            .is_empty());
    }

    #[test]
    fn boundary_value_is_not_flagged() {
        // Strictly-above semantics.
        let spans = ThresholdDetector::new(0.9).detect(&series(&[0.9; 10]));
        assert!(spans.is_empty());
    }
}
