//! Cluster-wide batch detection: fan one [`Detector`] out over every
//! machine of a dataset.
//!
//! [`Detector::detect`] is a per-series scan; at `--tier paper` scale there
//! are 1300 machines × 3 metrics of it, all independent. The drivers here
//! shard that fan-out across the [`batchlens_exec`] pool — one work item
//! per machine, results returned in machine-id order — so the output is
//! **bit-identical to the serial loop at every thread count** (each
//! machine's spans are computed by exactly the serial kernel; parallelism
//! only reorders wall-clock, never floats).

use batchlens_exec as exec;
use batchlens_trace::{MachineId, Metric, TimeRange, TraceDataset};

use super::{AnomalySpan, Detector};

/// One machine's batch-detection result across all three metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineDetection {
    /// The machine the spans belong to.
    pub machine: MachineId,
    /// Spans per metric, indexed by [`Metric::index`]; a metric without a
    /// usage series yields an empty list.
    pub by_metric: [Vec<AnomalySpan>; 3],
}

impl MachineDetection {
    /// The spans for one metric.
    pub fn metric(&self, metric: Metric) -> &[AnomalySpan] {
        &self.by_metric[metric.index()]
    }

    /// Total spans across the three metrics.
    pub fn span_count(&self) -> usize {
        self.by_metric.iter().map(Vec::len).sum()
    }
}

/// Runs `detector` over every machine's series for every metric —
/// optionally restricted to `window` — across `threads` workers
/// (`0` = process default, `1` = serial fallback).
///
/// Results come back in machine-id order with each machine's spans in time
/// order, independent of scheduling. O(cluster series samples) total work,
/// divided by the effective worker count on multi-core hosts.
pub fn detect_all_machines(
    ds: &TraceDataset,
    detector: &dyn Detector,
    window: Option<&TimeRange>,
    threads: usize,
) -> Vec<MachineDetection> {
    let machines: Vec<MachineId> = ds.machines().map(|m| m.id()).collect();
    exec::par_map(threads, &machines, |&machine| {
        let mv = ds.machine(machine).expect("machine listed by dataset");
        let by_metric = std::array::from_fn(|k| {
            let metric = Metric::ALL[k];
            match mv.usage(metric) {
                // Windowed detection borrows the samples (`slice_view`) —
                // no per-machine-per-metric sub-series clone.
                Some(series) => match window {
                    Some(w) => detector.detect_view(series.slice_view(w)),
                    None => detector.detect(series),
                },
                None => Vec::new(),
            }
        });
        MachineDetection { machine, by_metric }
    })
}

/// Single-metric variant of [`detect_all_machines`]: `(machine, spans)` in
/// machine-id order, machines without a series for `metric` omitted.
pub fn detect_metric_all_machines(
    ds: &TraceDataset,
    detector: &dyn Detector,
    metric: Metric,
    window: Option<&TimeRange>,
    threads: usize,
) -> Vec<(MachineId, Vec<AnomalySpan>)> {
    let machines: Vec<MachineId> = ds
        .machines()
        .filter(|m| m.usage(metric).is_some())
        .map(|m| m.id())
        .collect();
    exec::par_map(threads, &machines, |&machine| {
        let series = ds
            .machine(machine)
            .and_then(|m| m.usage(metric))
            .expect("machine filtered on series presence");
        let spans = match window {
            Some(w) => detector.detect_view(series.slice_view(w)),
            None => detector.detect(series),
        };
        (machine, spans)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::Ensemble;
    use batchlens_sim::scenario;

    #[test]
    fn fan_out_matches_serial_loop_at_any_thread_count() {
        let ds = scenario::fig3c(3).run().unwrap();
        let ensemble = Ensemble::standard();
        let serial: Vec<MachineDetection> = detect_all_machines(&ds, &ensemble, None, 1);
        assert_eq!(serial.len(), ds.machine_count());
        for threads in [2usize, 7] {
            let par = detect_all_machines(&ds, &ensemble, None, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
        // Spot-check against a direct per-machine call.
        let m0 = &serial[0];
        let mv = ds.machine(m0.machine).unwrap();
        let direct = ensemble.detect(mv.usage(Metric::Cpu).unwrap());
        assert_eq!(m0.metric(Metric::Cpu), direct.as_slice());
    }

    #[test]
    fn windowed_fan_out_slices_before_detection() {
        let ds = scenario::fig3c(4).run().unwrap();
        let span = ds.span().unwrap();
        let half = batchlens_trace::TimeRange::new(
            span.start(),
            span.start() + batchlens_trace::TimeDelta::seconds(span.duration().as_seconds() / 2),
        )
        .unwrap();
        let ensemble = Ensemble::standard();
        let windowed = detect_metric_all_machines(&ds, &ensemble, Metric::Cpu, Some(&half), 2);
        for (machine, spans) in &windowed {
            let mv = ds.machine(*machine).unwrap();
            let direct = ensemble.detect(&mv.usage(Metric::Cpu).unwrap().slice(&half));
            assert_eq!(spans, &direct);
        }
    }
}
