//! Anomaly detection over utilization series — one incremental engine.
//!
//! Every detector is an **online kernel**: [`Detector::state`] yields a
//! [`DetectorState`] that consumes one `(Timestamp, f64)` sample at a time
//! in O(1) amortized per sample (see the complexity table in [`state`]), and
//! batch detection ([`Detector::detect`]) is a provided method that feeds the
//! whole series through that state. The batch and streaming paths therefore
//! share one implementation and can never disagree.
//!
//! Two families:
//!
//! * **Generic metric detectors** implementing [`Detector`] — threshold,
//!   z-score, EWMA, MAD, CUSUM, IQR and the voting [`Ensemble`]. These are
//!   the "metric-based approaches" the paper cites as prior art and that
//!   BatchLens complements visually.
//! * **Signature detectors** for the two case-study behaviours:
//!   [`spike::SpikeDetector`] (utilization peaking at job end, Fig 3(b)),
//!   whose state is scoped to one job window, and
//!   [`thrashing::ThrashingDetector`] (memory pinned while CPU collapses,
//!   Fig 3(c)), a [`PairedDetectorState`] over aligned CPU/memory samples.
//!
//! The retained scan implementations live in [`reference`] for differential
//! testing and benchmarking.

mod cusum;
mod ensemble;
mod ewma;
mod iqr;
mod mad;
pub mod parallel;
pub mod reference;
pub mod spike;
mod state;
pub mod thrashing;
mod threshold;
mod zscore;

pub use cusum::CusumDetector;
pub use ensemble::Ensemble;
pub use ewma::EwmaDetector;
pub use iqr::IqrDetector;
pub use mad::MadDetector;
pub use parallel::{detect_all_machines, detect_metric_all_machines, MachineDetection};
pub use spike::SpikeDetector;
pub use state::{DetectorState, PairedDetectorState, SpanBuilder, Step};
pub use thrashing::{ThrashingDetector, ThrashingState};
pub use threshold::ThresholdDetector;
pub use zscore::ZScoreDetector;

use batchlens_trace::{TimeDelta, TimeRange, TimeSeries, Timestamp};
use serde::{Deserialize, Serialize};

/// What kind of anomalous behaviour a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AnomalyKind {
    /// Sustained utilization above a fixed threshold.
    HighUtilization,
    /// Statistical outlier relative to the series' own distribution.
    Outlier,
    /// Deviation from the EWMA-smoothed expectation.
    Deviation,
    /// The end-of-job spike signature (Fig 3(b)).
    EndSpike,
    /// The thrashing signature (Fig 3(c)).
    Thrashing,
}

/// A detected anomalous interval in one series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalySpan {
    /// Behaviour classification.
    pub kind: AnomalyKind,
    /// The flagged interval.
    pub range: TimeRange,
    /// The most extreme value inside the span.
    pub peak: f64,
    /// When the most extreme value occurred.
    pub peak_time: Timestamp,
    /// Detector-specific severity (threshold excess, z-score, …); larger is
    /// more anomalous, values are comparable only within one detector.
    pub severity: f64,
}

/// A detector over a single metric series.
///
/// Implementations provide an incremental [`DetectorState`]; batch detection
/// is the provided [`Detector::detect`], which feeds the whole series through
/// a fresh state — so a detector is pure by construction: the same series
/// yields the same spans, whether pushed sample-by-sample or scanned.
///
/// The `Send + Sync` supertraits let detector configurations be shared
/// across ingest threads (the online `StreamMonitor` spawns one state per
/// machine from a shared detector set).
pub trait Detector: Send + Sync {
    /// Short name for reports and benches (e.g. `"zscore"`).
    fn name(&self) -> &'static str;

    /// The anomaly classification this detector's spans and flags carry
    /// (e.g. online alert routing labels a flagged sample with this kind).
    fn kind(&self) -> AnomalyKind;

    /// A fresh incremental state for one stream.
    fn state(&self) -> Box<dyn DetectorState>;

    /// Scans `series` by streaming it through [`Detector::state`] and
    /// returns anomalous spans in time order.
    fn detect(&self, series: &TimeSeries) -> Vec<AnomalySpan> {
        self.detect_view(series.view())
    }

    /// [`Detector::detect`] over a borrowed window — the zero-copy entry
    /// point windowed fan-outs use ([`parallel::detect_all_machines`]), so
    /// restricting detection to a brushed range never clones the samples.
    fn detect_view(&self, view: batchlens_trace::SeriesView<'_>) -> Vec<AnomalySpan> {
        let mut state = self.state();
        let mut out = Vec::new();
        for (t, v) in view.iter() {
            if let Some(span) = state.push(t, v).closed {
                out.push(span);
            }
        }
        out.extend(state.finish());
        out
    }
}

/// Groups consecutive flagged sample indices into [`AnomalySpan`]s.
///
/// `flags[i]` marks sample `i` anomalous; runs shorter than `min_samples`
/// are dropped. `severity_of(i)` scores one sample; a span's severity/peak
/// come from its most severe sample. Span ends extend one sample period past
/// the last flagged sample (half-open ranges).
pub(crate) fn spans_from_flags(
    series: &TimeSeries,
    flags: &[bool],
    min_samples: usize,
    kind: AnomalyKind,
    severity_of: impl Fn(usize) -> f64,
) -> Vec<AnomalySpan> {
    let times = series.times();
    let values = series.values();
    debug_assert_eq!(times.len(), flags.len());
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < flags.len() {
        if !flags[i] {
            i += 1;
            continue;
        }
        let run_start = i;
        while i < flags.len() && flags[i] {
            i += 1;
        }
        let run_end = i; // exclusive
        if run_end - run_start < min_samples.max(1) {
            continue;
        }
        let mut best = run_start;
        for j in run_start..run_end {
            if severity_of(j) > severity_of(best) {
                best = j;
            }
        }
        // Half-open end: one sample period past the last flagged point. The
        // period is the *local* gap after the run's last sample (or, at the
        // series tail, the gap before it) so irregular or resampled series
        // don't inherit a global `times[1] - times[0]` estimate that
        // mis-sizes their spans.
        let last = run_end - 1;
        let period = if last + 1 < times.len() {
            (times[last + 1] - times[last]).as_seconds().max(1)
        } else if last > 0 {
            (times[last] - times[last - 1]).as_seconds().max(1)
        } else {
            1
        };
        let range = TimeRange::new(
            times[run_start],
            times[run_end - 1] + TimeDelta::seconds(period),
        )
        .expect("monotone sample times");
        out.push(AnomalySpan {
            kind,
            range,
            peak: values[best],
            peak_time: times[best],
            severity: severity_of(best),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    #[test]
    fn spans_merge_consecutive_flags() {
        let s = series(&[0.0, 1.0, 1.0, 0.0, 1.0]);
        let flags = [false, true, true, false, true];
        let spans = spans_from_flags(&s, &flags, 1, AnomalyKind::HighUtilization, |i| {
            s.values()[i]
        });
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].range.start(), Timestamp::new(60));
        assert_eq!(spans[0].range.end(), Timestamp::new(180));
        assert_eq!(spans[1].range.start(), Timestamp::new(240));
    }

    #[test]
    fn short_runs_are_dropped() {
        let s = series(&[0.0, 1.0, 0.0, 1.0, 1.0, 1.0]);
        let flags = [false, true, false, true, true, true];
        let spans = spans_from_flags(&s, &flags, 3, AnomalyKind::HighUtilization, |i| {
            s.values()[i]
        });
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].range.start(), Timestamp::new(180));
    }

    #[test]
    fn span_end_uses_local_gap_on_irregular_grids() {
        // Samples at 0, 60, 120, then a 600 s reporting gap, then 720.
        let s: TimeSeries = [0i64, 60, 120, 720, 780]
            .iter()
            .enumerate()
            .map(|(i, &t)| (Timestamp::new(t), i as f64))
            .collect();
        // Run ends at t=60; the local gap to the next sample (120) is 60 s.
        let flags = [true, true, false, false, false];
        let spans = spans_from_flags(&s, &flags, 1, AnomalyKind::HighUtilization, |i| {
            s.values()[i]
        });
        assert_eq!(spans[0].range.end(), Timestamp::new(120));
        // Run ending right before the long gap extends by that gap, not by
        // the global times[1]-times[0] estimate.
        let flags = [false, false, true, false, false];
        let spans = spans_from_flags(&s, &flags, 1, AnomalyKind::HighUtilization, |i| {
            s.values()[i]
        });
        assert_eq!(spans[0].range.end(), Timestamp::new(720));
        // A run reaching the series tail reuses the gap before the last
        // sample (60 s here).
        let flags = [false, false, false, true, true];
        let spans = spans_from_flags(&s, &flags, 1, AnomalyKind::HighUtilization, |i| {
            s.values()[i]
        });
        assert_eq!(spans[0].range.end(), Timestamp::new(840));
    }

    #[test]
    fn peak_is_most_severe_sample() {
        let s = series(&[0.0, 0.5, 0.9, 0.7, 0.0]);
        let flags = [false, true, true, true, false];
        let spans = spans_from_flags(&s, &flags, 1, AnomalyKind::HighUtilization, |i| {
            s.values()[i]
        });
        assert_eq!(spans[0].peak, 0.9);
        assert_eq!(spans[0].peak_time, Timestamp::new(120));
    }
}
