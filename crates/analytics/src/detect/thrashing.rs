//! The Fig 3(c) signature: **thrashing**. Virtual memory is overused, so
//! the machine pages instead of computing — memory utilization stays pinned
//! while CPU utilization *decreases* and the system stops making progress.
//! ("It is likely to speculate that the compute node is suffering thrashing
//! while the virtual memory is overused … Eventually thrashing forces the
//! CPU utilization to decrease and the whole system is not making any
//! progresses.")

use std::collections::VecDeque;

use batchlens_trace::{TimeDelta, TimeSeries, Timestamp};
use serde::{Deserialize, Serialize};

use super::{AnomalyKind, AnomalySpan, PairedDetectorState, SpanBuilder, Step};

/// Detects the thrashing signature across a machine's CPU and memory series.
///
/// A sample looks thrashing when memory is pinned above `mem_high`, the
/// `mem - cpu` gap exceeds `min_gap`, **and** the CPU has declined by at
/// least `min_cpu_decline` from its maximum over the trailing `horizon` —
/// the window-max-to-current rule. (An earlier revision compared the first
/// and last samples of the window, which missed a mid-window collapse after
/// a flat start.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrashingDetector {
    /// Memory utilization considered "pinned".
    pub mem_high: f64,
    /// Minimum gap `mem - cpu` for a sample to look thrashing.
    pub min_gap: f64,
    /// Minimum consecutive samples for a span to be reported.
    pub min_samples: usize,
    /// The CPU must sit at least this far below its trailing-window maximum.
    pub min_cpu_decline: f64,
    /// How far back the CPU reference maximum looks.
    pub horizon: TimeDelta,
}

impl ThrashingDetector {
    /// Detector with the case study's default thresholds.
    pub fn new() -> Self {
        ThrashingDetector {
            mem_high: 0.6,
            min_gap: 0.25,
            min_samples: 3,
            min_cpu_decline: 0.05,
            horizon: TimeDelta::minutes(30),
        }
    }

    /// A fresh incremental state: push aligned `(t, cpu, mem)` samples in
    /// time order.
    pub fn state(&self) -> ThrashingState {
        ThrashingState {
            det: *self,
            maxima: VecDeque::new(),
            builder: SpanBuilder::new(AnomalyKind::Thrashing, self.min_samples),
        }
    }

    /// Scans paired CPU/memory series (same machine) for thrashing spans —
    /// a thin wrapper that aligns memory onto the CPU grid with
    /// sample-and-hold (two-cursor merge, O(n + m)) and feeds the pairs
    /// through [`ThrashingDetector::state`].
    pub fn detect(&self, cpu: &TimeSeries, mem: &TimeSeries) -> Vec<AnomalySpan> {
        if cpu.is_empty() || mem.is_empty() {
            return Vec::new();
        }
        let mut state = self.state();
        let mut out = Vec::new();
        let mut j = 0usize; // first index of `mem` with time > t
        for (t, c) in cpu.iter() {
            while j < mem.len() && mem.times()[j] <= t {
                j += 1;
            }
            if j == 0 {
                // Memory has not started reporting yet: nothing to pair.
                continue;
            }
            if let Some(span) = state.push(t, c, mem.values()[j - 1]).closed {
                out.push(span);
            }
        }
        out.extend(state.finish());
        out
    }
}

impl Default for ThrashingDetector {
    fn default() -> Self {
        ThrashingDetector::new()
    }
}

/// Incremental thrashing state over aligned `(cpu, mem)` pairs.
///
/// O(1) amortized per sample (each sample enters and leaves the monotonic
/// deque at most once), O(w) memory for `w` samples inside the horizon.
/// Span peaks report the *memory* level at the widest-gap sample — the
/// overuse driving the collapse — and span severity is that gap.
#[derive(Debug, Clone)]
pub struct ThrashingState {
    det: ThrashingDetector,
    /// Monotonically decreasing `(time, cpu)` maxima inside the horizon;
    /// the front is the trailing-window CPU maximum.
    maxima: VecDeque<(Timestamp, f64)>,
    builder: SpanBuilder,
}

impl PairedDetectorState for ThrashingState {
    fn push(&mut self, t: Timestamp, cpu: f64, mem: f64) -> Step {
        let cutoff = t - self.det.horizon;
        while self.maxima.front().is_some_and(|&(ft, _)| ft < cutoff) {
            self.maxima.pop_front();
        }
        let window_max = self.maxima.front().map_or(cpu, |&(_, m)| m.max(cpu));
        let decline = window_max - cpu;
        while self.maxima.back().is_some_and(|&(_, bv)| bv <= cpu) {
            self.maxima.pop_back();
        }
        self.maxima.push_back((t, cpu));

        let gap = mem - cpu;
        let flagged = mem > self.det.mem_high
            && gap > self.det.min_gap
            && decline >= self.det.min_cpu_decline;
        let closed = self.builder.observe(t, mem, flagged, gap);
        Step::new(flagged, gap, closed)
    }

    fn finish(&mut self) -> Option<AnomalySpan> {
        self.builder.finish()
    }
}

/// Convenience: fraction of flagged machines among `pairs`, used by reports
/// ("a tremendous amount of nodes are running at high memory but low CPU").
pub fn thrashing_machine_fraction<'a, I>(detector: &ThrashingDetector, pairs: I) -> f64
where
    I: IntoIterator<Item = (&'a TimeSeries, &'a TimeSeries)>,
{
    let mut total = 0usize;
    let mut hit = 0usize;
    for (cpu, mem) in pairs {
        total += 1;
        if !detector.detect(cpu, mem).is_empty() {
            hit += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CPU healthy then collapsing at `collapse_at`; memory pinned from
    /// `collapse_at` on.
    fn thrash_pair(collapse_at: i64) -> (TimeSeries, TimeSeries) {
        let mut cpu = TimeSeries::new();
        let mut mem = TimeSeries::new();
        for i in 0..120 {
            let t = i * 60;
            let c = if t < collapse_at {
                0.55
            } else {
                // Exponential collapse toward 0.08.
                0.08 + (0.55 - 0.08) * (-((t - collapse_at) as f64) / 600.0).exp()
            };
            let m = if t < collapse_at { 0.45 } else { 0.92 };
            cpu.push(Timestamp::new(t), c).unwrap();
            mem.push(Timestamp::new(t), m).unwrap();
        }
        (cpu, mem)
    }

    #[test]
    fn detects_collapse() {
        let (cpu, mem) = thrash_pair(3600);
        let spans = ThrashingDetector::new().detect(&cpu, &mem);
        assert_eq!(spans.len(), 1, "spans: {spans:?}");
        let s = spans[0];
        assert_eq!(s.kind, AnomalyKind::Thrashing);
        assert!(s.range.start().seconds() >= 3600);
        assert!(
            s.peak > 0.9,
            "span peak should be the pinned memory, got {}",
            s.peak
        );
        assert!(s.severity > 0.25);
    }

    #[test]
    fn mid_window_collapse_after_flat_start_is_caught() {
        // CPU flat at the window start, then collapsing mid-window while
        // memory pins: the window-max-to-current rule catches this; the old
        // first-to-last comparison on a window opening mid-collapse did not
        // reliably.
        let mut cpu = TimeSeries::new();
        let mut mem = TimeSeries::new();
        for i in 0..60 {
            let t = i * 60;
            let c = if t < 1200 {
                0.5
            } else {
                (0.5 - (t - 1200) as f64 / 1500.0).max(0.05)
            };
            cpu.push(Timestamp::new(t), c).unwrap();
            mem.push(Timestamp::new(t), if t < 1200 { 0.4 } else { 0.9 })
                .unwrap();
        }
        let spans = ThrashingDetector::new().detect(&cpu, &mem);
        assert!(!spans.is_empty());
    }

    #[test]
    fn healthy_busy_machine_is_not_thrashing() {
        // Both CPU and memory high: busy, not thrashing.
        let cpu: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.85)).collect();
        let mem: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.9)).collect();
        assert!(ThrashingDetector::new().detect(&cpu, &mem).is_empty());
    }

    #[test]
    fn idle_machine_with_cached_memory_is_not_thrashing() {
        // Memory high but CPU flat-low the whole time: no decline, so not
        // thrashing (just cached/committed memory on an idle box).
        let cpu: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.1)).collect();
        let mem: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.8)).collect();
        assert!(ThrashingDetector::new().detect(&cpu, &mem).is_empty());
    }

    #[test]
    fn gap_alone_without_pinned_memory_is_ignored() {
        let cpu: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.05)).collect();
        let mem: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.45)).collect();
        assert!(ThrashingDetector::new().detect(&cpu, &mem).is_empty());
    }

    #[test]
    fn fraction_counts_hits() {
        let (c1, m1) = thrash_pair(3600);
        let c2: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.5)).collect();
        let m2: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.4)).collect();
        let f = thrashing_machine_fraction(&ThrashingDetector::new(), vec![(&c1, &m1), (&c2, &m2)]);
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(
            thrashing_machine_fraction(&ThrashingDetector::new(), Vec::new()),
            0.0
        );
    }

    #[test]
    fn empty_series_are_clean() {
        let d = ThrashingDetector::new();
        assert!(d.detect(&TimeSeries::new(), &TimeSeries::new()).is_empty());
    }

    #[test]
    fn different_grids_are_aligned() {
        // Memory sampled at 300 s, CPU at 60 s.
        let mut cpu = TimeSeries::new();
        let mut mem = TimeSeries::new();
        for i in 0..120 {
            let t = i * 60;
            let c = if t < 3600 { 0.5 } else { 0.1 };
            cpu.push(Timestamp::new(t), c).unwrap();
        }
        for i in 0..24 {
            let t = i * 300;
            let m = if t < 3600 { 0.4 } else { 0.9 };
            mem.push(Timestamp::new(t), m).unwrap();
        }
        let spans = ThrashingDetector::new().detect(&cpu, &mem);
        assert!(!spans.is_empty());
    }
}
