//! The Fig 3(c) signature: **thrashing**. Virtual memory is overused, so
//! the machine pages instead of computing — memory utilization stays pinned
//! while CPU utilization *decreases* and the system stops making progress.
//! ("It is likely to speculate that the compute node is suffering thrashing
//! while the virtual memory is overused … Eventually thrashing forces the
//! CPU utilization to decrease and the whole system is not making any
//! progresses.")

use batchlens_trace::{TimeRange, TimeSeries};
use serde::{Deserialize, Serialize};

use super::{AnomalyKind, AnomalySpan};

/// Detects the thrashing signature across a machine's CPU and memory series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrashingDetector {
    /// Memory utilization considered "pinned".
    pub mem_high: f64,
    /// Minimum gap `mem - cpu` for a sample to look thrashing.
    pub min_gap: f64,
    /// Minimum consecutive samples for a span to be reported.
    pub min_samples: usize,
    /// The CPU must have *declined*: mean CPU inside the span must sit at
    /// least this far below the mean CPU over an equal window before it.
    pub min_cpu_decline: f64,
}

impl ThrashingDetector {
    /// Detector with the case study's default thresholds.
    pub fn new() -> Self {
        ThrashingDetector {
            mem_high: 0.6,
            min_gap: 0.25,
            min_samples: 3,
            min_cpu_decline: 0.05,
        }
    }

    /// Scans paired CPU/memory series (same machine) for thrashing spans.
    ///
    /// The two series may have different grids; memory is looked up with
    /// sample-and-hold at each CPU timestamp.
    pub fn detect(&self, cpu: &TimeSeries, mem: &TimeSeries) -> Vec<AnomalySpan> {
        if cpu.is_empty() || mem.is_empty() {
            return Vec::new();
        }
        let times = cpu.times();
        let cpu_vals = cpu.values();
        // Candidate flags: memory pinned AND a wide mem-cpu gap.
        let mut flags = vec![false; times.len()];
        let mut gaps = vec![0.0f64; times.len()];
        for (i, (&t, &c)) in times.iter().zip(cpu_vals).enumerate() {
            if let Some(m) = mem.value_at_or_before(t) {
                let gap = m - c;
                gaps[i] = gap;
                flags[i] = m > self.mem_high && gap > self.min_gap;
            }
        }
        let raw =
            super::spans_from_flags(cpu, &flags, self.min_samples, AnomalyKind::Thrashing, |i| {
                gaps[i]
            });
        // Confirm the CPU actually declined into each span.
        raw.into_iter()
            .filter(|span| self.cpu_declined(cpu, span.range))
            .map(|mut span| {
                // Report the *memory* peak as the span peak: that is the
                // overuse driving the collapse.
                if let Some(m) = mem.value_at_or_before(span.peak_time) {
                    span.peak = m;
                }
                span
            })
            .collect()
    }

    /// True when CPU is *falling* through the span: the collapse signature.
    ///
    /// Thrashing often begins with a clamped burst (the job's initial CPU
    /// demand), so comparing against pre-span history misclassifies; the
    /// discriminating feature is the declining trend inside the span itself.
    /// Short spans (< 4 samples) fall back to the history comparison.
    fn cpu_declined(&self, cpu: &TimeSeries, span: TimeRange) -> bool {
        let inside = cpu.slice(&span);
        if inside.is_empty() {
            return false;
        }
        // Gradual collapse: declining trend within the span (thrashing often
        // begins with a clamped CPU burst, so history alone misclassifies).
        if inside.len() >= 4 {
            let vals = inside.values();
            let mid = vals.len() / 2;
            let first: f64 = vals[..mid].iter().sum::<f64>() / mid as f64;
            let last: f64 = vals[mid..].iter().sum::<f64>() / (vals.len() - mid) as f64;
            if first - last >= self.min_cpu_decline {
                return true;
            }
        }
        // Step collapse: CPU already fell before the flagged span opened.
        let len = span.duration();
        let Ok(before) = TimeRange::new(span.start() - len, span.start()) else {
            return false;
        };
        match (cpu.stats_in(&before), inside.stats()) {
            (Some(prior), Some(now)) => prior.mean - now.mean >= self.min_cpu_decline,
            // No history and no trend: indistinguishable from an idle box
            // with committed memory — stay conservative.
            _ => false,
        }
    }
}

impl Default for ThrashingDetector {
    fn default() -> Self {
        ThrashingDetector::new()
    }
}

/// Convenience: fraction of flagged machines among `pairs`, used by reports
/// ("a tremendous amount of nodes are running at high memory but low CPU").
pub fn thrashing_machine_fraction<'a, I>(detector: &ThrashingDetector, pairs: I) -> f64
where
    I: IntoIterator<Item = (&'a TimeSeries, &'a TimeSeries)>,
{
    let mut total = 0usize;
    let mut hit = 0usize;
    for (cpu, mem) in pairs {
        total += 1;
        if !detector.detect(cpu, mem).is_empty() {
            hit += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::Timestamp;

    /// CPU healthy then collapsing at `collapse_at`; memory pinned from
    /// `collapse_at` on.
    fn thrash_pair(collapse_at: i64) -> (TimeSeries, TimeSeries) {
        let mut cpu = TimeSeries::new();
        let mut mem = TimeSeries::new();
        for i in 0..120 {
            let t = i * 60;
            let c = if t < collapse_at {
                0.55
            } else {
                // Exponential collapse toward 0.08.
                0.08 + (0.55 - 0.08) * (-((t - collapse_at) as f64) / 600.0).exp()
            };
            let m = if t < collapse_at { 0.45 } else { 0.92 };
            cpu.push(Timestamp::new(t), c).unwrap();
            mem.push(Timestamp::new(t), m).unwrap();
        }
        (cpu, mem)
    }

    #[test]
    fn detects_collapse() {
        let (cpu, mem) = thrash_pair(3600);
        let spans = ThrashingDetector::new().detect(&cpu, &mem);
        assert_eq!(spans.len(), 1, "spans: {spans:?}");
        let s = spans[0];
        assert_eq!(s.kind, AnomalyKind::Thrashing);
        assert!(s.range.start().seconds() >= 3600);
        assert!(
            s.peak > 0.9,
            "span peak should be the pinned memory, got {}",
            s.peak
        );
        assert!(s.severity > 0.25);
    }

    #[test]
    fn healthy_busy_machine_is_not_thrashing() {
        // Both CPU and memory high: busy, not thrashing.
        let cpu: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.85)).collect();
        let mem: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.9)).collect();
        assert!(ThrashingDetector::new().detect(&cpu, &mem).is_empty());
    }

    #[test]
    fn idle_machine_with_cached_memory_is_not_thrashing() {
        // Memory high but CPU flat-low the whole time: no decline, so not
        // thrashing (just cached/committed memory on an idle box).
        let cpu: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.1)).collect();
        let mem: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.8)).collect();
        assert!(ThrashingDetector::new().detect(&cpu, &mem).is_empty());
    }

    #[test]
    fn gap_alone_without_pinned_memory_is_ignored() {
        let cpu: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.05)).collect();
        let mem: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.45)).collect();
        assert!(ThrashingDetector::new().detect(&cpu, &mem).is_empty());
    }

    #[test]
    fn fraction_counts_hits() {
        let (c1, m1) = thrash_pair(3600);
        let c2: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.5)).collect();
        let m2: TimeSeries = (0..100).map(|i| (Timestamp::new(i * 60), 0.4)).collect();
        let f = thrashing_machine_fraction(&ThrashingDetector::new(), vec![(&c1, &m1), (&c2, &m2)]);
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(
            thrashing_machine_fraction(&ThrashingDetector::new(), Vec::new()),
            0.0
        );
    }

    #[test]
    fn empty_series_are_clean() {
        let d = ThrashingDetector::new();
        assert!(d.detect(&TimeSeries::new(), &TimeSeries::new()).is_empty());
    }

    #[test]
    fn different_grids_are_aligned() {
        // Memory sampled at 300 s, CPU at 60 s.
        let mut cpu = TimeSeries::new();
        let mut mem = TimeSeries::new();
        for i in 0..120 {
            let t = i * 60;
            let c = if t < 3600 { 0.5 } else { 0.1 };
            cpu.push(Timestamp::new(t), c).unwrap();
        }
        for i in 0..24 {
            let t = i * 300;
            let m = if t < 3600 { 0.4 } else { 0.9 };
            mem.push(Timestamp::new(t), m).unwrap();
        }
        let spans = ThrashingDetector::new().detect(&cpu, &mem);
        assert!(!spans.is_empty());
    }
}
