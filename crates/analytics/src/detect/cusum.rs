use batchlens_trace::TimeSeries;
use serde::{Deserialize, Serialize};

use super::{spans_from_flags, AnomalyKind, AnomalySpan, Detector};

/// Tabular CUSUM change detector: accumulates deviations from a running
/// target and flags samples once the cumulative sum crosses a decision
/// interval. Catches *sustained small shifts* a z-score misses — useful for
/// the gradual climb of the end-of-job spike before it becomes obvious.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumDetector {
    /// Allowable slack (half the shift to detect), in value units.
    pub slack: f64,
    /// Decision interval; a span fires when the accumulator exceeds it.
    pub threshold: f64,
    /// EWMA factor tracking the target level.
    pub alpha: f64,
    /// Minimum consecutive flagged samples for a span.
    pub min_samples: usize,
    /// When true only upward shifts fire; otherwise both directions.
    pub positive_only: bool,
}

impl CusumDetector {
    /// A detector tuned for utilization fractions.
    pub fn new(slack: f64, threshold: f64) -> Self {
        CusumDetector {
            slack,
            threshold,
            alpha: 0.05,
            min_samples: 2,
            positive_only: false,
        }
    }

    /// Upward-only variant.
    #[must_use]
    pub fn positive_only(mut self) -> Self {
        self.positive_only = true;
        self
    }
}

impl Default for CusumDetector {
    fn default() -> Self {
        CusumDetector::new(0.05, 0.5)
    }
}

impl Detector for CusumDetector {
    fn name(&self) -> &'static str {
        "cusum"
    }

    fn detect(&self, series: &TimeSeries) -> Vec<AnomalySpan> {
        let values = series.values();
        if values.is_empty() {
            return Vec::new();
        }
        let mut target = values[0];
        let mut hi = 0.0f64;
        let mut lo = 0.0f64;
        let mut flags = vec![false; values.len()];
        let mut scores = vec![0.0f64; values.len()];
        for (i, &v) in values.iter().enumerate() {
            hi = (hi + v - target - self.slack).max(0.0);
            lo = (lo - (v - target) - self.slack).max(0.0);
            let score = if self.positive_only { hi } else { hi.max(lo) };
            scores[i] = score;
            if score > self.threshold {
                flags[i] = true;
                // Hold the accumulator (don't reset) so a sustained shift
                // stays flagged, but stop tracking the target into it.
            } else {
                target += self.alpha * (v - target);
            }
        }
        spans_from_flags(
            series,
            &flags,
            self.min_samples,
            AnomalyKind::Deviation,
            |i| scores[i],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::Timestamp;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    #[test]
    fn detects_sustained_small_shift() {
        // A +0.15 shift at sample 40: too small per-sample for a 3-sigma
        // z-score but a clear sustained change for CUSUM.
        let mut vals = vec![0.30; 80];
        for v in vals.iter_mut().skip(40) {
            *v = 0.45;
        }
        let spans = CusumDetector::new(0.03, 0.4).detect(&series(&vals));
        assert!(!spans.is_empty());
        assert!(spans[0].range.start().seconds() >= 40 * 60);
    }

    #[test]
    fn clean_series_is_clean() {
        assert!(CusumDetector::default()
            .detect(&series(&[0.3; 100]))
            .is_empty());
        assert!(CusumDetector::default()
            .detect(&TimeSeries::new())
            .is_empty());
    }

    #[test]
    fn positive_only_ignores_downshift() {
        let mut vals = vec![0.6; 80];
        for v in vals.iter_mut().skip(40) {
            *v = 0.3;
        }
        let up = CusumDetector::new(0.03, 0.4)
            .positive_only()
            .detect(&series(&vals));
        assert!(up.is_empty());
        let both = CusumDetector::new(0.03, 0.4).detect(&series(&vals));
        assert!(!both.is_empty());
    }
}
