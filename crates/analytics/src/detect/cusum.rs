use batchlens_trace::Timestamp;
use serde::{Deserialize, Serialize};

use super::{AnomalyKind, AnomalySpan, Detector, DetectorState, SpanBuilder, Step};

/// Tabular CUSUM change detector: accumulates deviations from a running
/// target and flags samples once the cumulative sum crosses a decision
/// interval. Catches *sustained small shifts* a z-score misses — useful for
/// the gradual climb of the end-of-job spike before it becomes obvious.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumDetector {
    /// Allowable slack (half the shift to detect), in value units.
    pub slack: f64,
    /// Decision interval; a span fires when the accumulator exceeds it.
    pub threshold: f64,
    /// EWMA factor tracking the target level.
    pub alpha: f64,
    /// Minimum consecutive flagged samples for a span.
    pub min_samples: usize,
    /// When true only upward shifts fire; otherwise both directions.
    pub positive_only: bool,
}

impl CusumDetector {
    /// A detector tuned for utilization fractions.
    pub fn new(slack: f64, threshold: f64) -> Self {
        CusumDetector {
            slack,
            threshold,
            alpha: 0.05,
            min_samples: 2,
            positive_only: false,
        }
    }

    /// Upward-only variant.
    #[must_use]
    pub fn positive_only(mut self) -> Self {
        self.positive_only = true;
        self
    }
}

impl Default for CusumDetector {
    fn default() -> Self {
        CusumDetector::new(0.05, 0.5)
    }
}

/// Incremental tabular-CUSUM state: two accumulators plus an EWMA target.
///
/// O(1) per sample, O(1) memory. While flagged, the accumulator holds (no
/// reset) so a sustained shift stays flagged, and the target stops tracking
/// into the anomaly.
#[derive(Debug, Clone)]
pub struct CusumState {
    slack: f64,
    threshold: f64,
    alpha: f64,
    positive_only: bool,
    started: bool,
    target: f64,
    hi: f64,
    lo: f64,
    builder: SpanBuilder,
}

impl DetectorState for CusumState {
    fn push(&mut self, t: Timestamp, value: f64) -> Step {
        if !self.started {
            self.target = value;
            self.started = true;
        }
        self.hi = (self.hi + value - self.target - self.slack).max(0.0);
        self.lo = (self.lo - (value - self.target) - self.slack).max(0.0);
        let score = if self.positive_only {
            self.hi
        } else {
            self.hi.max(self.lo)
        };
        let flagged = score > self.threshold;
        if !flagged {
            self.target += self.alpha * (value - self.target);
        }
        let closed = self.builder.observe(t, value, flagged, score);
        Step::new(flagged, score, closed)
    }

    fn finish(&mut self) -> Option<AnomalySpan> {
        self.builder.finish()
    }
}

impl Detector for CusumDetector {
    fn name(&self) -> &'static str {
        "cusum"
    }

    fn kind(&self) -> AnomalyKind {
        AnomalyKind::Deviation
    }

    fn state(&self) -> Box<dyn DetectorState> {
        Box::new(CusumState {
            slack: self.slack,
            threshold: self.threshold,
            alpha: self.alpha,
            positive_only: self.positive_only,
            started: false,
            target: 0.0,
            hi: 0.0,
            lo: 0.0,
            builder: SpanBuilder::new(AnomalyKind::Deviation, self.min_samples),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::TimeSeries;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    #[test]
    fn detects_sustained_small_shift() {
        // A +0.15 shift at sample 40: too small per-sample for a 3-sigma
        // z-score but a clear sustained change for CUSUM.
        let mut vals = vec![0.30; 80];
        for v in vals.iter_mut().skip(40) {
            *v = 0.45;
        }
        let spans = CusumDetector::new(0.03, 0.4).detect(&series(&vals));
        assert!(!spans.is_empty());
        assert!(spans[0].range.start().seconds() >= 40 * 60);
    }

    #[test]
    fn clean_series_is_clean() {
        assert!(CusumDetector::default()
            .detect(&series(&[0.3; 100]))
            .is_empty());
        assert!(CusumDetector::default()
            .detect(&TimeSeries::new())
            .is_empty());
    }

    #[test]
    fn positive_only_ignores_downshift() {
        let mut vals = vec![0.6; 80];
        for v in vals.iter_mut().skip(40) {
            *v = 0.3;
        }
        let up = CusumDetector::new(0.03, 0.4)
            .positive_only()
            .detect(&series(&vals));
        assert!(up.is_empty());
        let both = CusumDetector::new(0.03, 0.4).detect(&series(&vals));
        assert!(!both.is_empty());
    }
}
