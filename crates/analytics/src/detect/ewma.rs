use batchlens_trace::TimeSeries;
use serde::{Deserialize, Serialize};

use super::{spans_from_flags, AnomalyKind, AnomalySpan, Detector};

/// Flags samples deviating from an exponentially-weighted moving average by
/// more than `k` running standard deviations.
///
/// Unlike the global [`super::ZScoreDetector`], EWMA adapts to slow drift
/// (diurnal load) and flags only *fast* excursions — closest in spirit to
/// online production monitors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaDetector {
    /// Smoothing factor in `(0, 1]`; smaller adapts slower.
    pub alpha: f64,
    /// Residual multiple that triggers a flag.
    pub k: f64,
    /// Minimum consecutive samples for a span to be reported.
    pub min_samples: usize,
    /// Warm-up samples before flagging starts.
    pub warmup: usize,
}

impl EwmaDetector {
    /// A `alpha = 0.2, k = 4` detector with 10-sample warm-up.
    pub fn new(alpha: f64, k: f64) -> Self {
        EwmaDetector {
            alpha: alpha.clamp(1e-6, 1.0),
            k,
            min_samples: 1,
            warmup: 10,
        }
    }
}

impl Default for EwmaDetector {
    fn default() -> Self {
        EwmaDetector::new(0.2, 4.0)
    }
}

impl Detector for EwmaDetector {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn detect(&self, series: &TimeSeries) -> Vec<AnomalySpan> {
        let values = series.values();
        if values.len() <= self.warmup {
            return Vec::new();
        }
        let mut mean = values[0];
        let mut var = 0.0f64;
        let mut flags = vec![false; values.len()];
        let mut scores = vec![0.0f64; values.len()];
        for (i, &v) in values.iter().enumerate().skip(1) {
            let sd = var.sqrt().max(1e-3);
            let residual = (v - mean).abs();
            let score = residual / sd;
            if i >= self.warmup && score > self.k {
                flags[i] = true;
                scores[i] = score;
                // Do not absorb the anomaly into the baseline: skip update so
                // a sustained excursion stays flagged.
                continue;
            }
            mean += self.alpha * (v - mean);
            var = (1.0 - self.alpha) * (var + self.alpha * (v - mean) * (v - mean));
        }
        spans_from_flags(
            series,
            &flags,
            self.min_samples,
            AnomalyKind::Deviation,
            |i| scores[i],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::Timestamp;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    fn noisy_flat(n: usize, level: f64) -> Vec<f64> {
        // Small deterministic wobble so the running variance is nonzero.
        (0..n)
            .map(|i| level + 0.01 * ((i % 7) as f64 - 3.0) / 3.0)
            .collect()
    }

    #[test]
    fn flags_step_change() {
        let mut vals = noisy_flat(60, 0.3);
        for v in vals.iter_mut().skip(30).take(5) {
            *v = 0.95;
        }
        let spans = EwmaDetector::default().detect(&series(&vals));
        assert!(!spans.is_empty());
        assert_eq!(spans[0].kind, AnomalyKind::Deviation);
        assert_eq!(spans[0].range.start(), Timestamp::new(30 * 60));
    }

    #[test]
    fn adapts_to_slow_drift() {
        // Linear drift from 0.2 to 0.8 over 200 samples: no flags expected.
        let vals: Vec<f64> = (0..200).map(|i| 0.2 + 0.6 * i as f64 / 200.0).collect();
        let spans = EwmaDetector::default().detect(&series(&vals));
        assert!(spans.is_empty(), "drift misflagged: {spans:?}");
    }

    #[test]
    fn warmup_suppresses_early_flags() {
        let mut vals = noisy_flat(30, 0.3);
        vals[2] = 0.99; // inside warm-up
        let spans = EwmaDetector::default().detect(&series(&vals));
        assert!(spans
            .iter()
            .all(|s| s.range.start() > Timestamp::new(2 * 60)));
    }

    #[test]
    fn short_series_is_clean() {
        let spans = EwmaDetector::default().detect(&series(&[0.5; 5]));
        assert!(spans.is_empty());
    }
}
