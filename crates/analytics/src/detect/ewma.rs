use batchlens_trace::Timestamp;
use serde::{Deserialize, Serialize};

use super::{AnomalyKind, AnomalySpan, Detector, DetectorState, SpanBuilder, Step};

/// Flags samples deviating from an exponentially-weighted moving average by
/// more than `k` running standard deviations.
///
/// Unlike the global [`super::ZScoreDetector`], EWMA adapts to slow drift
/// (diurnal load) and flags only *fast* excursions — closest in spirit to
/// online production monitors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaDetector {
    /// Smoothing factor in `(0, 1]`; smaller adapts slower.
    pub alpha: f64,
    /// Residual multiple that triggers a flag.
    pub k: f64,
    /// Minimum consecutive samples for a span to be reported.
    pub min_samples: usize,
    /// Warm-up samples before flagging starts.
    pub warmup: usize,
}

impl EwmaDetector {
    /// A `alpha = 0.2, k = 4` detector with 10-sample warm-up.
    pub fn new(alpha: f64, k: f64) -> Self {
        EwmaDetector {
            alpha: alpha.clamp(1e-6, 1.0),
            k,
            min_samples: 1,
            warmup: 10,
        }
    }
}

impl Default for EwmaDetector {
    fn default() -> Self {
        EwmaDetector::new(0.2, 4.0)
    }
}

/// Incremental EWMA state: running mean/variance updated per sample.
///
/// O(1) per sample, O(1) memory. Flagged samples are *not* absorbed into
/// the baseline, so a sustained excursion stays flagged.
#[derive(Debug, Clone)]
pub struct EwmaState {
    alpha: f64,
    k: f64,
    warmup: usize,
    /// Index of the next sample (0 = nothing seen yet).
    i: usize,
    mean: f64,
    var: f64,
    builder: SpanBuilder,
}

impl DetectorState for EwmaState {
    fn push(&mut self, t: Timestamp, value: f64) -> Step {
        if self.i == 0 {
            // The first sample seeds the baseline and is never flagged.
            self.mean = value;
            self.var = 0.0;
            self.i = 1;
            let closed = self.builder.observe(t, value, false, 0.0);
            return Step::new(false, 0.0, closed);
        }
        let sd = self.var.sqrt().max(1e-3);
        let score = (value - self.mean).abs() / sd;
        let flagged = self.i >= self.warmup && score > self.k;
        if !flagged {
            self.mean += self.alpha * (value - self.mean);
            self.var = (1.0 - self.alpha)
                * (self.var + self.alpha * (value - self.mean) * (value - self.mean));
        }
        self.i += 1;
        let closed = self.builder.observe(t, value, flagged, score);
        Step::new(flagged, score, closed)
    }

    fn finish(&mut self) -> Option<AnomalySpan> {
        self.builder.finish()
    }
}

impl Detector for EwmaDetector {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn kind(&self) -> AnomalyKind {
        AnomalyKind::Deviation
    }

    fn state(&self) -> Box<dyn DetectorState> {
        Box::new(EwmaState {
            alpha: self.alpha,
            k: self.k,
            warmup: self.warmup,
            i: 0,
            mean: 0.0,
            var: 0.0,
            builder: SpanBuilder::new(AnomalyKind::Deviation, self.min_samples),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::TimeSeries;

    fn series(values: &[f64]) -> TimeSeries {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect()
    }

    fn noisy_flat(n: usize, level: f64) -> Vec<f64> {
        // Small deterministic wobble so the running variance is nonzero.
        (0..n)
            .map(|i| level + 0.01 * ((i % 7) as f64 - 3.0) / 3.0)
            .collect()
    }

    #[test]
    fn flags_step_change() {
        let mut vals = noisy_flat(60, 0.3);
        for v in vals.iter_mut().skip(30).take(5) {
            *v = 0.95;
        }
        let spans = EwmaDetector::default().detect(&series(&vals));
        assert!(!spans.is_empty());
        assert_eq!(spans[0].kind, AnomalyKind::Deviation);
        assert_eq!(spans[0].range.start(), Timestamp::new(30 * 60));
    }

    #[test]
    fn adapts_to_slow_drift() {
        // Linear drift from 0.2 to 0.8 over 200 samples: no flags expected.
        let vals: Vec<f64> = (0..200).map(|i| 0.2 + 0.6 * i as f64 / 200.0).collect();
        let spans = EwmaDetector::default().detect(&series(&vals));
        assert!(spans.is_empty(), "drift misflagged: {spans:?}");
    }

    #[test]
    fn warmup_suppresses_early_flags() {
        let mut vals = noisy_flat(30, 0.3);
        vals[2] = 0.99; // inside warm-up
        let spans = EwmaDetector::default().detect(&series(&vals));
        assert!(spans
            .iter()
            .all(|s| s.range.start() > Timestamp::new(2 * 60)));
    }

    #[test]
    fn short_series_is_clean() {
        let spans = EwmaDetector::default().detect(&series(&[0.5; 5]));
        assert!(spans.is_empty());
    }
}
