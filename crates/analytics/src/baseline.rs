//! The "no visualization structures" baseline: answering the case study's
//! questions by scanning the raw tables, the way an administrator grepping
//! CSV dumps would.
//!
//! BatchLens's contribution is *not* a faster algorithm — it is an indexed,
//! linked-view representation. The honest comparison for the benches is
//! therefore indexed queries ([`crate::hierarchy`], [`crate::coalloc`])
//! versus these deliberately naive full scans over unindexed record slices.

use std::collections::BTreeMap;

use batchlens_trace::{
    BatchInstanceRecord, JobId, MachineId, ServerUsageRecord, Timestamp, TraceDataset,
};

/// Flattens a dataset's usage series back into raw `server_usage` rows —
/// the input shape the baseline works with.
pub fn export_usage_records(ds: &TraceDataset) -> Vec<ServerUsageRecord> {
    let mut out = Vec::new();
    for machine in ds.machines() {
        let Some(cpu) = machine.usage(batchlens_trace::Metric::Cpu) else {
            continue;
        };
        for (t, _) in cpu.iter() {
            if let Some(util) = machine.util_at(t) {
                out.push(ServerUsageRecord {
                    time: t,
                    machine: machine.id(),
                    util,
                });
            }
        }
    }
    // Raw dumps are time-ordered, machine-interleaved.
    out.sort_by_key(|r| (r.time, r.machine));
    out
}

/// Raw scan: which jobs run at `t`? (Full pass over every instance row.)
pub fn jobs_running_at_raw(instances: &[BatchInstanceRecord], t: Timestamp) -> Vec<JobId> {
    let mut out: Vec<JobId> = instances
        .iter()
        .filter(|r| r.running_at(t))
        .map(|r| r.job)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Raw scan: the latest usage row at or before `t` for every machine.
/// (Full pass over every usage row.)
pub fn util_at_raw(
    usage: &[ServerUsageRecord],
    t: Timestamp,
) -> BTreeMap<MachineId, ServerUsageRecord> {
    let mut latest: BTreeMap<MachineId, ServerUsageRecord> = BTreeMap::new();
    for r in usage {
        if r.time <= t {
            match latest.get(&r.machine) {
                Some(prev) if prev.time >= r.time => {}
                _ => {
                    latest.insert(r.machine, *r);
                }
            }
        }
    }
    latest
}

/// Raw scan: mean utilization of each running job's machines at `t` and the
/// job with the highest mean — the "which job should I look at first"
/// question, answered without any index.
pub fn busiest_job_raw(
    instances: &[BatchInstanceRecord],
    usage: &[ServerUsageRecord],
    t: Timestamp,
) -> Option<(JobId, f64)> {
    let running = jobs_running_at_raw(instances, t);
    let latest = util_at_raw(usage, t);
    let mut best: Option<(JobId, f64)> = None;
    for job in running {
        // Another full pass per job: collect its machines.
        let mut machines: Vec<MachineId> = instances
            .iter()
            .filter(|r| r.job == job && r.running_at(t))
            .map(|r| r.machine)
            .collect();
        machines.sort_unstable();
        machines.dedup();
        let mut sum = 0.0;
        let mut n = 0usize;
        for m in &machines {
            if let Some(rec) = latest.get(m) {
                sum += rec.util.mean().fraction();
                n += 1;
            }
        }
        if n > 0 {
            let mean = sum / n as f64;
            if best.is_none_or(|(_, b)| mean > b) {
                best = Some((job, mean));
            }
        }
    }
    best
}

/// Raw scan: machines executing two or more distinct jobs at `t` —
/// the co-allocation question with a quadratic-ish scan.
pub fn shared_machines_raw(instances: &[BatchInstanceRecord], t: Timestamp) -> Vec<MachineId> {
    let mut machine_jobs: BTreeMap<MachineId, Vec<JobId>> = BTreeMap::new();
    for r in instances {
        if r.running_at(t) {
            let jobs = machine_jobs.entry(r.machine).or_default();
            if !jobs.contains(&r.job) {
                jobs.push(r.job);
            }
        }
    }
    machine_jobs
        .into_iter()
        .filter(|(_, jobs)| jobs.len() >= 2)
        .map(|(m, _)| m)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalloc::CoallocationIndex;
    use crate::hierarchy::HierarchySnapshot;
    use batchlens_sim::scenario;

    #[test]
    fn raw_scan_agrees_with_indexed_queries() {
        let ds = scenario::fig3b(41).run().unwrap();
        let instances = ds.instance_records().to_vec();
        let usage = export_usage_records(&ds);
        let t = scenario::T_FIG3B;

        // Jobs running.
        let raw_jobs = jobs_running_at_raw(&instances, t);
        let indexed_jobs: Vec<JobId> = ds.jobs_running_at(t).iter().map(|j| j.id()).collect();
        assert_eq!(raw_jobs, indexed_jobs);

        // Shared machines.
        let raw_shared = shared_machines_raw(&instances, t);
        let idx = CoallocationIndex::at(&ds, t);
        let indexed_shared: Vec<MachineId> =
            idx.shared_machines().iter().map(|s| s.machine).collect();
        assert_eq!(raw_shared, indexed_shared);

        // Per-machine utilization.
        let latest = util_at_raw(&usage, t);
        for machine in ds.machines() {
            let indexed = machine.util_at(t);
            let raw = latest.get(&machine.id()).map(|r| r.util);
            match (indexed, raw) {
                (Some(a), Some(b)) => {
                    assert!((a.cpu.fraction() - b.cpu.fraction()).abs() < 1e-9);
                }
                (None, None) => {}
                other => panic!("disagreement on {}: {other:?}", machine.id()),
            }
        }
    }

    #[test]
    fn busiest_job_matches_snapshot_ranking() {
        let ds = scenario::fig3b(42).run().unwrap();
        let instances = ds.instance_records().to_vec();
        let usage = export_usage_records(&ds);
        let t = scenario::T_FIG3B;
        let (raw_job, _) = busiest_job_raw(&instances, &usage, t).unwrap();
        let snap = HierarchySnapshot::at(&ds, t);
        let ranked = snap.jobs_by_mean_util();
        let indexed_busiest = ranked.last().unwrap().0;
        assert_eq!(raw_job, indexed_busiest);
    }

    #[test]
    fn empty_inputs() {
        assert!(jobs_running_at_raw(&[], Timestamp::ZERO).is_empty());
        assert!(util_at_raw(&[], Timestamp::ZERO).is_empty());
        assert!(busiest_job_raw(&[], &[], Timestamp::ZERO).is_none());
        assert!(shared_machines_raw(&[], Timestamp::ZERO).is_empty());
    }
}
