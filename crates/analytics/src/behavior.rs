//! Machine behavioral analysis: clustering machines by their utilization
//! signatures.
//!
//! The paper (and its cited prior art, Muelder et al.'s "behavioral lines")
//! portrays each compute node's behavior over time. This module summarizes a
//! machine's behavior as a feature vector and clusters machines with k-means,
//! so an operator can ask "which machines behave alike?" — the spatial side
//! of the paper's spatial/temporal comparison.

use batchlens_trace::{MachineId, Metric, TimeRange, TraceDataset};
use serde::{Deserialize, Serialize};

use crate::detect::{Detector, Ensemble};

/// Dimensionality of the behavioral feature vector.
pub const FEATURES: usize = 6;

/// A compact behavioral signature of one machine over a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorVector {
    /// The machine.
    pub machine: MachineId,
    /// Mean CPU utilization.
    pub cpu_mean: f64,
    /// CPU variability (std-dev).
    pub cpu_std: f64,
    /// Mean memory utilization.
    pub mem_mean: f64,
    /// Mean disk utilization.
    pub disk_mean: f64,
    /// Peak of the hottest metric.
    pub peak: f64,
    /// Fraction of the window's CPU samples flagged by
    /// [`Ensemble::standard`]'s per-sample quorum vote (raw flags, not span
    /// membership — the span min-run filter is irrelevant to a rate) —
    /// machines that *behave* anomalously cluster together even when their
    /// means look ordinary.
    pub anomaly_rate: f64,
}

impl BehaviorVector {
    /// Summarizes `machine` over `window` within `ds`, or `None` when it has
    /// no usage data there.
    pub fn of(ds: &TraceDataset, machine: MachineId, window: &TimeRange) -> Option<BehaviorVector> {
        let mv = ds.machine(machine)?;
        let cpu_series = mv.usage(Metric::Cpu)?;
        let cpu = cpu_series.stats_in(window)?;
        let mem = mv.usage(Metric::Memory)?.stats_in(window)?;
        let disk = mv.usage(Metric::Disk)?.stats_in(window)?;
        Some(BehaviorVector {
            machine,
            cpu_mean: cpu.mean,
            cpu_std: cpu.std_dev,
            mem_mean: mem.mean,
            disk_mean: disk.mean,
            peak: cpu.max.max(mem.max).max(disk.max),
            anomaly_rate: anomaly_sample_fraction(cpu_series, window),
        })
    }

    /// The feature vector for clustering.
    fn features(&self) -> [f64; FEATURES] {
        [
            self.cpu_mean,
            self.cpu_std,
            self.mem_mean,
            self.disk_mean,
            self.peak,
            self.anomaly_rate,
        ]
    }

    /// Squared Euclidean distance between two signatures' features.
    pub fn distance_sq(&self, other: &BehaviorVector) -> f64 {
        self.features()
            .iter()
            .zip(other.features().iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

/// The result of clustering machine behaviors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorClusters {
    /// Cluster centroids ([`FEATURES`]-dimensional feature means).
    pub centroids: Vec<[f64; FEATURES]>,
    /// Per-machine cluster assignment, parallel to the input vectors.
    pub assignments: Vec<(MachineId, usize)>,
}

impl BehaviorClusters {
    /// Machines in cluster `k`.
    pub fn members(&self, k: usize) -> Vec<MachineId> {
        self.assignments
            .iter()
            .filter(|(_, c)| *c == k)
            .map(|(m, _)| *m)
            .collect()
    }

    /// Size of each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let k = self.centroids.len();
        let mut sizes = vec![0usize; k];
        for &(_, c) in &self.assignments {
            sizes[c] += 1;
        }
        sizes
    }
}

/// Fraction of `series`' samples inside `window` that fall within an
/// [`Ensemble::standard`] anomaly span.
fn anomaly_sample_fraction(series: &batchlens_trace::TimeSeries, window: &TimeRange) -> f64 {
    let view = series.slice_view(window);
    if view.is_empty() {
        return 0.0;
    }
    let times = view.times();
    let mut state = Ensemble::standard().state();
    let mut flagged = 0usize;
    for (&t, &v) in times.iter().zip(view.values()) {
        // Anomalous *samples* are what the rate counts; span grouping (and
        // its min-run filter) is irrelevant here, so tally raw flags.
        if state.push(t, v).flagged {
            flagged += 1;
        }
    }
    flagged as f64 / times.len() as f64
}

/// Collects behavior vectors for every machine over `window`, fanned out
/// across the process-default worker count.
pub fn behavior_vectors(ds: &TraceDataset, window: &TimeRange) -> Vec<BehaviorVector> {
    behavior_vectors_with_threads(ds, window, 0)
}

/// [`behavior_vectors`] across an explicit worker count (`0` = process
/// default, `1` = serial).
///
/// One work item per machine — the ensemble anomaly-rate pass dominates —
/// with results in machine-id order. Per-machine summaries are independent,
/// so the output is bit-identical to the serial loop at every thread count.
pub fn behavior_vectors_with_threads(
    ds: &TraceDataset,
    window: &TimeRange,
    threads: usize,
) -> Vec<BehaviorVector> {
    let machines: Vec<MachineId> = ds.machines().map(|m| m.id()).collect();
    batchlens_exec::par_map(threads, &machines, |&m| BehaviorVector::of(ds, m, window))
        .into_iter()
        .flatten()
        .collect()
}

/// Deterministic k-means over behavior vectors.
///
/// Centroids are seeded by a farthest-first traversal (k-means++ flavour
/// without randomness) so the result is reproducible. Returns `None` when
/// there are fewer vectors than `k` or `k == 0`.
pub fn cluster_behaviors(
    vectors: &[BehaviorVector],
    k: usize,
    max_iters: usize,
) -> Option<BehaviorClusters> {
    if k == 0 || vectors.len() < k {
        return None;
    }
    let feats: Vec<[f64; FEATURES]> = vectors.iter().map(|v| v.features()).collect();

    // Farthest-first seeding: start at index 0, repeatedly add the point
    // farthest from the current centroid set.
    let mut centroids: Vec<[f64; FEATURES]> = vec![feats[0]];
    while centroids.len() < k {
        let mut best = 0usize;
        let mut best_d = -1.0f64;
        for (i, f) in feats.iter().enumerate() {
            let d = centroids
                .iter()
                .map(|c| dist_sq(f, c))
                .fold(f64::INFINITY, f64::min);
            if d > best_d {
                best_d = d;
                best = i;
            }
        }
        centroids.push(feats[best]);
    }

    let mut assign = vec![0usize; vectors.len()];
    for _ in 0..max_iters.max(1) {
        let mut changed = false;
        // Assignment step.
        for (i, f) in feats.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = dist_sq(f, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![[0.0f64; FEATURES]; k];
        let mut counts = vec![0usize; k];
        for (i, f) in feats.iter().enumerate() {
            let c = assign[i];
            for d in 0..FEATURES {
                sums[c][d] += f[d];
            }
            counts[c] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                for d in 0..FEATURES {
                    centroids[c][d] = sums[c][d] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    Some(BehaviorClusters {
        centroids,
        assignments: vectors.iter().map(|v| v.machine).zip(assign).collect(),
    })
}

fn dist_sq(a: &[f64; FEATURES], b: &[f64; FEATURES]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn vectors_cover_machines_with_data() {
        let ds = scenario::fig3b(1).run().unwrap();
        let window = ds.span().unwrap();
        let vecs = behavior_vectors(&ds, &window);
        assert_eq!(vecs.len(), ds.machine_count());
    }

    #[test]
    fn clustering_separates_hot_and_cold() {
        let ds = scenario::fig3c(2).run().unwrap();
        let window = ds.span().unwrap();
        let vecs = behavior_vectors(&ds, &window);
        let clusters = cluster_behaviors(&vecs, 3, 50).unwrap();
        assert_eq!(clusters.centroids.len(), 3);
        let sizes = clusters.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), vecs.len());
        // The cluster with the highest mean-CPU centroid should be non-empty.
        let hottest = clusters
            .centroids
            .iter()
            .enumerate()
            .max_by(|a, b| a.1[0].partial_cmp(&b.1[0]).unwrap())
            .unwrap()
            .0;
        assert!(!clusters.members(hottest).is_empty());
    }

    #[test]
    fn clustering_is_deterministic() {
        let ds = scenario::fig3a(3).run().unwrap();
        let window = ds.span().unwrap();
        let vecs = behavior_vectors(&ds, &window);
        let a = cluster_behaviors(&vecs, 4, 30).unwrap();
        let b = cluster_behaviors(&vecs, 4, 30).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn too_few_points_returns_none() {
        let vecs = vec![BehaviorVector {
            machine: MachineId::new(0),
            cpu_mean: 0.1,
            cpu_std: 0.0,
            mem_mean: 0.1,
            disk_mean: 0.1,
            peak: 0.2,
            anomaly_rate: 0.0,
        }];
        assert!(cluster_behaviors(&vecs, 3, 10).is_none());
        assert!(cluster_behaviors(&vecs, 0, 10).is_none());
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let ds = scenario::fig3b(4).run().unwrap();
        let window = ds.span().unwrap();
        let vecs = behavior_vectors(&ds, &window);
        let (a, b) = (&vecs[0], &vecs[1]);
        assert!((a.distance_sq(b) - b.distance_sq(a)).abs() < 1e-12);
        assert_eq!(a.distance_sq(a), 0.0);
    }
}
