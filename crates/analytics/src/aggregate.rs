//! Series aggregation: per-job node series grouped by task (line-chart
//! views) and the cluster-wide timeline (the brushable overview).

use batchlens_trace::{
    JobId, MachineId, Metric, TaskId, TimeRange, TimeSeries, Timestamp, TraceDataset,
};
use serde::{Deserialize, Serialize};

/// One line in a per-job line chart: a node's metric series, tagged with the
/// task it serves so the detail view can color lines per task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLine {
    /// The machine whose utilization this line plots.
    pub machine: MachineId,
    /// The task the machine serves within the selected job.
    pub task: TaskId,
    /// Per-node job start time (green annotation line in the paper).
    pub start: Timestamp,
    /// Per-node job end time (colored annotation line, bundled per task).
    pub end: Timestamp,
    /// The metric series over the requested window.
    pub series: TimeSeries,
}

/// The data of the paper's Fig 2 view: all node lines of one job for one
/// metric, plus the annotation timestamps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetricLines {
    /// The selected job.
    pub job: JobId,
    /// The plotted metric.
    pub metric: Metric,
    /// One line per (machine, task) pair, ordered by task then machine.
    pub lines: Vec<NodeLine>,
}

impl JobMetricLines {
    /// Builds the line-chart data for `job`/`metric` over `window`.
    ///
    /// A machine serving two tasks of the job yields two entries (one per
    /// task) sharing the same series data, matching the paper's per-task
    /// line coloring.
    pub fn build(
        ds: &TraceDataset,
        job: JobId,
        metric: Metric,
        window: &TimeRange,
    ) -> Option<JobMetricLines> {
        let job_view = ds.job(job)?;
        let mut lines = Vec::new();
        for task in job_view.tasks() {
            // machine → (min start, max end) among this task's instances.
            let mut spans: std::collections::BTreeMap<MachineId, (Timestamp, Timestamp)> =
                std::collections::BTreeMap::new();
            for inst in task.instances() {
                let e = spans
                    .entry(inst.record.machine)
                    .or_insert((inst.record.start_time, inst.record.end_time));
                e.0 = e.0.min(inst.record.start_time);
                e.1 = e.1.max(inst.record.end_time);
            }
            for (machine, (start, end)) in spans {
                let Some(mv) = ds.machine(machine) else {
                    continue;
                };
                let Some(series) = mv.usage(metric) else {
                    continue;
                };
                lines.push(NodeLine {
                    machine,
                    task: task.id(),
                    start,
                    end,
                    series: series.slice(window),
                });
            }
        }
        Some(JobMetricLines { job, metric, lines })
    }

    /// The start annotations of all lines (the paper's green lines).
    pub fn start_annotations(&self) -> Vec<Timestamp> {
        self.lines.iter().map(|l| l.start).collect()
    }

    /// The end annotations grouped per task: `(task, end timestamps)`.
    pub fn end_annotations_by_task(&self) -> Vec<(TaskId, Vec<Timestamp>)> {
        let mut out: Vec<(TaskId, Vec<Timestamp>)> = Vec::new();
        for l in &self.lines {
            match out.iter_mut().find(|(t, _)| *t == l.task) {
                Some((_, v)) => v.push(l.end),
                None => out.push((l.task, vec![l.end])),
            }
        }
        out
    }

    /// Distinct tasks present, in first-seen order.
    pub fn tasks(&self) -> Vec<TaskId> {
        let mut out = Vec::new();
        for l in &self.lines {
            if !out.contains(&l.task) {
                out.push(l.task);
            }
        }
        out
    }
}

/// The cluster-wide aggregated timeline: one mean series per metric across
/// every machine — the data behind the brushable overview strip
/// ("a simple timeline is used to represent the metrics aggregated across
/// the entire cloud systems over time").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTimeline {
    /// Mean CPU utilization across machines over time.
    pub cpu: TimeSeries,
    /// Mean memory utilization across machines over time.
    pub mem: TimeSeries,
    /// Mean disk utilization across machines over time.
    pub disk: TimeSeries,
}

impl ClusterTimeline {
    /// Aggregates `ds` over its full span with the process-default worker
    /// count ([`batchlens_exec::default_threads`]).
    pub fn build(ds: &TraceDataset) -> ClusterTimeline {
        ClusterTimeline::build_with_threads(ds, 0)
    }

    /// Aggregates `ds` across `threads` workers (`0` = process default,
    /// `1` = serial fallback).
    ///
    /// The three per-metric sweeps run concurrently, and each sweep
    /// additionally splits its k-way merge by machine chunk with a final
    /// pairwise combine ([`TimeSeries::mean_of_par`]). The chunk/combine
    /// graph is a fixed function of the dataset, so the timeline is
    /// **bit-identical at every thread count**, including `threads = 1`.
    pub fn build_with_threads(ds: &TraceDataset, threads: usize) -> ClusterTimeline {
        let threads = batchlens_exec::resolve_threads(threads);
        let per_metric: Vec<Vec<&TimeSeries>> = Metric::ALL
            .iter()
            .map(|&metric| ds.machines().filter_map(|m| m.usage(metric)).collect())
            .collect();
        // Outer fan-out: one task per metric; the per-sweep budget is the
        // floor share of the knob so outer × inner never exceeds the
        // requested thread count.
        let inner = (threads / Metric::ALL.len()).max(1);
        let mut sweeps = batchlens_exec::run_indexed(threads.min(Metric::ALL.len()), 3, |k| {
            TimeSeries::mean_of_par(per_metric[k].iter().copied(), inner)
        });
        let disk = sweeps.pop().expect("three metrics");
        let mem = sweeps.pop().expect("three metrics");
        let cpu = sweeps.pop().expect("three metrics");
        ClusterTimeline { cpu, mem, disk }
    }

    /// The series for one metric.
    pub fn metric(&self, metric: Metric) -> &TimeSeries {
        match metric {
            Metric::Cpu => &self.cpu,
            Metric::Memory => &self.mem,
            Metric::Disk => &self.disk,
        }
    }

    /// Restricts all three series to `window`.
    #[must_use]
    pub fn slice(&self, window: &TimeRange) -> ClusterTimeline {
        ClusterTimeline {
            cpu: self.cpu.slice(window),
            mem: self.mem.slice(window),
            disk: self.disk.slice(window),
        }
    }
}

/// Count of running instances over time on a grid — the cluster's activity
/// pulse, useful for spotting the paper's mass-shutdown cliff.
///
/// A two-cursor sweep over the dataset's sorted start/end arrays: O(n + G)
/// for n instances and G grid points, instead of one full-table scan per
/// grid point.
pub fn running_instances_series(ds: &TraceDataset, step: batchlens_trace::TimeDelta) -> TimeSeries {
    let Some(span) = ds.span() else {
        return TimeSeries::new();
    };
    let starts = ds.instance_index().sorted_starts();
    let ends = ds.instance_index().sorted_ends();
    let mut out = TimeSeries::new();
    let (mut si, mut ei) = (0usize, 0usize);
    for t in span.steps(step) {
        while si < starts.len() && starts[si] <= t {
            si += 1;
        }
        while ei < ends.len() && ends[ei] <= t {
            ei += 1;
        }
        // Started minus ended; empty windows cancel out exactly as in
        // `BatchInstanceRecord::running_at`.
        out.push(t, (si - ei) as f64)
            .expect("strictly increasing grid");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;
    use batchlens_trace::TimeDelta;

    #[test]
    fn fig2_lines_cover_all_nodes() {
        let ds = scenario::fig2_sample(1).run().unwrap();
        let window = ds.span().unwrap();
        let lines = JobMetricLines::build(&ds, scenario::JOB_7399, Metric::Cpu, &window).unwrap();
        // 20 machines, each serving exactly one task.
        assert_eq!(lines.lines.len(), 20);
        assert_eq!(lines.tasks().len(), 2);
        // Start annotations bundle: all within the configured jitter.
        let starts = lines.start_annotations();
        let min = starts.iter().min().unwrap().seconds();
        let max = starts.iter().max().unwrap().seconds();
        assert!(max - min <= 10, "starts spread {}", max - min);
        // End annotations split into exactly two task clusters.
        let ends = lines.end_annotations_by_task();
        assert_eq!(ends.len(), 2);
        let mean = |v: &[Timestamp]| v.iter().map(|t| t.seconds()).sum::<i64>() / v.len() as i64;
        let gap = (mean(&ends[0].1) - mean(&ends[1].1)).abs();
        assert!(gap > 1000, "end clusters too close: {gap}");
    }

    #[test]
    fn missing_job_yields_none() {
        let ds = scenario::fig1_sample(2).run().unwrap();
        let window = ds.span().unwrap();
        assert!(JobMetricLines::build(&ds, JobId::new(999), Metric::Cpu, &window).is_none());
    }

    #[test]
    fn cluster_timeline_has_all_metrics() {
        let ds = scenario::fig1_sample(3).run().unwrap();
        let tl = ClusterTimeline::build(&ds);
        assert!(!tl.cpu.is_empty());
        assert!(!tl.mem.is_empty());
        assert!(!tl.disk.is_empty());
        // Slicing shrinks.
        let span = ds.span().unwrap();
        let half = TimeRange::new(
            span.start(),
            span.start() + TimeDelta::seconds(span.duration().as_seconds() / 2),
        )
        .unwrap();
        let sliced = tl.slice(&half);
        assert!(sliced.cpu.len() < tl.cpu.len());
        assert_eq!(tl.metric(Metric::Cpu), &tl.cpu);
    }

    #[test]
    fn running_instances_pulse() {
        let ds = scenario::fig1_sample(4).run().unwrap();
        let pulse = running_instances_series(&ds, TimeDelta::seconds(300));
        assert!(!pulse.is_empty());
        // The single job has 6 instances; the peak should reach 6.
        let max = pulse.stats().unwrap().max;
        assert!((max - 6.0).abs() < 1e-9, "max {max}");
    }
}
