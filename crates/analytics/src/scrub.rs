//! The delta snapshot engine: scrub [`HierarchySnapshot`] and
//! [`CoallocationIndex`] across timestamps by applying **structural deltas**
//! instead of rebuilding from scratch at every instant.
//!
//! Timeline scrubbing, dashboard renders and the live lens all revisit
//! consecutive timestamps whose running sets differ by a handful of
//! interval entries/exits. [`SnapshotScrubber`] holds the current grouped
//! running multiset *and the materialized products themselves*, and
//! advances everything by [`DatasetQuery::running_delta`]:
//!
//! * the grouped multiset and the per-machine job table update in
//!   O(Δ log k) for Δ changes against k running instances;
//! * the retained [`HierarchySnapshot`] is **patched**, not rebuilt — each
//!   delta triple becomes one ±1 node operation at its sorted position
//!   (the exact orderings the from-scratch builder produces), and only the
//!   machines whose sample-and-hold utilization window
//!   ([`DatasetQuery::util_hold`]) actually expired are re-resolved, driven
//!   by an expiry queue and written onto exactly their nodes;
//! * the retained [`CoallocationIndex`] is patched per delta-touched
//!   machine, links re-expanded once per batch.
//!
//! Per-step cost is therefore **O(Δ log k + E log s)** for E expired
//! utilization holds — versus the O(k log k + M log s)
//! stab-sort-group-resolve rebuild of [`HierarchySnapshot::at`] — while the
//! products stay **bit-identical** to the from-scratch builders at every
//! step: every construction route funnels through the same per-job /
//! per-machine derivation code, and the workspace
//! `snapshot_delta_differential` proptest suite enforces the identity on
//! both batch datasets and live windows.
//!
//! Consistency with mutable sources: every seek reads
//! [`DatasetQuery::state_version`] before *and after* computing the delta.
//! A changed version — a live monitor ingested or evicted in between —
//! makes the delta meaningless, so the scrubber **rebases**: it recaptures
//! the full state through one transactionally consistent
//! [`DatasetQuery::frame`] (a single lock acquisition on a live source) and
//! rebuilds the products from that frame. An idle monitor therefore serves
//! every subsequent frame by pure delta, for free.
//!
//! Rebase policy: besides version changes, the scrubber rebases every
//! [`SnapshotScrubber::rebase_every`] delta steps. The maintained
//! structural state is integer-counted (instance multiplicities), so it
//! accumulates no float drift by construction — utilization values are
//! always whole re-reads of sample-and-hold answers, never accumulated
//! across steps — and the periodic rebase bounds how long any hypothetical
//! divergence (or memo growth over departed machines) could survive.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use batchlens_trace::{
    DatasetQuery, JobId, MachineId, TaskId, Timestamp, UtilHold, UtilizationTriple,
};

use crate::coalloc::CoallocationIndex;
use crate::hierarchy::HierarchySnapshot;

/// Default [`SnapshotScrubber::rebase_every`]: frequent enough that a
/// defect could not persist across a scrubbing session, rare enough to be
/// invisible next to the per-step delta cost.
pub const DEFAULT_REBASE_EVERY: u32 = 1024;

/// Running-triple count below which a rebase stays serial: the fan-out
/// (scoped workers + channel) costs more than just grouping a few thousand
/// triples on the calling thread.
const PAR_REBASE_THRESHOLD: usize = 2048;

/// Target triples per counting shard on the parallel rebase path. Shard
/// boundaries are pushed forward to the next run boundary so every
/// `(job, task, machine)` run lands whole in exactly one shard.
const PAR_REBASE_CHUNK: usize = 8192;

/// One worker's product on the parallel rebase path (see
/// [`SnapshotScrubber::rebase`]): the two materialized views and the
/// grouped-run shards all ride one flat [`batchlens_exec::run_indexed`]
/// fan-out, so a single pool builds everything with no nested spawning.
enum RebaseProduct {
    Snapshot(HierarchySnapshot),
    Coalloc(CoallocationIndex),
    Runs(Vec<((JobId, TaskId, MachineId), u32)>),
}

/// Counters describing how the scrubber has been advancing — observability
/// for the delta engine (and its tests/benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Seeks answered by applying a delta.
    pub delta_steps: u64,
    /// Full recaptures ([`DatasetQuery::frame`]): first seek, version
    /// changes, the periodic policy, or defensive repair.
    pub rebases: u64,
    /// Triples applied on the enter side across all delta steps.
    pub entered: u64,
    /// Triples applied on the exit side across all delta steps.
    pub exited: u64,
    /// Node-level ±1 operations applied by the snapshot patch path.
    pub nodes_patched: u64,
    /// Utilization holds that expired and were re-resolved against the
    /// source.
    pub util_refreshes: u64,
    /// Machines whose liveness flipped across all delta steps (the size of
    /// the applied [`batchlens_trace::LivenessDelta`]s).
    pub liveness_flips: u64,
}

/// The expiry queue: `(until, machine)` min-heap with **lazy deletion** —
/// an entry is live only while the memo still records that exact `until`
/// for the machine; superseded and dropped entries are skipped on pop.
/// Keeps hold replacement O(log) pushes with no tree removals on the
/// per-refresh hot path.
type ExpiryHeap = BinaryHeap<Reverse<(Timestamp, MachineId)>>;

/// Replaces machine `m`'s utilization hold, queuing its expiry; returns
/// the previous hold, if any.
fn put_hold(
    memo: &mut HashMap<MachineId, UtilHold>,
    expiry: &mut ExpiryHeap,
    machine: MachineId,
    hold: UtilHold,
) -> Option<UtilHold> {
    if let Some(until) = hold.until {
        expiry.push(Reverse((until, machine)));
    }
    memo.insert(machine, hold)
}

/// Re-resolves every hold no longer valid at `at` and returns the machines
/// whose *value* changed (the only nodes worth patching). Forward
/// materializations drain the expiry queue — O(E log M) for E expirations;
/// backward ones scan the memo (backward hops re-enter past sample cells,
/// which the queue does not index). Holds for machines with no running
/// instance are dropped instead of refreshed — no node references them, and
/// the memo stays bounded by the machines the snapshot actually shows.
fn refresh_holds<Q: DatasetQuery + ?Sized>(
    src: &Q,
    at: Timestamp,
    prev: Timestamp,
    memo: &mut HashMap<MachineId, UtilHold>,
    expiry: &mut ExpiryHeap,
    running_machines: &HashMap<MachineId, u32>,
    stats: &mut ScrubStats,
) -> HashMap<MachineId, Option<UtilizationTriple>> {
    let mut changed = HashMap::new();
    let mut refresh =
        |machine: MachineId, memo: &mut HashMap<MachineId, UtilHold>, expiry: &mut ExpiryHeap| {
            if !running_machines.contains_key(&machine) {
                memo.remove(&machine); // stale heap entries skip lazily
                return;
            }
            let hold = src.util_hold(machine, at);
            stats.util_refreshes += 1;
            let old = put_hold(memo, expiry, machine, hold);
            if old.map(|h| h.util) != Some(hold.util) {
                changed.insert(machine, hold.util);
            }
        };
    if at >= prev {
        while let Some(&Reverse((until, machine))) = expiry.peek() {
            if until > at {
                break;
            }
            expiry.pop();
            // Lazy deletion: only the entry matching the memo's current
            // window is live; superseded/dropped ones are skipped.
            if memo.get(&machine).is_some_and(|h| h.until == Some(until)) {
                refresh(machine, memo, expiry);
            }
        }
    } else {
        let stale: Vec<MachineId> = memo
            .iter()
            .filter(|(_, hold)| !hold.holds_at(at))
            .map(|(&m, _)| m)
            .collect();
        for machine in stale {
            refresh(machine, memo, expiry);
        }
    }
    changed
}

/// Applies one *entered* triple to the materialized snapshot: +1 on its
/// node, inserting job/task/node entries at their sorted positions (the
/// exact orderings the from-scratch builder produces). New nodes read their
/// utilization through `util_of`.
fn apply_enter(
    snap: &mut HierarchySnapshot,
    job: JobId,
    task: TaskId,
    machine: MachineId,
    util_of: impl FnOnce() -> Option<UtilizationTriple>,
) {
    use crate::hierarchy::{JobEntry, NodeEntry, TaskEntry};
    let j = match snap.jobs.binary_search_by_key(&job, |e| e.job) {
        Ok(j) => j,
        Err(j) => {
            snap.jobs.insert(j, JobEntry::empty(job));
            j
        }
    };
    let entry = &mut snap.jobs[j];
    let t = match entry.tasks.binary_search_by_key(&task, |e| e.task) {
        Ok(t) => t,
        Err(t) => {
            entry.tasks.insert(
                t,
                TaskEntry {
                    task,
                    nodes: Vec::new(),
                },
            );
            t
        }
    };
    let nodes = &mut entry.tasks[t].nodes;
    match nodes.binary_search_by_key(&machine, |n| n.machine) {
        Ok(n) => nodes[n].instances += 1,
        Err(n) => nodes.insert(
            n,
            NodeEntry {
                machine,
                instances: 1,
                util: util_of(),
            },
        ),
    }
    entry.insert_machine(machine);
}

/// Applies one *exited* triple: −1 on its node, removing emptied node/task/
/// job entries. `still_on_job` is whether the job still runs anything on
/// the machine **after the whole pending batch** (the maintained
/// machine→jobs table), deciding the precomputed machine list. Returns
/// `false` when the node was never there (divergence; caller rebases).
fn apply_exit(
    snap: &mut HierarchySnapshot,
    job: JobId,
    task: TaskId,
    machine: MachineId,
    still_on_job: bool,
) -> bool {
    let Ok(j) = snap.jobs.binary_search_by_key(&job, |e| e.job) else {
        return false;
    };
    let entry = &mut snap.jobs[j];
    let Ok(t) = entry.tasks.binary_search_by_key(&task, |e| e.task) else {
        return false;
    };
    let nodes = &mut entry.tasks[t].nodes;
    let Ok(n) = nodes.binary_search_by_key(&machine, |n| n.machine) else {
        return false;
    };
    if nodes[n].instances > 1 {
        nodes[n].instances -= 1;
    } else {
        nodes.remove(n);
        if nodes.is_empty() {
            entry.tasks.remove(t);
        }
    }
    if !still_on_job {
        entry.remove_machine(machine);
    }
    if entry.tasks.is_empty() {
        snap.jobs.remove(j);
    }
    true
}

/// Delta-maintained scrubbing cursor over a [`DatasetQuery`] source.
///
/// The scrubber owns no source reference — every call takes `src` — but its
/// state is only meaningful against **one logical source**: seeking it
/// against a different dataset/monitor without an intervening
/// [`SnapshotScrubber::reset`] mixes states (version tracking catches
/// mutable sources, not source swaps).
///
/// ```
/// use batchlens_analytics::hierarchy::HierarchySnapshot;
/// use batchlens_analytics::scrub::SnapshotScrubber;
/// use batchlens_sim::scenario;
/// use batchlens_trace::{TimeDelta, Timestamp};
///
/// let ds = scenario::fig3b(7).run().unwrap();
/// let mut scrub = SnapshotScrubber::new();
/// let mut t = ds.span().unwrap().start();
/// for _ in 0..16 {
///     scrub.seek(&ds, t);
///     assert_eq!(*scrub.snapshot(&ds), HierarchySnapshot::at(&ds, t));
///     t += TimeDelta::minutes(5);
/// }
/// assert!(scrub.stats().delta_steps >= 15);
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotScrubber {
    /// Cursor position; `None` until the first seek.
    at: Option<Timestamp>,
    /// Source state version the maintained state reflects.
    version: u64,
    /// Running `(job, task, machine)` → instance count at `at` — the
    /// delta-maintained core, integer-counted (no float accumulation).
    grouped: BTreeMap<(JobId, TaskId, MachineId), u32>,
    /// `(machine, job)` → instance count — the co-allocation side of the
    /// same multiset, maintained by the same deltas.
    machine_jobs: BTreeMap<(MachineId, JobId), u32>,
    /// machine → running instance count — O(1) membership for the hold
    /// refresh scope, maintained by the same deltas.
    running_machines: HashMap<MachineId, u32>,
    /// The machines active (alive) at `at`, ascending — maintained by
    /// [`DatasetQuery::liveness_delta`] patches on delta steps, recaptured
    /// from the frame on rebase. The delta-maintained
    /// [`DatasetQuery::machines_active_at`].
    active: Vec<MachineId>,
    /// Sample-and-hold utilization holds (see [`DatasetQuery::util_hold`]),
    /// scoped to the machines the snapshot currently shows.
    util_memo: HashMap<MachineId, UtilHold>,
    /// `(until, machine)` lazy-deletion min-heap over the finite hold
    /// windows, so a forward materialization touches only the holds that
    /// actually expired.
    expiry: ExpiryHeap,
    /// Delta ops not yet applied to the materialized snapshot: `(entered,
    /// triple)`, in application order.
    pending: Vec<(bool, (JobId, TaskId, MachineId))>,
    /// Machines whose job sets changed since the coalloc was last patched.
    dirty_machines: BTreeSet<MachineId>,
    /// Delta steps since the last rebase, against `rebase_every`.
    steps_since_rebase: u32,
    /// Periodic-rebase period; `0` disables the periodic policy (version
    /// changes still rebase).
    rebase_every: u32,
    /// The patch-maintained products (always `Some` once sought).
    snapshot: Option<HierarchySnapshot>,
    coalloc: Option<CoallocationIndex>,
    stats: ScrubStats,
}

/// `Default` is [`SnapshotScrubber::new`]: hand-written (not derived) so a
/// default-constructed scrubber — e.g. one living inside a larger derived-
/// `Default` cache — carries the real [`DEFAULT_REBASE_EVERY`] policy, not
/// a zeroed "never rebase periodically".
impl Default for SnapshotScrubber {
    fn default() -> Self {
        SnapshotScrubber::new()
    }
}

impl SnapshotScrubber {
    /// A scrubber with the default rebase period
    /// ([`DEFAULT_REBASE_EVERY`]).
    pub fn new() -> SnapshotScrubber {
        SnapshotScrubber::with_rebase_every(DEFAULT_REBASE_EVERY)
    }

    /// A scrubber rebasing every `rebase_every` delta steps (`0` = only on
    /// version changes).
    pub fn with_rebase_every(rebase_every: u32) -> SnapshotScrubber {
        SnapshotScrubber {
            at: None,
            version: 0,
            grouped: BTreeMap::new(),
            machine_jobs: BTreeMap::new(),
            running_machines: HashMap::new(),
            active: Vec::new(),
            util_memo: HashMap::new(),
            expiry: ExpiryHeap::new(),
            pending: Vec::new(),
            dirty_machines: BTreeSet::new(),
            steps_since_rebase: 0,
            rebase_every,
            snapshot: None,
            coalloc: None,
            stats: ScrubStats::default(),
        }
    }

    /// The cursor position, once something has been sought.
    pub fn at(&self) -> Option<Timestamp> {
        self.at
    }

    /// The source state version the maintained state reflects.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The configured periodic-rebase period.
    pub fn rebase_every(&self) -> u32 {
        self.rebase_every
    }

    /// How many instances the maintained running multiset currently holds.
    pub fn running_instance_count(&self) -> usize {
        self.grouped.values().map(|&n| n as usize).sum()
    }

    /// The machines active at the cursor, ascending — the delta-maintained
    /// [`DatasetQuery::machines_active_at`]: patched one sorted-position
    /// insert/remove per liveness flip ([`DatasetQuery::liveness_delta`])
    /// on delta steps, recaptured whole from the frame on rebase.
    /// Bit-identical to `machines_active_at` at every step (the workspace
    /// `snapshot_delta_differential` suite enforces it on batch and live
    /// sources alike).
    ///
    /// # Panics
    ///
    /// If nothing has been sought yet.
    pub fn machines_active(&self) -> &[MachineId] {
        assert!(self.at.is_some(), "seek the scrubber before reading it");
        &self.active
    }

    /// The advancement counters.
    pub fn stats(&self) -> ScrubStats {
        self.stats
    }

    /// Forgets everything: the next seek rebases. Call when retargeting the
    /// scrubber at a different logical source.
    pub fn reset(&mut self) {
        *self = SnapshotScrubber::with_rebase_every(self.rebase_every);
    }

    /// Moves the cursor to `to` — **O(Δ log k)** state maintenance when the
    /// source is unchanged (Δ = triples entering/exiting across the hop,
    /// k = running instances), a full O(k log k + M log s) frame recapture
    /// when it must rebase (first seek, source version change, every
    /// [`SnapshotScrubber::rebase_every`] steps). Forward hops, backward
    /// hops and repeats are all fine; a repeat of the current instant under
    /// an unchanged version is a no-op.
    pub fn seek<Q: DatasetQuery + ?Sized>(&mut self, src: &Q, to: Timestamp) {
        let Some(from) = self.at else {
            self.rebase(src, to);
            return;
        };
        let version_before = src.state_version();
        if version_before != self.version {
            self.rebase(src, to);
            return;
        }
        if to == from {
            return; // same state, same instant: everything stays valid
        }
        if self.rebase_every > 0 && self.steps_since_rebase >= self.rebase_every {
            self.rebase(src, to);
            return;
        }
        let delta = src.running_delta(from, to);
        let liveness = src.liveness_delta(from, to);
        if src.state_version() != version_before {
            // The source mutated mid-computation: the deltas mix two
            // states, so recapture atomically instead.
            self.rebase(src, to);
            return;
        }
        for &(job, task, machine) in &delta.entered {
            *self.grouped.entry((job, task, machine)).or_default() += 1;
            *self.machine_jobs.entry((machine, job)).or_default() += 1;
            *self.running_machines.entry(machine).or_default() += 1;
            self.pending.push((true, (job, task, machine)));
            self.dirty_machines.insert(machine);
        }
        for &(job, task, machine) in &delta.exited {
            let consistent = decrement(&mut self.grouped, (job, task, machine))
                && decrement(&mut self.machine_jobs, (machine, job))
                && decrement_hash(&mut self.running_machines, machine);
            if !consistent {
                // An exit the multiset never saw: states diverged (cannot
                // happen through the version guard; defensive).
                self.rebase(src, to);
                return;
            }
            self.pending.push((false, (job, task, machine)));
            self.dirty_machines.insert(machine);
        }
        // Patch the active set: each flipped machine is one sorted-position
        // insert/remove. A flip the set cannot absorb means divergence
        // (impossible through the version guard; defensive rebase).
        for &machine in &liveness.activated {
            match self.active.binary_search(&machine) {
                Err(i) => self.active.insert(i, machine),
                Ok(_) => {
                    self.rebase(src, to);
                    return;
                }
            }
        }
        for &machine in &liveness.deactivated {
            match self.active.binary_search(&machine) {
                Ok(i) => {
                    self.active.remove(i);
                }
                Err(_) => {
                    self.rebase(src, to);
                    return;
                }
            }
        }
        self.stats.liveness_flips += (liveness.activated.len() + liveness.deactivated.len()) as u64;
        self.stats.delta_steps += 1;
        self.stats.entered += delta.entered.len() as u64;
        self.stats.exited += delta.exited.len() as u64;
        self.steps_since_rebase += 1;
        self.at = Some(to);
        // A consumer that only ever reads coalloc() defers snapshot patches
        // indefinitely; once replaying the queue would cost more than a
        // recapture, drop the retained snapshot (the next snapshot() call
        // rebases) instead of letting the queue grow without bound.
        if self.pending.len() > (4 * self.grouped.len()).max(1024) {
            self.snapshot = None;
            self.pending.clear();
        }
    }

    /// Recaptures the full state at `to` through one transactionally
    /// consistent [`DatasetQuery::frame`] (a single lock acquisition on a
    /// live source) and rebuilds both products from it. Utilization holds
    /// are re-queued as point-valid at `to`; the first forward
    /// materialization past it re-resolves them through their real
    /// inter-sample windows.
    ///
    /// Above [`PAR_REBASE_THRESHOLD`] running triples the rebuild is
    /// sharded across the exec pool in **one flat fan-out**: the snapshot
    /// build, the coalloc build and run-aligned grouped-counting shards all
    /// run as siblings ([`RebaseProduct`]), then merge on the calling
    /// thread in shard order. Shard boundaries sit on run boundaries, so
    /// every `(job, task, machine)` count lands whole in one shard and the
    /// merged maps are byte-for-byte the serial ones.
    fn rebase<Q: DatasetQuery + ?Sized>(&mut self, src: &Q, to: Timestamp) {
        let frame = src.frame(to);
        self.grouped.clear();
        self.machine_jobs.clear();
        self.running_machines.clear();
        let triples = frame.running_triples();
        if triples.len() >= PAR_REBASE_THRESHOLD {
            // Shard bounds: fixed stride, pushed forward to the next run
            // boundary so no run straddles two shards.
            let mut bounds = vec![0usize];
            loop {
                let prev = *bounds.last().expect("bounds starts non-empty");
                if prev >= triples.len() {
                    break;
                }
                let mut b = (prev + PAR_REBASE_CHUNK).min(triples.len());
                while b < triples.len() && triples[b] == triples[b - 1] {
                    b += 1;
                }
                bounds.push(b);
            }
            let shards = bounds.len() - 1;
            let products = batchlens_exec::run_indexed(0, shards + 2, |i| match i {
                0 => RebaseProduct::Snapshot(HierarchySnapshot::from_frame(&frame)),
                1 => RebaseProduct::Coalloc(CoallocationIndex::from_frame(&frame)),
                i => RebaseProduct::Runs(
                    crate::hierarchy::count_runs(&triples[bounds[i - 2]..bounds[i - 1]]).collect(),
                ),
            });
            for product in products {
                match product {
                    RebaseProduct::Snapshot(snap) => self.snapshot = Some(snap),
                    RebaseProduct::Coalloc(coalloc) => self.coalloc = Some(coalloc),
                    // Shards arrive in index order and are run-disjoint, so
                    // inserts never collide and additions commute.
                    RebaseProduct::Runs(runs) => {
                        for (key, n) in runs {
                            let (job, _, machine) = key;
                            self.grouped.insert(key, n);
                            *self.machine_jobs.entry((machine, job)).or_default() += n;
                            *self.running_machines.entry(machine).or_default() += n;
                        }
                    }
                }
            }
        } else {
            for (key, n) in crate::hierarchy::count_runs(triples) {
                let (job, _, machine) = key;
                self.grouped.insert(key, n);
                *self.machine_jobs.entry((machine, job)).or_default() += n;
                *self.running_machines.entry(machine).or_default() += n;
            }
            self.snapshot = Some(HierarchySnapshot::from_frame(&frame));
            self.coalloc = Some(CoallocationIndex::from_frame(&frame));
        }
        self.active = frame.machines_active();
        self.util_memo.clear();
        self.expiry.clear();
        // Seed holds only for the machines the snapshot shows (the memo's
        // scope); they are point-valid at `to` — the first materialization
        // past it re-resolves them into real inter-sample windows.
        let mut last = None;
        for &(machine, _) in self.machine_jobs.keys() {
            if last == Some(machine) {
                continue;
            }
            last = Some(machine);
            put_hold(
                &mut self.util_memo,
                &mut self.expiry,
                machine,
                UtilHold {
                    util: frame.util_of(machine),
                    since: Some(to),
                    until: Some(Timestamp::new(to.seconds().saturating_add(1))),
                },
            );
        }
        self.version = frame.version();
        self.at = Some(to);
        self.steps_since_rebase = 0;
        self.pending.clear();
        self.dirty_machines.clear();
        self.stats.rebases += 1;
    }

    /// The hierarchy snapshot at the cursor — **patched**, not rebuilt:
    /// expired utilization holds are re-resolved (expiry-queue driven) and
    /// written onto exactly the nodes of the affected machines, and the
    /// pending delta is applied as ±1 node operations (insert/remove/count
    /// in sorted position, through the same orderings the from-scratch
    /// builder produces). Everything untouched stays untouched.
    /// Bit-identical to [`HierarchySnapshot::at`] at every step.
    ///
    /// # Panics
    ///
    /// If nothing has been sought yet.
    pub fn snapshot<Q: DatasetQuery + ?Sized>(&mut self, src: &Q) -> &HierarchySnapshot {
        let at = self.at.expect("seek the scrubber before reading it");
        if self.snapshot.is_none() {
            // Dropped by the pending-queue cap: recapture instead of
            // replaying a queue that outgrew the state it patches.
            self.rebase(src, at);
        }
        {
            let memo = &mut self.util_memo;
            let expiry = &mut self.expiry;
            let stats = &mut self.stats;
            let machine_jobs = &self.machine_jobs;
            let running_machines = &self.running_machines;
            let snap = self
                .snapshot
                .as_mut()
                .expect("every seek path materializes a snapshot");
            let changed = refresh_holds(src, at, snap.at, memo, expiry, running_machines, stats);
            // Structural patch: each pending op is one node's ±1. New nodes
            // read their utilization from the (just refreshed) holds.
            let mut consistent = true;
            for &(entered, (job, task, machine)) in &self.pending {
                if entered {
                    apply_enter(snap, job, task, machine, || match memo.get(&machine) {
                        Some(hold) if hold.holds_at(at) => hold.util,
                        _ => {
                            let hold = src.util_hold(machine, at);
                            stats.util_refreshes += 1;
                            put_hold(memo, expiry, machine, hold);
                            hold.util
                        }
                    });
                } else {
                    let still_on_job = machine_jobs.contains_key(&(machine, job));
                    if !apply_exit(snap, job, task, machine, still_on_job) {
                        consistent = false;
                        break;
                    }
                }
                stats.nodes_patched += 1;
            }
            if !consistent {
                // A patch targeting a node the snapshot never had: states
                // diverged (cannot happen through the version guard;
                // defensive). Recapture below.
                self.pending.clear();
                self.snapshot = None;
            } else {
                self.pending.clear();
                // Utilization patch: only the nodes of machines whose hold
                // value actually changed, located through the machine→jobs
                // table instead of a full node scan.
                for (&machine, &util) in &changed {
                    for (&(_, job), _) in self
                        .machine_jobs
                        .range((machine, JobId::new(0))..=(machine, JobId::new(u32::MAX)))
                    {
                        if let Ok(j) = snap.jobs.binary_search_by_key(&job, |e| e.job) {
                            for task in &mut snap.jobs[j].tasks {
                                if let Ok(n) =
                                    task.nodes.binary_search_by_key(&machine, |n| n.machine)
                                {
                                    task.nodes[n].util = util;
                                }
                            }
                        }
                    }
                }
                snap.at = at;
            }
        }
        // The hold re-resolutions above read the source outside the seek's
        // version guard: a live monitor that ingested mid-materialization
        // would leave structure at the sought version but utilization at a
        // newer one. Re-checking here and recapturing atomically keeps
        // every returned snapshot a single-version product, as the cache
        // keys downstream assume.
        if self.snapshot.is_none() || src.state_version() != self.version {
            self.rebase(src, at);
        }
        self.snapshot.as_ref().expect("rebase materializes")
    }

    /// The co-allocation index at the cursor — patched per delta-touched
    /// machine (links re-expanded once per batch), same derivation as
    /// [`CoallocationIndex::at`], purely structural.
    ///
    /// # Panics
    ///
    /// If nothing has been sought yet.
    pub fn coalloc(&mut self) -> &CoallocationIndex {
        assert!(self.at.is_some(), "seek the scrubber before reading it");
        let coalloc = self
            .coalloc
            .as_mut()
            .expect("every seek path materializes a coalloc index");
        let dirty = std::mem::take(&mut self.dirty_machines);
        let last = dirty.len();
        for (i, machine) in dirty.into_iter().enumerate() {
            let jobs: Vec<JobId> = self
                .machine_jobs
                .range((machine, JobId::new(0))..=(machine, JobId::new(u32::MAX)))
                .map(|(&(_, job), _)| job)
                .collect();
            coalloc.put_machine(machine, jobs, i + 1 == last);
        }
        coalloc
    }
}

/// Decrements `key`'s count in a counted hash multiset, removing it at
/// zero; `false` when the key was absent.
fn decrement_hash<K: std::hash::Hash + Eq>(map: &mut HashMap<K, u32>, key: K) -> bool {
    match map.get_mut(&key) {
        Some(n) if *n > 1 => {
            *n -= 1;
            true
        }
        Some(_) => {
            map.remove(&key);
            true
        }
        None => false,
    }
}

/// Decrements `key`'s count in a counted multiset, removing it at zero;
/// `false` when the key was absent (caller treats as divergence).
fn decrement<K: Ord>(map: &mut BTreeMap<K, u32>, key: K) -> bool {
    match map.get_mut(&key) {
        Some(n) if *n > 1 => {
            *n -= 1;
            true
        }
        Some(_) => {
            map.remove(&key);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::{
        BatchInstanceRecord, BatchTaskRecord, MachineEvent, MachineEventRecord, ServerUsageRecord,
        TaskStatus, TimeDelta, TraceDataset, TraceDatasetBuilder,
    };

    fn dataset() -> TraceDataset {
        let mut b = TraceDatasetBuilder::new();
        for (job, task) in [(1u32, 1u32), (1, 2), (2, 1), (3, 1)] {
            b.push_task(BatchTaskRecord {
                create_time: Timestamp::new(0),
                modify_time: Timestamp::new(3000),
                job: JobId::new(job),
                task: TaskId::new(task),
                instance_count: 3,
                status: TaskStatus::Terminated,
                plan_cpu: 1.0,
                plan_mem: 0.5,
            });
        }
        for (i, (job, task, machine, s, e)) in [
            (1u32, 1u32, 0u32, 0i64, 900i64),
            (1, 1, 1, 100, 500),
            (1, 2, 0, 200, 1400),
            (2, 1, 1, 300, 1200),
            (2, 1, 2, 0, 2000),
            (3, 1, 2, 700, 701), // unit blip
            (3, 1, 3, 650, 650), // empty
        ]
        .into_iter()
        .enumerate()
        {
            b.push_instance(BatchInstanceRecord {
                start_time: Timestamp::new(s),
                end_time: Timestamp::new(e),
                job: JobId::new(job),
                task: TaskId::new(task),
                seq: i as u32,
                total: 7,
                machine: MachineId::new(machine),
                status: TaskStatus::Terminated,
                cpu_avg: 0.2,
                cpu_max: 0.4,
                mem_avg: 0.2,
                mem_max: 0.4,
            });
        }
        for t in (0..2000).step_by(300) {
            for m in [0u32, 1, 2] {
                b.push_usage(ServerUsageRecord {
                    time: Timestamp::new(t),
                    machine: MachineId::new(m),
                    util: UtilizationTriple::clamped(
                        0.2 + 0.1 * m as f64,
                        0.3,
                        (t as f64 / 4000.0).min(1.0),
                    ),
                });
            }
        }
        // Lifecycle flips so the walk exercises the liveness delta: machine
        // 1 dies mid-trace, machine 2 bounces (dies and comes back).
        for (t, m, ev) in [
            (800i64, 1u32, MachineEvent::Remove),
            (400, 2, MachineEvent::SoftError),
            (600, 2, MachineEvent::Remove),
            (1300, 2, MachineEvent::Add),
        ] {
            b.push_machine_event(MachineEventRecord {
                time: Timestamp::new(t),
                machine: MachineId::new(m),
                event: ev,
                capacity_cpu: 1.0,
                capacity_mem: 1.0,
                capacity_disk: 1.0,
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn scrubbed_equals_from_scratch_on_a_walk() {
        let ds = dataset();
        let mut scrub = SnapshotScrubber::new();
        // Forward, backward, repeats, far jumps.
        let walk: Vec<i64> = vec![
            0, 150, 300, 300, 450, 250, 900, 899, 901, 1400, 700, 700, 2500, -100, 650, 701,
        ];
        for &t in &walk {
            let t = Timestamp::new(t);
            scrub.seek(&ds, t);
            assert_eq!(*scrub.snapshot(&ds), HierarchySnapshot::at(&ds, t), "{t}");
            assert_eq!(*scrub.coalloc(), CoallocationIndex::at(&ds, t), "{t}");
            assert_eq!(
                scrub.running_instance_count(),
                batchlens_trace::DatasetQuery::running_instance_count_at(&ds, t),
                "{t}"
            );
            assert_eq!(
                scrub.machines_active(),
                &ds.machines_active_at(t)[..],
                "delta-maintained active set diverged at {t}"
            );
        }
        let stats = scrub.stats();
        assert!(
            stats.liveness_flips > 0,
            "the walk crosses lifecycle events, so flips must be applied"
        );
        assert_eq!(stats.rebases, 1, "immutable source: only the first seek");
        assert_eq!(
            stats.delta_steps as usize,
            walk.len() - 1 - 2,
            "repeats are no-ops"
        );
        assert_eq!(
            stats.nodes_patched,
            stats.entered + stats.exited,
            "every delta triple is exactly one node patch"
        );
    }

    #[test]
    fn sharded_rebase_matches_serial_products() {
        // Enough concurrent instances to cross PAR_REBASE_THRESHOLD, so the
        // first seek recaptures through the flat fan-out; the products must
        // be bit-identical to the from-scratch builders, and delta steps on
        // top of the sharded state must stay consistent.
        let mut b = TraceDatasetBuilder::new();
        for job in 1..=64u32 {
            for task in 1..=2u32 {
                b.push_task(BatchTaskRecord {
                    create_time: Timestamp::new(0),
                    modify_time: Timestamp::new(3000),
                    job: JobId::new(job),
                    task: TaskId::new(task),
                    instance_count: 24,
                    status: TaskStatus::Terminated,
                    plan_cpu: 1.0,
                    plan_mem: 0.5,
                });
                for seq in 0..24u32 {
                    b.push_instance(BatchInstanceRecord {
                        start_time: Timestamp::new(0),
                        end_time: Timestamp::new(2000),
                        job: JobId::new(job),
                        task: TaskId::new(task),
                        seq,
                        total: 24,
                        machine: MachineId::new((job * 53 + task * 17 + seq) % 128),
                        status: TaskStatus::Terminated,
                        cpu_avg: 0.2,
                        cpu_max: 0.4,
                        mem_avg: 0.2,
                        mem_max: 0.4,
                    });
                }
            }
        }
        for m in 0..128u32 {
            b.push_usage(ServerUsageRecord {
                time: Timestamp::new(0),
                machine: MachineId::new(m),
                util: UtilizationTriple::clamped(0.25 + (m % 4) as f64 / 10.0, 0.3, 0.1),
            });
        }
        let ds = b.build().unwrap();
        let t = Timestamp::new(500);
        assert!(
            DatasetQuery::running_instance_count_at(&ds, t) >= PAR_REBASE_THRESHOLD,
            "dataset too small to exercise the sharded path"
        );
        let mut scrub = SnapshotScrubber::new();
        scrub.seek(&ds, t);
        assert_eq!(scrub.stats().rebases, 1);
        assert_eq!(*scrub.snapshot(&ds), HierarchySnapshot::at(&ds, t));
        assert_eq!(*scrub.coalloc(), CoallocationIndex::at(&ds, t));
        assert_eq!(scrub.running_instance_count(), 64 * 2 * 24);
        // A delta step off the sharded base: everything ends, so the state
        // must drain to empty exactly as the serial builders say. (The
        // 3072-exit drain exceeds the pending-queue cap, so the retained
        // snapshot is allowed to recapture — identity is what matters.)
        let later = Timestamp::new(2500);
        scrub.seek(&ds, later);
        assert_eq!(*scrub.snapshot(&ds), HierarchySnapshot::at(&ds, later));
        assert_eq!(*scrub.coalloc(), CoallocationIndex::at(&ds, later));
        assert_eq!(scrub.running_instance_count(), 0);
    }

    #[test]
    fn periodic_rebase_policy_fires() {
        let ds = dataset();
        let mut scrub = SnapshotScrubber::with_rebase_every(4);
        let mut t = Timestamp::new(0);
        for _ in 0..14 {
            scrub.seek(&ds, t);
            assert_eq!(*scrub.snapshot(&ds), HierarchySnapshot::at(&ds, t));
            t += TimeDelta::seconds(100);
        }
        // 1 initial rebase + one each time 4 delta steps have accumulated
        // (seeks 6 and 11 of the 14).
        assert_eq!(scrub.stats().rebases, 3);
        assert!(scrub.rebase_every() == 4);
    }

    #[test]
    fn quiet_steps_refresh_nothing() {
        // Hops inside one sample cell with no structural change must not
        // re-resolve any utilization holds (the expiry queue's point).
        let ds = dataset();
        let mut scrub = SnapshotScrubber::new();
        // Warm up: the rebase seeds point-valid holds, so the first delta
        // materialization re-resolves them into real inter-sample windows.
        for t in [310i64, 320] {
            scrub.seek(&ds, Timestamp::new(t));
            let _ = scrub.snapshot(&ds);
        }
        let after_warmup = scrub.stats().util_refreshes;
        for t in [330i64, 340, 350, 360] {
            scrub.seek(&ds, Timestamp::new(t));
            assert_eq!(
                *scrub.snapshot(&ds),
                HierarchySnapshot::at(&ds, Timestamp::new(t))
            );
        }
        assert_eq!(
            scrub.stats().util_refreshes,
            after_warmup,
            "no sample boundary crossed, no hold re-resolved"
        );
    }

    #[test]
    fn reset_forces_recapture() {
        let ds = dataset();
        let mut scrub = SnapshotScrubber::new();
        scrub.seek(&ds, Timestamp::new(300));
        assert!(scrub.at().is_some());
        scrub.reset();
        assert!(scrub.at().is_none());
        scrub.seek(&ds, Timestamp::new(400));
        assert_eq!(scrub.stats().rebases, 1, "stats reset too");
        assert_eq!(
            *scrub.snapshot(&ds),
            HierarchySnapshot::at(&ds, Timestamp::new(400))
        );
    }

    #[test]
    #[should_panic(expected = "seek the scrubber")]
    fn reading_before_seeking_panics() {
        let ds = dataset();
        let mut scrub = SnapshotScrubber::new();
        let _ = scrub.snapshot(&ds);
    }
}
