//! Root-cause analysis: turning detector output plus hierarchy and
//! co-allocation context into per-job diagnoses.
//!
//! This is the programmatic counterpart of the paper's Section IV narrative:
//! given a snapshot timestamp, the analyzer reproduces conclusions like
//! "the machines running Job job_7901 experience intensive workload during
//! the execution time" or "the compute node is suffering thrashing while
//! the virtual memory is overused".
//!
//! All three member detectors (spike, thrashing, saturation) run on the
//! incremental kernels from [`crate::detect`], so a diagnosis here agrees
//! sample-for-sample with what the online `StreamMonitor` alerts on.

use batchlens_trace::{JobId, MachineId, Metric, TimeRange, Timestamp, TraceDataset};
use serde::{Deserialize, Serialize};

use crate::coalloc::CoallocationIndex;
use crate::detect::{AnomalySpan, Detector, SpikeDetector, ThrashingDetector, ThresholdDetector};
use crate::hierarchy::HierarchySnapshot;

/// The analyzer's verdict for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Verdict {
    /// Metrics stable over the execution window — the Fig 3(a) pattern.
    Healthy,
    /// End-of-job spike on its machines — the Fig 3(b) `job_7901` pattern.
    EndSpike,
    /// Thrashing on its machines — the Fig 3(c) `job_11939` pattern.
    Thrashing,
    /// Sustained saturation without a clearer signature.
    Overloaded,
}

/// Diagnosis of one job at the snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The job.
    pub job: JobId,
    /// The verdict.
    pub verdict: Verdict,
    /// Machines exhibiting the anomalous pattern.
    pub affected_machines: Vec<MachineId>,
    /// Supporting detector spans (on the affected machines).
    pub evidence: Vec<AnomalySpan>,
    /// Machines this job shares with other jobs at the snapshot time —
    /// co-allocation context for "who else could be responsible".
    pub shared_machines: Vec<MachineId>,
    /// Human-readable one-line summary.
    pub summary: String,
}

/// Configurable analyzer bundling the signature and threshold detectors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RootCauseAnalyzer {
    /// End-of-job spike matcher.
    pub spike: SpikeDetector,
    /// Thrashing matcher.
    pub thrashing: ThrashingDetector,
    /// Saturation fallback.
    pub saturation: ThresholdDetector,
    /// Fraction of a job's machines that must match a signature for the
    /// job-level verdict.
    pub machine_quorum: f64,
}

impl RootCauseAnalyzer {
    /// Analyzer with the case study's default thresholds.
    pub fn new() -> Self {
        RootCauseAnalyzer {
            spike: SpikeDetector::new(),
            thrashing: ThrashingDetector::new(),
            saturation: ThresholdDetector::new(0.9),
            machine_quorum: 0.5,
        }
    }

    /// Diagnoses every job running at `at`, in job-id order.
    pub fn analyze(&self, ds: &TraceDataset, at: Timestamp) -> Vec<Diagnosis> {
        let snapshot = HierarchySnapshot::at(ds, at);
        let coalloc = CoallocationIndex::at(ds, at);
        snapshot
            .jobs
            .iter()
            .map(|entry| self.diagnose_job(ds, entry.job, &coalloc))
            .collect()
    }

    /// Diagnoses a single job.
    pub fn diagnose_job(
        &self,
        ds: &TraceDataset,
        job: JobId,
        coalloc: &CoallocationIndex,
    ) -> Diagnosis {
        let Some(job_view) = ds.job(job) else {
            return Diagnosis {
                job,
                verdict: Verdict::Healthy,
                affected_machines: Vec::new(),
                evidence: Vec::new(),
                shared_machines: Vec::new(),
                summary: format!("{job}: not present in dataset"),
            };
        };
        let machines = job_view.machines();
        let window = job_view.lifetime().unwrap_or_else(|| {
            TimeRange::new(Timestamp::ZERO, Timestamp::ZERO).expect("empty range")
        });

        let mut spike_hits: Vec<(MachineId, AnomalySpan)> = Vec::new();
        let mut thrash_hits: Vec<(MachineId, AnomalySpan)> = Vec::new();
        let mut saturation_hits: Vec<(MachineId, AnomalySpan)> = Vec::new();

        for &m in &machines {
            let Some(mv) = ds.machine(m) else { continue };
            let cpu = mv.usage(Metric::Cpu);
            let mem = mv.usage(Metric::Memory);
            if let (Some(cpu), Some(mem)) = (cpu, mem) {
                if let Some(sm) = self.spike.match_spike(cpu, &window) {
                    spike_hits.push((m, self.spike.span_for(&sm, &window)));
                } else if let Some(sm) = self.spike.match_spike(mem, &window) {
                    spike_hits.push((m, self.spike.span_for(&sm, &window)));
                }
                for span in self.thrashing.detect(cpu, mem) {
                    if span.range.overlaps(&window) {
                        thrash_hits.push((m, span));
                    }
                }
                for span in self.saturation.detect(cpu) {
                    if span.range.overlaps(&window) {
                        saturation_hits.push((m, span));
                    }
                }
            }
        }

        let quorum = (machines.len() as f64 * self.machine_quorum)
            .ceil()
            .max(1.0) as usize;
        let shared_machines: Vec<MachineId> = machines
            .iter()
            .copied()
            .filter(|m| coalloc.jobs_on(*m).is_some())
            .collect();

        let distinct = |hits: &[(MachineId, AnomalySpan)]| -> Vec<MachineId> {
            let mut ms: Vec<MachineId> = hits.iter().map(|(m, _)| *m).collect();
            ms.sort_unstable();
            ms.dedup();
            ms
        };

        let thrash_machines = distinct(&thrash_hits);
        let spike_machines = distinct(&spike_hits);
        let saturated_machines = distinct(&saturation_hits);

        // Thrashing outranks spike (it implies lost progress, not just load);
        // spike outranks plain saturation.
        let (verdict, affected, evidence) = if thrash_machines.len() >= quorum {
            (
                Verdict::Thrashing,
                thrash_machines,
                thrash_hits.into_iter().map(|(_, s)| s).collect(),
            )
        } else if spike_machines.len() >= quorum {
            (
                Verdict::EndSpike,
                spike_machines,
                spike_hits.into_iter().map(|(_, s)| s).collect(),
            )
        } else if saturated_machines.len() >= quorum {
            (
                Verdict::Overloaded,
                saturated_machines,
                saturation_hits.into_iter().map(|(_, s)| s).collect(),
            )
        } else {
            (Verdict::Healthy, Vec::new(), Vec::new())
        };

        let summary = match verdict {
            Verdict::Healthy => format!(
                "{job}: metrics stable across {} node(s) during execution",
                machines.len()
            ),
            Verdict::EndSpike => format!(
                "{job}: CPU/memory climb to a peak at job end on {}/{} node(s), \
                 then decay — intensive workload during execution",
                affected.len(),
                machines.len()
            ),
            Verdict::Thrashing => format!(
                "{job}: memory pinned while CPU collapses on {}/{} node(s) — \
                 likely virtual-memory thrashing; consider terminating and \
                 relaunching",
                affected.len(),
                machines.len()
            ),
            Verdict::Overloaded => format!(
                "{job}: sustained CPU saturation on {}/{} node(s)",
                affected.len(),
                machines.len()
            ),
        };

        Diagnosis {
            job,
            verdict,
            affected_machines: affected,
            evidence,
            shared_machines,
            summary,
        }
    }
}

impl Default for RootCauseAnalyzer {
    fn default() -> Self {
        RootCauseAnalyzer::new()
    }
}

/// Renders diagnoses as a plain-text report, anomalous jobs first.
pub fn render_report(at: Timestamp, diagnoses: &[Diagnosis]) -> String {
    let mut sorted: Vec<&Diagnosis> = diagnoses.iter().collect();
    sorted.sort_by_key(|d| match d.verdict {
        Verdict::Thrashing => 0,
        Verdict::EndSpike => 1,
        Verdict::Overloaded => 2,
        Verdict::Healthy => 3,
    });
    let mut out = format!("BatchLens root-cause report @ {at}\n");
    let anomalous = sorted
        .iter()
        .filter(|d| d.verdict != Verdict::Healthy)
        .count();
    out.push_str(&format!(
        "{} job(s) inspected, {} anomalous\n\n",
        sorted.len(),
        anomalous
    ));
    for d in sorted {
        out.push_str(&d.summary);
        out.push('\n');
        if !d.shared_machines.is_empty() {
            out.push_str(&format!(
                "  shares {} machine(s) with other jobs: ",
                d.shared_machines.len()
            ));
            for (i, m) in d.shared_machines.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&m.to_string());
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn fig3b_spike_is_diagnosed() {
        let ds = scenario::fig3b(21).run().unwrap();
        let analyzer = RootCauseAnalyzer::new();
        let diagnoses = analyzer.analyze(&ds, scenario::T_FIG3B);
        let d = diagnoses
            .iter()
            .find(|d| d.job == scenario::JOB_7901)
            .unwrap();
        assert_eq!(d.verdict, Verdict::EndSpike, "evidence: {}", d.summary);
        assert!(!d.affected_machines.is_empty());
        // job_7901 shares machines with job_7905.
        assert!(!d.shared_machines.is_empty());
    }

    #[test]
    fn fig3c_thrashing_is_diagnosed() {
        let ds = scenario::fig3c(22).run().unwrap();
        let analyzer = RootCauseAnalyzer::new();
        let diagnoses = analyzer.analyze(&ds, scenario::T_FIG3C);
        let d = diagnoses
            .iter()
            .find(|d| d.job == scenario::JOB_11939)
            .unwrap();
        assert_eq!(d.verdict, Verdict::Thrashing, "evidence: {}", d.summary);
    }

    #[test]
    fn fig3a_jobs_are_mostly_healthy() {
        let ds = scenario::fig3a(23).run().unwrap();
        let analyzer = RootCauseAnalyzer::new();
        let diagnoses = analyzer.analyze(&ds, scenario::T_FIG3A);
        assert_eq!(diagnoses.len(), 15);
        let healthy = diagnoses
            .iter()
            .filter(|d| d.verdict == Verdict::Healthy)
            .count();
        assert!(healthy >= 13, "only {healthy}/15 healthy");
        let d = diagnoses
            .iter()
            .find(|d| d.job == scenario::JOB_8124)
            .unwrap();
        assert_eq!(d.verdict, Verdict::Healthy);
    }

    #[test]
    fn report_orders_anomalies_first() {
        let ds = scenario::fig3c(24).run().unwrap();
        let analyzer = RootCauseAnalyzer::new();
        let diagnoses = analyzer.analyze(&ds, scenario::T_FIG3C);
        let text = render_report(scenario::T_FIG3C, &diagnoses);
        assert!(text.contains("root-cause report"));
        let thrash_pos = text.find("thrashing").unwrap();
        let stable_pos = text.find("stable").unwrap_or(usize::MAX);
        assert!(thrash_pos < stable_pos, "anomalies should lead the report");
    }

    #[test]
    fn missing_job_gets_placeholder() {
        let ds = scenario::fig1_sample(25).run().unwrap();
        let analyzer = RootCauseAnalyzer::new();
        let coalloc = CoallocationIndex::at(&ds, Timestamp::new(600));
        let d = analyzer.diagnose_job(&ds, JobId::new(424242), &coalloc);
        assert_eq!(d.verdict, Verdict::Healthy);
        assert!(d.summary.contains("not present"));
    }
}
