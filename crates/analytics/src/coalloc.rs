//! Co-allocation analysis: which machines execute several jobs at once.
//!
//! The hierarchical bubble chart is *job-based*, so one physical machine can
//! be rendered inside several job bubbles. BatchLens's hover interaction
//! connects those renderings with colored dotted lines (paper Fig 3(b):
//! "we connect the same machines with colored dotted lines (green, orange
//! and purple) … to help trace down the machines [that] execute multiple
//! tasks simultaneously"). This module computes the underlying index.

use batchlens_trace::{DatasetQuery, JobId, MachineId, TaskId, Timestamp};
use serde::{Deserialize, Serialize};

/// A machine rendered under more than one job bubble at the snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedMachine {
    /// The physical machine.
    pub machine: MachineId,
    /// The jobs with at least one instance running on it (≥ 2 entries).
    pub jobs: Vec<JobId>,
}

/// A renderable link: one machine appearing under two specific jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineLink {
    /// The shared machine.
    pub machine: MachineId,
    /// First job bubble.
    pub job_a: JobId,
    /// Second job bubble.
    pub job_b: JobId,
}

/// The pairwise link expansion of a shared-machine table, ascending by
/// `(machine, job_a, job_b)` — the one derivation every construction and
/// patch path shares.
fn links_of(shared: &[SharedMachine]) -> Vec<MachineLink> {
    let mut links = Vec::new();
    for s in shared {
        for (i, &a) in s.jobs.iter().enumerate() {
            for &b in &s.jobs[i + 1..] {
                links.push(MachineLink {
                    machine: s.machine,
                    job_a: a,
                    job_b: b,
                });
            }
        }
    }
    links
}

/// Co-allocation index at one timestamp.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoallocationIndex {
    shared: Vec<SharedMachine>,
    /// All pairwise links, ascending by `(machine, job_a, job_b)` —
    /// precomputed at construction so [`CoallocationIndex::links`] and
    /// [`CoallocationIndex::links_for`] are borrows, not per-call pair
    /// expansions.
    links: Vec<MachineLink>,
}

impl CoallocationIndex {
    /// Builds the index of `src` at time `at`.
    ///
    /// One interval-index stab over the running instances, grouped by
    /// machine — O(log n + k log k) instead of a per-machine instance scan
    /// across the whole cluster. Generic over [`DatasetQuery`], so the same
    /// code indexes a batch dataset or a live monitor window.
    pub fn at<Q: DatasetQuery + ?Sized>(src: &Q, at: Timestamp) -> CoallocationIndex {
        Self::from_triples(&src.running_triples_at(at))
    }

    /// Builds the index from a [`batchlens_trace::QueryFrame`]'s captured
    /// running set — transactionally consistent with every other product of
    /// the same frame, and bit-identical to [`CoallocationIndex::at`] over
    /// the state the frame captured.
    pub fn from_frame(frame: &batchlens_trace::QueryFrame) -> CoallocationIndex {
        Self::from_triples(frame.running_triples())
    }

    /// The shared grouping path: ascending running triples → machine → job
    /// sets → shared machines + precomputed pairwise links. Every
    /// construction route ([`CoallocationIndex::at`],
    /// [`CoallocationIndex::from_frame`], the delta engine) lands here.
    pub(crate) fn from_triples(triples: &[(JobId, TaskId, MachineId)]) -> CoallocationIndex {
        let mut by_machine: std::collections::BTreeMap<
            MachineId,
            std::collections::BTreeSet<JobId>,
        > = std::collections::BTreeMap::new();
        for &(job, _, machine) in triples {
            by_machine.entry(machine).or_default().insert(job);
        }
        let shared: Vec<SharedMachine> = by_machine
            .into_iter()
            .filter(|(_, jobs)| jobs.len() >= 2)
            .map(|(machine, jobs)| SharedMachine {
                machine,
                jobs: jobs.into_iter().collect(),
            })
            .collect();
        let links = links_of(&shared);
        CoallocationIndex { shared, links }
    }

    /// Replaces, inserts or removes one machine's shared entry (machine
    /// order preserved) and rebuilds the link expansion — the delta
    /// engine's patch primitive. Pass the machine's full current job set;
    /// fewer than two jobs removes the entry. `rebuild_links` must be true
    /// on the last patch of a batch (links are derived state).
    pub(crate) fn put_machine(
        &mut self,
        machine: MachineId,
        jobs: Vec<JobId>,
        rebuild_links: bool,
    ) {
        let pos = self.shared.binary_search_by_key(&machine, |s| s.machine);
        match (pos, jobs.len() >= 2) {
            (Ok(i), true) => self.shared[i].jobs = jobs,
            (Ok(i), false) => {
                self.shared.remove(i);
            }
            (Err(i), true) => self.shared.insert(i, SharedMachine { machine, jobs }),
            (Err(_), false) => {}
        }
        if rebuild_links {
            self.links = links_of(&self.shared);
        }
    }

    /// Machines shared by at least two jobs, in machine order.
    pub fn shared_machines(&self) -> &[SharedMachine] {
        &self.shared
    }

    /// Number of shared machines.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// True when no machine is shared.
    pub fn is_empty(&self) -> bool {
        self.shared.is_empty()
    }

    /// All pairwise links, one per `(machine, job_a, job_b)` with
    /// `job_a < job_b` — each becomes one dotted line in the view.
    /// Precomputed at construction: a borrow, not a pair expansion.
    pub fn links(&self) -> &[MachineLink] {
        &self.links
    }

    /// The links involving one specific machine — what a mouse-over on that
    /// node highlights. A binary-searched sub-slice of the precomputed
    /// links (they ascend by machine), O(log L) per call, no allocation.
    pub fn links_for(&self, machine: MachineId) -> &[MachineLink] {
        let lo = self.links.partition_point(|l| l.machine < machine);
        let hi = self.links.partition_point(|l| l.machine <= machine);
        &self.links[lo..hi]
    }

    /// The jobs sharing a given machine, if it is shared.
    pub fn jobs_on(&self, machine: MachineId) -> Option<&[JobId]> {
        self.shared
            .iter()
            .find(|s| s.machine == machine)
            .map(|s| s.jobs.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::{
        BatchInstanceRecord, BatchTaskRecord, TaskId, TaskStatus, TraceDataset, TraceDatasetBuilder,
    };

    /// Three jobs; machine 0 shared by jobs 1+2, machine 1 shared by all
    /// three, machine 2 exclusive to job 3.
    fn build() -> TraceDataset {
        let mut b = TraceDatasetBuilder::new();
        for job in 1..=3u32 {
            b.push_task(BatchTaskRecord {
                create_time: Timestamp::new(0),
                modify_time: Timestamp::new(1000),
                job: JobId::new(job),
                task: TaskId::new(1),
                instance_count: 2,
                status: TaskStatus::Terminated,
                plan_cpu: 1.0,
                plan_mem: 0.5,
            });
        }
        for (job, machine) in [(1u32, 0u32), (1, 1), (2, 0), (2, 1), (3, 1), (3, 2)] {
            b.push_instance(BatchInstanceRecord {
                start_time: Timestamp::new(0),
                end_time: Timestamp::new(1000),
                job: JobId::new(job),
                task: TaskId::new(1),
                seq: machine, // unique per (job, task)
                total: 2,
                machine: MachineId::new(machine),
                status: TaskStatus::Terminated,
                cpu_avg: 0.1,
                cpu_max: 0.2,
                mem_avg: 0.1,
                mem_max: 0.2,
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn shared_machines_found() {
        let ds = build();
        let idx = CoallocationIndex::at(&ds, Timestamp::new(100));
        assert_eq!(idx.len(), 2);
        let m0 = idx.jobs_on(MachineId::new(0)).unwrap();
        assert_eq!(m0, &[JobId::new(1), JobId::new(2)]);
        let m1 = idx.jobs_on(MachineId::new(1)).unwrap();
        assert_eq!(m1.len(), 3);
        assert!(idx.jobs_on(MachineId::new(2)).is_none());
    }

    #[test]
    fn links_are_pairwise() {
        let ds = build();
        let idx = CoallocationIndex::at(&ds, Timestamp::new(100));
        let links = idx.links();
        // machine 0: 1 pair; machine 1: C(3,2) = 3 pairs.
        assert_eq!(links.len(), 4);
        let m1_links = idx.links_for(MachineId::new(1));
        assert_eq!(m1_links.len(), 3);
        for l in m1_links {
            assert!(l.job_a < l.job_b);
        }
        assert!(m1_links.iter().all(|l| l.machine == MachineId::new(1)));
        assert!(idx.links_for(MachineId::new(2)).is_empty());
        // links ascend by (machine, job_a, job_b): the sub-slice contract.
        assert!(links.windows(2).all(
            |w| (w[0].machine, w[0].job_a, w[0].job_b) < (w[1].machine, w[1].job_a, w[1].job_b)
        ));
    }

    #[test]
    fn empty_after_everything_ends() {
        let ds = build();
        let idx = CoallocationIndex::at(&ds, Timestamp::new(2000));
        assert!(idx.is_empty());
        assert!(idx.links().is_empty());
    }
}
