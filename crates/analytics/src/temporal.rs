//! Temporal pattern analysis: correlation between series and detection of the
//! qualitative patterns the paper calls out — "a spike or a valley in the
//! context of other nodes' performance", and whether "all lines bundle into
//! one cluster".

use batchlens_trace::{TimeDelta, TimeSeries, Timestamp};
use serde::{Deserialize, Serialize};

/// Pearson correlation between two series, resampled onto a common grid of
/// `step` with sample-and-hold. Returns `None` when either series is empty
/// or constant over the overlap.
pub fn correlation(a: &TimeSeries, b: &TimeSeries, step: TimeDelta) -> Option<f64> {
    let span_a = a.span()?;
    let span_b = b.span()?;
    let overlap = span_a.intersect(&span_b)?;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for t in overlap.steps(step) {
        if let (Some(x), Some(y)) = (a.value_at_or_before(t), b.value_at_or_before(t)) {
            xs.push(x);
            ys.push(y);
        }
    }
    pearson(&xs, &ys)
}

fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len();
    if n < 2 || n != ys.len() {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx < 1e-12 || vy < 1e-12 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// A detected local feature in a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Where it occurs.
    pub at: Timestamp,
    /// Its value.
    pub value: f64,
    /// Spike (local max) or valley (local min).
    pub kind: FeatureKind,
    /// Prominence: how far the feature stands out from its neighbourhood.
    pub prominence: f64,
}

/// Whether a feature is a spike or a valley.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// A local maximum standing above its surroundings.
    Spike,
    /// A local minimum standing below its surroundings.
    Valley,
}

/// Finds spikes and valleys whose prominence (height above/below the mean of
/// a `window`-sample neighbourhood) exceeds `min_prominence`.
///
/// This is the computable form of the paper's "a spike or a valley in the
/// context of other nodes' performance".
pub fn features(series: &TimeSeries, window: usize, min_prominence: f64) -> Vec<Feature> {
    let values = series.values();
    let times = series.times();
    let n = values.len();
    let w = window.max(1);
    if n < 2 * w + 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in w..n - w {
        let left = &values[i - w..i];
        let right = &values[i + 1..=i + w];
        let neighbourhood_mean =
            (left.iter().chain(right).sum::<f64>()) / (left.len() + right.len()) as f64;
        let v = values[i];
        let is_peak = left.iter().all(|&x| v >= x) && right.iter().all(|&x| v >= x);
        let is_valley = left.iter().all(|&x| v <= x) && right.iter().all(|&x| v <= x);
        let prom = (v - neighbourhood_mean).abs();
        if prom < min_prominence {
            continue;
        }
        if is_peak && v > neighbourhood_mean {
            out.push(Feature {
                at: times[i],
                value: v,
                kind: FeatureKind::Spike,
                prominence: prom,
            });
        } else if is_valley && v < neighbourhood_mean {
            out.push(Feature {
                at: times[i],
                value: v,
                kind: FeatureKind::Valley,
                prominence: prom,
            });
        }
    }
    out
}

/// Cross-correlation lag (in grid steps) at which `b` best matches `a`,
/// searching lags in `-max_lag..=max_lag`. Positive lag means `b` follows
/// `a`. Returns `(lag_steps, correlation)` or `None` when undefined.
pub fn best_lag(
    a: &TimeSeries,
    b: &TimeSeries,
    step: TimeDelta,
    max_lag: i64,
) -> Option<(i64, f64)> {
    let span = a.span()?.intersect(&b.span()?)?;
    let grid: Vec<Timestamp> = span.steps(step).collect();
    if grid.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = grid
        .iter()
        .filter_map(|&t| a.value_at_or_before(t))
        .collect();
    if xs.len() != grid.len() {
        return None;
    }
    let n = grid.len() as i64;
    let mut best: Option<(i64, f64)> = None;
    for lag in -max_lag..=max_lag {
        // Correlate over the overlapping index range where both k and k+lag
        // are in bounds; a boundary overrun trims the window, it does not
        // reject the lag.
        let mut left = Vec::new();
        let mut right = Vec::new();
        for k in 0..n {
            let j = k + lag;
            if j < 0 || j >= n {
                continue;
            }
            if let Some(v) = b.value_at_or_before(grid[j as usize]) {
                left.push(xs[k as usize]);
                right.push(v);
            }
        }
        if left.len() < 2 {
            continue;
        }
        if let Some(r) = pearson(&left, &right) {
            if best.is_none_or(|(_, br)| r.abs() > br.abs()) {
                best = Some((lag, r));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(i64) -> f64, n: i64, step: i64) -> TimeSeries {
        (0..n).map(|i| (Timestamp::new(i * step), f(i))).collect()
    }

    #[test]
    fn identical_series_correlate_perfectly() {
        let s = series(|i| (i as f64 * 0.1).sin(), 200, 60);
        let r = correlation(&s, &s, TimeDelta::seconds(60)).unwrap();
        assert!((r - 1.0).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn anti_correlated_series() {
        let a = series(|i| (i as f64 * 0.1).sin(), 200, 60);
        let b = series(|i| -(i as f64 * 0.1).sin(), 200, 60);
        let r = correlation(&a, &b, TimeDelta::seconds(60)).unwrap();
        assert!((r + 1.0).abs() < 1e-6, "r = {r}");
    }

    #[test]
    fn constant_series_has_no_correlation() {
        let a = series(|_| 0.5, 50, 60);
        let b = series(|i| i as f64, 50, 60);
        assert!(correlation(&a, &b, TimeDelta::seconds(60)).is_none());
    }

    #[test]
    fn finds_a_spike() {
        let mut vals: Vec<f64> = (0..100).map(|i| 0.3 + 0.001 * (i % 3) as f64).collect();
        vals[50] = 0.95;
        let s: TimeSeries = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect();
        let feats = features(&s, 5, 0.2);
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].kind, FeatureKind::Spike);
        assert_eq!(feats[0].at, Timestamp::new(50 * 60));
        assert!(feats[0].prominence > 0.4);
    }

    #[test]
    fn finds_a_valley() {
        let mut vals: Vec<f64> = (0..100).map(|i| 0.6 + 0.001 * (i % 3) as f64).collect();
        vals[40] = 0.05;
        let s: TimeSeries = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (Timestamp::new(i as i64 * 60), v))
            .collect();
        let feats = features(&s, 5, 0.2);
        assert_eq!(feats.len(), 1);
        assert_eq!(feats[0].kind, FeatureKind::Valley);
    }

    #[test]
    fn short_series_has_no_features() {
        let s = series(|i| i as f64, 5, 60);
        assert!(features(&s, 5, 0.1).is_empty());
    }

    #[test]
    fn best_lag_finds_shift() {
        // b is a 3-step-delayed copy of a.
        let a = series(|i| (i as f64 * 0.2).sin(), 200, 60);
        let b = series(|i| ((i - 3) as f64 * 0.2).sin(), 200, 60);
        let (lag, r) = best_lag(&a, &b, TimeDelta::seconds(60), 10).unwrap();
        assert_eq!(lag, 3, "expected lag 3, got {lag} (r={r})");
        assert!(r > 0.99);
    }
}
