//! # batchlens-fault
//!
//! A zero-dependency, deterministic **failpoint registry**: named sites in
//! production code (`wal.append`, `serve.capture`, ...) that tests and chaos
//! harnesses arm with seeded fault schedules — injected IO errors, short
//! writes, delays, panics, disconnects — without touching the code under
//! test.
//!
//! ## Design
//!
//! * **Disarmed is free.** Every [`check`]/[`fire`] call starts with a single
//!   relaxed atomic load of the global armed-site count; when no site is
//!   armed (the production configuration) that load is the *entire* cost —
//!   no lock, no map lookup, no branch history pollution. The hot-path
//!   guardrail benches (`ingest_wal_overhead`, `serve_sessions_*`) run with
//!   the registry compiled in and disarmed.
//! * **Deterministic.** A schedule's firing decisions depend only on its
//!   [`Trigger`] and the site's hit counter — [`Trigger::Prob`] draws from a
//!   per-site splitmix64 stream seeded at arm time, so the same seed and the
//!   same delivery order reproduce the same fault sequence exactly. There is
//!   no wall-clock or global-RNG input anywhere.
//! * **Observable.** Every site counts how many times it was evaluated and
//!   how many times it fired ([`site_stats`]), so chaos suites can assert
//!   "every injected fault is accounted for" instead of hoping.
//!
//! ## Arming
//!
//! Programmatic: [`arm`]`("wal.append", FaultSpec::new(Fault::Error,
//! Trigger::Prob { seed: 7, fire_per_1024: 64 }))`.
//!
//! From the environment ([`arm_from_env`], read by test binaries and the
//! chaos CI job): `BATCHLENS_FAILPOINTS="wal.append=error@prob:7:64;
//! serve.route=panic@nth:3"`. See [`arm_from_spec_str`] for the grammar.
//!
//! ## Scoping
//!
//! The registry is process-global (that is the point: the site lives deep in
//! a crate the test does not construct), so concurrently running tests that
//! arm sites must serialize. [`test_guard`] hands out a global lock whose
//! guard disarms everything on drop — take it at the top of every test that
//! arms failpoints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// The fault a site injects when its schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the operation with an injected error (for IO sites: the write
    /// or sync returns `Err` having done nothing — a full disk).
    Error,
    /// Perform only the first `n` bytes of a write, then fail — a torn
    /// write (power-loss shape) the caller sees as an error.
    ShortWrite(usize),
    /// Stall the operation for the given duration, then proceed normally —
    /// a slow disk, a slow capture, a scheduling hiccup.
    Delay(Duration),
    /// Panic at the site (callers under `catch_unwind` supervision must
    /// contain it).
    Panic,
    /// Drop the peer mid-exchange (serving sites: close the connection
    /// without a response).
    Disconnect,
}

/// When a site's schedule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Every evaluation fires.
    Always,
    /// Only the `n`-th evaluation fires (0-based, counted from arming).
    Nth(u64),
    /// The first `n` evaluations fire, then the site goes quiet.
    Times(u64),
    /// Every `n`-th evaluation fires (`n >= 1`; `hits % n == 0`).
    EveryNth(u64),
    /// Fires pseudo-randomly with probability `fire_per_1024 / 1024`, drawn
    /// from a splitmix64 stream seeded with `seed` — deterministic in the
    /// site's evaluation order.
    Prob {
        /// Stream seed; same seed, same delivery order → same fault
        /// sequence.
        seed: u64,
        /// Firing probability numerator out of 1024.
        fire_per_1024: u32,
    },
}

/// A complete site schedule: which fault, on which evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault injected when the trigger fires.
    pub fault: Fault,
    /// The firing schedule.
    pub trigger: Trigger,
}

impl FaultSpec {
    /// A spec from its two parts.
    pub fn new(fault: Fault, trigger: Trigger) -> FaultSpec {
        FaultSpec { fault, trigger }
    }
}

/// Cumulative per-site counters, for accounting assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteStats {
    /// Times the site was evaluated while armed.
    pub hits: u64,
    /// Times the schedule fired (a fault was injected).
    pub fired: u64,
}

#[derive(Debug)]
struct Site {
    spec: FaultSpec,
    hits: u64,
    fired: u64,
    rng: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Site {
    fn evaluate(&mut self) -> Option<Fault> {
        let hit = self.hits;
        self.hits += 1;
        let fires = match self.spec.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => hit == n,
            Trigger::Times(n) => hit < n,
            Trigger::EveryNth(n) => n >= 1 && hit.is_multiple_of(n),
            Trigger::Prob { fire_per_1024, .. } => {
                (splitmix64(&mut self.rng) >> 54) < fire_per_1024 as u64
            }
        };
        if fires {
            self.fired += 1;
            Some(self.spec.fault)
        } else {
            None
        }
    }
}

/// Number of armed sites; `0` is the disarmed fast path every [`check`]
/// reads with one relaxed load.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> MutexGuard<'static, HashMap<String, Site>> {
    // A panic injected *through* the registry can poison the lock while a
    // caller is unwinding; the map itself is always in a consistent state
    // (mutations are single assignments), so poisoning is ignorable.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms `site` with `spec`, replacing any existing schedule (and resetting
/// its counters).
pub fn arm(site: &str, spec: FaultSpec) {
    let seed = match spec.trigger {
        Trigger::Prob { seed, .. } => seed,
        _ => 0,
    };
    let mut reg = lock_registry();
    if reg
        .insert(
            site.to_string(),
            Site {
                spec,
                hits: 0,
                fired: 0,
                rng: seed,
            },
        )
        .is_none()
    {
        ARMED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarms `site`; returns its final counters if it was armed.
pub fn disarm(site: &str) -> Option<SiteStats> {
    let mut reg = lock_registry();
    reg.remove(site).map(|s| {
        ARMED.fetch_sub(1, Ordering::Relaxed);
        SiteStats {
            hits: s.hits,
            fired: s.fired,
        }
    })
}

/// Disarms every site.
pub fn disarm_all() {
    let mut reg = lock_registry();
    ARMED.fetch_sub(reg.len(), Ordering::Relaxed);
    reg.clear();
}

/// The counters of an armed site (`None` when not armed).
pub fn site_stats(site: &str) -> Option<SiteStats> {
    lock_registry().get(site).map(|s| SiteStats {
        hits: s.hits,
        fired: s.fired,
    })
}

/// Evaluates `site`'s schedule: `Some(fault)` when it fires. Disarmed (the
/// production configuration) this is a single relaxed atomic load.
#[inline]
pub fn check(site: &str) -> Option<Fault> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    check_slow(site)
}

#[cold]
fn check_slow(site: &str) -> Option<Fault> {
    lock_registry().get_mut(site)?.evaluate()
}

/// Like [`check`], but applies [`Fault::Delay`] (sleeps) and
/// [`Fault::Panic`] (panics with a message naming the site) inline,
/// returning only the faults the caller must act on itself
/// (`Error` / `ShortWrite` / `Disconnect`).
///
/// # Panics
///
/// When the site is armed with [`Fault::Panic`] and its schedule fires —
/// that is the injected fault.
#[inline]
pub fn fire(site: &str) -> Option<Fault> {
    match check(site) {
        Some(Fault::Delay(d)) => {
            std::thread::sleep(d);
            None
        }
        Some(Fault::Panic) => panic!("failpoint '{site}': injected panic"),
        other => other,
    }
}

/// The `std::io::Error` an IO site surfaces when its schedule fires.
pub fn injected_io_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint '{site}': injected io error"))
}

/// Whether an `std::io::Error` was produced by [`injected_io_error`] (or a
/// short write at a failpoint site).
pub fn is_injected(err: &std::io::Error) -> bool {
    err.to_string().contains("failpoint '")
}

// ---------------------------------------------------------------------------
// Environment / spec-string arming
// ---------------------------------------------------------------------------

/// Environment variable [`arm_from_env`] reads.
pub const FAILPOINTS_ENV: &str = "BATCHLENS_FAILPOINTS";

/// Arms sites from [`FAILPOINTS_ENV`], if set. Returns the number of sites
/// armed (0 when unset or empty). Malformed entries are skipped with a
/// message on stderr rather than panicking — a typo in a chaos-job env var
/// must not abort the suite before it reports anything.
pub fn arm_from_env() -> usize {
    match std::env::var(FAILPOINTS_ENV) {
        Ok(v) if !v.trim().is_empty() => arm_from_spec_str(&v),
        _ => 0,
    }
}

/// Arms sites from a spec string; returns how many were armed.
///
/// Grammar (entries separated by `;`):
///
/// ```text
/// site=kind[:param[:param]][@trigger[:param[:param]]]
///
/// kind     := error | short_write:<bytes> | delay:<millis> | panic | disconnect
/// trigger  := always | nth:<n> | times:<n> | every:<n> | prob:<seed>:<per1024>
/// ```
///
/// Omitting `@trigger` means `always`. Examples:
///
/// ```text
/// wal.append=error@prob:7:64          # ~6% of appends fail, seeded
/// wal.append=short_write:4@nth:10     # the 11th append tears after 4 bytes
/// serve.route=panic@every:50          # every 50th request panics
/// serve.capture=delay:40@times:2      # the first two captures stall 40 ms
/// ```
pub fn arm_from_spec_str(spec: &str) -> usize {
    let mut armed = 0;
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        match parse_entry(entry) {
            Some((site, spec)) => {
                arm(site, spec);
                armed += 1;
            }
            None => eprintln!("batchlens-fault: skipping malformed failpoint entry {entry:?}"),
        }
    }
    armed
}

fn parse_entry(entry: &str) -> Option<(&str, FaultSpec)> {
    let (site, rest) = entry.split_once('=')?;
    let site = site.trim();
    if site.is_empty() {
        return None;
    }
    let (kind, trigger) = match rest.split_once('@') {
        Some((k, t)) => (k.trim(), parse_trigger(t.trim())?),
        None => (rest.trim(), Trigger::Always),
    };
    let fault = parse_fault(kind)?;
    Some((site, FaultSpec::new(fault, trigger)))
}

fn parse_fault(kind: &str) -> Option<Fault> {
    let mut parts = kind.split(':');
    let name = parts.next()?;
    let fault = match name {
        "error" => Fault::Error,
        "panic" => Fault::Panic,
        "disconnect" => Fault::Disconnect,
        "short_write" => Fault::ShortWrite(parts.next()?.parse().ok()?),
        "delay" => Fault::Delay(Duration::from_millis(parts.next()?.parse().ok()?)),
        _ => return None,
    };
    parts.next().is_none().then_some(fault)
}

fn parse_trigger(trigger: &str) -> Option<Trigger> {
    let mut parts = trigger.split(':');
    let name = parts.next()?;
    let trigger = match name {
        "always" => Trigger::Always,
        "nth" => Trigger::Nth(parts.next()?.parse().ok()?),
        "times" => Trigger::Times(parts.next()?.parse().ok()?),
        "every" => Trigger::EveryNth(parts.next()?.parse().ok()?),
        "prob" => Trigger::Prob {
            seed: parts.next()?.parse().ok()?,
            fire_per_1024: parts.next()?.parse().ok()?,
        },
        _ => return None,
    };
    parts.next().is_none().then_some(trigger)
}

// ---------------------------------------------------------------------------
// Test scoping
// ---------------------------------------------------------------------------

/// Serializes tests that arm global failpoints; disarms everything on drop.
#[derive(Debug)]
pub struct TestGuard {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for TestGuard {
    fn drop(&mut self) {
        disarm_all();
    }
}

/// Takes the global failpoint test lock. Hold the returned guard for the
/// whole test: it keeps concurrently running tests from observing your
/// armed sites, and disarms everything when dropped (including on panic —
/// a failing assertion must not leak faults into the next test).
pub fn test_guard() -> TestGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    TestGuard {
        _guard: LOCK.lock().unwrap_or_else(PoisonError::into_inner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_sites_never_fire() {
        let _guard = test_guard();
        assert_eq!(check("nope"), None);
        assert_eq!(fire("nope"), None);
        assert_eq!(site_stats("nope"), None);
    }

    #[test]
    fn triggers_follow_their_schedules() {
        let _guard = test_guard();
        arm("t.always", FaultSpec::new(Fault::Error, Trigger::Always));
        arm("t.nth", FaultSpec::new(Fault::Error, Trigger::Nth(2)));
        arm("t.times", FaultSpec::new(Fault::Error, Trigger::Times(2)));
        arm(
            "t.every",
            FaultSpec::new(Fault::Error, Trigger::EveryNth(3)),
        );
        let pattern = |site: &str| -> Vec<bool> { (0..6).map(|_| check(site).is_some()).collect() };
        assert_eq!(pattern("t.always"), vec![true; 6]);
        assert_eq!(
            pattern("t.nth"),
            vec![false, false, true, false, false, false]
        );
        assert_eq!(
            pattern("t.times"),
            vec![true, true, false, false, false, false]
        );
        assert_eq!(
            pattern("t.every"),
            vec![true, false, false, true, false, false]
        );
        let stats = site_stats("t.every").unwrap();
        assert_eq!(stats.hits, 6);
        assert_eq!(stats.fired, 2);
    }

    #[test]
    fn prob_schedules_are_deterministic_and_seeded() {
        let _guard = test_guard();
        let run = |seed: u64| -> Vec<bool> {
            arm(
                "t.prob",
                FaultSpec::new(
                    Fault::Error,
                    Trigger::Prob {
                        seed,
                        fire_per_1024: 256,
                    },
                ),
            );
            (0..256).map(|_| check("t.prob").is_some()).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same sequence");
        assert_ne!(a, c, "different seed, different sequence");
        let fired = a.iter().filter(|&&f| f).count();
        // 256/1024 = 25%; over 256 draws the count concentrates well away
        // from 0 and from always-firing.
        assert!((20..110).contains(&fired), "implausible fire count {fired}");
    }

    #[test]
    fn fire_applies_delay_inline_and_panics_on_panic_faults() {
        let _guard = test_guard();
        arm(
            "t.delay",
            FaultSpec::new(Fault::Delay(Duration::from_millis(5)), Trigger::Always),
        );
        let start = std::time::Instant::now();
        assert_eq!(fire("t.delay"), None, "delay is applied, not returned");
        assert!(start.elapsed() >= Duration::from_millis(4));

        arm("t.panic", FaultSpec::new(Fault::Panic, Trigger::Always));
        let result = std::panic::catch_unwind(|| fire("t.panic"));
        let err = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(err.contains("t.panic"), "panic names the site: {err}");
    }

    #[test]
    fn spec_strings_arm_and_malformed_entries_are_skipped() {
        let _guard = test_guard();
        let armed = arm_from_spec_str(
            "a=error@prob:7:64; b=short_write:4@nth:10; c=delay:25; \
             bogus; d=panic@every:50; e=nonsense@always; f=disconnect@times:2",
        );
        assert_eq!(armed, 5);
        assert_eq!(
            lock_registry().get("a").unwrap().spec,
            FaultSpec::new(
                Fault::Error,
                Trigger::Prob {
                    seed: 7,
                    fire_per_1024: 64
                }
            )
        );
        assert_eq!(
            lock_registry().get("b").unwrap().spec,
            FaultSpec::new(Fault::ShortWrite(4), Trigger::Nth(10))
        );
        assert_eq!(
            lock_registry().get("c").unwrap().spec,
            FaultSpec::new(Fault::Delay(Duration::from_millis(25)), Trigger::Always)
        );
        assert_eq!(
            lock_registry().get("f").unwrap().spec,
            FaultSpec::new(Fault::Disconnect, Trigger::Times(2))
        );
        assert!(lock_registry().get("bogus").is_none());
        assert!(lock_registry().get("e").is_none());
        disarm_all();
        assert_eq!(check("a"), None);
    }

    #[test]
    fn injected_io_errors_are_recognizable() {
        let err = injected_io_error("wal.append");
        assert!(is_injected(&err));
        assert!(!is_injected(&std::io::Error::other("disk on fire")));
    }
}
