//! [`BatchLens`]: the application object binding a dataset to a view state
//! and exposing the analytics/render surface the paper's tool presents.

use batchlens_analytics::aggregate::{ClusterTimeline, JobMetricLines};
use batchlens_analytics::coalloc::CoallocationIndex;
use batchlens_analytics::detect::{AnomalySpan, Detector, Ensemble};
use batchlens_analytics::hierarchy::HierarchySnapshot;
use batchlens_analytics::rootcause::{Diagnosis, RootCauseAnalyzer};
use batchlens_layout::Brush;
use batchlens_render::bubble::BubbleChart;
use batchlens_render::dashboard::Dashboard;
use batchlens_render::linechart::LineChart;
use batchlens_render::svg::to_svg;
use batchlens_render::timeline::TimelineView;
use batchlens_trace::{JobId, TimeRange, Timestamp, TraceDataset};

use crate::interaction::{reduce, Event};
use crate::session::SessionLog;
use crate::view::ViewState;

/// A BatchLens session over one dataset.
#[derive(Debug, Clone)]
pub struct BatchLens {
    dataset: TraceDataset,
    view: ViewState,
    analyzer: RootCauseAnalyzer,
    log: SessionLog,
    /// The aggregated cluster timeline, built once per dataset: the dataset
    /// is immutable, so every timeline/dashboard render reuses it.
    timeline: ClusterTimeline,
}

impl BatchLens {
    /// Creates a session; the view extent is the dataset's full span (or the
    /// 24-hour window when the dataset is empty).
    pub fn new(dataset: TraceDataset) -> Self {
        let extent = dataset.span().unwrap_or_else(TimeRange::full_day);
        let timeline = ClusterTimeline::build(&dataset);
        BatchLens {
            dataset,
            view: ViewState::new(extent),
            analyzer: RootCauseAnalyzer::new(),
            log: SessionLog::new(extent),
            timeline,
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &TraceDataset {
        &self.dataset
    }

    /// The current view state.
    pub fn view(&self) -> &ViewState {
        &self.view
    }

    /// Applies an interaction; returns whether the view changed. Every event
    /// is appended to the session log regardless of whether it changed the
    /// view, so the log is a faithful record of what the user did.
    pub fn apply(&mut self, event: Event) -> bool {
        self.log.record(event);
        reduce(&mut self.view, event)
    }

    /// The interaction log recorded so far. Serialize it with
    /// [`SessionLog::to_json`] to attach to a support ticket, or replay it to
    /// reconstruct this exact view.
    pub fn log(&self) -> &SessionLog {
        &self.log
    }

    /// The hierarchy snapshot at the selected timestamp.
    pub fn snapshot(&self) -> HierarchySnapshot {
        HierarchySnapshot::at(&self.dataset, self.view.selected_timestamp())
    }

    /// The co-allocation index at the selected timestamp.
    pub fn coallocation(&self) -> CoallocationIndex {
        CoallocationIndex::at(&self.dataset, self.view.selected_timestamp())
    }

    /// The aggregated cluster timeline (cached: built once per dataset).
    pub fn timeline(&self) -> &ClusterTimeline {
        &self.timeline
    }

    /// Root-cause diagnoses for every job running at the selected timestamp.
    pub fn diagnose(&self) -> Vec<Diagnosis> {
        self.analyzer
            .analyze(&self.dataset, self.view.selected_timestamp())
    }

    /// Detector anomaly spans for the hovered machine over the effective
    /// window, when the anomaly overlay is enabled
    /// ([`crate::interaction::Event::ToggleAnomalies`]): the standard
    /// ensemble on each metric series plus the paired-series thrashing
    /// kernel on CPU/memory. Empty when the overlay is off or nothing is
    /// hovered.
    pub fn machine_anomalies(&self) -> Vec<(batchlens_trace::Metric, AnomalySpan)> {
        use batchlens_trace::Metric;
        if !self.view.show_anomalies() {
            return Vec::new();
        }
        let Some(machine) = self.view.hovered_machine() else {
            return Vec::new();
        };
        let Some(mv) = self.dataset.machine(machine) else {
            return Vec::new();
        };
        let window = self.view.effective_window();
        let ensemble = Ensemble::standard();
        let mut out = Vec::new();
        for metric in Metric::ALL {
            if let Some(series) = mv.usage(metric) {
                for span in ensemble.detect(&series.slice(&window)) {
                    out.push((metric, span));
                }
            }
        }
        if let (Some(cpu), Some(mem)) = (mv.usage(Metric::Cpu), mv.usage(Metric::Memory)) {
            for span in self
                .analyzer
                .thrashing
                .detect(&cpu.slice(&window), &mem.slice(&window))
            {
                out.push((Metric::Memory, span));
            }
        }
        out
    }

    /// The line-chart data for the selected job (or `None` when no job is
    /// selected or it has no data in the effective window).
    pub fn selected_job_lines(&self) -> Option<JobMetricLines> {
        let job = self.view.selected_job()?;
        JobMetricLines::build(
            &self.dataset,
            job,
            self.view.detail_metric(),
            &self.view.effective_window(),
        )
    }

    /// Renders the hierarchical bubble chart as SVG.
    pub fn render_bubble(&self, width: f64, height: f64) -> String {
        to_svg(&BubbleChart::new(width, height).render(&self.snapshot()))
    }

    /// Renders the selected job's line chart as SVG, or an empty-scene SVG
    /// when no job is selected.
    pub fn render_line_chart(&self, width: f64, height: f64) -> String {
        match self.selected_job_lines() {
            Some(lines) => {
                let window = self.view.effective_window();
                let chart = if self.view.brush().is_some() {
                    LineChart::new(width, height).detail()
                } else {
                    LineChart::new(width, height).overview()
                };
                to_svg(&chart.render(&lines, &window))
            }
            None => to_svg(&batchlens_render::scene::Scene::new(width, height)),
        }
    }

    /// Renders the hovered machine's node-detail view (the paper's hover
    /// "zoom-in refresh"): the machine's three metric series over the
    /// effective window with a band per co-located job. Returns an
    /// empty-scene SVG when no machine is hovered.
    pub fn render_node_detail(&self, width: f64, height: f64) -> String {
        match self.view.hovered_machine() {
            Some(machine) => to_svg(
                &batchlens_render::node_detail::NodeDetail::new(width, height).render(
                    &self.dataset,
                    machine,
                    &self.view.effective_window(),
                ),
            ),
            None => to_svg(&batchlens_render::scene::Scene::new(width, height)),
        }
    }

    /// Renders the brushable timeline as SVG, reflecting the current brush.
    pub fn render_timeline(&self, width: f64, height: f64) -> String {
        let timeline = self.timeline();
        let brush = self.view.brush().map(|w| {
            let extent = self.view.extent();
            let mut b = Brush::new((
                extent.start().seconds() as f64,
                extent.end().seconds() as f64,
            ));
            b.select(w.start().seconds() as f64, w.end().seconds() as f64);
            b
        });
        to_svg(&TimelineView::new(width, height).render(timeline, brush.as_ref()))
    }

    /// Renders the full multi-view dashboard as SVG.
    pub fn render_dashboard(&self, width: f64, height: f64) -> String {
        let mut dash = Dashboard::new(width, height).detail_metric(self.view.detail_metric());
        let focus = self.focus_jobs();
        if !focus.is_empty() {
            dash = dash.focus(focus);
        }
        to_svg(&dash.render_with_timeline(
            &self.dataset,
            self.view.selected_timestamp(),
            &self.timeline,
        ))
    }

    /// The jobs the detail sidebar should show: pinned jobs plus the
    /// selected job, de-duplicated.
    fn focus_jobs(&self) -> Vec<JobId> {
        let mut out: Vec<JobId> = self.view.pinned_jobs().to_vec();
        if let Some(job) = self.view.selected_job() {
            if !out.contains(&job) {
                out.insert(0, job);
            }
        }
        out
    }

    /// Jumps the snapshot to the first timestamp (on the batch grid) at which
    /// any job is running — a convenience for "show me something".
    pub fn jump_to_first_activity(&mut self) {
        let active = batchlens_trace::stats::active_batch_timestamps(&self.dataset);
        if let Some(&t) = active.first() {
            self.apply(Event::SelectTimestamp(t));
        }
    }

    /// The selected timestamp (convenience).
    pub fn now(&self) -> Timestamp {
        self.view.selected_timestamp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;
    use batchlens_trace::Metric;

    #[test]
    fn new_session_spans_dataset() {
        let ds = scenario::fig3b(1).run().unwrap();
        let span = ds.span().unwrap();
        let app = BatchLens::new(ds);
        assert_eq!(app.view().extent(), span);
    }

    #[test]
    fn interactions_drive_renders() {
        let ds = scenario::fig3b(2).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3B));
        let bubble = app.render_bubble(600.0, 600.0);
        assert!(bubble.contains("<circle"));

        // No job selected: the line chart is an empty scene.
        let empty = app.render_line_chart(400.0, 200.0);
        assert!(!empty.contains("<polyline"));

        app.apply(Event::SelectJob(scenario::JOB_7901));
        let chart = app.render_line_chart(400.0, 200.0);
        assert!(chart.contains("<polyline"));
    }

    #[test]
    fn brush_switches_line_chart_to_detail() {
        let ds = scenario::fig3b(3).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3B));
        app.apply(Event::SelectJob(scenario::JOB_7901));
        let overview = app.render_line_chart(400.0, 200.0);
        app.apply(Event::BrushTime(
            TimeRange::new(Timestamp::new(45600), Timestamp::new(46800)).unwrap(),
        ));
        let detail = app.render_line_chart(400.0, 200.0);
        // Both render; the detail window is narrower so it typically has
        // fewer-or-different points — at minimum both contain polylines.
        assert!(overview.contains("<polyline"));
        assert!(detail.contains("<polyline"));
    }

    #[test]
    fn diagnose_reports_running_jobs() {
        let ds = scenario::fig3c(4).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3C));
        let diagnoses = app.diagnose();
        assert!(diagnoses.iter().any(|d| d.job == scenario::JOB_11939));
    }

    #[test]
    fn dashboard_renders_end_to_end() {
        let ds = scenario::fig3a(5).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3A));
        app.apply(Event::SetDetailMetric(Metric::Memory));
        let svg = app.render_dashboard(1200.0, 800.0);
        assert!(svg.starts_with("<?xml"));
        assert!(svg.contains("BatchLens @"));
    }

    #[test]
    fn jump_to_first_activity() {
        let ds = scenario::fig3a(6).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.jump_to_first_activity();
        assert!(!app.snapshot().jobs.is_empty());
    }

    #[test]
    fn timeline_reflects_brush() {
        let ds = scenario::fig3b(7).run().unwrap();
        let mut app = BatchLens::new(ds);
        let plain = app.render_timeline(800.0, 100.0);
        app.apply(Event::BrushTime(
            TimeRange::new(Timestamp::new(45600), Timestamp::new(46800)).unwrap(),
        ));
        let brushed = app.render_timeline(800.0, 100.0);
        // The brush overlay adds dim rects.
        assert!(brushed.matches("<rect").count() > plain.matches("<rect").count());
    }

    #[test]
    fn session_log_replays_to_current_view() {
        let ds = scenario::fig3b(8).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3B));
        app.apply(Event::SelectJob(scenario::JOB_7901));
        app.apply(Event::SetDetailMetric(Metric::Memory));
        // The recorded log reconstructs exactly the current view.
        assert_eq!(app.log().replay(), *app.view());
        assert_eq!(app.log().len(), 3);
        // And it survives a JSON round-trip.
        let json = app.log().to_json().unwrap();
        let back = batchlens_sim::scenario::fig3b(8); // unrelated, just exercising import
        let _ = back;
        let restored = crate::session::SessionLog::from_json(&json).unwrap();
        assert_eq!(restored.replay(), *app.view());
    }

    #[test]
    fn anomaly_overlay_surfaces_hovered_machine_spans() {
        let ds = scenario::fig3c(9).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3C));
        let thrashing_machine = app
            .diagnose()
            .into_iter()
            .find(|d| d.job == scenario::JOB_11939)
            .and_then(|d| d.affected_machines.first().copied())
            .expect("fig3c has thrashing machines");
        // Overlay off: nothing, even with a hover.
        app.apply(Event::HoverMachine(thrashing_machine));
        assert!(app.machine_anomalies().is_empty());
        // Overlay on: the hovered thrashing machine surfaces typed spans.
        app.apply(Event::ToggleAnomalies);
        let spans = app.machine_anomalies();
        assert!(
            spans
                .iter()
                .any(|(_, s)| s.kind == batchlens_analytics::detect::AnomalyKind::Thrashing),
            "spans: {spans:?}"
        );
    }

    #[test]
    fn empty_dataset_is_handled() {
        let ds = batchlens_trace::TraceDatasetBuilder::new().build().unwrap();
        let app = BatchLens::new(ds);
        assert!(app.snapshot().jobs.is_empty());
        let svg = app.render_dashboard(800.0, 600.0);
        assert!(svg.contains("<svg"));
    }
}
