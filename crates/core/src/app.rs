//! [`BatchLens`]: the application object binding a dataset to a view state
//! and exposing the analytics/render surface the paper's tool presents.

use batchlens_analytics::aggregate::{ClusterTimeline, JobMetricLines};
use batchlens_analytics::coalloc::CoallocationIndex;
use batchlens_analytics::detect::{AnomalySpan, Detector, Ensemble};
use batchlens_analytics::hierarchy::HierarchySnapshot;
use batchlens_analytics::rootcause::{Diagnosis, RootCauseAnalyzer};
use batchlens_analytics::scrub::SnapshotScrubber;
use batchlens_layout::Brush;
use batchlens_render::bubble::BubbleChart;
use batchlens_render::dashboard::Dashboard;
use batchlens_render::linechart::LineChart;
use batchlens_render::svg::to_svg;
use batchlens_render::timeline::TimelineView;
use batchlens_trace::{JobId, TimeRange, Timestamp, TraceDataset};

use std::sync::Arc;

use parking_lot::Mutex;

use crate::interaction::{reduce, Event};
use crate::session::SessionLog;
use crate::shard::ShardedMonitor;
use crate::stream::StreamMonitor;
use crate::view::ViewState;

/// How many `(version, timestamp)` snapshot/co-allocation results the lens
/// retains: back-and-forth scrubbing between a handful of instants replays
/// from cache instead of thrashing a single-entry memo.
const SNAPSHOT_LRU_CAPACITY: usize = 8;

/// A tiny most-recent-first LRU over `(state version, timestamp)` keys.
/// Linear probing is deliberate: at 8 entries a scan beats any hashing.
#[derive(Debug, Clone)]
struct Lru<T> {
    entries: Vec<((u64, Timestamp), T)>,
}

impl<T> Default for Lru<T> {
    fn default() -> Self {
        Lru {
            entries: Vec::new(),
        }
    }
}

impl<T> Lru<T> {
    fn get(&mut self, key: (u64, Timestamp)) -> Option<&T> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(&self.entries[0].1)
    }

    fn insert(&mut self, key: (u64, Timestamp), value: T) {
        self.entries.retain(|(k, _)| *k != key);
        self.entries.insert(0, (key, value));
        self.entries.truncate(SNAPSHOT_LRU_CAPACITY);
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Memoized per-timestamp analytics: timeline scrubbing revisits the same
/// instants constantly (drag back and forth, re-render after an unrelated
/// event), and both the hierarchy snapshot and the co-allocation index are
/// pure functions of `(source state version, timestamp)` — batch datasets
/// are version 0 forever, live monitors bump on every ingest — so recent
/// results are kept in small LRUs and replayed on key match. Misses are
/// computed by the shared [`SnapshotScrubber`], which advances by interval
/// entry/exit deltas instead of rebuilding, in batch and live mode alike.
#[derive(Debug, Default, Clone)]
struct SnapshotCache {
    hierarchy: Lru<HierarchySnapshot>,
    coalloc: Lru<CoallocationIndex>,
    /// Shared transactional frame captures keyed by
    /// `(source state version, timestamp)` and handed out as `Arc`s: N
    /// concurrent sessions rendering the same live instant pay **one**
    /// single-lock capture, not N (see [`BatchLens::frame_at`]).
    frames: Lru<Arc<batchlens_trace::QueryFrame>>,
    /// Cluster-wide overlay keyed by the window it was detected over — the
    /// most expensive of the memoized products (full-cluster ensemble
    /// fan-out), and like the others a pure function of its key.
    overlay: Option<(
        TimeRange,
        Vec<batchlens_analytics::detect::MachineDetection>,
    )>,
    /// The delta engine feeding LRU misses.
    scrub: SnapshotScrubber,
    hits: u64,
    misses: u64,
    /// Frame-cache counters, separate from the snapshot/coalloc pair so a
    /// serving layer can report its frame deduplication rate directly.
    frame_hits: u64,
    frame_misses: u64,
}

/// A BatchLens session over one dataset.
#[derive(Debug)]
pub struct BatchLens {
    dataset: TraceDataset,
    view: ViewState,
    analyzer: RootCauseAnalyzer,
    log: SessionLog,
    /// The aggregated cluster timeline, built once per dataset: the dataset
    /// is immutable, so every timeline/dashboard render reuses it.
    timeline: ClusterTimeline,
    /// Last snapshot/co-allocation result keyed by timestamp (interior
    /// mutability so the read-only accessors stay `&self`).
    cache: Mutex<SnapshotCache>,
    /// When attached, the lens is **live-backed**: snapshots and
    /// co-allocation are computed from this source's rolling window
    /// instead of the batch dataset.
    live: Option<LiveSource>,
}

/// The live snapshot source behind a lens: one [`StreamMonitor`], or a
/// [`ShardedMonitor`] facade merging several. Both answer the same
/// [`batchlens_trace::DatasetQuery`] surface and the same alert-cursor
/// surface ([`crate::stream::AlertSource`]), so every lens consumer —
/// snapshots, frames, serving-layer sessions — works identically against
/// either.
#[derive(Debug, Clone)]
pub enum LiveSource {
    /// A single online monitor.
    Single(Arc<StreamMonitor>),
    /// A machine-id-hash sharded facade.
    Sharded(Arc<ShardedMonitor>),
}

impl LiveSource {
    /// The source's state version (summed across shards when sharded).
    pub fn state_version(&self) -> u64 {
        use batchlens_trace::DatasetQuery;
        match self {
            LiveSource::Single(m) => m.state_version(),
            LiveSource::Sharded(s) => s.state_version(),
        }
    }

    /// The alert-cursor surface of the source.
    pub fn alert_source(&self) -> &dyn crate::stream::AlertSource {
        match self {
            LiveSource::Single(m) => m.as_ref(),
            LiveSource::Sharded(s) => s.as_ref(),
        }
    }

    /// Whether the source's durability layer is trustworthy right now:
    /// [`StreamMonitor::wal_healthy`] for a single monitor, **every**
    /// shard healthy for a sharded one.
    pub fn wal_healthy(&self) -> bool {
        match self {
            LiveSource::Single(m) => m.wal_healthy(),
            LiveSource::Sharded(s) => s.wal_healthy(),
        }
    }

    /// Failed WAL appends/syncs per shard, ascending by shard index (one
    /// entry for a single monitor). Empty only when the source vanished —
    /// readiness probes treat any non-zero entry as degraded.
    pub fn shard_wal_errors(&self) -> Vec<u64> {
        match self {
            LiveSource::Single(m) => vec![m.wal_errors()],
            LiveSource::Sharded(s) => s.shard_wal_errors(),
        }
    }

    /// Per-shard ingested-record counts (one entry for a single monitor).
    pub fn shard_ingested(&self) -> Vec<u64> {
        match self {
            LiveSource::Single(m) => vec![m.ingested()],
            LiveSource::Sharded(s) => (0..s.shard_count())
                .map(|i| s.shard(i).ingested())
                .collect(),
        }
    }
}

impl Clone for BatchLens {
    fn clone(&self) -> Self {
        BatchLens {
            dataset: self.dataset.clone(),
            view: self.view.clone(),
            analyzer: self.analyzer,
            log: self.log.clone(),
            timeline: self.timeline.clone(),
            cache: Mutex::new(self.cache.lock().clone()),
            live: self.live.clone(),
        }
    }
}

impl BatchLens {
    /// Creates a session; the view extent is the dataset's full span (or the
    /// 24-hour window when the dataset is empty).
    pub fn new(dataset: TraceDataset) -> Self {
        let extent = dataset.span().unwrap_or_else(TimeRange::full_day);
        let timeline = ClusterTimeline::build(&dataset);
        BatchLens {
            dataset,
            view: ViewState::new(extent),
            analyzer: RootCauseAnalyzer::new(),
            log: SessionLog::new(extent),
            timeline,
            cache: Mutex::new(SnapshotCache::default()),
            live: None,
        }
    }

    /// Creates a session over `dataset` resuming a previously recorded
    /// interaction log: the view state is `log.replay()`, and further events
    /// append to the restored log — the restore half of
    /// [`crate::durability`]'s dump/restore.
    pub fn with_session(dataset: TraceDataset, log: SessionLog) -> Self {
        let timeline = ClusterTimeline::build(&dataset);
        BatchLens {
            dataset,
            view: log.replay(),
            analyzer: RootCauseAnalyzer::new(),
            log,
            timeline,
            cache: Mutex::new(SnapshotCache::default()),
            live: None,
        }
    }

    /// Switches the lens into **live mode**: the hierarchy snapshot and
    /// co-allocation index are computed from `monitor`'s rolling window
    /// (via [`StreamMonitor::live_view`], the same [`batchlens_trace::DatasetQuery`]
    /// surface the batch dataset implements) instead of the batch dataset.
    /// Timeline, line charts and the other dataset-bound views keep serving
    /// the batch data, so a live overlay composes with historical context.
    ///
    /// Live results **are** memoized, keyed by
    /// `(monitor state version, timestamp)`
    /// ([`StreamMonitor::state_version`]): while the monitor idles its
    /// version is frozen, so repeated renders of the same instant replay
    /// from cache for free; any ingest bumps the version and the next
    /// render recomputes. Misses advance the shared delta scrubber, which
    /// rebases through one single-lock
    /// [`batchlens_trace::DatasetQuery::frame`] whenever the version moved
    /// — so each cached product is a transactionally consistent capture of
    /// one window state.
    pub fn attach_live_monitor(&mut self, monitor: Arc<StreamMonitor>) {
        self.live = Some(LiveSource::Single(monitor));
        self.reset_snapshot_state();
    }

    /// Switches the lens into live mode over a [`ShardedMonitor`] facade:
    /// identical to [`BatchLens::attach_live_monitor`], except snapshots,
    /// frames and alert cursors answer from the merged shard state (frames
    /// via the facade's one-version-cut capture).
    pub fn attach_sharded_monitor(&mut self, monitor: Arc<ShardedMonitor>) {
        self.live = Some(LiveSource::Sharded(monitor));
        self.reset_snapshot_state();
    }

    /// Leaves live mode, returning to batch-backed snapshots. The monitor
    /// (if any, and unsharded) is returned to the caller.
    pub fn detach_live_monitor(&mut self) -> Option<Arc<StreamMonitor>> {
        let source = self.live.take();
        self.reset_snapshot_state();
        match source {
            Some(LiveSource::Single(m)) => Some(m),
            _ => None,
        }
    }

    /// Leaves live mode, returning whatever source was attached.
    pub fn detach_live_source(&mut self) -> Option<LiveSource> {
        let source = self.live.take();
        self.reset_snapshot_state();
        source
    }

    /// The attached live source (single or sharded), when in live mode.
    pub fn live_source(&self) -> Option<&LiveSource> {
        self.live.as_ref()
    }

    /// Drops the memoized snapshots and resets the scrubber: version
    /// numbering is per-source, so nothing memoized against the old source
    /// may survive a source switch.
    fn reset_snapshot_state(&mut self) {
        let mut cache = self.cache.lock();
        cache.hierarchy.clear();
        cache.coalloc.clear();
        cache.frames.clear();
        cache.scrub.reset();
    }

    /// The snapshot-source state version the memo keys carry: the attached
    /// monitor's [`StreamMonitor::state_version`] in live mode, the
    /// immutable dataset's constant 0 otherwise.
    fn source_version(&self) -> u64 {
        self.live.as_ref().map_or(0, LiveSource::state_version)
    }

    /// The attached live monitor, when the lens is in live mode over a
    /// single (unsharded) monitor. Sharded sources answer through
    /// [`BatchLens::live_source`] instead.
    pub fn live_monitor(&self) -> Option<&Arc<StreamMonitor>> {
        match self.live.as_ref() {
            Some(LiveSource::Single(m)) => Some(m),
            _ => None,
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &TraceDataset {
        &self.dataset
    }

    /// The current view state.
    pub fn view(&self) -> &ViewState {
        &self.view
    }

    /// Applies an interaction; returns whether the view changed. Every event
    /// is appended to the session log regardless of whether it changed the
    /// view, so the log is a faithful record of what the user did.
    pub fn apply(&mut self, event: Event) -> bool {
        self.log.record(event);
        reduce(&mut self.view, event)
    }

    /// The interaction log recorded so far. Serialize it with
    /// [`SessionLog::to_json`] to attach to a support ticket, or replay it to
    /// reconstruct this exact view.
    pub fn log(&self) -> &SessionLog {
        &self.log
    }

    /// The hierarchy snapshot at the selected timestamp.
    ///
    /// Memoized in an [`SNAPSHOT_LRU_CAPACITY`]-entry LRU keyed by
    /// `(source state version, timestamp)`: scrubbing back and forth across
    /// a few instants replays every revisit from cache (a single-entry memo
    /// would thrash), and in live mode an idle monitor serves repeated
    /// frames for free while any ingest invalidates by version. Misses are
    /// computed by the shared delta scrubber
    /// ([`batchlens_analytics::scrub::SnapshotScrubber`]) — O(Δ log k) per
    /// scrub step off the previous instant instead of a from-scratch
    /// rebuild, in batch and live mode alike, bit-identical to
    /// [`HierarchySnapshot::at`].
    pub fn snapshot(&self) -> HierarchySnapshot {
        let at = self.view.selected_timestamp();
        let version = self.source_version();
        let mut cache = self.cache.lock();
        if let Some(snap) = cache.hierarchy.get((version, at)) {
            let snap = snap.clone();
            cache.hits += 1;
            return snap;
        }
        cache.misses += 1;
        let cache = &mut *cache;
        let snap = match &self.live {
            Some(LiveSource::Single(monitor)) => {
                let view = monitor.live_view();
                cache.scrub.seek(&view, at);
                cache.scrub.snapshot(&view).clone()
            }
            Some(LiveSource::Sharded(sharded)) => {
                let source = sharded.as_ref();
                cache.scrub.seek(source, at);
                cache.scrub.snapshot(source).clone()
            }
            None => {
                cache.scrub.seek(&self.dataset, at);
                cache.scrub.snapshot(&self.dataset).clone()
            }
        };
        // Key by the version the scrubber actually captured: under
        // concurrent live ingest it may be newer than the probe above.
        cache
            .hierarchy
            .insert((cache.scrub.version(), at), snap.clone());
        snap
    }

    /// The co-allocation index at the selected timestamp, memoized and
    /// delta-maintained exactly like [`BatchLens::snapshot`] (same LRU
    /// policy, same scrubber, bit-identical to [`CoallocationIndex::at`]).
    pub fn coallocation(&self) -> CoallocationIndex {
        let at = self.view.selected_timestamp();
        let version = self.source_version();
        let mut cache = self.cache.lock();
        if let Some(idx) = cache.coalloc.get((version, at)) {
            let idx = idx.clone();
            cache.hits += 1;
            return idx;
        }
        cache.misses += 1;
        let cache = &mut *cache;
        match &self.live {
            Some(LiveSource::Single(monitor)) => cache.scrub.seek(&monitor.live_view(), at),
            Some(LiveSource::Sharded(sharded)) => cache.scrub.seek(sharded.as_ref(), at),
            None => cache.scrub.seek(&self.dataset, at),
        }
        let idx = cache.scrub.coalloc().clone();
        cache
            .coalloc
            .insert((cache.scrub.version(), at), idx.clone());
        idx
    }

    /// Every structural query at the selected timestamp as one
    /// transactionally consistent [`batchlens_trace::QueryFrame`]: in live
    /// mode the monitor lock is taken **once** for the whole frame
    /// (hierarchy + co-allocation + utilization + alive-set probes can
    /// never disagree about the window state); in batch mode the immutable
    /// dataset answers the same surface trivially consistently. Feed it to
    /// [`HierarchySnapshot::from_frame`] /
    /// [`CoallocationIndex::from_frame`] to render a whole dashboard frame
    /// from one capture. Shorthand for [`BatchLens::frame_at`] at the
    /// selected timestamp — shared and deduplicated the same way.
    pub fn frame(&self) -> Arc<batchlens_trace::QueryFrame> {
        self.frame_at(self.view.selected_timestamp())
    }

    /// The transactional frame capture at an explicit timestamp, shared
    /// across consumers.
    ///
    /// **The frame-cache sharing rule:** captures are memoized in a small
    /// LRU keyed by `(source state version, timestamp)` and handed out as
    /// [`Arc`]s, and the capture on a miss runs while the cache lock is
    /// held — so any number of concurrent readers (a serving layer's
    /// sessions, worker threads, overlays) asking for the same instant of
    /// the same source state coalesce onto **exactly one** underlying
    /// single-lock capture and share one immutable frame. Two frames for
    /// the same key are therefore always the same allocation, and every
    /// product rendered from one frame is internally consistent at that
    /// `(version, timestamp)` — a torn frame across products is
    /// impossible by construction. An ingest on the attached monitor bumps
    /// the version, so the next request captures fresh rather than serving
    /// a stale instant.
    ///
    /// The explicit-timestamp form exists because sessions sharing one
    /// lens each scrub their own instant: the key is the timestamp asked
    /// for, not this lens's selected one. Hit/miss counts are reported by
    /// [`BatchLens::frame_cache_stats`].
    pub fn frame_at(&self, at: Timestamp) -> Arc<batchlens_trace::QueryFrame> {
        use batchlens_trace::DatasetQuery;
        let version = self.source_version();
        let mut cache = self.cache.lock();
        if let Some(frame) = cache.frames.get((version, at)) {
            let frame = Arc::clone(frame);
            cache.frame_hits += 1;
            return frame;
        }
        cache.frame_misses += 1;
        // Captured under the cache lock deliberately (the sharing rule
        // above): concurrent requests for the same instant wait here and
        // then hit, instead of racing N captures.
        let frame = Arc::new(match &self.live {
            Some(LiveSource::Single(monitor)) => monitor.live_view().frame(at),
            // The facade's override: all shards captured at one version
            // cut under the exclusive epoch gate.
            Some(LiveSource::Sharded(sharded)) => sharded.frame(at),
            None => self.dataset.frame(at),
        });
        // Key by the version the capture actually saw: under concurrent
        // live ingest it may be newer than the probe above.
        cache
            .frames
            .insert((frame.version(), at), Arc::clone(&frame));
        frame
    }

    ///`(hits, misses)` of the per-timestamp snapshot/co-allocation cache —
    /// observability for the scrubbing path (and its tests).
    pub fn snapshot_cache_stats(&self) -> (u64, u64) {
        let cache = self.cache.lock();
        (cache.hits, cache.misses)
    }

    /// `(hits, misses)` of the shared frame cache ([`BatchLens::frame_at`])
    /// — the deduplication rate a serving layer reports: `hits / (hits +
    /// misses)` is the fraction of requests that shared another request's
    /// capture.
    pub fn frame_cache_stats(&self) -> (u64, u64) {
        let cache = self.cache.lock();
        (cache.frame_hits, cache.frame_misses)
    }

    /// The aggregated cluster timeline (cached: built once per dataset).
    pub fn timeline(&self) -> &ClusterTimeline {
        &self.timeline
    }

    /// Root-cause diagnoses for every job running at the selected timestamp.
    pub fn diagnose(&self) -> Vec<Diagnosis> {
        self.analyzer
            .analyze(&self.dataset, self.view.selected_timestamp())
    }

    /// Detector anomaly spans for the hovered machine over the effective
    /// window, when the anomaly overlay is enabled
    /// ([`crate::interaction::Event::ToggleAnomalies`]): the standard
    /// ensemble on each metric series plus the paired-series thrashing
    /// kernel on CPU/memory. Empty when the overlay is off or nothing is
    /// hovered.
    pub fn machine_anomalies(&self) -> Vec<(batchlens_trace::Metric, AnomalySpan)> {
        use batchlens_trace::Metric;
        if !self.view.show_anomalies() {
            return Vec::new();
        }
        let Some(machine) = self.view.hovered_machine() else {
            return Vec::new();
        };
        let Some(mv) = self.dataset.machine(machine) else {
            return Vec::new();
        };
        let window = self.view.effective_window();
        let ensemble = Ensemble::standard();
        let mut out = Vec::new();
        for metric in Metric::ALL {
            if let Some(series) = mv.usage(metric) {
                for span in ensemble.detect(&series.slice(&window)) {
                    out.push((metric, span));
                }
            }
        }
        if let (Some(cpu), Some(mem)) = (mv.usage(Metric::Cpu), mv.usage(Metric::Memory)) {
            for span in self
                .analyzer
                .thrashing
                .detect(&cpu.slice(&window), &mem.slice(&window))
            {
                out.push((Metric::Memory, span));
            }
        }
        out
    }

    /// The cluster-wide anomaly overlay: [`Ensemble::standard`] spans for
    /// **every** machine over the effective window, computed by the parallel
    /// [`batchlens_analytics::detect::detect_all_machines`] fan-out
    /// (process-default worker count; results in machine-id order,
    /// bit-identical at any thread count). Empty when the overlay is off
    /// ([`crate::interaction::Event::ToggleAnomalies`]).
    pub fn cluster_anomalies(&self) -> Vec<batchlens_analytics::detect::MachineDetection> {
        if !self.view.show_anomalies() {
            return Vec::new();
        }
        let window = self.view.effective_window();
        // Probe-and-release: the fan-out below is the expensive product, so
        // it runs with the cache unlocked — a concurrent snapshot() or
        // coallocation() never waits behind full-cluster detection. Two
        // threads missing the same window may both compute (same pure
        // result; last insert wins), which is the cheaper failure mode.
        {
            let mut cache = self.cache.lock();
            if let Some((_, overlay)) = cache.overlay.as_ref().filter(|(w, _)| *w == window) {
                let overlay = overlay.clone();
                cache.hits += 1;
                return overlay;
            }
            cache.misses += 1;
        }
        let overlay = batchlens_analytics::detect::detect_all_machines(
            &self.dataset,
            &Ensemble::standard(),
            Some(&window),
            0,
        );
        self.cache.lock().overlay = Some((window, overlay.clone()));
        overlay
    }

    /// The live anomaly overlay: the attached monitor's currently retained
    /// typed [`crate::stream::Alert`]s (oldest first), without draining
    /// them — polling renders can coexist with a draining consumer. Empty
    /// when the overlay is off ([`crate::interaction::Event::ToggleAnomalies`])
    /// or no monitor is attached. The streaming counterpart of
    /// [`BatchLens::cluster_anomalies`], fed by the same detector kernels.
    pub fn live_alerts(&self) -> Vec<crate::stream::Alert> {
        if !self.view.show_anomalies() {
            return Vec::new();
        }
        match self.live.as_ref() {
            Some(LiveSource::Single(m)) => m.peek_alerts(),
            Some(LiveSource::Sharded(s)) => s.peek_alerts(),
            None => Vec::new(),
        }
    }

    /// The line-chart data for the selected job (or `None` when no job is
    /// selected or it has no data in the effective window).
    pub fn selected_job_lines(&self) -> Option<JobMetricLines> {
        let job = self.view.selected_job()?;
        JobMetricLines::build(
            &self.dataset,
            job,
            self.view.detail_metric(),
            &self.view.effective_window(),
        )
    }

    /// Renders the hierarchical bubble chart as SVG.
    pub fn render_bubble(&self, width: f64, height: f64) -> String {
        to_svg(&BubbleChart::new(width, height).render(&self.snapshot()))
    }

    /// Renders the selected job's line chart as SVG, or an empty-scene SVG
    /// when no job is selected.
    pub fn render_line_chart(&self, width: f64, height: f64) -> String {
        match self.selected_job_lines() {
            Some(lines) => {
                let window = self.view.effective_window();
                let chart = if self.view.brush().is_some() {
                    LineChart::new(width, height).detail()
                } else {
                    LineChart::new(width, height).overview()
                };
                to_svg(&chart.render(&lines, &window))
            }
            None => to_svg(&batchlens_render::scene::Scene::new(width, height)),
        }
    }

    /// Renders the hovered machine's node-detail view (the paper's hover
    /// "zoom-in refresh"): the machine's three metric series over the
    /// effective window with a band per co-located job. Returns an
    /// empty-scene SVG when no machine is hovered.
    pub fn render_node_detail(&self, width: f64, height: f64) -> String {
        match self.view.hovered_machine() {
            Some(machine) => to_svg(
                &batchlens_render::node_detail::NodeDetail::new(width, height).render(
                    &self.dataset,
                    machine,
                    &self.view.effective_window(),
                ),
            ),
            None => to_svg(&batchlens_render::scene::Scene::new(width, height)),
        }
    }

    /// Renders the brushable timeline as SVG, reflecting the current brush.
    pub fn render_timeline(&self, width: f64, height: f64) -> String {
        let timeline = self.timeline();
        let brush = self.view.brush().map(|w| {
            let extent = self.view.extent();
            let mut b = Brush::new((
                extent.start().seconds() as f64,
                extent.end().seconds() as f64,
            ));
            b.select(w.start().seconds() as f64, w.end().seconds() as f64);
            b
        });
        to_svg(&TimelineView::new(width, height).render(timeline, brush.as_ref()))
    }

    /// Renders the full multi-view dashboard as SVG.
    pub fn render_dashboard(&self, width: f64, height: f64) -> String {
        let mut dash = Dashboard::new(width, height).detail_metric(self.view.detail_metric());
        let focus = self.focus_jobs();
        if !focus.is_empty() {
            dash = dash.focus(focus);
        }
        to_svg(&dash.render_with_timeline(
            &self.dataset,
            self.view.selected_timestamp(),
            &self.timeline,
        ))
    }

    /// The jobs the detail sidebar should show: pinned jobs plus the
    /// selected job, de-duplicated.
    fn focus_jobs(&self) -> Vec<JobId> {
        let mut out: Vec<JobId> = self.view.pinned_jobs().to_vec();
        if let Some(job) = self.view.selected_job() {
            if !out.contains(&job) {
                out.insert(0, job);
            }
        }
        out
    }

    /// Jumps the snapshot to the first timestamp (on the batch grid) at which
    /// any job is running — a convenience for "show me something".
    pub fn jump_to_first_activity(&mut self) {
        let active = batchlens_trace::stats::active_batch_timestamps(&self.dataset);
        if let Some(&t) = active.first() {
            self.apply(Event::SelectTimestamp(t));
        }
    }

    /// The selected timestamp (convenience).
    pub fn now(&self) -> Timestamp {
        self.view.selected_timestamp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;
    use batchlens_trace::Metric;

    #[test]
    fn new_session_spans_dataset() {
        let ds = scenario::fig3b(1).run().unwrap();
        let span = ds.span().unwrap();
        let app = BatchLens::new(ds);
        assert_eq!(app.view().extent(), span);
    }

    #[test]
    fn interactions_drive_renders() {
        let ds = scenario::fig3b(2).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3B));
        let bubble = app.render_bubble(600.0, 600.0);
        assert!(bubble.contains("<circle"));

        // No job selected: the line chart is an empty scene.
        let empty = app.render_line_chart(400.0, 200.0);
        assert!(!empty.contains("<polyline"));

        app.apply(Event::SelectJob(scenario::JOB_7901));
        let chart = app.render_line_chart(400.0, 200.0);
        assert!(chart.contains("<polyline"));
    }

    #[test]
    fn brush_switches_line_chart_to_detail() {
        let ds = scenario::fig3b(3).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3B));
        app.apply(Event::SelectJob(scenario::JOB_7901));
        let overview = app.render_line_chart(400.0, 200.0);
        app.apply(Event::BrushTime(
            TimeRange::new(Timestamp::new(45600), Timestamp::new(46800)).unwrap(),
        ));
        let detail = app.render_line_chart(400.0, 200.0);
        // Both render; the detail window is narrower so it typically has
        // fewer-or-different points — at minimum both contain polylines.
        assert!(overview.contains("<polyline"));
        assert!(detail.contains("<polyline"));
    }

    #[test]
    fn diagnose_reports_running_jobs() {
        let ds = scenario::fig3c(4).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3C));
        let diagnoses = app.diagnose();
        assert!(diagnoses.iter().any(|d| d.job == scenario::JOB_11939));
    }

    #[test]
    fn dashboard_renders_end_to_end() {
        let ds = scenario::fig3a(5).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3A));
        app.apply(Event::SetDetailMetric(Metric::Memory));
        let svg = app.render_dashboard(1200.0, 800.0);
        assert!(svg.starts_with("<?xml"));
        assert!(svg.contains("BatchLens @"));
    }

    #[test]
    fn jump_to_first_activity() {
        let ds = scenario::fig3a(6).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.jump_to_first_activity();
        assert!(!app.snapshot().jobs.is_empty());
    }

    #[test]
    fn timeline_reflects_brush() {
        let ds = scenario::fig3b(7).run().unwrap();
        let mut app = BatchLens::new(ds);
        let plain = app.render_timeline(800.0, 100.0);
        app.apply(Event::BrushTime(
            TimeRange::new(Timestamp::new(45600), Timestamp::new(46800)).unwrap(),
        ));
        let brushed = app.render_timeline(800.0, 100.0);
        // The brush overlay adds dim rects.
        assert!(brushed.matches("<rect").count() > plain.matches("<rect").count());
    }

    #[test]
    fn session_log_replays_to_current_view() {
        let ds = scenario::fig3b(8).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3B));
        app.apply(Event::SelectJob(scenario::JOB_7901));
        app.apply(Event::SetDetailMetric(Metric::Memory));
        // The recorded log reconstructs exactly the current view.
        assert_eq!(app.log().replay(), *app.view());
        assert_eq!(app.log().len(), 3);
        // And it survives a JSON round-trip.
        let json = app.log().to_json().unwrap();
        let back = batchlens_sim::scenario::fig3b(8); // unrelated, just exercising import
        let _ = back;
        let restored = crate::session::SessionLog::from_json(&json).unwrap();
        assert_eq!(restored.replay(), *app.view());
    }

    #[test]
    fn anomaly_overlay_surfaces_hovered_machine_spans() {
        let ds = scenario::fig3c(9).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3C));
        let thrashing_machine = app
            .diagnose()
            .into_iter()
            .find(|d| d.job == scenario::JOB_11939)
            .and_then(|d| d.affected_machines.first().copied())
            .expect("fig3c has thrashing machines");
        // Overlay off: nothing, even with a hover.
        app.apply(Event::HoverMachine(thrashing_machine));
        assert!(app.machine_anomalies().is_empty());
        // Overlay on: the hovered thrashing machine surfaces typed spans.
        app.apply(Event::ToggleAnomalies);
        let spans = app.machine_anomalies();
        assert!(
            spans
                .iter()
                .any(|(_, s)| s.kind == batchlens_analytics::detect::AnomalyKind::Thrashing),
            "spans: {spans:?}"
        );
    }

    #[test]
    fn snapshot_scrubbing_is_memoized() {
        let ds = scenario::fig3b(10).run().unwrap();
        let mut app = BatchLens::new(ds);
        let t0 = scenario::T_FIG3B;
        let t1 = t0 + batchlens_trace::TimeDelta::minutes(10);
        app.apply(Event::SelectTimestamp(t0));
        let a = app.snapshot();
        let _ = app.coallocation();
        // Same instant again: replayed from cache, equal value.
        let b = app.snapshot();
        assert_eq!(a, b);
        let (hits, misses) = app.snapshot_cache_stats();
        assert_eq!((hits, misses), (1, 2));
        // Scrub away and back: the revisit replays from the LRU — the
        // single-entry memo this replaced would have thrashed here.
        app.apply(Event::SelectTimestamp(t1));
        let c = app.snapshot();
        app.apply(Event::SelectTimestamp(t0));
        let d = app.snapshot();
        assert_eq!(a, d);
        assert_ne!(c.at, d.at);
        let (hits, misses) = app.snapshot_cache_stats();
        assert_eq!((hits, misses), (2, 3), "t0 revisit is a hit");
    }

    #[test]
    fn snapshot_lru_survives_back_and_forth_and_evicts_beyond_capacity() {
        let ds = scenario::fig3b(13).run().unwrap();
        let mut app = BatchLens::new(ds);
        let t = |i: i64| scenario::T_FIG3B + batchlens_trace::TimeDelta::minutes(i);
        // First pass over 4 instants: all misses. Second + third passes
        // (backward, then forward): all hits.
        for i in 0..4 {
            app.apply(Event::SelectTimestamp(t(i)));
            let _ = app.snapshot();
        }
        for i in (0..4).rev().chain(0..4) {
            app.apply(Event::SelectTimestamp(t(i)));
            let _ = app.snapshot();
        }
        let (hits, misses) = app.snapshot_cache_stats();
        assert_eq!((hits, misses), (8, 4));
        // A sweep wider than the capacity evicts the oldest: revisiting the
        // very first instant misses again (and recomputes correctly).
        for i in 0..=(super::SNAPSHOT_LRU_CAPACITY as i64) {
            app.apply(Event::SelectTimestamp(t(i)));
            let _ = app.snapshot();
        }
        app.apply(Event::SelectTimestamp(t(0)));
        let evicted = app.snapshot();
        let (_, misses_after) = app.snapshot_cache_stats();
        assert!(misses_after > misses, "t(0) was evicted");
        assert_eq!(
            evicted,
            batchlens_analytics::hierarchy::HierarchySnapshot::at(app.dataset(), t(0))
        );
    }

    #[test]
    fn live_snapshots_memoize_on_version_and_invalidate_on_ingest() {
        use crate::stream::{StreamConfig, StreamMonitor};
        use batchlens_trace::{ServerUsageRecord, TimeDelta, UtilizationTriple};
        use std::sync::Arc;

        let ds = scenario::fig3b(14).run().unwrap();
        let at = scenario::T_FIG3B;
        let monitor = Arc::new(
            StreamMonitor::new(StreamConfig {
                horizon: TimeDelta::hours(72),
                ..Default::default()
            })
            .unwrap(),
        );
        monitor.ingest_instances(ds.instance_records().iter().copied());
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(at));
        app.attach_live_monitor(Arc::clone(&monitor));
        let (h0, m0) = app.snapshot_cache_stats();
        let first = app.snapshot();
        let second = app.snapshot();
        assert_eq!(first, second);
        let (h1, m1) = app.snapshot_cache_stats();
        assert_eq!(
            (h1 - h0, m1 - m0),
            (1, 1),
            "idle monitor: second render replays from cache"
        );
        // Any ingest bumps the version: same timestamp, fresh computation.
        monitor.ingest(ServerUsageRecord {
            time: at,
            machine: batchlens_trace::MachineId::new(0),
            util: UtilizationTriple::clamped(0.5, 0.5, 0.5),
        });
        let third = app.snapshot();
        let (_, m2) = app.snapshot_cache_stats();
        assert_eq!(m2, m1 + 1, "version change invalidates");
        // The recompute reflects the new state and matches from-scratch.
        assert_eq!(
            third,
            batchlens_analytics::hierarchy::HierarchySnapshot::at(&monitor.live_view(), at)
        );
    }

    #[test]
    fn frame_products_match_individual_renders() {
        use batchlens_analytics::coalloc::CoallocationIndex;
        use batchlens_analytics::hierarchy::HierarchySnapshot;
        let ds = scenario::fig3b(15).run().unwrap();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3B));
        let frame = app.frame();
        assert_eq!(frame.at(), scenario::T_FIG3B);
        assert_eq!(HierarchySnapshot::from_frame(&frame), app.snapshot());
        assert_eq!(CoallocationIndex::from_frame(&frame), app.coallocation());
        assert!(frame.mean_utilization().is_some());
    }

    /// PR 7's sharing rule: frames for the same `(version, timestamp)` are
    /// one allocation (one capture), and a live ingest invalidates.
    #[test]
    fn frame_cache_shares_one_capture_per_version_and_instant() {
        use crate::stream::{StreamConfig, StreamMonitor};
        use batchlens_trace::{ServerUsageRecord, TimeDelta, UtilizationTriple};

        let ds = scenario::fig3b(16).run().unwrap();
        let at = scenario::T_FIG3B;
        let monitor = Arc::new(
            StreamMonitor::new(StreamConfig {
                horizon: TimeDelta::hours(72),
                ..Default::default()
            })
            .unwrap(),
        );
        monitor.ingest_instances(ds.instance_records().iter().copied());
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(at));
        app.attach_live_monitor(Arc::clone(&monitor));
        let f1 = app.frame_at(at);
        let f2 = app.frame_at(at);
        assert!(
            Arc::ptr_eq(&f1, &f2),
            "same (version, timestamp): one shared capture"
        );
        assert_eq!(app.frame_cache_stats(), (1, 1));
        // A different instant is its own capture; revisiting the first
        // still hits (LRU, not single-entry).
        let f3 = app.frame_at(at + TimeDelta::minutes(5));
        assert!(!Arc::ptr_eq(&f1, &f3));
        assert!(Arc::ptr_eq(&f1, &app.frame_at(at)));
        assert_eq!(app.frame_cache_stats(), (2, 2));
        // Ingest bumps the version: the next request captures fresh.
        monitor.ingest(ServerUsageRecord {
            time: at,
            machine: batchlens_trace::MachineId::new(0),
            util: UtilizationTriple::clamped(0.5, 0.5, 0.5),
        });
        let f4 = app.frame_at(at);
        assert!(!Arc::ptr_eq(&f1, &f4), "version change invalidates");
        assert!(f4.version() > f1.version());
        assert_eq!(app.frame_cache_stats(), (2, 3));
    }

    #[test]
    fn cluster_overlay_covers_every_machine() {
        let ds = scenario::fig3c(12).run().unwrap();
        let machine_count = ds.machine_count();
        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(scenario::T_FIG3C));
        assert!(app.cluster_anomalies().is_empty(), "overlay off");
        app.apply(Event::ToggleAnomalies);
        let overlay = app.cluster_anomalies();
        assert_eq!(overlay.len(), machine_count);
        assert!(overlay.iter().any(|m| m.span_count() > 0));
        // Repeat renders over the same window replay the memoized overlay.
        let (hits_before, misses) = app.snapshot_cache_stats();
        assert_eq!(app.cluster_anomalies(), overlay);
        let (hits_after, misses_after) = app.snapshot_cache_stats();
        assert_eq!(hits_after, hits_before + 1);
        assert_eq!(misses_after, misses);
    }

    #[test]
    fn live_mode_drives_snapshots_from_the_monitor() {
        use crate::stream::{StreamConfig, StreamMonitor};
        use batchlens_trace::{DatasetQuery, TimeDelta};
        use std::sync::Arc;

        let ds = scenario::fig3b(11).run().unwrap();
        let at = scenario::T_FIG3B;
        let monitor = Arc::new(
            StreamMonitor::new(StreamConfig {
                horizon: TimeDelta::hours(72),
                ..Default::default()
            })
            .unwrap(),
        );
        // Replay the batch tables into the monitor as a live stream.
        monitor.ingest_instances(ds.instance_records().iter().copied());
        for ev in ds.machine_events() {
            monitor.ingest_machine_event(*ev);
        }
        for rec in batchlens_analytics::baseline::export_usage_records(&ds) {
            monitor.ingest(rec);
        }
        let batch_snapshot = HierarchySnapshot::at(&ds, at);
        let batch_coalloc = CoallocationIndex::at(&ds, at);

        let mut app = BatchLens::new(ds);
        app.apply(Event::SelectTimestamp(at));
        assert!(app.live_monitor().is_none());
        app.attach_live_monitor(Arc::clone(&monitor));
        assert!(app.live_monitor().is_some());
        // The live-backed snapshot/coalloc equal the batch ones: the two
        // DatasetQuery sources answer identically over the same records.
        assert_eq!(app.snapshot(), batch_snapshot);
        assert_eq!(app.coallocation(), batch_coalloc);
        assert!(!batch_snapshot.jobs.is_empty(), "scenario has running work");
        // The bubble chart renders straight off the live window.
        assert!(app.render_bubble(600.0, 600.0).contains("<circle"));
        // Live alerts surface behind the anomaly toggle, undrained.
        assert!(app.live_alerts().is_empty(), "overlay off");
        app.apply(Event::ToggleAnomalies);
        let alerts = app.live_alerts();
        assert_eq!(alerts, monitor.peek_alerts());
        // Detaching returns to batch-backed (and memoized) snapshots.
        let back = app.detach_live_monitor().expect("monitor attached");
        assert_eq!(
            DatasetQuery::jobs_running_at(&back.live_view(), at),
            DatasetQuery::jobs_running_at(app.dataset(), at)
        );
        assert_eq!(app.snapshot(), batch_snapshot);
        let (_, misses) = app.snapshot_cache_stats();
        assert!(misses > 0, "batch path uses the cache again");
    }

    #[test]
    fn empty_dataset_is_handled() {
        let ds = batchlens_trace::TraceDatasetBuilder::new().build().unwrap();
        let app = BatchLens::new(ds);
        assert!(app.snapshot().jobs.is_empty());
        let svg = app.render_dashboard(800.0, 600.0);
        assert!(svg.contains("<svg"));
    }
}
