//! Whole-lens dump and restore: dataset, session log, and live-monitor
//! state persisted to one directory, so a long-running monitor's
//! write-ahead log can be **compacted into a snapshot plus tail**.
//!
//! A dump directory contains:
//!
//! * the four trace tables in their canonical CSV form (`batch_task.csv`,
//!   `batch_instance.csv`, `server_usage.csv`, `machine_events.csv`),
//! * `dataset/` — the same tables as columnar
//!   [`batchlens_trace::store`] segments (sorted, checksummed,
//!   memory-mappable); [`restore`] prefers this payload when present and
//!   rebuilds the dataset via the lazy [`TraceDataset::open`] path, which
//!   is both faster than a CSV re-parse and bit-exact on every f64,
//! * `machines.json` — explicit machine capacity declarations,
//! * `session.json` — the recorded interaction log,
//! * `monitor/config.json` + `monitor/wal/` — the live monitor's
//!   configuration and its WAL, compacted to a single sealed segment with
//!   sequence numbers preserved (present only when a monitor was dumped).
//!
//! The compacted monitor WAL is the **snapshot** half of a
//! snapshot-plus-tail scheme: [`restore`] replays it through
//! [`StreamMonitor::recover`], and any records the live log accepted
//! *after* the dump (sequence numbers past the dump's last) are the tail —
//! feed them to [`StreamMonitor::apply_replayed`] to catch up. Monitor
//! state round-trips **bit-identically** (the WAL codec is bit-exact);
//! `server_usage` rows round-trip on the trace's native 0.01 % utilization
//! grid, which every CSV-parsed dataset already lies on.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use batchlens_trace::wal::{self, RecoveryReport, WalError};
use batchlens_trace::{csv, store, MachineId, MachineInfo, TraceDatasetBuilder, TraceError};
use batchlens_trace::{Metric, ServerUsageRecord, TraceDataset, UtilizationTriple};

use crate::app::BatchLens;
use crate::session::SessionLog;
use crate::stream::{RecoverError, StreamConfig, StreamMonitor};

/// Why a [`dump`] failed.
#[derive(Debug)]
pub enum DumpError {
    /// A file could not be written.
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The path it failed on.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// The session log or monitor config failed to serialize.
    Serialize(serde_json::Error),
    /// The monitor's WAL could not be compacted.
    Wal(WalError),
    /// The columnar segment payload could not be written.
    Store(TraceError),
    /// The monitor to dump has no WAL attached: its state can only be
    /// persisted by replaying its log, so an unlogged monitor cannot be
    /// dumped.
    MonitorHasNoWal,
}

impl std::fmt::Display for DumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumpError::Io { op, path, source } => {
                write!(f, "dump: {op} {} failed: {source}", path.display())
            }
            DumpError::Serialize(e) => write!(f, "dump: serialize failed: {e}"),
            DumpError::Wal(e) => write!(f, "dump: wal compaction failed: {e}"),
            DumpError::Store(e) => write!(f, "dump: segment store write failed: {e}"),
            DumpError::MonitorHasNoWal => {
                write!(
                    f,
                    "dump: monitor has no wal attached, state cannot be persisted"
                )
            }
        }
    }
}

impl std::error::Error for DumpError {}

impl From<serde_json::Error> for DumpError {
    fn from(e: serde_json::Error) -> DumpError {
        DumpError::Serialize(e)
    }
}

impl From<WalError> for DumpError {
    fn from(e: WalError) -> DumpError {
        DumpError::Wal(e)
    }
}

impl From<TraceError> for DumpError {
    fn from(e: TraceError) -> DumpError {
        DumpError::Store(e)
    }
}

/// Why a [`restore`] failed.
#[derive(Debug)]
pub enum RestoreError {
    /// A dump file could not be read.
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The path it failed on.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// A CSV table or the rebuilt dataset was invalid.
    Trace(TraceError),
    /// `session.json` or `monitor/config.json` was malformed.
    Deserialize(serde_json::Error),
    /// The monitor could not be recovered from the dumped WAL.
    Recover(RecoverError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Io { op, path, source } => {
                write!(f, "restore: {op} {} failed: {source}", path.display())
            }
            RestoreError::Trace(e) => write!(f, "restore: invalid table: {e}"),
            RestoreError::Deserialize(e) => write!(f, "restore: malformed json: {e}"),
            RestoreError::Recover(e) => write!(f, "restore: monitor recovery failed: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<TraceError> for RestoreError {
    fn from(e: TraceError) -> RestoreError {
        RestoreError::Trace(e)
    }
}

impl From<serde_json::Error> for RestoreError {
    fn from(e: serde_json::Error) -> RestoreError {
        RestoreError::Deserialize(e)
    }
}

impl From<RecoverError> for RestoreError {
    fn from(e: RecoverError) -> RestoreError {
        RestoreError::Recover(e)
    }
}

/// What a [`dump`] wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpReport {
    /// Rows written per CSV table: tasks, instances, usage, events.
    pub rows: [usize; 4],
    /// Columnar segment files written into `dataset/`.
    pub segments: usize,
    /// The monitor WAL compaction outcome, when a monitor was dumped. A
    /// non-clean reason means the live log had a torn/corrupt tail and the
    /// dump captured its intact prefix.
    pub monitor: Option<RecoveryReport>,
}

/// A restored lens: the rebuilt dataset + session, and the recovered
/// monitor when the dump contained one.
#[derive(Debug)]
pub struct RestoredLens {
    /// The lens, with the dumped session log replayed into its view state.
    pub lens: BatchLens,
    /// The recovered monitor (no WAL attached — attach a fresh one to
    /// resume logging).
    pub monitor: Option<StreamMonitor>,
    /// The monitor replay outcome, when a monitor was restored.
    pub monitor_report: Option<RecoveryReport>,
}

fn write_file(path: &Path, contents: &str) -> Result<(), DumpError> {
    fs::write(path, contents).map_err(|source| DumpError::Io {
        op: "write",
        path: path.to_path_buf(),
        source,
    })
}

fn read_file(path: &Path) -> Result<String, RestoreError> {
    fs::read_to_string(path).map_err(|source| RestoreError::Io {
        op: "read",
        path: path.to_path_buf(),
        source,
    })
}

/// Opens a CSV table for streaming parse — a buffered line reader, so
/// restore never materializes a multi-gigabyte table as one `String`.
fn open_csv(path: &Path) -> Result<io::BufReader<fs::File>, RestoreError> {
    fs::File::open(path)
        .map(io::BufReader::new)
        .map_err(|source| RestoreError::Io {
            op: "open",
            path: path.to_path_buf(),
            source,
        })
}

/// Reconstructs the flat `server_usage` rows from a dataset's per-machine
/// series (the builder consumed the rows into three aligned series per
/// machine; zipping them back is exact because they share one grid).
fn usage_rows(lens: &BatchLens) -> Vec<ServerUsageRecord> {
    let mut rows = Vec::new();
    for machine in lens.dataset().machines() {
        let (Some(cpu), Some(mem), Some(disk)) = (
            machine.usage(Metric::Cpu),
            machine.usage(Metric::Memory),
            machine.usage(Metric::Disk),
        ) else {
            continue;
        };
        for i in 0..cpu.len() {
            rows.push(ServerUsageRecord {
                time: cpu.times()[i],
                machine: machine.id(),
                util: UtilizationTriple::clamped(
                    cpu.values()[i],
                    mem.values()[i],
                    disk.values()[i],
                ),
            });
        }
    }
    rows.sort_by_key(|r| (r.time, r.machine));
    rows
}

/// Dumps the whole lens state — dataset tables, session log, and (when
/// `monitor` is given) the live monitor's config plus its WAL compacted to
/// a single segment — into `dir`, creating it if needed.
///
/// The monitor must have a WAL attached ([`StreamMonitor::attach_wal`]):
/// its state is persisted *as* that log, synced and compacted with
/// sequence numbers preserved, so a later [`restore`] replays to the
/// bit-identical state and newer live-log records still apply as a tail.
///
/// # Errors
///
/// [`DumpError::MonitorHasNoWal`] for an unlogged monitor; otherwise IO,
/// serialization, or WAL-compaction failures.
pub fn dump(
    dir: &Path,
    lens: &BatchLens,
    monitor: Option<&StreamMonitor>,
) -> Result<DumpReport, DumpError> {
    fs::create_dir_all(dir).map_err(|source| DumpError::Io {
        op: "create dir",
        path: dir.to_path_buf(),
        source,
    })?;

    let ds = lens.dataset();
    let tasks: Vec<_> = ds.task_records().copied().collect();
    let instances = ds.instance_records();
    let usage = usage_rows(lens);
    let events = ds.machine_events();

    write_file(&dir.join("batch_task.csv"), &csv::write_batch_tasks(&tasks))?;
    write_file(
        &dir.join("batch_instance.csv"),
        &csv::write_batch_instances(instances),
    )?;
    write_file(
        &dir.join("server_usage.csv"),
        &csv::write_server_usage(&usage),
    )?;
    write_file(
        &dir.join("machine_events.csv"),
        &csv::write_machine_events(events),
    )?;

    let machines: Vec<(MachineId, MachineInfo)> =
        ds.machines().map(|m| (m.id(), m.info())).collect();
    write_file(
        &dir.join("machines.json"),
        &serde_json::to_string_pretty(&machines)?,
    )?;
    write_file(&dir.join("session.json"), &lens.log().to_json()?)?;

    // The columnar payload: same tables as the CSVs, but sorted, checksummed
    // and memory-mappable, giving restore its fast lazy path.
    let store_report = store::dump_dataset(&dir.join("dataset"), ds)?;

    let mut report = DumpReport {
        rows: [tasks.len(), instances.len(), usage.len(), events.len()],
        segments: store_report.segments,
        monitor: None,
    };
    if let Some(monitor) = monitor {
        let wal_dir = monitor.wal_dir().ok_or(DumpError::MonitorHasNoWal)?;
        monitor.sync_wal();
        let monitor_dir = dir.join("monitor");
        fs::create_dir_all(&monitor_dir).map_err(|source| DumpError::Io {
            op: "create dir",
            path: monitor_dir.clone(),
            source,
        })?;
        write_file(
            &monitor_dir.join("config.json"),
            &serde_json::to_string_pretty(monitor.config())?,
        )?;
        report.monitor = Some(wal::compact(&wal_dir, &monitor_dir.join("wal"))?);
    }
    Ok(report)
}

/// Restores a lens (and monitor, when the dump contains one) from a
/// directory written by [`dump`].
///
/// The dataset is rebuilt from the CSV tables and explicit machine
/// declarations, the session log replays into the view state
/// ([`BatchLens::with_session`]), and the monitor — if dumped — is
/// recovered from the compacted WAL with the dumped configuration. Apply
/// tail records from a newer live log via
/// [`StreamMonitor::apply_replayed`] to catch the monitor up past the
/// dump point.
///
/// # Errors
///
/// IO failures reading the dump, malformed tables/JSON, or an invalid
/// dumped monitor configuration. Corrupt WAL *contents* are not an error —
/// replay stops at the last intact record and the report says so.
pub fn restore(dir: &Path) -> Result<RestoredLens, RestoreError> {
    let log = SessionLog::from_json(&read_file(&dir.join("session.json"))?)?;

    // Prefer the columnar segment payload: lazy mmap-backed open, no
    // re-parse. Dumps from older versions (no `dataset/` directory) fall
    // back to a streaming parse of the canonical CSVs.
    let segment_dir = dir.join("dataset");
    let dataset = if segment_dir.is_dir() {
        TraceDataset::open(&segment_dir)?
    } else {
        let tasks = csv::parse_batch_tasks_reader(open_csv(&dir.join("batch_task.csv"))?)?;
        let instances =
            csv::parse_batch_instances_reader(open_csv(&dir.join("batch_instance.csv"))?)?;
        let usage = csv::parse_server_usage_reader(open_csv(&dir.join("server_usage.csv"))?)?;
        let events = csv::parse_machine_events_reader(open_csv(&dir.join("machine_events.csv"))?)?;
        let machines: Vec<(MachineId, MachineInfo)> =
            serde_json::from_str(&read_file(&dir.join("machines.json"))?)?;
        let mut builder = TraceDatasetBuilder::new();
        for (id, info) in machines {
            builder.declare_machine(id, info);
        }
        builder.extend_tables(tasks, instances, usage, events);
        builder.build()?
    };
    let lens = BatchLens::with_session(dataset, log);

    let monitor_dir = dir.join("monitor");
    let (monitor, monitor_report) = if monitor_dir.is_dir() {
        let cfg: StreamConfig =
            serde_json::from_str(&read_file(&monitor_dir.join("config.json"))?)?;
        let (monitor, report) = StreamMonitor::recover(&monitor_dir.join("wal"), cfg)?;
        (Some(monitor), Some(report))
    } else {
        (None, None)
    };

    Ok(RestoredLens {
        lens,
        monitor,
        monitor_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::Event;
    use batchlens_trace::wal::{WalConfig, WalWriter};
    use batchlens_trace::{
        BatchInstanceRecord, BatchTaskRecord, DatasetQuery, InstanceStatus, JobId, MachineEvent,
        MachineEventRecord, TaskId, TaskStatus, Timestamp,
    };

    fn temp_dump_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "batchlens-dump-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_lens() -> BatchLens {
        let mut b = TraceDatasetBuilder::new();
        b.push_task(BatchTaskRecord {
            create_time: Timestamp::new(0),
            modify_time: Timestamp::new(900),
            job: JobId::new(1),
            task: TaskId::new(1),
            instance_count: 2,
            status: TaskStatus::Terminated,
            plan_cpu: 1.5,
            plan_mem: 0.25,
        });
        for seq in 0..2 {
            b.push_instance(BatchInstanceRecord {
                start_time: Timestamp::new(60),
                end_time: Timestamp::new(600 + 60 * i64::from(seq)),
                job: JobId::new(1),
                task: TaskId::new(1),
                seq,
                total: 2,
                machine: MachineId::new(seq + 1),
                status: InstanceStatus::Terminated,
                cpu_avg: 0.5,
                cpu_max: 0.75,
                mem_avg: 0.25,
                mem_max: 0.5,
            });
        }
        for t in 0..4 {
            b.push_usage(ServerUsageRecord {
                time: Timestamp::new(t * 300),
                machine: MachineId::new(1),
                // On the 0.01 % grid the CSV codec uses, so the dump
                // round-trips exactly.
                util: UtilizationTriple::clamped(0.25, 0.5, 0.75),
            });
        }
        b.push_machine_event(MachineEventRecord {
            time: Timestamp::new(0),
            machine: MachineId::new(2),
            event: MachineEvent::Add,
            capacity_cpu: 64.0,
            capacity_mem: 1.0,
            capacity_disk: 1.0,
        });
        BatchLens::new(b.build().unwrap())
    }

    #[test]
    fn dump_restore_round_trips_lens_and_monitor() {
        let dump_dir = temp_dump_dir("roundtrip");
        let wal_dir = temp_dump_dir("roundtrip-wal");
        let mut lens = sample_lens();
        lens.apply(Event::SelectTimestamp(Timestamp::new(300)));
        lens.apply(Event::SelectJob(JobId::new(1)));

        let monitor = StreamMonitor::new(StreamConfig::default()).unwrap();
        monitor.attach_wal(WalWriter::open(&wal_dir, WalConfig::default()).unwrap());
        for t in 0..6 {
            monitor.ingest(ServerUsageRecord {
                time: Timestamp::new(t * 60),
                machine: MachineId::new(1),
                util: UtilizationTriple::clamped(0.95, 0.3, 0.2),
            });
        }
        monitor.instance_started(
            JobId::new(1),
            TaskId::new(1),
            0,
            MachineId::new(1),
            Timestamp::new(30),
        );

        let report = dump(&dump_dir, &lens, Some(&monitor)).unwrap();
        assert_eq!(report.rows, [1, 2, 4, 1]);
        let wal_report = report.monitor.unwrap();
        assert!(wal_report.reason.is_clean());
        assert_eq!(wal_report.records_replayed, 7);

        let restored = restore(&dump_dir).unwrap();
        assert_eq!(restored.lens.log(), lens.log());
        assert_eq!(restored.lens.view(), lens.view());
        assert_eq!(
            restored.lens.dataset().instance_records(),
            lens.dataset().instance_records()
        );
        assert_eq!(
            restored
                .lens
                .dataset()
                .machine(MachineId::new(2))
                .unwrap()
                .info(),
            lens.dataset().machine(MachineId::new(2)).unwrap().info()
        );
        for t in [0, 300, 600, 900] {
            assert_eq!(
                restored.lens.dataset().frame(Timestamp::new(t)),
                lens.dataset().frame(Timestamp::new(t)),
                "dataset frame({t})"
            );
        }

        let rm = restored.monitor.unwrap();
        assert!(restored.monitor_report.unwrap().reason.is_clean());
        assert_eq!(rm.state_version(), monitor.state_version());
        assert_eq!(rm.total_alerts(), monitor.total_alerts());
        assert_eq!(rm.peek_alerts(), monitor.peek_alerts());
        for t in [0, 150, 300] {
            assert_eq!(
                rm.live_view().frame(Timestamp::new(t)),
                monitor.live_view().frame(Timestamp::new(t)),
                "monitor frame({t})"
            );
        }

        // Snapshot plus tail: the live log keeps growing after the dump;
        // records past the dump's last sequence catch the restored monitor
        // up to the live one, bit-identically.
        let last_dumped = wal_report.last_seq.unwrap();
        monitor.ingest(ServerUsageRecord {
            time: Timestamp::new(360),
            machine: MachineId::new(1),
            util: UtilizationTriple::clamped(0.2, 0.9, 0.1),
        });
        monitor.instance_finished(JobId::new(1), TaskId::new(1), 0, Timestamp::new(400));
        drop(monitor.detach_wal());
        let mut tail = batchlens_trace::wal::WalReader::open(&wal_dir).unwrap();
        for (seq, record) in &mut tail {
            if seq > last_dumped {
                rm.apply_replayed(record);
            }
        }
        assert_eq!(rm.state_version(), monitor.state_version());
        for t in [300, 360, 400] {
            assert_eq!(
                rm.live_view().frame(Timestamp::new(t)),
                monitor.live_view().frame(Timestamp::new(t)),
                "caught-up frame({t})"
            );
        }

        fs::remove_dir_all(&dump_dir).ok();
        fs::remove_dir_all(&wal_dir).ok();
    }

    #[test]
    fn restore_prefers_segment_payload_over_csvs() {
        let dir = temp_dump_dir("segments");
        let lens = sample_lens();
        let report = dump(&dir, &lens, None).unwrap();
        assert!(report.segments >= 4, "dump must write a segment payload");
        assert!(dir.join("dataset").is_dir());

        // Vandalize the CSVs: a segment-preferring restore never reads them.
        for table in [
            "batch_task.csv",
            "batch_instance.csv",
            "server_usage.csv",
            "machine_events.csv",
        ] {
            fs::write(dir.join(table), "not,a,valid,table\n").unwrap();
        }
        let restored = restore(&dir).unwrap();
        assert_eq!(restored.lens.dataset(), lens.dataset());

        // Without the segment payload the same dump falls back to the CSVs
        // and now reports their corruption.
        fs::remove_dir_all(dir.join("dataset")).unwrap();
        assert!(matches!(restore(&dir), Err(RestoreError::Trace(_))));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_fallback_restore_matches_original() {
        let dir = temp_dump_dir("csv-fallback");
        let lens = sample_lens();
        dump(&dir, &lens, None).unwrap();
        fs::remove_dir_all(dir.join("dataset")).unwrap();
        let restored = restore(&dir).unwrap();
        assert_eq!(
            restored.lens.dataset().instance_records(),
            lens.dataset().instance_records()
        );
        for t in [0, 300, 900] {
            assert_eq!(
                restored.lens.dataset().frame(Timestamp::new(t)),
                lens.dataset().frame(Timestamp::new(t))
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_without_monitor_restores_none() {
        let dir = temp_dump_dir("nomonitor");
        let lens = sample_lens();
        let report = dump(&dir, &lens, None).unwrap();
        assert!(report.monitor.is_none());
        let restored = restore(&dir).unwrap();
        assert!(restored.monitor.is_none());
        assert!(restored.monitor_report.is_none());
        assert_eq!(
            restored.lens.dataset().machine_count(),
            lens.dataset().machine_count()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dumping_an_unlogged_monitor_is_an_error() {
        let dir = temp_dump_dir("unlogged");
        let lens = sample_lens();
        let monitor = StreamMonitor::new(StreamConfig::default()).unwrap();
        let err = dump(&dir, &lens, Some(&monitor)).unwrap_err();
        assert!(matches!(err, DumpError::MonitorHasNoWal));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_from_missing_dir_reports_io() {
        let dir = temp_dump_dir("missing");
        let err = restore(&dir).unwrap_err();
        assert!(matches!(err, RestoreError::Io { .. }));
    }
}
