//! # batchlens
//!
//! BatchLens — a visualization approach for analyzing batch jobs in cloud
//! systems (Ruan et al., DATE 2022) — as a headless Rust library.
//!
//! This crate ties the substrate, analytics, layout and render crates into
//! the system the paper describes:
//!
//! * [`app::BatchLens`] owns a [`batchlens_trace::TraceDataset`] and the
//!   current [`view::ViewState`], and exposes the analytics/render surface.
//! * [`interaction`] models every interaction in the paper — select a
//!   timestamp, brush a time range, select a job, hover a machine, switch
//!   the detail metric — as an [`interaction::Event`] applied by a pure
//!   reducer to the [`view::ViewState`]. This is how an interactive tool
//!   becomes testable and reproducible without a browser.
//! * [`pipeline`] is the one-call path the examples use: simulate →
//!   analyze → render.
//! * [`report`] renders the textual case-study report.
//! * [`stream`] is the paper's future-work "real-time online system"
//!   extension: per-machine banks of live incremental detector states (the
//!   same kernels batch detection runs on), O(1) per ingested record.
//!
//! ## Example
//!
//! ```
//! use batchlens::{BatchLens, interaction::Event};
//! use batchlens_sim::scenario;
//! use batchlens_trace::Timestamp;
//!
//! let ds = scenario::fig3b(1).run().unwrap();
//! let mut app = BatchLens::new(ds);
//! app.apply(Event::SelectTimestamp(scenario::T_FIG3B));
//! app.apply(Event::SelectJob(scenario::JOB_7901));
//! let svg = app.render_dashboard(1200.0, 800.0);
//! assert!(svg.contains("<svg"));
//! assert_eq!(app.view().selected_job(), Some(scenario::JOB_7901));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod durability;
pub mod interaction;
pub mod pipeline;
pub mod report;
pub mod session;
pub mod shard;
pub mod stream;
pub mod tour;
pub mod view;

pub use app::BatchLens;
pub use interaction::{Event, Interaction};
pub use pipeline::Pipeline;
pub use session::SessionLog;
pub use tour::{GuidedTour, TourStop};
pub use view::{DetailMetric, ViewState};

// Re-export the workspace crates so downstream users and examples need only
// depend on `batchlens`.
pub use batchlens_analytics as analytics;
pub use batchlens_layout as layout;
pub use batchlens_render as render;
pub use batchlens_sim as sim;
pub use batchlens_trace as trace;
