//! The real-time online extension (the paper's future work §VI: "extend
//! BatchLens into a real-time online system").
//!
//! [`StreamMonitor`] ingests `server_usage` records as they arrive, keeps a
//! bounded rolling window per machine, and runs online detectors so
//! anomalies surface without a full re-scan. It is thread-safe
//! (`parking_lot` mutex over the rolling state) and pairs with a
//! `crossbeam` channel for producer/consumer ingest.

use std::collections::{BTreeMap, VecDeque};

use batchlens_trace::{MachineId, Metric, ServerUsageRecord, TimeDelta, TimeSeries, Timestamp};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A rolling per-machine window of recent utilization.
#[derive(Debug, Clone, Default)]
struct Window {
    samples: VecDeque<(Timestamp, [f64; 3])>,
}

impl Window {
    fn push(&mut self, t: Timestamp, util: [f64; 3], horizon: TimeDelta) {
        self.samples.push_back((t, util));
        let cutoff = t - horizon;
        while let Some(&(ft, _)) = self.samples.front() {
            if ft < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    fn series(&self, metric: Metric) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, util) in &self.samples {
            // Samples arrive time-ordered; ignore any out-of-order straggler.
            let _ = s.push(t, util[metric.index()]);
        }
        s
    }

    fn latest(&self) -> Option<(Timestamp, [f64; 3])> {
        self.samples.back().copied()
    }
}

/// An online alert emitted by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The machine the alert concerns.
    pub machine: MachineId,
    /// When it fired.
    pub at: Timestamp,
    /// The metric that tripped (for threshold/spike alerts).
    pub metric: Metric,
    /// The value that tripped the alert.
    pub value: f64,
    /// Whether this looks like thrashing (memory high, CPU falling).
    pub thrashing: bool,
}

/// Configuration of the online monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// How long the rolling window retains samples.
    pub horizon: TimeDelta,
    /// Utilization above which a high-utilization alert fires.
    pub high: f64,
    /// Memory level considered pinned for thrashing.
    pub mem_pinned: f64,
    /// Minimum CPU decline across the window for thrashing.
    pub cpu_decline: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            horizon: TimeDelta::minutes(30),
            high: 0.9,
            mem_pinned: 0.6,
            cpu_decline: 0.1,
        }
    }
}

/// Thread-safe rolling-window monitor.
#[derive(Debug)]
pub struct StreamMonitor {
    cfg: StreamConfig,
    windows: Mutex<BTreeMap<MachineId, Window>>,
    ingested: Mutex<u64>,
}

impl StreamMonitor {
    /// Creates a monitor.
    pub fn new(cfg: StreamConfig) -> Self {
        StreamMonitor {
            cfg,
            windows: Mutex::new(BTreeMap::new()),
            ingested: Mutex::new(0),
        }
    }

    /// Ingests one usage record, returning any alert it triggers.
    pub fn ingest(&self, rec: ServerUsageRecord) -> Option<Alert> {
        let util = [
            rec.util.cpu.fraction(),
            rec.util.mem.fraction(),
            rec.util.disk.fraction(),
        ];
        let (cpu_decline, mem_now, cpu_now) = {
            let mut windows = self.windows.lock();
            let w = windows.entry(rec.machine).or_default();
            w.push(rec.time, util, self.cfg.horizon);
            let cpu = w.series(Metric::Cpu);
            let decline = cpu
                .first()
                .zip(cpu.last())
                .map(|((_, first), (_, last))| first - last)
                .unwrap_or(0.0);
            (decline, util[1], util[0])
        };
        *self.ingested.lock() += 1;

        let thrashing = mem_now > self.cfg.mem_pinned
            && cpu_decline >= self.cfg.cpu_decline
            && mem_now - cpu_now > 0.25;
        if thrashing {
            return Some(Alert {
                machine: rec.machine,
                at: rec.time,
                metric: Metric::Memory,
                value: mem_now,
                thrashing: true,
            });
        }
        for metric in Metric::ALL {
            if util[metric.index()] > self.cfg.high {
                return Some(Alert {
                    machine: rec.machine,
                    at: rec.time,
                    metric,
                    value: util[metric.index()],
                    thrashing: false,
                });
            }
        }
        None
    }

    /// Ingests many records, collecting every alert.
    pub fn ingest_all<I>(&self, records: I) -> Vec<Alert>
    where
        I: IntoIterator<Item = ServerUsageRecord>,
    {
        records.into_iter().filter_map(|r| self.ingest(r)).collect()
    }

    /// Number of records ingested so far.
    pub fn ingested(&self) -> u64 {
        *self.ingested.lock()
    }

    /// The latest utilization known for a machine, if any.
    pub fn latest(&self, machine: MachineId) -> Option<[f64; 3]> {
        self.windows
            .lock()
            .get(&machine)
            .and_then(|w| w.latest())
            .map(|(_, u)| u)
    }

    /// The current rolling series for a machine/metric (a snapshot copy).
    pub fn series(&self, machine: MachineId, metric: Metric) -> Option<TimeSeries> {
        self.windows.lock().get(&machine).map(|w| w.series(metric))
    }

    /// Number of machines currently tracked.
    pub fn tracked_machines(&self) -> usize {
        self.windows.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::UtilizationTriple;

    fn rec(machine: u32, t: i64, cpu: f64, mem: f64, disk: f64) -> ServerUsageRecord {
        ServerUsageRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(machine),
            util: UtilizationTriple::clamped(cpu, mem, disk),
        }
    }

    #[test]
    fn high_utilization_alerts() {
        let m = StreamMonitor::new(StreamConfig::default());
        assert!(m.ingest(rec(1, 0, 0.3, 0.3, 0.3)).is_none());
        let alert = m.ingest(rec(1, 60, 0.95, 0.3, 0.3)).unwrap();
        assert_eq!(alert.metric, Metric::Cpu);
        assert!(!alert.thrashing);
        assert_eq!(m.ingested(), 2);
    }

    #[test]
    fn rolling_window_evicts_old_samples() {
        let cfg = StreamConfig {
            horizon: TimeDelta::seconds(120),
            ..Default::default()
        };
        let m = StreamMonitor::new(cfg);
        for i in 0..10 {
            m.ingest(rec(1, i * 60, 0.3, 0.3, 0.3));
        }
        let s = m.series(MachineId::new(1), Metric::Cpu).unwrap();
        // Horizon 120 s at 60 s spacing keeps ~3 samples.
        assert!(s.len() <= 3, "window not evicting: {} samples", s.len());
    }

    #[test]
    fn thrashing_is_detected_online() {
        let m = StreamMonitor::new(StreamConfig::default());
        // CPU high then collapsing, memory pinned.
        let mut last = None;
        for i in 0..30 {
            let t = i * 60;
            let cpu = if t < 600 {
                0.6
            } else {
                0.6 - (t - 600) as f64 / 2000.0
            };
            let r = rec(1, t, cpu.max(0.05), 0.9, 0.4);
            last = m.ingest(r).or(last);
        }
        let alert = last.expect("thrashing should alert");
        assert!(alert.thrashing);
        assert_eq!(alert.metric, Metric::Memory);
    }

    #[test]
    fn latest_and_tracking() {
        let m = StreamMonitor::new(StreamConfig::default());
        m.ingest(rec(1, 0, 0.2, 0.3, 0.4));
        m.ingest(rec(2, 0, 0.5, 0.6, 0.7));
        assert_eq!(m.tracked_machines(), 2);
        let l = m.latest(MachineId::new(2)).unwrap();
        assert!((l[0] - 0.5).abs() < 1e-9);
        assert!(m.latest(MachineId::new(99)).is_none());
    }

    #[test]
    fn ingest_all_collects_alerts() {
        let m = StreamMonitor::new(StreamConfig::default());
        let recs = vec![
            rec(1, 0, 0.2, 0.2, 0.2),
            rec(1, 60, 0.95, 0.2, 0.2),
            rec(2, 0, 0.99, 0.2, 0.2),
        ];
        let alerts = m.ingest_all(recs);
        assert_eq!(alerts.len(), 2);
    }

    #[test]
    fn concurrent_ingest_is_safe() {
        use std::sync::Arc;
        use std::thread;
        let m = Arc::new(StreamMonitor::new(StreamConfig::default()));
        let mut handles = Vec::new();
        for machine in 0..4u32 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    m.ingest(rec(machine, i * 60, 0.3, 0.3, 0.3));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.ingested(), 400);
        assert_eq!(m.tracked_machines(), 4);
    }
}
