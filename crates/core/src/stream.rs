//! The real-time online extension (the paper's future work §VI: "extend
//! BatchLens into a real-time online system").
//!
//! [`StreamMonitor`] ingests `server_usage` records as they arrive and runs
//! the **same incremental detector kernels** as batch detection: each
//! machine gets a [`DetectorBank`] of live
//! [`batchlens_analytics::detect::DetectorState`]s (one per detector per
//! metric, plus the paired-series thrashing state), so every ingest is O(1)
//! amortized per detector — the window is never re-scanned. Alerts are
//! typed: they carry the [`AnomalyKind`] and severity computed by the shared
//! kernels, so an online alert and a batch [`AnomalySpan`] can never
//! disagree about what a sample means.
//!
//! The monitor is thread-safe — a single `parking_lot` mutex over all
//! rolling state, taken exactly once per ingest — and pairs with a
//! `crossbeam` channel for producer/consumer ingest.

use std::collections::{BTreeMap, VecDeque};

use batchlens_analytics::detect::{
    AnomalyKind, Detector, DetectorState, PairedDetectorState, ThrashingDetector, ThrashingState,
    ThresholdDetector,
};
use batchlens_trace::{MachineId, Metric, ServerUsageRecord, TimeDelta, TimeSeries, Timestamp};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A rolling per-machine window of recent utilization, kept for snapshot
/// queries ([`StreamMonitor::series`], [`StreamMonitor::latest`]). Detection
/// does **not** scan this window — the detector bank is incremental.
#[derive(Debug, Clone, Default)]
struct Window {
    samples: VecDeque<(Timestamp, [f64; 3])>,
}

impl Window {
    fn push(&mut self, t: Timestamp, util: [f64; 3], horizon: TimeDelta) {
        self.samples.push_back((t, util));
        let cutoff = t - horizon;
        while let Some(&(ft, _)) = self.samples.front() {
            if ft < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    fn series(&self, metric: Metric) -> TimeSeries {
        let mut s = TimeSeries::with_capacity(self.samples.len());
        for &(t, util) in &self.samples {
            s.push(t, util[metric.index()])
                .expect("window samples are strictly time-ordered");
        }
        s
    }

    fn latest(&self) -> Option<(Timestamp, [f64; 3])> {
        self.samples.back().copied()
    }
}

/// An online alert emitted by the monitor, typed by the shared detector
/// kernels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The machine the alert concerns.
    pub machine: MachineId,
    /// When it fired.
    pub at: Timestamp,
    /// The metric that tripped. Thrashing alerts report [`Metric::Memory`]
    /// (the pinned resource driving the collapse).
    pub metric: Metric,
    /// The value of that metric when the alert fired.
    pub value: f64,
    /// What kind of anomaly the kernel saw.
    pub kind: AnomalyKind,
    /// The kernel's severity for this sample (threshold excess, mem-cpu
    /// gap, …); comparable only within one kind.
    pub severity: f64,
}

impl Alert {
    /// Whether this is a thrashing alert.
    pub fn is_thrashing(&self) -> bool {
        self.kind == AnomalyKind::Thrashing
    }
}

/// Configuration of the online monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// How long the rolling window retains samples; also the horizon of the
    /// thrashing kernel's CPU reference maximum.
    pub horizon: TimeDelta,
    /// Utilization above which a high-utilization alert fires.
    pub high: f64,
    /// Memory level considered pinned for thrashing.
    pub mem_pinned: f64,
    /// Minimum CPU decline from the window maximum for thrashing.
    pub cpu_decline: f64,
    /// Minimum `mem - cpu` gap for a sample to look thrashing.
    pub min_gap: f64,
    /// How many fired alerts the monitor retains for
    /// [`StreamMonitor::drain_alerts`]; beyond it the oldest are dropped
    /// (and counted in [`StreamMonitor::alerts_overflowed`]).
    pub alert_capacity: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            horizon: TimeDelta::minutes(30),
            high: 0.9,
            mem_pinned: 0.6,
            cpu_decline: 0.1,
            min_gap: 0.25,
            alert_capacity: 4096,
        }
    }
}

impl StreamConfig {
    /// The thrashing kernel this configuration implies.
    fn thrashing_detector(&self) -> ThrashingDetector {
        ThrashingDetector {
            mem_high: self.mem_pinned,
            min_gap: self.min_gap,
            min_samples: 1,
            min_cpu_decline: self.cpu_decline,
            horizon: self.horizon,
        }
    }
}

/// The live detector states of one machine: one single-series state per
/// detector per metric, plus the paired-series thrashing state. Each state
/// carries the [`AnomalyKind`] its detector reports, so alerts stay typed
/// exactly as the batch spans would be.
#[derive(Debug)]
struct DetectorBank {
    /// `per_metric[metric][detector]`, parallel to the monitor's detector
    /// set.
    per_metric: [Vec<(AnomalyKind, Box<dyn DetectorState>)>; 3],
    thrashing: ThrashingState,
}

impl DetectorBank {
    fn new(detectors: &[Box<dyn Detector>], thrashing: &ThrashingDetector) -> Self {
        DetectorBank {
            per_metric: std::array::from_fn(|_| {
                detectors.iter().map(|d| (d.kind(), d.state())).collect()
            }),
            thrashing: thrashing.state(),
        }
    }

    /// Pushes one record's utilization triple through every live state,
    /// appending alerts for flagged samples. O(detectors) per record,
    /// independent of window length.
    fn ingest(&mut self, machine: MachineId, t: Timestamp, util: [f64; 3], out: &mut Vec<Alert>) {
        let thrash =
            self.thrashing
                .push(t, util[Metric::Cpu.index()], util[Metric::Memory.index()]);
        if thrash.flagged {
            out.push(Alert {
                machine,
                at: t,
                metric: Metric::Memory,
                value: util[Metric::Memory.index()],
                kind: AnomalyKind::Thrashing,
                severity: thrash.severity,
            });
        }
        for metric in Metric::ALL {
            let v = util[metric.index()];
            for (kind, state) in &mut self.per_metric[metric.index()] {
                let step = state.push(t, v);
                if step.flagged {
                    out.push(Alert {
                        machine,
                        at: t,
                        metric,
                        value: v,
                        kind: *kind,
                        severity: step.severity,
                    });
                }
            }
        }
    }
}

/// Per-machine rolling state: snapshot window + live detector bank.
#[derive(Debug)]
struct MachineState {
    window: Window,
    bank: DetectorBank,
    last_seen: Option<Timestamp>,
}

/// Everything the monitor mutates, behind one lock.
#[derive(Debug, Default)]
struct Inner {
    machines: BTreeMap<MachineId, MachineState>,
    ingested: u64,
    stale_dropped: u64,
    /// Fired alerts retained for [`StreamMonitor::drain_alerts`], capped at
    /// [`StreamConfig::alert_capacity`] (oldest dropped first).
    alerts: VecDeque<Alert>,
    total_alerts: u64,
    alerts_overflowed: u64,
}

/// Thread-safe online monitor over live detector banks.
pub struct StreamMonitor {
    cfg: StreamConfig,
    detectors: Vec<Box<dyn Detector>>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for StreamMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamMonitor")
            .field("cfg", &self.cfg)
            .field(
                "detectors",
                &self.detectors.iter().map(|d| d.name()).collect::<Vec<_>>(),
            )
            .field("tracked_machines", &self.inner.lock().machines.len())
            .finish()
    }
}

impl StreamMonitor {
    /// Creates a monitor with the default single-series detector set: a
    /// threshold kernel at `cfg.high` per metric (plus the implied paired
    /// thrashing kernel).
    pub fn new(cfg: StreamConfig) -> Self {
        let threshold = ThresholdDetector {
            high: cfg.high,
            min_samples: 1,
        };
        StreamMonitor::with_detectors(cfg, vec![Box::new(threshold)])
    }

    /// Creates a monitor running `detectors` on every metric of every
    /// machine — any batch [`Detector`] streams unchanged, because batch
    /// detection *is* the streaming kernel.
    pub fn with_detectors(cfg: StreamConfig, detectors: Vec<Box<dyn Detector>>) -> Self {
        StreamMonitor {
            cfg,
            detectors,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Ingests one usage record, returning the alerts it triggers (empty
    /// for a quiet sample — no allocation in that case).
    ///
    /// Out-of-order stragglers (a record at or before the machine's latest
    /// sample) are dropped and counted in [`StreamMonitor::stale_dropped`]
    /// rather than silently ignored: the incremental kernels consume
    /// strictly time-ordered samples.
    pub fn ingest(&self, rec: ServerUsageRecord) -> Vec<Alert> {
        let util = [
            rec.util.cpu.fraction(),
            rec.util.mem.fraction(),
            rec.util.disk.fraction(),
        ];
        let mut alerts = Vec::new();
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let state = inner
            .machines
            .entry(rec.machine)
            .or_insert_with(|| MachineState {
                window: Window::default(),
                bank: DetectorBank::new(&self.detectors, &self.cfg.thrashing_detector()),
                last_seen: None,
            });
        if state.last_seen.is_some_and(|last| rec.time <= last) {
            inner.stale_dropped += 1;
            return alerts;
        }
        state.last_seen = Some(rec.time);
        state.window.push(rec.time, util, self.cfg.horizon);
        state.bank.ingest(rec.machine, rec.time, util, &mut alerts);
        inner.ingested += 1;
        // Retain fired alerts for consumers that poll (UI overlays) rather
        // than inspect each ingest's return value.
        inner.total_alerts += alerts.len() as u64;
        for &alert in &alerts {
            if self.cfg.alert_capacity == 0 {
                // Retention disabled: every fired alert counts as dropped.
                inner.alerts_overflowed += 1;
                continue;
            }
            if inner.alerts.len() == self.cfg.alert_capacity {
                inner.alerts.pop_front();
                inner.alerts_overflowed += 1;
            }
            inner.alerts.push_back(alert);
        }
        alerts
    }

    /// Ingests many records, collecting every alert.
    pub fn ingest_all<I>(&self, records: I) -> Vec<Alert>
    where
        I: IntoIterator<Item = ServerUsageRecord>,
    {
        records.into_iter().flat_map(|r| self.ingest(r)).collect()
    }

    /// Number of records ingested so far (stragglers excluded).
    pub fn ingested(&self) -> u64 {
        self.inner.lock().ingested
    }

    /// Number of out-of-order records dropped so far.
    pub fn stale_dropped(&self) -> u64 {
        self.inner.lock().stale_dropped
    }

    /// Number of alerts currently retained in the buffer — O(1), no clone;
    /// the cheap per-frame probe an overlay should use to decide whether
    /// anything new fired before asking for the alerts themselves.
    pub fn alerts_len(&self) -> usize {
        self.inner.lock().alerts.len()
    }

    /// Takes every retained alert out of the buffer (oldest first),
    /// leaving it empty. Each alert is handed out exactly once, so a
    /// per-frame consumer pays for new alerts only — never for a clone of
    /// the full history.
    pub fn drain_alerts(&self) -> Vec<Alert> {
        self.inner.lock().alerts.drain(..).collect()
    }

    /// Total alerts fired since construction (drained or not).
    pub fn total_alerts(&self) -> u64 {
        self.inner.lock().total_alerts
    }

    /// Alerts evicted because the buffer was full before a drain (see
    /// [`StreamConfig::alert_capacity`]).
    pub fn alerts_overflowed(&self) -> u64 {
        self.inner.lock().alerts_overflowed
    }

    /// The latest utilization known for a machine, if any.
    pub fn latest(&self, machine: MachineId) -> Option<[f64; 3]> {
        self.inner
            .lock()
            .machines
            .get(&machine)
            .and_then(|m| m.window.latest())
            .map(|(_, u)| u)
    }

    /// The current rolling series for a machine/metric (a snapshot copy).
    pub fn series(&self, machine: MachineId, metric: Metric) -> Option<TimeSeries> {
        self.inner
            .lock()
            .machines
            .get(&machine)
            .map(|m| m.window.series(metric))
    }

    /// Number of machines currently tracked.
    pub fn tracked_machines(&self) -> usize {
        self.inner.lock().machines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::UtilizationTriple;

    fn rec(machine: u32, t: i64, cpu: f64, mem: f64, disk: f64) -> ServerUsageRecord {
        ServerUsageRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(machine),
            util: UtilizationTriple::clamped(cpu, mem, disk),
        }
    }

    #[test]
    fn high_utilization_alerts() {
        let m = StreamMonitor::new(StreamConfig::default());
        assert!(m.ingest(rec(1, 0, 0.3, 0.3, 0.3)).is_empty());
        let alerts = m.ingest(rec(1, 60, 0.95, 0.3, 0.3));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].metric, Metric::Cpu);
        assert_eq!(alerts[0].kind, AnomalyKind::HighUtilization);
        assert!(!alerts[0].is_thrashing());
        // Severity comes from the shared threshold kernel: value - high.
        assert!((alerts[0].severity - 0.05).abs() < 1e-9);
        assert_eq!(m.ingested(), 2);
    }

    #[test]
    fn rolling_window_evicts_old_samples() {
        let cfg = StreamConfig {
            horizon: TimeDelta::seconds(120),
            ..Default::default()
        };
        let m = StreamMonitor::new(cfg);
        for i in 0..10 {
            m.ingest(rec(1, i * 60, 0.3, 0.3, 0.3));
        }
        let s = m.series(MachineId::new(1), Metric::Cpu).unwrap();
        // Horizon 120 s at 60 s spacing keeps ~3 samples.
        assert!(s.len() <= 3, "window not evicting: {} samples", s.len());
    }

    #[test]
    fn thrashing_is_detected_online() {
        let m = StreamMonitor::new(StreamConfig::default());
        // CPU high then collapsing, memory pinned.
        let mut last = None;
        for i in 0..30 {
            let t = i * 60;
            let cpu = if t < 600 {
                0.6
            } else {
                0.6 - (t - 600) as f64 / 2000.0
            };
            let alerts = m.ingest(rec(1, t, cpu.max(0.05), 0.9, 0.4));
            last = alerts.first().copied().or(last);
        }
        let alert = last.expect("thrashing should alert");
        assert!(alert.is_thrashing());
        assert_eq!(alert.metric, Metric::Memory);
        assert_eq!(alert.kind, AnomalyKind::Thrashing);
        // Severity is the mem-cpu gap from the shared kernel.
        assert!(alert.severity > 0.25);
    }

    #[test]
    fn mid_window_collapse_after_flat_start_alerts() {
        // A machine that idles flat, then collapses mid-stream while memory
        // pins: the window-max-to-current rule fires (the old
        // first-to-last-sample comparison could miss this shape once the
        // flat head rolled out of the window).
        let m = StreamMonitor::new(StreamConfig::default());
        let mut thrash = 0usize;
        for i in 0..40 {
            let t = i * 60;
            let (cpu, mem) = if t < 1200 {
                (0.5, 0.4)
            } else {
                ((0.5 - (t - 1200) as f64 / 1000.0).max(0.05), 0.9)
            };
            thrash += m
                .ingest(rec(1, t, cpu, mem, 0.3))
                .iter()
                .filter(|a| a.is_thrashing())
                .count();
        }
        assert!(thrash > 0, "collapse after flat start should alert");
    }

    #[test]
    fn stragglers_are_counted_not_silently_dropped() {
        let m = StreamMonitor::new(StreamConfig::default());
        m.ingest(rec(1, 600, 0.3, 0.3, 0.3));
        // Late and duplicate-timestamp records are stragglers.
        assert!(m.ingest(rec(1, 540, 0.99, 0.3, 0.3)).is_empty());
        assert!(m.ingest(rec(1, 600, 0.99, 0.3, 0.3)).is_empty());
        assert_eq!(m.stale_dropped(), 2);
        assert_eq!(m.ingested(), 1);
        // A fresh sample still flows.
        assert_eq!(m.ingest(rec(1, 660, 0.99, 0.3, 0.3)).len(), 1);
    }

    #[test]
    fn custom_detector_banks_stream_batch_detectors() {
        use batchlens_analytics::detect::EwmaDetector;
        let m = StreamMonitor::with_detectors(
            StreamConfig::default(),
            vec![
                Box::new(ThresholdDetector {
                    high: 0.9,
                    min_samples: 1,
                }),
                Box::new(EwmaDetector::default()),
            ],
        );
        // A flat baseline then a step: EWMA flags the deviation even though
        // it never crosses the 0.9 threshold.
        let mut alerts = Vec::new();
        for i in 0..40 {
            let v = if i < 30 { 0.3 } else { 0.7 };
            alerts.extend(m.ingest(rec(1, i * 60, v, 0.2, 0.2)));
        }
        assert!(!alerts.is_empty());
        // The alert carries EWMA's own kind, not a generic label.
        assert!(alerts
            .iter()
            .all(|a| a.kind == AnomalyKind::Deviation && a.metric == Metric::Cpu));
    }

    #[test]
    fn latest_and_tracking() {
        let m = StreamMonitor::new(StreamConfig::default());
        m.ingest(rec(1, 0, 0.2, 0.3, 0.4));
        m.ingest(rec(2, 0, 0.5, 0.6, 0.7));
        assert_eq!(m.tracked_machines(), 2);
        let l = m.latest(MachineId::new(2)).unwrap();
        assert!((l[0] - 0.5).abs() < 1e-9);
        assert!(m.latest(MachineId::new(99)).is_none());
    }

    #[test]
    fn ingest_all_collects_alerts() {
        let m = StreamMonitor::new(StreamConfig::default());
        let recs = vec![
            rec(1, 0, 0.2, 0.2, 0.2),
            rec(1, 60, 0.95, 0.2, 0.2),
            rec(2, 0, 0.99, 0.2, 0.2),
        ];
        let alerts = m.ingest_all(recs);
        assert_eq!(alerts.len(), 2);
    }

    #[test]
    fn alert_buffer_drains_once() {
        let m = StreamMonitor::new(StreamConfig::default());
        m.ingest(rec(1, 0, 0.95, 0.3, 0.3));
        m.ingest(rec(1, 60, 0.97, 0.3, 0.3));
        assert_eq!(m.alerts_len(), 2);
        assert_eq!(m.total_alerts(), 2);
        let drained = m.drain_alerts();
        assert_eq!(drained.len(), 2);
        assert!(drained[0].at < drained[1].at, "oldest first");
        // Second drain hands out nothing: each alert is delivered once.
        assert_eq!(m.alerts_len(), 0);
        assert!(m.drain_alerts().is_empty());
        assert_eq!(m.total_alerts(), 2);
        // New alerts keep flowing into the emptied buffer.
        m.ingest(rec(1, 120, 0.99, 0.3, 0.3));
        assert_eq!(m.alerts_len(), 1);
    }

    #[test]
    fn alert_buffer_caps_and_counts_overflow() {
        let cfg = StreamConfig {
            alert_capacity: 3,
            ..Default::default()
        };
        let m = StreamMonitor::new(cfg);
        for i in 0..10 {
            m.ingest(rec(1, i * 60, 0.95, 0.3, 0.3));
        }
        assert_eq!(m.alerts_len(), 3);
        assert_eq!(m.total_alerts(), 10);
        assert_eq!(m.alerts_overflowed(), 7);
        // The retained alerts are the most recent three.
        let drained = m.drain_alerts();
        assert_eq!(drained[0].at, Timestamp::new(7 * 60));

        // Capacity 0 disables retention but still accounts for every drop.
        let m = StreamMonitor::new(StreamConfig {
            alert_capacity: 0,
            ..Default::default()
        });
        for i in 0..5 {
            m.ingest(rec(1, i * 60, 0.95, 0.3, 0.3));
        }
        assert_eq!(m.alerts_len(), 0);
        assert_eq!(m.total_alerts(), 5);
        assert_eq!(m.alerts_overflowed(), 5);
    }

    #[test]
    fn concurrent_ingest_is_safe() {
        use std::sync::Arc;
        use std::thread;
        let m = Arc::new(StreamMonitor::new(StreamConfig::default()));
        let mut handles = Vec::new();
        for machine in 0..4u32 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    m.ingest(rec(machine, i * 60, 0.3, 0.3, 0.3));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.ingested(), 400);
        assert_eq!(m.tracked_machines(), 4);
        assert_eq!(m.stale_dropped(), 0);
    }
}
