//! The real-time online extension (the paper's future work §VI: "extend
//! BatchLens into a real-time online system").
//!
//! [`StreamMonitor`] ingests `server_usage` records as they arrive and runs
//! the **same incremental detector kernels** as batch detection: each
//! machine gets a [`DetectorBank`] of live
//! [`batchlens_analytics::detect::DetectorState`]s (one per detector per
//! metric, plus the paired-series thrashing state), so every ingest is O(1)
//! amortized per detector — the window is never re-scanned. Alerts are
//! typed: they carry the [`AnomalyKind`] and severity computed by the shared
//! kernels, so an online alert and a batch [`AnomalySpan`] can never
//! disagree about what a sample means.
//!
//! The monitor also maintains the **online rolling index layer**: a
//! [`batchlens_trace::RollingIntervalIndex`] over live instance execution
//! windows (insert on completed records, open/close on start/finish events,
//! windowed eviction behind the event-time frontier) plus rolling per-machine
//! liveness checkpoints — all under the same single lock as detector ingest.
//! [`StreamMonitor::live_view`] exposes that state through
//! [`batchlens_trace::DatasetQuery`], the exact query surface of a batch
//! [`batchlens_trace::TraceDataset`]: `jobs_running_at`, `alive_at`,
//! `machines_active_at`, sample-and-hold utilization and windowed series —
//! each O(log n + k) over the live window, never a window re-scan. The
//! workspace `stream_batch_differential` proptest suite proves every shared
//! query bit-identical between the two sources.
//!
//! The monitor is thread-safe — a single `parking_lot` mutex over all
//! rolling state, taken exactly once per ingest — and pairs with a
//! `crossbeam` channel for producer/consumer ingest.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::path::Path;

use batchlens_analytics::detect::{
    AnomalyKind, Detector, DetectorState, PairedDetectorState, ThrashingDetector, ThrashingState,
    ThresholdDetector,
};
use batchlens_trace::wal::{RecoveryReport, WalError, WalReader, WalRecord, WalWriter};
use batchlens_trace::{
    BatchInstanceRecord, DatasetQuery, JobId, LivenessDelta, MachineEventRecord, MachineId, Metric,
    QueryFrame, RollingIntervalIndex, RunningDelta, ServerUsageRecord, TaskId, TimeDelta,
    TimeRange, TimeSeries, Timestamp, UtilHold, UtilizationTriple,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A rolling per-machine window of recent utilization, kept for snapshot
/// queries ([`StreamMonitor::series`], [`StreamMonitor::latest`]). Detection
/// does **not** scan this window — the detector bank is incremental.
#[derive(Debug, Clone, Default)]
struct Window {
    samples: VecDeque<(Timestamp, [f64; 3])>,
}

impl Window {
    /// Inserts a sample at its time-sorted position (the common in-order
    /// arrival appends; a bounded out-of-order arrival shifts at most the
    /// few samples that beat it). Returns `false` — without inserting — when
    /// a sample at `t` already exists. Eviction trails the newest sample.
    fn insert(&mut self, t: Timestamp, util: [f64; 3], horizon: TimeDelta) -> bool {
        let pos = self.samples.partition_point(|&(st, _)| st < t);
        if self.samples.get(pos).is_some_and(|&(st, _)| st == t) {
            return false;
        }
        self.samples.insert(pos, (t, util));
        let cutoff = self.samples.back().expect("just inserted").0 - horizon;
        while let Some(&(ft, _)) = self.samples.front() {
            if ft < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
        true
    }

    fn series(&self, metric: Metric) -> TimeSeries {
        let mut s = TimeSeries::with_capacity(self.samples.len());
        for &(t, util) in &self.samples {
            s.push(t, util[metric.index()])
                .expect("window samples are strictly time-ordered");
        }
        s
    }

    /// Samples inside the half-open `window`, as a series — the live
    /// counterpart of slicing a batch usage series.
    fn series_in(&self, metric: Metric, window: &TimeRange) -> TimeSeries {
        let lo = self.samples.partition_point(|&(st, _)| st < window.start());
        let hi = self.samples.partition_point(|&(st, _)| st < window.end());
        let mut s = TimeSeries::with_capacity(hi - lo);
        for &(t, util) in self.samples.iter().skip(lo).take(hi - lo) {
            s.push(t, util[metric.index()])
                .expect("window samples are strictly time-ordered");
        }
        s
    }

    /// The sample-and-hold triple at `t`: last retained sample at or before
    /// it — O(log n).
    fn at_or_before(&self, t: Timestamp) -> Option<[f64; 3]> {
        let n = self.samples.partition_point(|&(st, _)| st <= t);
        (n > 0).then(|| self.samples[n - 1].1)
    }

    fn latest(&self) -> Option<(Timestamp, [f64; 3])> {
        self.samples.back().copied()
    }
}

/// An online alert emitted by the monitor, typed by the shared detector
/// kernels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Monotonic firing sequence number, assigned when the alert is
    /// retained in the monitor's buffer: the `n`-th alert ever fired has
    /// `seq == n` (0-based), independent of drains and overflow. Cursors
    /// ([`StreamMonitor::alerts_since`]) position on this number.
    pub seq: u64,
    /// The machine the alert concerns.
    pub machine: MachineId,
    /// When it fired.
    pub at: Timestamp,
    /// The metric that tripped. Thrashing alerts report [`Metric::Memory`]
    /// (the pinned resource driving the collapse).
    pub metric: Metric,
    /// The value of that metric when the alert fired.
    pub value: f64,
    /// What kind of anomaly the kernel saw.
    pub kind: AnomalyKind,
    /// The kernel's severity for this sample (threshold excess, mem-cpu
    /// gap, …); comparable only within one kind.
    pub severity: f64,
}

impl Alert {
    /// Whether this is a thrashing alert.
    pub fn is_thrashing(&self) -> bool {
        self.kind == AnomalyKind::Thrashing
    }
}

/// One non-destructive read of the retained alert buffer from a cursor
/// position — the result of [`StreamMonitor::alerts_since`].
///
/// A consumer holds only its cursor (a sequence number), asks for
/// everything at or after it, and advances the cursor to [`next_seq`].
/// Nothing is removed from the buffer, so any number of independently
/// positioned consumers can poll the same monitor without stealing each
/// other's alerts. A cursor that lags behind eviction (buffer overflow or
/// a destructive [`StreamMonitor::drain_alerts`] by another consumer)
/// observes the gap in [`missed`] instead of silently skipping it.
///
/// [`next_seq`]: AlertBatch::next_seq
/// [`missed`]: AlertBatch::missed
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertBatch {
    /// The retained alerts with `seq >=` the requested cursor, oldest
    /// first. Their sequence numbers are contiguous.
    pub alerts: Vec<Alert>,
    /// The cursor position for the next poll: one past the newest alert
    /// fired so far (equal to [`StreamMonitor::total_alerts`]). Polling
    /// again with this value returns only alerts fired in between.
    pub next_seq: u64,
    /// How many alerts with `seq >=` the requested cursor were already
    /// gone from the buffer (evicted by overflow, or taken by a
    /// destructive drain) — the lagging-cursor signal. Zero when the
    /// cursor kept up.
    pub missed: u64,
}

/// Configuration of the online monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// How long the rolling window retains samples; also the horizon of the
    /// thrashing kernel's CPU reference maximum.
    pub horizon: TimeDelta,
    /// Utilization above which a high-utilization alert fires.
    pub high: f64,
    /// Memory level considered pinned for thrashing.
    pub mem_pinned: f64,
    /// Minimum CPU decline from the window maximum for thrashing.
    pub cpu_decline: f64,
    /// Minimum `mem - cpu` gap for a sample to look thrashing.
    pub min_gap: f64,
    /// How many fired alerts the monitor retains for
    /// [`StreamMonitor::drain_alerts`]; beyond it the oldest are dropped
    /// (and counted in [`StreamMonitor::alerts_overflowed`]).
    pub alert_capacity: usize,
    /// How far behind a machine's newest sample an out-of-order usage
    /// record may arrive and still be accepted into the rolling window and
    /// indexes (it skips the causal detector kernels, which cannot rewind).
    /// Records later than this — or duplicating a retained timestamp — are
    /// dropped and counted in [`StreamMonitor::stale_dropped`]. Defaults to
    /// one v2017 reporting period (300 s).
    pub ooo_tolerance: TimeDelta,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            horizon: TimeDelta::minutes(30),
            high: 0.9,
            mem_pinned: 0.6,
            cpu_decline: 0.1,
            min_gap: 0.25,
            alert_capacity: 4096,
            ooo_tolerance: TimeDelta::minutes(5),
        }
    }
}

/// A [`StreamConfig`] rejected at monitor construction — the typed answer
/// to configurations that would silently misbehave downstream (a
/// non-positive horizon evicts everything or nothing; a negative tolerance
/// makes the straggler comparison vacuous; a zero alert capacity drops
/// every alert on the floor while looking like a working buffer).
///
/// A **zero** `ooo_tolerance` stays legal: it is the documented strict
/// mode ("any out-of-order record is a straggler") and changes no
/// comparison semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamConfigError {
    /// `horizon` was zero or negative: the rolling window would retain
    /// nothing (or, negative, evict samples ahead of the frontier).
    NonPositiveHorizon {
        /// The offending horizon in seconds.
        seconds: i64,
    },
    /// `ooo_tolerance` was negative: even in-order records would compare as
    /// stragglers.
    NegativeOooTolerance {
        /// The offending tolerance in seconds.
        seconds: i64,
    },
    /// `alert_capacity` was zero: every fired alert would be dropped
    /// unseen. Poll-style consumers need at least capacity 1; callers that
    /// truly want no retention should drain instead.
    ZeroAlertCapacity,
    /// A [`crate::shard::ShardedMonitor`] was asked for zero shards: there
    /// would be nowhere to route any delivery.
    ZeroShards,
}

impl fmt::Display for StreamConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamConfigError::NonPositiveHorizon { seconds } => {
                write!(f, "stream horizon must be positive, got {seconds} s")
            }
            StreamConfigError::NegativeOooTolerance { seconds } => {
                write!(f, "ooo_tolerance must be non-negative, got {seconds} s")
            }
            StreamConfigError::ZeroAlertCapacity => {
                write!(f, "alert_capacity must be at least 1")
            }
            StreamConfigError::ZeroShards => {
                write!(f, "shard count must be at least 1")
            }
        }
    }
}

impl std::error::Error for StreamConfigError {}

impl StreamConfig {
    /// Checks the configuration's invariants (see [`StreamConfigError`]).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), StreamConfigError> {
        if self.horizon.as_seconds() <= 0 {
            return Err(StreamConfigError::NonPositiveHorizon {
                seconds: self.horizon.as_seconds(),
            });
        }
        if self.ooo_tolerance.as_seconds() < 0 {
            return Err(StreamConfigError::NegativeOooTolerance {
                seconds: self.ooo_tolerance.as_seconds(),
            });
        }
        if self.alert_capacity == 0 {
            return Err(StreamConfigError::ZeroAlertCapacity);
        }
        Ok(())
    }

    /// The thrashing kernel this configuration implies.
    fn thrashing_detector(&self) -> ThrashingDetector {
        ThrashingDetector {
            mem_high: self.mem_pinned,
            min_gap: self.min_gap,
            min_samples: 1,
            min_cpu_decline: self.cpu_decline,
            horizon: self.horizon,
        }
    }
}

/// The live detector states of one machine: one single-series state per
/// detector per metric, plus the paired-series thrashing state. Each state
/// carries the [`AnomalyKind`] its detector reports, so alerts stay typed
/// exactly as the batch spans would be.
#[derive(Debug)]
struct DetectorBank {
    /// `per_metric[metric][detector]`, parallel to the monitor's detector
    /// set.
    per_metric: [Vec<(AnomalyKind, Box<dyn DetectorState>)>; 3],
    thrashing: ThrashingState,
}

impl DetectorBank {
    fn new(detectors: &[Box<dyn Detector>], thrashing: &ThrashingDetector) -> Self {
        DetectorBank {
            per_metric: std::array::from_fn(|_| {
                detectors.iter().map(|d| (d.kind(), d.state())).collect()
            }),
            thrashing: thrashing.state(),
        }
    }

    /// Pushes one record's utilization triple through every live state,
    /// appending alerts for flagged samples. O(detectors) per record,
    /// independent of window length.
    fn ingest(&mut self, machine: MachineId, t: Timestamp, util: [f64; 3], out: &mut Vec<Alert>) {
        let thrash =
            self.thrashing
                .push(t, util[Metric::Cpu.index()], util[Metric::Memory.index()]);
        if thrash.flagged {
            out.push(Alert {
                seq: 0, // stamped at retention, under the monitor lock
                machine,
                at: t,
                metric: Metric::Memory,
                value: util[Metric::Memory.index()],
                kind: AnomalyKind::Thrashing,
                severity: thrash.severity,
            });
        }
        for metric in Metric::ALL {
            let v = util[metric.index()];
            for (kind, state) in &mut self.per_metric[metric.index()] {
                let step = state.push(t, v);
                if step.flagged {
                    out.push(Alert {
                        seq: 0, // stamped at retention, under the monitor lock
                        machine,
                        at: t,
                        metric,
                        value: v,
                        kind: *kind,
                        severity: step.severity,
                    });
                }
            }
        }
    }
}

/// Per-machine rolling state: snapshot window + live detector bank.
#[derive(Debug)]
struct MachineState {
    window: Window,
    bank: DetectorBank,
    last_seen: Option<Timestamp>,
}

/// The rolling structural indexes of the live window: instance execution
/// intervals and machine liveness, maintained incrementally on every ingest
/// and queried through [`LiveWindowView`].
#[derive(Debug, Default)]
struct LiveIndexes {
    /// Instance execution windows over the live window; payload ids index
    /// `keys`.
    intervals: RollingIntervalIndex,
    /// Rolling id → `(job, task, machine)` of the indexed instance.
    keys: Vec<(JobId, TaskId, MachineId)>,
    /// Ids freed by eviction, reused by the next insert so `keys` stays
    /// bounded by the window's live interval count.
    free_ids: Vec<u32>,
    /// Started-but-unfinished instances: `(job, task, seq)` → rolling id.
    open_instances: BTreeMap<(JobId, TaskId, u32), u32>,
    /// Per-machine `(event time, alive afterwards)` checkpoints, kept
    /// time-sorted under bounded out-of-order event arrival — the rolling
    /// twin of the batch dataset's liveness index.
    liveness: BTreeMap<MachineId, Vec<(Timestamp, bool)>>,
    /// Machines known from instance placements or lifecycle events (usage
    /// reporters live in `Inner::machines`).
    known_machines: BTreeSet<MachineId>,
    /// Event-time high-water mark across structural ingests; eviction
    /// trails it by the horizon.
    frontier: Option<Timestamp>,
}

impl LiveIndexes {
    fn alloc_id(&mut self, key: (JobId, TaskId, MachineId)) -> u32 {
        if let Some(id) = self.free_ids.pop() {
            self.keys[id as usize] = key;
            id
        } else {
            self.keys.push(key);
            (self.keys.len() - 1) as u32
        }
    }

    /// Advances the frontier to `t` and evicts intervals that ended at or
    /// before `frontier - horizon` — they can never match a query inside
    /// the live window again.
    fn advance(&mut self, t: Timestamp, horizon: TimeDelta) {
        let frontier = self.frontier.map_or(t, |f| f.max(t));
        self.frontier = Some(frontier);
        let evicted = self.intervals.evict_before(frontier - horizon);
        self.free_ids.extend(evicted);
    }
}

/// A sealed epoch of usage records, ingested under **one** monitor lock
/// acquisition ([`StreamMonitor::ingest_batch`]) instead of one per record.
///
/// The shape follows the task-batching exemplars: a stable identity
/// (`id`), a wall-clock provenance stamp (`created_at`), the payload, and
/// a `version` that increases monotonically across the batches of one
/// producer — the epoch number. The version is what multi-log recovery
/// cuts on: a sharded monitor seals it into every shard's WAL when the
/// batch finishes applying ([`batchlens_trace::wal::WalRecord::EpochSealed`]),
/// so [`crate::shard::ShardedMonitor::recover`] can stop all shards at the
/// highest epoch sealed everywhere.
///
/// Construction cost is O(records) to move the payload in; ingesting it is
/// O(records × detectors) amortized — identical per-record work to
/// [`StreamMonitor::ingest`], minus the per-record lock round-trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Batch {
    /// Stable identity of this batch (unique per producer).
    pub id: u64,
    /// When the producer sealed the batch.
    pub created_at: Timestamp,
    /// The usage records of the epoch, in delivery order.
    pub records: Vec<ServerUsageRecord>,
    /// Monotonic epoch version across one producer's batches. Strictly
    /// increasing; sealed into the WAL when the batch finishes applying.
    pub version: u64,
}

/// Stamps [`Batch`]es with sequential ids and strictly increasing epoch
/// versions — the single-producer sequencer in front of a monitor. O(1)
/// per seal, thread-safe.
#[derive(Debug, Default)]
pub struct BatchSequencer {
    next: std::sync::atomic::AtomicU64,
}

impl BatchSequencer {
    /// A sequencer starting at id/version 0.
    pub fn new() -> BatchSequencer {
        BatchSequencer::default()
    }

    /// Seals `records` into the next batch: `id` counts from 0 and
    /// `version == id + 1` (versions start at 1 so that "nothing sealed
    /// yet" is distinguishable from epoch 0 in recovery cuts).
    pub fn seal(&self, created_at: Timestamp, records: Vec<ServerUsageRecord>) -> Batch {
        let id = self.next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Batch {
            id,
            created_at,
            records,
            version: id + 1,
        }
    }
}

/// Everything the monitor mutates, behind one lock.
#[derive(Debug, Default)]
pub(crate) struct Inner {
    machines: BTreeMap<MachineId, MachineState>,
    live: LiveIndexes,
    /// Bumped on **every** mutation that could change a query answer
    /// (accepted usage, structural ingest, lifecycle events — not on
    /// rejected stragglers or pure counter updates), so `(version,
    /// timestamp)` keys are sound memoization keys for live snapshots and
    /// deltas computed across an unchanged version are exact.
    version: u64,
    ingested: u64,
    stale_dropped: u64,
    late_accepted: u64,
    ingested_instances: u64,
    ingested_events: u64,
    /// Fired alerts retained for [`StreamMonitor::drain_alerts`], capped at
    /// [`StreamConfig::alert_capacity`] (oldest dropped first).
    alerts: VecDeque<Alert>,
    total_alerts: u64,
    alerts_overflowed: u64,
    /// The write-ahead log, when attached: every delivery is appended here
    /// **before** it is applied, under this same lock, so append order is
    /// exactly apply order.
    wal: Option<WalWriter>,
    /// Appends that failed at the IO layer. Monitoring must keep running on
    /// a full disk; the gap is surfaced here (and in `last_wal_error`)
    /// instead of panicking or poisoning ingest.
    wal_errors: u64,
    last_wal_error: Option<String>,
    /// The highest batch epoch sealed into this monitor's log
    /// ([`WalRecord::EpochSealed`]); `None` before the first sealed batch.
    /// Not query-visible: sealing bumps no version and changes no answer.
    sealed_epoch: Option<u64>,
}

impl Inner {
    /// Sequence number of the oldest retained alert; equals the next
    /// sequence to be assigned when the buffer is empty. The buffer always
    /// holds the contiguous run `[alert_base_seq, total_alerts)`.
    fn alert_base_seq(&self) -> u64 {
        self.total_alerts - self.alerts.len() as u64
    }

    /// The shared read that both [`StreamMonitor::alerts_since`] and the
    /// destructive [`StreamMonitor::drain_alerts`] wrap: everything
    /// retained at or after `seq`, plus cursor bookkeeping.
    fn alerts_from(&self, seq: u64) -> AlertBatch {
        let base = self.alert_base_seq();
        let start = seq.max(base).min(self.total_alerts);
        AlertBatch {
            alerts: self
                .alerts
                .iter()
                .skip((start - base) as usize)
                .copied()
                .collect(),
            next_seq: self.total_alerts,
            missed: start.saturating_sub(seq),
        }
    }

    /// Appends one delivery to the attached WAL (no-op without one).
    /// Called before the mutation is applied; IO failures are counted, not
    /// propagated — see [`StreamMonitor::wal_errors`].
    fn log_wal(&mut self, record: &WalRecord) {
        if let Some(wal) = self.wal.as_mut() {
            if let Err(e) = wal.append(record) {
                self.wal_errors += 1;
                self.last_wal_error = Some(e.to_string());
            }
        }
    }
}

/// The per-query logic of [`LiveWindowView`], implemented as a
/// [`DatasetQuery`] **on the locked state itself**: the lock-per-query
/// [`LiveWindowView`] impl and the single-lock [`DatasetQuery::frame`]
/// (inherited as the provided trait method, evaluated entirely under one
/// lock) share one definition of every answer.
impl DatasetQuery for Inner {
    fn machine_ids(&self) -> Vec<MachineId> {
        let mut out = self.live.known_machines.clone();
        out.extend(self.machines.keys().copied());
        out.into_iter().collect()
    }

    fn jobs_running_at(&self, t: Timestamp) -> Vec<JobId> {
        let live = &self.live;
        let mut ids: Vec<JobId> = Vec::new();
        live.intervals
            .stab_with(t, |id| ids.push(live.keys[id as usize].0));
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn running_triples_at(&self, t: Timestamp) -> Vec<(JobId, TaskId, MachineId)> {
        let live = &self.live;
        let mut out: Vec<(JobId, TaskId, MachineId)> = Vec::new();
        live.intervals
            .stab_with(t, |id| out.push(live.keys[id as usize]));
        out.sort_unstable();
        out
    }

    fn alive_at(&self, machine: MachineId, t: Timestamp) -> bool {
        self.live
            .liveness
            .get(&machine)
            .is_none_or(|checkpoints| batchlens_trace::alive_at_checkpoints(checkpoints, t))
    }

    fn util_at(&self, machine: MachineId, t: Timestamp) -> Option<UtilizationTriple> {
        let [cpu, mem, disk] = self.machines.get(&machine)?.window.at_or_before(t)?;
        Some(UtilizationTriple::clamped(cpu, mem, disk))
    }

    fn running_instance_count_at(&self, t: Timestamp) -> usize {
        self.live.intervals.count_at(t)
    }

    fn series_window(
        &self,
        machine: MachineId,
        metric: Metric,
        window: &TimeRange,
    ) -> Option<TimeSeries> {
        Some(
            self.machines
                .get(&machine)?
                .window
                .series_in(metric, window),
        )
    }

    fn state_version(&self) -> u64 {
        self.version
    }

    fn util_hold(&self, machine: MachineId, t: Timestamp) -> UtilHold {
        let Some(state) = self.machines.get(&machine) else {
            return UtilHold {
                util: None,
                since: None,
                until: None,
            };
        };
        let samples = &state.window.samples;
        let pos = samples.partition_point(|&(st, _)| st <= t);
        UtilHold {
            util: (pos > 0).then(|| {
                let [cpu, mem, disk] = samples[pos - 1].1;
                UtilizationTriple::clamped(cpu, mem, disk)
            }),
            since: (pos > 0).then(|| samples[pos - 1].0),
            until: (pos < samples.len()).then(|| samples[pos].0),
        }
    }

    fn running_delta(&self, t0: Timestamp, t1: Timestamp) -> RunningDelta {
        let live = &self.live;
        let mut entered = Vec::new();
        let mut exited = Vec::new();
        live.intervals.running_delta_with(
            t0,
            t1,
            |id| entered.push(live.keys[id as usize]),
            |id| exited.push(live.keys[id as usize]),
        );
        // Same-triple instance handoffs inside the hop cancel out, keeping
        // this equal to the trait-default stab diff.
        RunningDelta::from_events(entered, exited)
    }

    fn liveness_delta(&self, t0: Timestamp, t1: Timestamp) -> LivenessDelta {
        // Only machines with a rolling checkpoint inside the half-open hop
        // `(min, max]` can flip; everything else (including checkpoint-less
        // machines, which are always alive) is skipped without resolving
        // liveness at either end.
        let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        let mut activated = Vec::new();
        let mut deactivated = Vec::new();
        // BTreeMap iteration ascends, so both sides come out sorted.
        for (&machine, checkpoints) in &self.live.liveness {
            let start = checkpoints.partition_point(|&(t, _)| t <= lo);
            let end = checkpoints.partition_point(|&(t, _)| t <= hi);
            if start == end {
                continue;
            }
            let was = batchlens_trace::alive_at_checkpoints(checkpoints, t0);
            let now = batchlens_trace::alive_at_checkpoints(checkpoints, t1);
            match (was, now) {
                (false, true) => activated.push(machine),
                (true, false) => deactivated.push(machine),
                _ => {}
            }
        }
        LivenessDelta {
            activated,
            deactivated,
        }
    }

    fn anomaly_counts(&self, machines: &[MachineId]) -> Vec<u32> {
        // Counts over the retained alert buffer (the same alerts
        // `drain_alerts`/`alerts_since` serve), so a frame's sidebar overlay
        // agrees exactly with the alert feed captured at the same version.
        let mut counts = vec![0u32; machines.len()];
        for alert in &self.alerts {
            if let Ok(i) = machines.binary_search(&alert.machine) {
                counts[i] = counts[i].saturating_add(1);
            }
        }
        counts
    }

    // `frame` is inherited as the provided trait method: evaluated on the
    // locked `Inner`, its sub-queries all answer from one state — which is
    // exactly the single-lock transactional frame (anomaly counts included).
}

/// Thread-safe online monitor over live detector banks.
pub struct StreamMonitor {
    cfg: StreamConfig,
    detectors: Vec<Box<dyn Detector>>,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for StreamMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamMonitor")
            .field("cfg", &self.cfg)
            .field(
                "detectors",
                &self.detectors.iter().map(|d| d.name()).collect::<Vec<_>>(),
            )
            .field("tracked_machines", &self.inner.lock().machines.len())
            .finish()
    }
}

/// Why [`StreamMonitor::recover`] failed outright. Corrupt log *contents*
/// are never an error — they stop replay cleanly and are described by the
/// returned [`RecoveryReport`]; this type covers only an invalid
/// configuration or an OS-level IO failure opening the log.
#[derive(Debug)]
pub enum RecoverError {
    /// The configuration failed [`StreamConfig::validate`].
    Config(StreamConfigError),
    /// The log directory or a segment could not be read.
    Wal(WalError),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Config(e) => write!(f, "invalid stream config: {e}"),
            RecoverError::Wal(e) => write!(f, "cannot read wal: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Config(e) => Some(e),
            RecoverError::Wal(e) => Some(e),
        }
    }
}

impl From<StreamConfigError> for RecoverError {
    fn from(e: StreamConfigError) -> RecoverError {
        RecoverError::Config(e)
    }
}

impl From<WalError> for RecoverError {
    fn from(e: WalError) -> RecoverError {
        RecoverError::Wal(e)
    }
}

impl StreamMonitor {
    /// Creates a monitor with the default single-series detector set: a
    /// threshold kernel at `cfg.high` per metric (plus the implied paired
    /// thrashing kernel).
    ///
    /// # Errors
    ///
    /// Returns [`StreamConfigError`] when `cfg` fails
    /// [`StreamConfig::validate`].
    pub fn new(cfg: StreamConfig) -> Result<Self, StreamConfigError> {
        let threshold = ThresholdDetector {
            high: cfg.high,
            min_samples: 1,
        };
        StreamMonitor::with_detectors(cfg, vec![Box::new(threshold)])
    }

    /// Creates a monitor running `detectors` on every metric of every
    /// machine — any batch [`Detector`] streams unchanged, because batch
    /// detection *is* the streaming kernel.
    ///
    /// # Errors
    ///
    /// Returns [`StreamConfigError`] when `cfg` fails
    /// [`StreamConfig::validate`].
    pub fn with_detectors(
        cfg: StreamConfig,
        detectors: Vec<Box<dyn Detector>>,
    ) -> Result<Self, StreamConfigError> {
        cfg.validate()?;
        Ok(StreamMonitor {
            cfg,
            detectors,
            inner: Mutex::new(Inner::default()),
        })
    }

    /// Rebuilds a monitor from the write-ahead log in `dir`, with the
    /// default detector set of [`StreamMonitor::new`].
    ///
    /// Replay applies every intact logged delivery through the normal
    /// ingest paths, so the recovered monitor reaches the **exact pre-crash
    /// state**: `state_version`, every counter (including straggler
    /// rejections), window contents and evictions, detector kernel states,
    /// and the alert buffer are all bit-identical to the monitor that wrote
    /// the log — the workspace `crash_recovery_differential` suite enforces
    /// this for arbitrary kill points.
    ///
    /// Recovery **degrades gracefully, never panics**: a torn final record,
    /// a truncated segment, or a corrupted body stops replay at the last
    /// intact record, and the returned [`RecoveryReport`] says how many
    /// records were replayed, how many bytes were discarded, and why
    /// ([`batchlens_trace::wal::WalStopReason`]). `cfg` must equal the
    /// pre-crash configuration; it is not stored in the log.
    ///
    /// The recovered monitor has **no WAL attached** — attach a resumed
    /// writer (`WalWriter::open` on the same directory truncates the torn
    /// tail) via [`StreamMonitor::attach_wal`] to continue logging.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Config`] for an invalid `cfg`, [`RecoverError::Wal`]
    /// for OS-level IO failures reading the log. Corrupt log **contents**
    /// are not an error.
    pub fn recover(
        dir: &Path,
        cfg: StreamConfig,
    ) -> Result<(StreamMonitor, RecoveryReport), RecoverError> {
        let threshold = ThresholdDetector {
            high: cfg.high,
            min_samples: 1,
        };
        StreamMonitor::recover_with_detectors(dir, cfg, vec![Box::new(threshold)])
    }

    /// [`StreamMonitor::recover`] with a custom detector set (which must
    /// equal the pre-crash one for bit-identical kernel states).
    ///
    /// # Errors
    ///
    /// As [`StreamMonitor::recover`].
    pub fn recover_with_detectors(
        dir: &Path,
        cfg: StreamConfig,
        detectors: Vec<Box<dyn Detector>>,
    ) -> Result<(StreamMonitor, RecoveryReport), RecoverError> {
        let monitor = StreamMonitor::with_detectors(cfg, detectors)?;
        let mut reader = WalReader::open(dir)?;
        for (_, record) in &mut reader {
            monitor.apply_replayed(record);
        }
        Ok((monitor, reader.report()))
    }

    /// Applies one WAL record exactly as the live delivery it logged —
    /// the replay step of [`StreamMonitor::recover`], public so a
    /// snapshot-plus-tail restore can feed the tail of a newer log into a
    /// recovered monitor. If a WAL is attached, the applied record is
    /// logged again (it is a fresh delivery from this monitor's view).
    pub fn apply_replayed(&self, record: WalRecord) {
        match record {
            WalRecord::Usage(r) => {
                self.ingest(r);
            }
            WalRecord::Instance(r) => self.ingest_instance(r),
            WalRecord::InstanceStarted {
                job,
                task,
                seq,
                machine,
                at,
            } => self.instance_started(job, task, seq, machine, at),
            WalRecord::InstanceFinished { job, task, seq, at } => {
                self.instance_finished(job, task, seq, at);
            }
            WalRecord::MachineEvent(r) => self.ingest_machine_event(r),
            WalRecord::AlertsDrained => {
                self.drain_alerts();
            }
            WalRecord::EpochSealed(version) => self.seal_epoch(version),
        }
    }

    /// Attaches a write-ahead log: from now on every delivery is appended
    /// (under the monitor lock, **before** it is applied) so the monitor
    /// can be rebuilt bit-identically by [`StreamMonitor::recover`].
    /// Returns the previously attached writer, if any.
    pub fn attach_wal(&self, writer: WalWriter) -> Option<WalWriter> {
        self.inner.lock().wal.replace(writer)
    }

    /// Detaches and returns the write-ahead log writer, leaving the monitor
    /// unlogged.
    pub fn detach_wal(&self) -> Option<WalWriter> {
        self.inner.lock().wal.take()
    }

    /// Whether a WAL is currently attached.
    pub fn wal_attached(&self) -> bool {
        self.inner.lock().wal.is_some()
    }

    /// The directory of the attached WAL, if one is attached.
    pub fn wal_dir(&self) -> Option<std::path::PathBuf> {
        self.inner
            .lock()
            .wal
            .as_ref()
            .map(|w| w.dir().to_path_buf())
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Forces the attached WAL to stable storage (`fsync`); a no-op without
    /// one. IO failures are counted like failed appends.
    pub fn sync_wal(&self) {
        let mut inner = self.inner.lock();
        if let Some(wal) = inner.wal.as_mut() {
            if let Err(e) = wal.sync() {
                inner.wal_errors += 1;
                inner.last_wal_error = Some(e.to_string());
            }
        }
    }

    /// WAL appends/syncs that failed at the IO layer since construction.
    /// Monitoring keeps running through log failures (a full disk must not
    /// stop detection); a non-zero count means the log has gaps and a
    /// recovery from it would be correspondingly behind.
    pub fn wal_errors(&self) -> u64 {
        self.inner.lock().wal_errors
    }

    /// The most recent WAL IO failure, rendered, if any.
    pub fn last_wal_error(&self) -> Option<String> {
        self.inner.lock().last_wal_error.clone()
    }

    /// Whether the durability layer is trustworthy right now: `true` when
    /// no WAL is attached (nothing promised) or the attached log has taken
    /// zero IO errors. Readiness probes gate on this — a monitor with WAL
    /// gaps keeps serving but should stop attracting new traffic.
    pub fn wal_healthy(&self) -> bool {
        let inner = self.inner.lock();
        inner.wal.is_none() || inner.wal_errors == 0
    }

    /// Ingests one usage record, returning the alerts it triggers (empty
    /// for a quiet sample — no allocation in that case).
    ///
    /// Arrival-order tolerance: a record at or before the machine's newest
    /// sample is **accepted into the rolling window** (and the snapshot
    /// queries it serves) when it is at most [`StreamConfig::ooo_tolerance`]
    /// late — counted in [`StreamMonitor::late_accepted`] — but skips the
    /// causal detector kernels, which consume strictly time-ordered samples
    /// and cannot rewind. Later stragglers, and duplicates of a retained
    /// timestamp, are dropped and counted in
    /// [`StreamMonitor::stale_dropped`] — never silently ignored.
    pub fn ingest(&self, rec: ServerUsageRecord) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let mut inner = self.inner.lock();
        self.ingest_one(&mut inner, rec, &mut alerts);
        alerts
    }

    /// The per-record ingest step, shared verbatim by [`StreamMonitor::ingest`]
    /// (one lock, one record) and [`StreamMonitor::ingest_batch`] (one lock,
    /// many records) — which is what makes the batch path bit-identical to
    /// record-at-a-time ingestion, `state_version` included.
    fn ingest_one(&self, inner: &mut Inner, rec: ServerUsageRecord, alerts: &mut Vec<Alert>) {
        let util = [
            rec.util.cpu.fraction(),
            rec.util.mem.fraction(),
            rec.util.disk.fraction(),
        ];
        // Logged before applied — and logged even when the record will be
        // rejected as a straggler, because replaying every *delivery*
        // (acceptance decisions depend only on prior deliveries) is what
        // makes recovery reproduce `stale_dropped` and `late_accepted`
        // exactly.
        inner.log_wal(&WalRecord::Usage(rec));
        let state = inner
            .machines
            .entry(rec.machine)
            .or_insert_with(|| MachineState {
                window: Window::default(),
                bank: DetectorBank::new(&self.detectors, &self.cfg.thrashing_detector()),
                last_seen: None,
            });
        if let Some(last) = state.last_seen.filter(|&last| rec.time <= last) {
            // A record exactly `ooo_tolerance` late is still accepted (the
            // documented "at most" contract — `<=`, not `<`); with
            // `ooo_tolerance == 0` only duplicates of the newest retained
            // timestamp reach this comparison, and those fall to the window
            // duplicate check.
            if last - rec.time <= self.cfg.ooo_tolerance
                && state.window.insert(rec.time, util, self.cfg.horizon)
            {
                inner.late_accepted += 1;
                inner.ingested += 1;
                inner.version += 1;
            } else {
                // Rejected stragglers change no query answer: the version
                // stays put so memoized frames survive them.
                inner.stale_dropped += 1;
            }
            return;
        }
        state.last_seen = Some(rec.time);
        state.window.insert(rec.time, util, self.cfg.horizon);
        let fired_from = alerts.len();
        state.bank.ingest(rec.machine, rec.time, util, alerts);
        inner.ingested += 1;
        inner.version += 1;
        // Retain fired alerts for consumers that poll (UI overlays) rather
        // than inspect each ingest's return value. Each alert is stamped
        // with its monotonic firing sequence number as it is retained
        // (`total_alerts` doubles as the next sequence number), so the
        // buffer always holds one contiguous run of sequence numbers —
        // the invariant [`StreamMonitor::alerts_since`] relies on. Only the
        // alerts this record fired are stamped: in batch mode `alerts`
        // accumulates across the epoch's records.
        for alert in alerts[fired_from..].iter_mut() {
            alert.seq = inner.total_alerts;
            inner.total_alerts += 1;
            if inner.alerts.len() == self.cfg.alert_capacity {
                inner.alerts.pop_front();
                inner.alerts_overflowed += 1;
            }
            inner.alerts.push_back(*alert);
        }
    }

    /// Ingests a sealed [`Batch`] under **one** lock acquisition, returning
    /// every alert the epoch fired (in record order), then seals the
    /// batch's epoch `version` into the attached WAL
    /// ([`WalRecord::EpochSealed`]).
    ///
    /// **Equivalence contract** (enforced by the workspace
    /// `batched_ingest_equivalence` suite): the resulting monitor state is
    /// bit-identical to ingesting the same records one
    /// [`StreamMonitor::ingest`] call at a time — windows, detector kernel
    /// states, counters, retained alerts, *and* `state_version`, which
    /// advances once per accepted record in both paths (the lock is
    /// amortized, the version is not). The only divergence is in the log
    /// itself: a batch-logged WAL additionally carries the epoch seal,
    /// which replays as a no-op on query-visible state.
    ///
    /// Cost: O(records × detectors) amortized, one lock round-trip per
    /// epoch instead of one per record.
    pub fn ingest_batch(&self, batch: &Batch) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let mut inner = self.inner.lock();
        for &rec in &batch.records {
            self.ingest_one(&mut inner, rec, &mut alerts);
        }
        inner.log_wal(&WalRecord::EpochSealed(batch.version));
        inner.sealed_epoch = Some(batch.version);
        alerts
    }

    /// The sharded fan-out step: ingests one shard's slice of an epoch
    /// under one lock, tagging every fired alert with the **batch-global**
    /// index of the record that fired it (so the facade can merge shard
    /// outputs back into exact record order), then seals `epoch`.
    pub(crate) fn apply_batch_part(
        &self,
        part: &[(u32, ServerUsageRecord)],
        epoch: u64,
    ) -> Vec<(u32, Alert)> {
        let mut tagged = Vec::new();
        let mut alerts = Vec::new();
        let mut inner = self.inner.lock();
        for &(idx, rec) in part {
            self.ingest_one(&mut inner, rec, &mut alerts);
            tagged.extend(alerts.drain(..).map(|a| (idx, a)));
        }
        inner.log_wal(&WalRecord::EpochSealed(epoch));
        inner.sealed_epoch = Some(epoch);
        tagged
    }

    /// Seals `epoch` into the attached WAL without ingesting anything —
    /// the marker a multi-log writer appends to logs that carried no
    /// records this epoch, so every log's sealed-epoch frontier still
    /// advances in lockstep. Not query-visible (no version bump).
    pub fn seal_epoch(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        inner.log_wal(&WalRecord::EpochSealed(epoch));
        inner.sealed_epoch = Some(epoch);
    }

    /// The highest batch epoch sealed into this monitor (live or via
    /// replay), if any.
    pub fn sealed_epoch(&self) -> Option<u64> {
        self.inner.lock().sealed_epoch
    }

    /// Ingests many records, collecting every alert.
    pub fn ingest_all<I>(&self, records: I) -> Vec<Alert>
    where
        I: IntoIterator<Item = ServerUsageRecord>,
    {
        records.into_iter().flat_map(|r| self.ingest(r)).collect()
    }

    /// Number of records ingested so far (stragglers excluded).
    pub fn ingested(&self) -> u64 {
        self.inner.lock().ingested
    }

    /// Number of out-of-order records dropped so far (beyond
    /// [`StreamConfig::ooo_tolerance`], or duplicating a retained sample).
    pub fn stale_dropped(&self) -> u64 {
        self.inner.lock().stale_dropped
    }

    /// Number of out-of-order records accepted into the rolling window
    /// within [`StreamConfig::ooo_tolerance`].
    pub fn late_accepted(&self) -> u64 {
        self.inner.lock().late_accepted
    }

    /// Ingests one completed `batch_instance` record into the rolling
    /// interval index — O(log n), under the same single lock as usage
    /// ingest. Empty windows (`end <= start`) are accepted and never match
    /// a query, exactly as in the batch dataset. Re-ingesting an instance
    /// key that is currently open replaces the open interval.
    pub fn ingest_instance(&self, rec: BatchInstanceRecord) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.log_wal(&WalRecord::Instance(rec));
        let live = &mut inner.live;
        live.known_machines.insert(rec.machine);
        if let Some(id) = live.open_instances.remove(&(rec.job, rec.task, rec.seq)) {
            live.intervals.remove(id);
            live.free_ids.push(id);
        }
        if rec.start_time < rec.end_time {
            let id = live.alloc_id((rec.job, rec.task, rec.machine));
            live.intervals.insert(rec.start_time, rec.end_time, id);
        }
        inner.ingested_instances += 1;
        inner.version += 1;
        live.advance(rec.end_time.max(rec.start_time), self.cfg.horizon);
    }

    /// Bulk-ingests completed instance records.
    pub fn ingest_instances<I>(&self, records: I)
    where
        I: IntoIterator<Item = BatchInstanceRecord>,
    {
        for rec in records {
            self.ingest_instance(rec);
        }
    }

    /// Records that instance `(job, task, seq)` started executing on
    /// `machine` at `at`: the live window treats it as running from `at`
    /// onwards until [`StreamMonitor::instance_finished`] closes it —
    /// O(log n). A repeated start for the same key replaces the open
    /// interval (an instance restart).
    pub fn instance_started(
        &self,
        job: JobId,
        task: TaskId,
        seq: u32,
        machine: MachineId,
        at: Timestamp,
    ) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.log_wal(&WalRecord::InstanceStarted {
            job,
            task,
            seq,
            machine,
            at,
        });
        let live = &mut inner.live;
        live.known_machines.insert(machine);
        if let Some(&id) = live.open_instances.get(&(job, task, seq)) {
            live.intervals.remove(id);
            live.free_ids.push(id);
        }
        let id = live.alloc_id((job, task, machine));
        live.intervals.open(at, id);
        live.open_instances.insert((job, task, seq), id);
        inner.ingested_instances += 1;
        inner.version += 1;
        live.advance(at, self.cfg.horizon);
    }

    /// Closes the open interval of instance `(job, task, seq)` at `at` —
    /// O(log n). Returns `false` (and changes nothing) when no matching
    /// start was seen; an end at or before the recorded start drops the
    /// interval as empty, matching batch semantics.
    pub fn instance_finished(&self, job: JobId, task: TaskId, seq: u32, at: Timestamp) -> bool {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        // Logged even when no matching start exists: the no-op outcome is
        // itself deterministic on replay.
        inner.log_wal(&WalRecord::InstanceFinished { job, task, seq, at });
        let live = &mut inner.live;
        let Some(id) = live.open_instances.remove(&(job, task, seq)) else {
            return false;
        };
        match live.intervals.close(id, at) {
            Some(start) if start < at => {}
            // Closed empty (or the id was unexpectedly gone): the id is free
            // immediately rather than via eviction.
            _ => live.free_ids.push(id),
        }
        inner.version += 1;
        live.advance(at, self.cfg.horizon);
        true
    }

    /// Ingests one machine lifecycle event as a rolling liveness checkpoint
    /// — O(log e + e') in the machine's own event count (time-sorted
    /// insertion tolerates out-of-order event arrival). The liveness rule is
    /// the batch dataset's: a machine is alive after an event unless it was
    /// `Remove`/`HardError`; machines without events count alive.
    pub fn ingest_machine_event(&self, rec: MachineEventRecord) {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.log_wal(&WalRecord::MachineEvent(rec));
        let live = &mut inner.live;
        live.known_machines.insert(rec.machine);
        let alive = rec.event.keeps_alive();
        let checkpoints = live.liveness.entry(rec.machine).or_default();
        // Events sharing a timestamp merge dead-wins — the same
        // arrival-order-independent tie-break the batch index applies, so
        // out-of-order delivery of equal-time events cannot diverge from it.
        let pos = checkpoints.partition_point(|&(t, _)| t < rec.time);
        match checkpoints.get_mut(pos) {
            Some((t, a)) if *t == rec.time => *a = *a && alive,
            _ => checkpoints.insert(pos, (rec.time, alive)),
        }
        // Bound the rolling list: checkpoints wholly behind the window are
        // compressed sample-and-hold — drop everything before the last one
        // at or behind the cutoff, which alone decides liveness there. Done
        // per machine on its own (rare) event arrivals, so advance() stays
        // O(evicted) on the hot ingest paths.
        if let Some(frontier) = live.frontier {
            let cutoff = frontier - self.cfg.horizon;
            let keep_from = checkpoints
                .partition_point(|&(t, _)| t <= cutoff)
                .saturating_sub(1);
            checkpoints.drain(..keep_from);
        }
        inner.ingested_events += 1;
        inner.version += 1;
    }

    /// Number of instance records/start events ingested into the rolling
    /// index so far.
    pub fn ingested_instances(&self) -> u64 {
        self.inner.lock().ingested_instances
    }

    /// Number of machine lifecycle events ingested so far.
    pub fn ingested_events(&self) -> u64 {
        self.inner.lock().ingested_events
    }

    /// Number of liveness checkpoints currently retained for `machine` —
    /// observability for the rolling compression (checkpoints wholly behind
    /// the window collapse to the single deciding one).
    pub fn liveness_checkpoint_count(&self, machine: MachineId) -> usize {
        self.inner
            .lock()
            .live
            .liveness
            .get(&machine)
            .map_or(0, Vec::len)
    }

    /// Number of instance intervals currently indexed in the live window
    /// (open + closed, evicted excluded).
    pub fn live_instances(&self) -> usize {
        self.inner.lock().live.intervals.len()
    }

    /// A [`DatasetQuery`] view over the live rolling window: the same
    /// snapshot-query surface as a batch `TraceDataset`, served by the
    /// rolling indexes (each call takes the monitor lock briefly; results
    /// are point-in-time snapshots). Drive `HierarchySnapshot::at`,
    /// `CoallocationIndex::at` or any other generic consumer directly from
    /// a live monitor with it.
    pub fn live_view(&self) -> LiveWindowView<'_> {
        LiveWindowView { monitor: self }
    }

    /// The monitor's state version: bumped on every ingest/evict that could
    /// change a live-window query answer (accepted usage — including late
    /// acceptances — structural instance ingest, lifecycle events), and
    /// **not** on rejected stragglers. An unchanged version guarantees every
    /// live query answers exactly as it did before, which is what lets
    /// consumers memoize snapshots on `(version, timestamp)` and advance
    /// delta scrubbers without a rebase while the monitor idles.
    pub fn state_version(&self) -> u64 {
        self.inner.lock().version
    }

    /// Number of alerts currently retained in the buffer — O(1), no clone;
    /// the cheap per-frame probe an overlay should use to decide whether
    /// anything new fired before asking for the alerts themselves.
    pub fn alerts_len(&self) -> usize {
        self.inner.lock().alerts.len()
    }

    /// Takes every retained alert out of the buffer (oldest first),
    /// leaving it empty. Each alert is handed out exactly once, so a
    /// per-frame consumer pays for new alerts only — never for a clone of
    /// the full history.
    ///
    /// This is the destructive single-consumer path: a thin wrapper around
    /// the same buffer read as [`StreamMonitor::alerts_since`], plus
    /// clearing. Multiple concurrent consumers should hold cursors and use
    /// `alerts_since` instead — a drain makes every other cursor observe
    /// the taken alerts as [`AlertBatch::missed`].
    pub fn drain_alerts(&self) -> Vec<Alert> {
        let mut inner = self.inner.lock();
        // Draining an empty buffer mutates nothing, so it is not logged:
        // an idle poller must not grow the log (or force rotation and
        // compaction churn) by polling.
        if inner.alerts.is_empty() {
            return Vec::new();
        }
        // Non-empty drains mutate recoverable state (the buffer empties),
        // so they are logged — otherwise a recovered monitor would
        // re-surface alerts the pre-crash consumer already took.
        inner.log_wal(&WalRecord::AlertsDrained);
        let batch = inner.alerts_from(inner.alert_base_seq());
        inner.alerts.clear();
        batch.alerts
    }

    /// Non-destructive cursor read: every retained alert with `seq >= seq`
    /// (oldest first), the cursor position for the next poll, and how many
    /// alerts the cursor missed because they were evicted or drained before
    /// it got there. O(returned) clone; the buffer is left intact, so any
    /// number of independently positioned consumers can poll concurrently.
    ///
    /// Start a fresh cursor at 0 to see everything still retained (alerts
    /// already evicted count as missed), or at
    /// [`StreamMonitor::next_alert_seq`] to see only alerts fired from now
    /// on.
    pub fn alerts_since(&self, seq: u64) -> AlertBatch {
        self.inner.lock().alerts_from(seq)
    }

    /// The sequence number the next fired alert will carry — the starting
    /// position for a cursor that wants only future alerts. Equal to
    /// [`StreamMonitor::total_alerts`].
    pub fn next_alert_seq(&self) -> u64 {
        self.inner.lock().total_alerts
    }

    /// A copy of the currently retained alerts (oldest first) **without**
    /// draining them — O(len) clone. Overlays that must keep the buffer
    /// intact for another consumer use this; a single consumer should
    /// prefer [`StreamMonitor::drain_alerts`], which hands each alert out
    /// exactly once.
    pub fn peek_alerts(&self) -> Vec<Alert> {
        self.inner.lock().alerts.iter().copied().collect()
    }

    /// Total alerts fired since construction (drained or not).
    pub fn total_alerts(&self) -> u64 {
        self.inner.lock().total_alerts
    }

    /// Retained alerts concerning `machine` — one lock acquisition and an
    /// O(len) walk of the alert buffer per call. A dashboard sidebar that
    /// needs every machine's count next to a frame should read
    /// [`batchlens_trace::QueryFrame::anomaly_count`] instead: the frame
    /// carries all counts from a single lock acquisition, consistent with
    /// the rest of the frame.
    pub fn machine_alert_count(&self, machine: MachineId) -> u32 {
        self.inner
            .lock()
            .alerts
            .iter()
            .filter(|a| a.machine == machine)
            .count() as u32
    }

    /// Alerts evicted because the buffer was full before a drain (see
    /// [`StreamConfig::alert_capacity`]).
    pub fn alerts_overflowed(&self) -> u64 {
        self.inner.lock().alerts_overflowed
    }

    /// The latest utilization known for a machine, if any.
    pub fn latest(&self, machine: MachineId) -> Option<[f64; 3]> {
        self.inner
            .lock()
            .machines
            .get(&machine)
            .and_then(|m| m.window.latest())
            .map(|(_, u)| u)
    }

    /// The current rolling series for a machine/metric (a snapshot copy).
    pub fn series(&self, machine: MachineId, metric: Metric) -> Option<TimeSeries> {
        self.inner
            .lock()
            .machines
            .get(&machine)
            .map(|m| m.window.series(metric))
    }

    /// Number of machines currently tracked.
    pub fn tracked_machines(&self) -> usize {
        self.inner.lock().machines.len()
    }

    /// The locked rolling state, for the sharded facade's one-version-cut
    /// frame capture: [`Inner`] implements [`DatasetQuery`], so a caller
    /// holding several shards' guards can answer every query from one
    /// simultaneous cut.
    pub(crate) fn lock_inner(&self) -> parking_lot::MutexGuard<'_, Inner> {
        self.inner.lock()
    }
}

/// A retained-alert buffer that cursors can poll: the shared surface of
/// [`StreamMonitor`] (one ring) and
/// [`crate::shard::ShardedMonitor`] (per-shard rings merged into one global
/// sequence). Consumers that only poll — serving-layer alert cursors —
/// accept any `AlertSource` instead of naming a monitor type.
pub trait AlertSource: Send + Sync {
    /// Non-destructive cursor read; see [`StreamMonitor::alerts_since`].
    fn alerts_since(&self, seq: u64) -> AlertBatch;
    /// The sequence number the next fired alert will carry; see
    /// [`StreamMonitor::next_alert_seq`].
    fn next_alert_seq(&self) -> u64;
}

impl AlertSource for StreamMonitor {
    fn alerts_since(&self, seq: u64) -> AlertBatch {
        StreamMonitor::alerts_since(self, seq)
    }

    fn next_alert_seq(&self) -> u64 {
        StreamMonitor::next_alert_seq(self)
    }
}

/// A [`DatasetQuery`] view over a [`StreamMonitor`]'s live rolling window.
///
/// Each query takes the monitor's single lock for its duration and answers
/// from the rolling indexes — the structural queries are O(log n + k) in the
/// live window's interval/checkpoint counts, mirroring the batch dataset's
/// indexed bounds; **no query scans the window**. Because the monitor keeps
/// ingesting, two calls can see different states; within one call the result
/// is a consistent snapshot.
///
/// The `stream_batch_differential` workspace suite proves each query
/// bit-identical to the batch [`batchlens_trace::TraceDataset`]
/// implementation over the same records.
#[derive(Debug, Clone, Copy)]
pub struct LiveWindowView<'a> {
    monitor: &'a StreamMonitor,
}

impl DatasetQuery for LiveWindowView<'_> {
    fn machine_ids(&self) -> Vec<MachineId> {
        self.monitor.inner.lock().machine_ids()
    }

    fn jobs_running_at(&self, t: Timestamp) -> Vec<JobId> {
        self.monitor.inner.lock().jobs_running_at(t)
    }

    fn running_triples_at(&self, t: Timestamp) -> Vec<(JobId, TaskId, MachineId)> {
        self.monitor.inner.lock().running_triples_at(t)
    }

    fn running_instance_count_at(&self, t: Timestamp) -> usize {
        self.monitor.inner.lock().running_instance_count_at(t)
    }

    fn alive_at(&self, machine: MachineId, t: Timestamp) -> bool {
        self.monitor.inner.lock().alive_at(machine, t)
    }

    fn util_at(&self, machine: MachineId, t: Timestamp) -> Option<UtilizationTriple> {
        self.monitor.inner.lock().util_at(machine, t)
    }

    fn series_window(
        &self,
        machine: MachineId,
        metric: Metric,
        window: &TimeRange,
    ) -> Option<TimeSeries> {
        self.monitor
            .inner
            .lock()
            .series_window(machine, metric, window)
    }

    fn state_version(&self) -> u64 {
        self.monitor.inner.lock().state_version()
    }

    fn util_hold(&self, machine: MachineId, t: Timestamp) -> UtilHold {
        self.monitor.inner.lock().util_hold(machine, t)
    }

    fn anomaly_counts(&self, machines: &[MachineId]) -> Vec<u32> {
        self.monitor.inner.lock().anomaly_counts(machines)
    }

    /// The rolling-index delta — O(log n + Δ log Δ) under one lock
    /// acquisition. Only meaningful paired with an unchanged
    /// [`DatasetQuery::state_version`]: the monitor may ingest between two
    /// calls, and a delta across a version change mixes states.
    fn running_delta(&self, t0: Timestamp, t1: Timestamp) -> RunningDelta {
        self.monitor.inner.lock().running_delta(t0, t1)
    }

    /// The checkpoint-scan liveness delta — touches only machines with a
    /// rolling liveness checkpoint inside the hop, under one lock
    /// acquisition. Same version-pairing caveat as
    /// [`DatasetQuery::running_delta`].
    fn liveness_delta(&self, t0: Timestamp, t1: Timestamp) -> LivenessDelta {
        self.monitor.inner.lock().liveness_delta(t0, t1)
    }

    /// The **single-lock transactional frame**: every probe of the frame —
    /// running triples, liveness, utilization, the version stamp — is
    /// answered under one lock acquisition, so concurrent ingest can never
    /// slide the window between the sub-answers the way it can when the
    /// queries are issued individually.
    fn frame(&self, at: Timestamp) -> QueryFrame {
        self.monitor.inner.lock().frame(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_trace::{MachineEvent, UtilizationTriple};

    fn rec(machine: u32, t: i64, cpu: f64, mem: f64, disk: f64) -> ServerUsageRecord {
        ServerUsageRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(machine),
            util: UtilizationTriple::clamped(cpu, mem, disk),
        }
    }

    #[test]
    fn high_utilization_alerts() {
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        assert!(m.ingest(rec(1, 0, 0.3, 0.3, 0.3)).is_empty());
        let alerts = m.ingest(rec(1, 60, 0.95, 0.3, 0.3));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].metric, Metric::Cpu);
        assert_eq!(alerts[0].kind, AnomalyKind::HighUtilization);
        assert!(!alerts[0].is_thrashing());
        // Severity comes from the shared threshold kernel: value - high.
        assert!((alerts[0].severity - 0.05).abs() < 1e-9);
        assert_eq!(m.ingested(), 2);
    }

    #[test]
    fn rolling_window_evicts_old_samples() {
        let cfg = StreamConfig {
            horizon: TimeDelta::seconds(120),
            ..Default::default()
        };
        let m = StreamMonitor::new(cfg).unwrap();
        for i in 0..10 {
            m.ingest(rec(1, i * 60, 0.3, 0.3, 0.3));
        }
        let s = m.series(MachineId::new(1), Metric::Cpu).unwrap();
        // Horizon 120 s at 60 s spacing keeps ~3 samples.
        assert!(s.len() <= 3, "window not evicting: {} samples", s.len());
    }

    #[test]
    fn thrashing_is_detected_online() {
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        // CPU high then collapsing, memory pinned.
        let mut last = None;
        for i in 0..30 {
            let t = i * 60;
            let cpu = if t < 600 {
                0.6
            } else {
                0.6 - (t - 600) as f64 / 2000.0
            };
            let alerts = m.ingest(rec(1, t, cpu.max(0.05), 0.9, 0.4));
            last = alerts.first().copied().or(last);
        }
        let alert = last.expect("thrashing should alert");
        assert!(alert.is_thrashing());
        assert_eq!(alert.metric, Metric::Memory);
        assert_eq!(alert.kind, AnomalyKind::Thrashing);
        // Severity is the mem-cpu gap from the shared kernel.
        assert!(alert.severity > 0.25);
    }

    #[test]
    fn mid_window_collapse_after_flat_start_alerts() {
        // A machine that idles flat, then collapses mid-stream while memory
        // pins: the window-max-to-current rule fires (the old
        // first-to-last-sample comparison could miss this shape once the
        // flat head rolled out of the window).
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        let mut thrash = 0usize;
        for i in 0..40 {
            let t = i * 60;
            let (cpu, mem) = if t < 1200 {
                (0.5, 0.4)
            } else {
                ((0.5 - (t - 1200) as f64 / 1000.0).max(0.05), 0.9)
            };
            thrash += m
                .ingest(rec(1, t, cpu, mem, 0.3))
                .iter()
                .filter(|a| a.is_thrashing())
                .count();
        }
        assert!(thrash > 0, "collapse after flat start should alert");
    }

    #[test]
    fn stragglers_are_counted_not_silently_dropped() {
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        m.ingest(rec(1, 600, 0.3, 0.3, 0.3));
        // Beyond the tolerance (default 300 s) and duplicate-timestamp
        // records are stragglers.
        assert!(m.ingest(rec(1, 240, 0.99, 0.3, 0.3)).is_empty());
        assert!(m.ingest(rec(1, 600, 0.99, 0.3, 0.3)).is_empty());
        assert_eq!(m.stale_dropped(), 2);
        assert_eq!(m.late_accepted(), 0);
        assert_eq!(m.ingested(), 1);
        // A fresh sample still flows.
        assert_eq!(m.ingest(rec(1, 660, 0.99, 0.3, 0.3)).len(), 1);
    }

    #[test]
    fn late_records_within_tolerance_enter_the_window() {
        // Regression: any out-of-order record used to be dropped as stale —
        // a 60 s-late sample (well within one reporting period) vanished
        // from every live-window query. It must land in the window now.
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        m.ingest(rec(1, 300, 0.3, 0.3, 0.3));
        m.ingest(rec(1, 600, 0.3, 0.3, 0.3));
        let late = m.ingest(rec(1, 540, 0.95, 0.3, 0.3));
        // Accepted into the window (counted), but no alert: the causal
        // detector kernels cannot rewind behind t=600.
        assert!(late.is_empty());
        assert_eq!(m.late_accepted(), 1);
        assert_eq!(m.stale_dropped(), 0);
        assert_eq!(m.ingested(), 3);
        let s = m.series(MachineId::new(1), Metric::Cpu).unwrap();
        assert_eq!(s.len(), 3, "late sample retained");
        assert_eq!(s.times()[1], Timestamp::new(540), "time-sorted window");
        assert!((s.values()[1] - 0.95).abs() < 1e-9);
        // Sample-and-hold queries see it too.
        let u = m
            .live_view()
            .util_at(MachineId::new(1), Timestamp::new(550))
            .unwrap();
        assert!((u.cpu.fraction() - 0.95).abs() < 1e-9);
        // A duplicate of the late timestamp is still a straggler.
        assert!(m.ingest(rec(1, 540, 0.5, 0.3, 0.3)).is_empty());
        assert_eq!(m.stale_dropped(), 1);
        // Tolerance is configurable: zero restores the strict behavior.
        let strict = StreamMonitor::new(StreamConfig {
            ooo_tolerance: TimeDelta::seconds(0),
            ..Default::default()
        })
        .unwrap();
        strict.ingest(rec(1, 600, 0.3, 0.3, 0.3));
        strict.ingest(rec(1, 540, 0.3, 0.3, 0.3));
        assert_eq!(strict.stale_dropped(), 1);
        assert_eq!(strict.late_accepted(), 0);
    }

    #[test]
    fn custom_detector_banks_stream_batch_detectors() {
        use batchlens_analytics::detect::EwmaDetector;
        let m = StreamMonitor::with_detectors(
            StreamConfig::default(),
            vec![
                Box::new(ThresholdDetector {
                    high: 0.9,
                    min_samples: 1,
                }),
                Box::new(EwmaDetector::default()),
            ],
        )
        .unwrap();
        // A flat baseline then a step: EWMA flags the deviation even though
        // it never crosses the 0.9 threshold.
        let mut alerts = Vec::new();
        for i in 0..40 {
            let v = if i < 30 { 0.3 } else { 0.7 };
            alerts.extend(m.ingest(rec(1, i * 60, v, 0.2, 0.2)));
        }
        assert!(!alerts.is_empty());
        // The alert carries EWMA's own kind, not a generic label.
        assert!(alerts
            .iter()
            .all(|a| a.kind == AnomalyKind::Deviation && a.metric == Metric::Cpu));
    }

    #[test]
    fn latest_and_tracking() {
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        m.ingest(rec(1, 0, 0.2, 0.3, 0.4));
        m.ingest(rec(2, 0, 0.5, 0.6, 0.7));
        assert_eq!(m.tracked_machines(), 2);
        let l = m.latest(MachineId::new(2)).unwrap();
        assert!((l[0] - 0.5).abs() < 1e-9);
        assert!(m.latest(MachineId::new(99)).is_none());
    }

    #[test]
    fn ingest_all_collects_alerts() {
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        let recs = vec![
            rec(1, 0, 0.2, 0.2, 0.2),
            rec(1, 60, 0.95, 0.2, 0.2),
            rec(2, 0, 0.99, 0.2, 0.2),
        ];
        let alerts = m.ingest_all(recs);
        assert_eq!(alerts.len(), 2);
    }

    #[test]
    fn alert_buffer_drains_once() {
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        m.ingest(rec(1, 0, 0.95, 0.3, 0.3));
        m.ingest(rec(1, 60, 0.97, 0.3, 0.3));
        assert_eq!(m.alerts_len(), 2);
        assert_eq!(m.total_alerts(), 2);
        let drained = m.drain_alerts();
        assert_eq!(drained.len(), 2);
        assert!(drained[0].at < drained[1].at, "oldest first");
        // Second drain hands out nothing: each alert is delivered once.
        assert_eq!(m.alerts_len(), 0);
        assert!(m.drain_alerts().is_empty());
        assert_eq!(m.total_alerts(), 2);
        // New alerts keep flowing into the emptied buffer.
        m.ingest(rec(1, 120, 0.99, 0.3, 0.3));
        assert_eq!(m.alerts_len(), 1);
    }

    #[test]
    fn alert_buffer_caps_and_counts_overflow() {
        let cfg = StreamConfig {
            alert_capacity: 3,
            ..Default::default()
        };
        let m = StreamMonitor::new(cfg).unwrap();
        for i in 0..10 {
            m.ingest(rec(1, i * 60, 0.95, 0.3, 0.3));
        }
        assert_eq!(m.alerts_len(), 3);
        assert_eq!(m.total_alerts(), 10);
        assert_eq!(m.alerts_overflowed(), 7);
        // The retained alerts are the most recent three.
        let drained = m.drain_alerts();
        assert_eq!(drained[0].at, Timestamp::new(7 * 60));

        // Capacity 0 is rejected at construction: a monitor that silently
        // discards every alert is a misconfiguration, not a mode.
        let err = StreamMonitor::new(StreamConfig {
            alert_capacity: 0,
            ..Default::default()
        })
        .unwrap_err();
        assert_eq!(err, StreamConfigError::ZeroAlertCapacity);
    }

    /// PR 3's alert buffer accounting, under interleaved drains and
    /// overflow: every fired alert is exactly one of delivered (drained),
    /// retained, or overflowed — at every step.
    #[test]
    fn alert_buffer_invariants_under_interleaved_drains() {
        let m = StreamMonitor::new(StreamConfig {
            alert_capacity: 2,
            ..Default::default()
        })
        .unwrap();
        let mut delivered = 0u64;
        let mut t = 0i64;
        let mut fire = |m: &StreamMonitor, n: usize| {
            for _ in 0..n {
                assert_eq!(m.ingest(rec(1, t, 0.95, 0.3, 0.3)).len(), 1);
                t += 60;
            }
        };
        let check = |m: &StreamMonitor, delivered: u64| {
            assert_eq!(
                m.total_alerts(),
                delivered + m.alerts_len() as u64 + m.alerts_overflowed(),
                "delivered + retained + overflowed must account for every alert"
            );
        };
        fire(&m, 3); // one overflows
        assert_eq!((m.alerts_len(), m.alerts_overflowed()), (2, 1));
        check(&m, delivered);
        let d = m.drain_alerts();
        assert_eq!(d.len(), 2);
        // The retained two are the *newest* two (oldest evicted first).
        assert_eq!(d[0].at, Timestamp::new(60));
        delivered += d.len() as u64;
        check(&m, delivered);
        // Drain on empty delivers nothing and changes no counter.
        assert!(m.drain_alerts().is_empty());
        check(&m, delivered);
        fire(&m, 1); // refills without overflow
        assert_eq!((m.alerts_len(), m.alerts_overflowed()), (1, 1));
        check(&m, delivered);
        fire(&m, 4); // three more overflow
        assert_eq!((m.alerts_len(), m.alerts_overflowed()), (2, 4));
        check(&m, delivered);
        delivered += m.drain_alerts().len() as u64;
        check(&m, delivered);
        assert_eq!(m.total_alerts(), 8);
        assert_eq!(delivered, 4);
        // peek never consumes: two peeks and a drain agree.
        fire(&m, 2);
        let peeked = m.peek_alerts();
        assert_eq!(peeked, m.peek_alerts());
        assert_eq!(peeked, m.drain_alerts());
        check(&m, delivered + 2);
    }

    /// PR 7's non-destructive cursors: independently positioned
    /// `alerts_since` readers see every alert exactly once, never steal
    /// from each other, and observe eviction/drain gaps as `missed`.
    #[test]
    fn alert_cursors_are_independent_and_observe_gaps() {
        let m = StreamMonitor::new(StreamConfig {
            alert_capacity: 2,
            ..Default::default()
        })
        .unwrap();
        let mut t = 0i64;
        let mut fire = |m: &StreamMonitor, n: usize| {
            for _ in 0..n {
                let fired = m.ingest(rec(1, t, 0.95, 0.3, 0.3));
                assert_eq!(fired.len(), 1);
                t += 60;
            }
        };
        assert_eq!(m.next_alert_seq(), 0);
        fire(&m, 3); // seqs 0,1,2 — seq 0 evicted (capacity 2)
                     // Ingest's return value carries the stamped sequence numbers.
        let last = m.peek_alerts();
        assert_eq!(last.iter().map(|a| a.seq).collect::<Vec<_>>(), vec![1, 2]);

        // A cursor from the beginning sees the retained run and the gap.
        let a = m.alerts_since(0);
        assert_eq!(a.missed, 1, "evicted seq 0 is observed, not skipped");
        assert_eq!(a.alerts.iter().map(|x| x.seq).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(a.next_seq, 3);
        // Re-polling at the returned cursor yields nothing new.
        let empty = m.alerts_since(a.next_seq);
        assert!(empty.alerts.is_empty());
        assert_eq!(empty.missed, 0);

        // A second cursor is untouched by the first one's reads.
        fire(&m, 1); // seq 3; buffer now [2, 3]
        let b = m.alerts_since(0);
        assert_eq!(b.missed, 2);
        assert_eq!(b.alerts.iter().map(|x| x.seq).collect::<Vec<_>>(), [2, 3]);
        let a2 = m.alerts_since(a.next_seq);
        assert_eq!(a2.alerts.iter().map(|x| x.seq).collect::<Vec<_>>(), [3]);
        assert_eq!(a2.missed, 0);

        // A destructive drain (thin wrapper over the same read) empties the
        // buffer; lagging cursors afterwards observe the taken alerts as
        // missed rather than seeing them twice.
        let drained = m.drain_alerts();
        assert_eq!(
            drained.iter().map(|x| x.seq).collect::<Vec<_>>(),
            [2, 3],
            "drain delivers the same contiguous run a cursor would"
        );
        let c = m.alerts_since(2);
        assert!(c.alerts.is_empty());
        assert_eq!(c.missed, 2);
        assert_eq!(c.next_seq, 4);
        // A cursor positioned past everything fired so far sees nothing.
        let future = m.alerts_since(100);
        assert!(future.alerts.is_empty());
        assert_eq!(future.missed, 0);
        // The accounting invariant is untouched by cursor reads:
        // total(4) == delivered(2) + retained(0) + overflowed(2).
        assert_eq!(
            m.total_alerts(),
            2 + m.alerts_len() as u64 + m.alerts_overflowed()
        );
    }

    #[test]
    fn live_view_answers_structural_queries() {
        use batchlens_trace::{JobId, TaskId};
        let m = StreamMonitor::new(StreamConfig {
            horizon: TimeDelta::DAY,
            ..Default::default()
        })
        .unwrap();
        let inst =
            |job: u32, task: u32, seq: u32, machine: u32, s: i64, e: i64| BatchInstanceRecord {
                start_time: Timestamp::new(s),
                end_time: Timestamp::new(e),
                job: JobId::new(job),
                task: TaskId::new(task),
                seq,
                total: 2,
                machine: MachineId::new(machine),
                status: batchlens_trace::TaskStatus::Terminated,
                cpu_avg: 0.2,
                cpu_max: 0.4,
                mem_avg: 0.2,
                mem_max: 0.4,
            };
        m.ingest_instance(inst(1, 1, 0, 5, 0, 600));
        m.ingest_instance(inst(1, 1, 1, 3, 0, 500));
        m.ingest_instance(inst(2, 1, 0, 3, 300, 900));
        m.ingest_instance(inst(3, 1, 0, 7, 100, 100)); // empty: never runs
        assert_eq!(m.ingested_instances(), 4);
        assert_eq!(m.live_instances(), 3);
        let view = m.live_view();
        assert_eq!(
            view.jobs_running_at(Timestamp::new(400)),
            vec![JobId::new(1), JobId::new(2)]
        );
        assert_eq!(view.running_instance_count_at(Timestamp::new(400)), 3);
        assert_eq!(
            view.running_triples_at(Timestamp::new(550)),
            vec![
                (JobId::new(1), TaskId::new(1), MachineId::new(5)),
                (JobId::new(2), TaskId::new(1), MachineId::new(3)),
            ]
        );
        // Machines known from placements and events, plus usage reporters.
        m.ingest(rec(9, 0, 0.3, 0.3, 0.3));
        assert_eq!(
            view.machine_ids(),
            [3u32, 5, 7, 9].map(MachineId::new).to_vec()
        );
        // Liveness checkpoints drive alive_at / machines_active_at.
        m.ingest_machine_event(MachineEventRecord {
            time: Timestamp::new(450),
            machine: MachineId::new(3),
            event: MachineEvent::Remove,
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        });
        assert!(view.alive_at(MachineId::new(3), Timestamp::new(400)));
        assert!(!view.alive_at(MachineId::new(3), Timestamp::new(450)));
        assert!(
            view.alive_at(MachineId::new(99), Timestamp::new(0)),
            "unknown: alive"
        );
        assert_eq!(
            view.machines_active_at(Timestamp::new(500)),
            [5u32, 7, 9].map(MachineId::new).to_vec()
        );
        assert_eq!(m.ingested_events(), 1);
    }

    #[test]
    fn live_view_tracks_open_instances_until_finished() {
        use batchlens_trace::{JobId, TaskId};
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        let (job, task) = (JobId::new(4), TaskId::new(1));
        m.instance_started(job, task, 0, MachineId::new(2), Timestamp::new(100));
        let view = m.live_view();
        // Open: running from its start onwards, indefinitely.
        assert!(view.jobs_running_at(Timestamp::new(99)).is_empty());
        assert_eq!(view.jobs_running_at(Timestamp::new(100)), vec![job]);
        assert_eq!(view.jobs_running_at(Timestamp::new(1_000_000)), vec![job]);
        // Finishing bounds it half-open.
        assert!(m.instance_finished(job, task, 0, Timestamp::new(400)));
        assert_eq!(view.jobs_running_at(Timestamp::new(399)), vec![job]);
        assert!(view.jobs_running_at(Timestamp::new(400)).is_empty());
        // Unmatched finish is a no-op.
        assert!(!m.instance_finished(job, task, 9, Timestamp::new(500)));
        // A zero-length run drops out entirely.
        m.instance_started(job, task, 1, MachineId::new(2), Timestamp::new(500));
        assert!(m.instance_finished(job, task, 1, Timestamp::new(500)));
        assert!(view.jobs_running_at(Timestamp::new(500)).is_empty());
        assert_eq!(m.live_instances(), 1);
    }

    #[test]
    fn equal_time_events_merge_dead_wins_in_any_order() {
        let ev = |t: i64, event: MachineEvent| MachineEventRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(1),
            event,
            capacity_cpu: 1.0,
            capacity_mem: 1.0,
            capacity_disk: 1.0,
        };
        // Add and Remove at the same instant, delivered in both orders —
        // and a batch dataset fed the same pair: all three agree (dead
        // wins).
        let add_first = StreamMonitor::new(StreamConfig::default()).unwrap();
        add_first.ingest_machine_event(ev(100, MachineEvent::Add));
        add_first.ingest_machine_event(ev(100, MachineEvent::Remove));
        let remove_first = StreamMonitor::new(StreamConfig::default()).unwrap();
        remove_first.ingest_machine_event(ev(100, MachineEvent::Remove));
        remove_first.ingest_machine_event(ev(100, MachineEvent::Add));
        let mut b = batchlens_trace::TraceDatasetBuilder::new();
        b.push_machine_event(ev(100, MachineEvent::Add));
        b.push_machine_event(ev(100, MachineEvent::Remove));
        let ds = b.build().unwrap();
        for t in [100i64, 500] {
            let t = Timestamp::new(t);
            assert!(!DatasetQuery::alive_at(&ds, MachineId::new(1), t));
            assert!(!add_first.live_view().alive_at(MachineId::new(1), t));
            assert!(!remove_first.live_view().alive_at(MachineId::new(1), t));
        }
        assert!(ds.machine_ids().contains(&MachineId::new(1)));
    }

    #[test]
    fn rolling_liveness_compresses_behind_the_window() {
        use batchlens_trace::{JobId, TaskId};
        let m = StreamMonitor::new(StreamConfig {
            horizon: TimeDelta::seconds(600),
            ..Default::default()
        })
        .unwrap();
        let ev = |t: i64, event: MachineEvent| MachineEventRecord {
            time: Timestamp::new(t),
            machine: MachineId::new(1),
            event,
            capacity_cpu: 1.0,
            capacity_mem: 1.0,
            capacity_disk: 1.0,
        };
        m.ingest_machine_event(ev(0, MachineEvent::Add));
        m.ingest_machine_event(ev(100, MachineEvent::SoftError));
        m.ingest_machine_event(ev(200, MachineEvent::Remove));
        // Push the frontier far ahead via a structural ingest, then deliver
        // one more event: the pre-window checkpoints compress to the single
        // deciding one.
        m.instance_started(
            JobId::new(1),
            TaskId::new(1),
            0,
            MachineId::new(2),
            Timestamp::new(5000),
        );
        m.ingest_machine_event(ev(5000, MachineEvent::Add));
        let view = m.live_view();
        // In-window liveness is unchanged by compression: the last
        // pre-cutoff checkpoint (Remove@200) still holds until the Add.
        assert!(!view.alive_at(MachineId::new(1), Timestamp::new(4500)));
        assert!(view.alive_at(MachineId::new(1), Timestamp::new(5000)));
        assert_eq!(m.ingested_events(), 4);
        // Only the deciding pre-window checkpoint plus the fresh one remain.
        assert_eq!(m.liveness_checkpoint_count(MachineId::new(1)), 2);
    }

    #[test]
    fn live_intervals_evict_behind_the_frontier() {
        let m = StreamMonitor::new(StreamConfig {
            horizon: TimeDelta::seconds(600),
            ..Default::default()
        })
        .unwrap();
        use batchlens_trace::{JobId, TaskId};
        let inst = |job: u32, s: i64, e: i64| BatchInstanceRecord {
            start_time: Timestamp::new(s),
            end_time: Timestamp::new(e),
            job: JobId::new(job),
            task: TaskId::new(1),
            seq: 0,
            total: 1,
            machine: MachineId::new(1),
            status: batchlens_trace::TaskStatus::Terminated,
            cpu_avg: 0.1,
            cpu_max: 0.2,
            mem_avg: 0.1,
            mem_max: 0.2,
        };
        m.ingest_instance(inst(1, 0, 100));
        m.ingest_instance(inst(2, 0, 650));
        assert_eq!(m.live_instances(), 2, "both inside the window");
        // Frontier moves to 1200: job 1 (ended 100 <= 1200-600) is evicted,
        // job 2 (ended 650, still inside the window) survives.
        m.ingest_instance(inst(3, 1100, 1200));
        assert_eq!(m.live_instances(), 2);
        let view = m.live_view();
        assert_eq!(
            view.jobs_running_at(Timestamp::new(500)),
            vec![JobId::new(2)]
        );
        // Job 1 ran at t=50 but its interval left the window: only job 2
        // remains visible there.
        assert_eq!(
            view.jobs_running_at(Timestamp::new(50)),
            vec![JobId::new(2)]
        );
    }

    #[test]
    fn state_version_tracks_query_visible_mutations() {
        use batchlens_trace::{JobId, TaskId};
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        assert_eq!(m.state_version(), 0);
        m.ingest(rec(1, 600, 0.3, 0.3, 0.3));
        let v1 = m.state_version();
        assert!(v1 > 0, "accepted usage bumps");
        // Beyond-tolerance straggler and duplicate: rejected, no bump.
        m.ingest(rec(1, 100, 0.5, 0.3, 0.3));
        m.ingest(rec(1, 600, 0.5, 0.3, 0.3));
        assert_eq!(m.state_version(), v1, "rejected stragglers don't bump");
        // Late-but-accepted usage bumps: it changes window queries.
        m.ingest(rec(1, 540, 0.5, 0.3, 0.3));
        let v2 = m.state_version();
        assert!(v2 > v1);
        // Structural ingests bump.
        m.instance_started(
            JobId::new(1),
            TaskId::new(1),
            0,
            MachineId::new(2),
            Timestamp::new(0),
        );
        let v3 = m.state_version();
        assert!(v3 > v2);
        // Unmatched finish is a no-op: no bump.
        assert!(!m.instance_finished(JobId::new(1), TaskId::new(1), 9, Timestamp::new(50)));
        assert_eq!(m.state_version(), v3);
        assert!(m.instance_finished(JobId::new(1), TaskId::new(1), 0, Timestamp::new(50)));
        let v4 = m.state_version();
        assert!(v4 > v3);
        m.ingest_machine_event(MachineEventRecord {
            time: Timestamp::new(10),
            machine: MachineId::new(1),
            event: MachineEvent::Remove,
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        });
        assert!(m.state_version() > v4);
        // Pure reads never bump.
        let view = m.live_view();
        let _ = view.frame(Timestamp::new(50));
        let _ = view.running_delta(Timestamp::new(0), Timestamp::new(100));
        assert_eq!(view.state_version(), m.state_version());
    }

    #[test]
    fn frame_is_consistent_with_individual_queries_when_idle() {
        use batchlens_trace::{DatasetQuery, JobId, TaskId};
        let m = StreamMonitor::new(StreamConfig {
            horizon: TimeDelta::DAY,
            ..Default::default()
        })
        .unwrap();
        let inst =
            |job: u32, task: u32, seq: u32, machine: u32, s: i64, e: i64| BatchInstanceRecord {
                start_time: Timestamp::new(s),
                end_time: Timestamp::new(e),
                job: JobId::new(job),
                task: TaskId::new(task),
                seq,
                total: 2,
                machine: MachineId::new(machine),
                status: batchlens_trace::TaskStatus::Terminated,
                cpu_avg: 0.2,
                cpu_max: 0.4,
                mem_avg: 0.2,
                mem_max: 0.4,
            };
        m.ingest_instance(inst(1, 1, 0, 5, 0, 600));
        m.ingest_instance(inst(1, 2, 0, 3, 100, 900));
        m.ingest_instance(inst(2, 1, 0, 3, 300, 900));
        m.ingest(rec(3, 0, 0.4, 0.3, 0.2));
        m.ingest(rec(3, 300, 0.6, 0.3, 0.2));
        m.ingest_machine_event(MachineEventRecord {
            time: Timestamp::new(450),
            machine: MachineId::new(5),
            event: MachineEvent::Remove,
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        });
        let view = m.live_view();
        for t in [0i64, 299, 300, 450, 899, 2000] {
            let t = Timestamp::new(t);
            let frame = view.frame(t);
            assert_eq!(frame.version(), m.state_version());
            assert_eq!(frame.running_triples(), &view.running_triples_at(t)[..]);
            assert_eq!(frame.jobs_running(), view.jobs_running_at(t));
            assert_eq!(frame.machine_ids(), &view.machine_ids()[..]);
            assert_eq!(frame.machines_active(), view.machines_active_at(t));
            for machine in [3u32, 5, 99] {
                let machine = MachineId::new(machine);
                assert_eq!(frame.alive(machine), view.alive_at(machine, t));
                assert_eq!(frame.util_of(machine), view.util_at(machine, t));
            }
        }
        // util_hold agrees with util_at across its claimed window.
        for t in (-50..1000).step_by(37) {
            let t = Timestamp::new(t);
            let hold = view.util_hold(MachineId::new(3), t);
            assert!(hold.holds_at(t));
            assert_eq!(hold.util, view.util_at(MachineId::new(3), t));
            for probe in (-50..1000).step_by(53).map(Timestamp::new) {
                if hold.holds_at(probe) {
                    assert_eq!(hold.util, view.util_at(MachineId::new(3), probe));
                }
            }
        }
        // The live running_delta override equals a stab diff.
        for (a, b) in [(0i64, 500i64), (500, 0), (250, 250), (-100, 5000)] {
            let (t0, t1) = (Timestamp::new(a), Timestamp::new(b));
            let delta = view.running_delta(t0, t1);
            let from = view.running_triples_at(t0);
            let to = view.running_triples_at(t1);
            let mut expect_in = to.clone();
            for x in &from {
                if let Some(p) = expect_in.iter().position(|y| y == x) {
                    expect_in.remove(p);
                }
            }
            let mut expect_out = from.clone();
            for x in &to {
                if let Some(p) = expect_out.iter().position(|y| y == x) {
                    expect_out.remove(p);
                }
            }
            assert_eq!(delta.entered, expect_in, "{a} -> {b}");
            assert_eq!(delta.exited, expect_out, "{a} -> {b}");
        }
    }

    #[test]
    fn concurrent_ingest_is_safe() {
        use std::sync::Arc;
        use std::thread;
        let m = Arc::new(StreamMonitor::new(StreamConfig::default()).unwrap());
        let mut handles = Vec::new();
        for machine in 0..4u32 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    m.ingest(rec(machine, i * 60, 0.3, 0.3, 0.3));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.ingested(), 400);
        assert_eq!(m.tracked_machines(), 4);
        assert_eq!(m.stale_dropped(), 0);
    }

    fn temp_wal_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "batchlens-stream-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn config_validation_rejects_degenerate_settings() {
        let err = StreamConfig {
            horizon: TimeDelta::seconds(0),
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, StreamConfigError::NonPositiveHorizon { seconds: 0 });
        assert!(err.to_string().contains("horizon"));

        let err = StreamConfig {
            horizon: TimeDelta::seconds(-60),
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, StreamConfigError::NonPositiveHorizon { seconds: -60 });

        let err = StreamConfig {
            ooo_tolerance: TimeDelta::seconds(-1),
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, StreamConfigError::NegativeOooTolerance { seconds: -1 });

        // Zero tolerance is the documented strict mode, not an error.
        StreamConfig {
            ooo_tolerance: TimeDelta::seconds(0),
            ..Default::default()
        }
        .validate()
        .unwrap();
        StreamConfig::default().validate().unwrap();
    }

    #[test]
    fn wal_round_trip_recovers_exact_state() {
        use batchlens_trace::wal::{WalConfig, WalWriter};
        use batchlens_trace::{JobId, TaskId};
        let dir = temp_wal_dir("roundtrip");
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        m.attach_wal(WalWriter::open(&dir, WalConfig::default()).unwrap());
        assert!(m.wal_attached());

        m.ingest(rec(1, 0, 0.3, 0.3, 0.3));
        m.ingest(rec(1, 60, 0.95, 0.4, 0.3)); // fires an alert
        m.ingest(rec(1, 30, 0.5, 0.5, 0.5)); // late-accepted
        m.ingest(rec(1, 30, 0.5, 0.5, 0.5)); // straggler duplicate
        m.instance_started(
            JobId::new(1),
            TaskId::new(1),
            0,
            MachineId::new(1),
            Timestamp::new(10),
        );
        m.ingest_instance(BatchInstanceRecord {
            start_time: Timestamp::new(0),
            end_time: Timestamp::new(50),
            job: JobId::new(2),
            task: TaskId::new(1),
            seq: 0,
            total: 1,
            machine: MachineId::new(2),
            status: batchlens_trace::InstanceStatus::Terminated,
            cpu_avg: 0.4,
            cpu_max: 0.8,
            mem_avg: 0.3,
            mem_max: 0.5,
        });
        let drained = m.drain_alerts();
        assert_eq!(drained.len(), 1);
        m.ingest(rec(2, 90, 0.97, 0.3, 0.3)); // a second alert, left undrained
        m.instance_finished(JobId::new(1), TaskId::new(1), 0, Timestamp::new(80));
        m.ingest_machine_event(MachineEventRecord {
            time: Timestamp::new(70),
            machine: MachineId::new(2),
            event: MachineEvent::Remove,
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        });
        assert_eq!(m.wal_errors(), 0);
        assert!(m.last_wal_error().is_none());
        drop(m.detach_wal());

        let (r, report) = StreamMonitor::recover(&dir, StreamConfig::default()).unwrap();
        assert!(report.reason.is_clean(), "{:?}", report.reason);
        assert_eq!(report.records_replayed, 10);
        assert_eq!(report.bytes_discarded, 0);

        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        // A reference monitor fed the same deliveries directly must agree
        // with recovery on every surface.
        m.ingest(rec(1, 0, 0.3, 0.3, 0.3));
        m.ingest(rec(1, 60, 0.95, 0.4, 0.3));
        m.ingest(rec(1, 30, 0.5, 0.5, 0.5));
        m.ingest(rec(1, 30, 0.5, 0.5, 0.5));
        m.instance_started(
            JobId::new(1),
            TaskId::new(1),
            0,
            MachineId::new(1),
            Timestamp::new(10),
        );
        m.ingest_instance(BatchInstanceRecord {
            start_time: Timestamp::new(0),
            end_time: Timestamp::new(50),
            job: JobId::new(2),
            task: TaskId::new(1),
            seq: 0,
            total: 1,
            machine: MachineId::new(2),
            status: batchlens_trace::InstanceStatus::Terminated,
            cpu_avg: 0.4,
            cpu_max: 0.8,
            mem_avg: 0.3,
            mem_max: 0.5,
        });
        m.drain_alerts();
        m.ingest(rec(2, 90, 0.97, 0.3, 0.3));
        m.instance_finished(JobId::new(1), TaskId::new(1), 0, Timestamp::new(80));
        m.ingest_machine_event(MachineEventRecord {
            time: Timestamp::new(70),
            machine: MachineId::new(2),
            event: MachineEvent::Remove,
            capacity_cpu: 0.0,
            capacity_mem: 0.0,
            capacity_disk: 0.0,
        });

        assert_eq!(r.state_version(), m.state_version());
        assert_eq!(r.ingested(), m.ingested());
        assert_eq!(r.late_accepted(), m.late_accepted());
        assert_eq!(r.stale_dropped(), m.stale_dropped());
        assert_eq!(r.ingested_instances(), m.ingested_instances());
        assert_eq!(r.ingested_events(), m.ingested_events());
        assert_eq!(r.total_alerts(), m.total_alerts());
        assert_eq!(r.peek_alerts(), m.peek_alerts());
        for t in [0, 30, 60, 70, 90] {
            assert_eq!(
                r.live_view().frame(Timestamp::new(t)),
                m.live_view().frame(Timestamp::new(t)),
                "frame({t})"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_from_empty_dir_is_clean_and_empty() {
        let dir = temp_wal_dir("empty");
        let (r, report) = StreamMonitor::recover(&dir, StreamConfig::default()).unwrap();
        assert!(report.reason.is_clean());
        assert_eq!(report.records_replayed, 0);
        assert_eq!(r.state_version(), 0);
        assert_eq!(r.ingested(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_rejects_invalid_config_before_touching_the_log() {
        let dir = temp_wal_dir("badcfg");
        let err = StreamMonitor::recover(
            &dir,
            StreamConfig {
                horizon: TimeDelta::seconds(0),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RecoverError::Config(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_truncates_at_corruption_and_reports_it() {
        use batchlens_trace::wal::{WalConfig, WalWriter};
        let dir = temp_wal_dir("corrupt");
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        m.attach_wal(WalWriter::open(&dir, WalConfig::default()).unwrap());
        for i in 0..20 {
            m.ingest(rec(1, i * 60, 0.3, 0.3, 0.3));
        }
        drop(m.detach_wal());

        // Flip one bit two-thirds of the way into the single segment.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|x| x == "wal"))
            .unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        let at = bytes.len() * 2 / 3;
        bytes[at] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();

        let (r, report) = StreamMonitor::recover(&dir, StreamConfig::default()).unwrap();
        assert!(!report.reason.is_clean());
        assert!(report.bytes_discarded > 0);
        assert!(report.records_replayed < 20);
        // The prefix before the corruption replayed exactly.
        assert_eq!(r.ingested(), report.records_replayed);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Total bytes across every file in a WAL directory.
    fn dir_bytes(dir: &std::path::Path) -> u64 {
        std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum()
    }

    #[test]
    fn empty_drains_append_nothing_to_the_wal() {
        // Regression: `drain_alerts` used to log an `AlertsDrained` marker
        // unconditionally, so an idle poller draining an empty buffer grew
        // the log without bound between checkpoints.
        use batchlens_trace::wal::{WalConfig, WalWriter};
        let dir = temp_wal_dir("empty-drain");
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        m.attach_wal(WalWriter::open(&dir, WalConfig::default()).unwrap());
        m.ingest(rec(1, 0, 0.3, 0.3, 0.3));
        m.sync_wal();
        let before = dir_bytes(&dir);
        for _ in 0..64 {
            assert!(m.drain_alerts().is_empty());
        }
        m.sync_wal();
        assert_eq!(
            dir_bytes(&dir),
            before,
            "64 empty drains must not grow the log by a single byte"
        );
        // A non-empty drain still logs its marker (durable consumption).
        m.ingest(rec(1, 60, 0.95, 0.3, 0.3));
        assert_eq!(m.drain_alerts().len(), 1);
        m.sync_wal();
        assert!(dir_bytes(&dir) > before);
        assert_eq!(m.wal_errors(), 0);
        drop(m.detach_wal());
        let (r, report) = StreamMonitor::recover(&dir, StreamConfig::default()).unwrap();
        assert!(report.reason.is_clean(), "{:?}", report.reason);
        assert_eq!(r.alerts_len(), 0, "replay reproduces the drained state");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ooo_tolerance_boundary_is_inclusive() {
        // The acceptance rule is "at most `ooo_tolerance` late": a record
        // exactly at the boundary is accepted, one second beyond is not.
        let tol = 120;
        let m = StreamMonitor::new(StreamConfig {
            ooo_tolerance: TimeDelta::seconds(tol),
            ..Default::default()
        })
        .unwrap();
        m.ingest(rec(1, 1_000, 0.3, 0.3, 0.3));
        assert!(m.ingest(rec(1, 1_000 - tol, 0.4, 0.3, 0.3)).is_empty());
        assert_eq!(m.late_accepted(), 1, "exactly-tolerance-late is accepted");
        assert_eq!(m.stale_dropped(), 0);
        m.ingest(rec(1, 1_000 - tol - 1, 0.4, 0.3, 0.3));
        assert_eq!(m.late_accepted(), 1);
        assert_eq!(m.stale_dropped(), 1, "one past the boundary is dropped");
        assert_eq!(m.ingested(), 2);
        // Both counters partition the straggler space: every delivery is
        // either ingested, late_accepted (subset of ingested) or dropped.
        assert_eq!(
            m.series(MachineId::new(1), Metric::Cpu).unwrap().len(),
            2,
            "the boundary record landed in the window"
        );
    }

    #[test]
    fn zero_ooo_tolerance_accepts_only_strictly_newer_records() {
        let m = StreamMonitor::new(StreamConfig {
            ooo_tolerance: TimeDelta::seconds(0),
            ..Default::default()
        })
        .unwrap();
        m.ingest(rec(1, 100, 0.3, 0.3, 0.3));
        // `last - rec.time == 0 <= 0` passes the tolerance gate, but the
        // record is a duplicate timestamp: dropped by the re-delivery rule,
        // not by the lateness rule.
        m.ingest(rec(1, 100, 0.5, 0.3, 0.3));
        m.ingest(rec(1, 99, 0.5, 0.3, 0.3)); // 1 s late: dropped
        m.ingest(rec(1, 101, 0.5, 0.3, 0.3)); // in order: accepted
        assert_eq!(m.stale_dropped(), 2);
        assert_eq!(m.late_accepted(), 0);
        assert_eq!(m.ingested(), 2);
    }

    #[test]
    fn batch_ingest_is_bit_identical_to_singles() {
        // One epoch through `ingest_batch` vs the same records one at a
        // time: alerts (including sequence numbers), counters and
        // state_version must all agree — the lock is amortized, nothing
        // else changes.
        let sequencer = BatchSequencer::new();
        let mut records: Vec<ServerUsageRecord> = (0..60u32)
            .map(|i| {
                rec(
                    i % 3,
                    i64::from(i) * 30,
                    0.3 + f64::from(i % 7) / 10.0,
                    0.3,
                    0.3,
                )
            })
            .collect();
        records.push(rec(0, 60, 0.5, 0.3, 0.3)); // late within tolerance
        records.push(rec(0, 60, 0.5, 0.3, 0.3)); // duplicate: straggler
        records.push(rec(1, -4_000, 0.5, 0.3, 0.3)); // beyond tolerance
        let batch = sequencer.seal(Timestamp::new(2_000), records.clone());
        assert_eq!((batch.id, batch.version), (0, 1));

        let batched = StreamMonitor::new(StreamConfig::default()).unwrap();
        let serial = StreamMonitor::new(StreamConfig::default()).unwrap();
        let from_batch = batched.ingest_batch(&batch);
        let mut from_singles = Vec::new();
        for r in &records {
            from_singles.extend(serial.ingest(*r));
        }
        assert_eq!(
            from_batch, from_singles,
            "alerts bit-identical, seq included"
        );
        assert_eq!(
            batched.state_version(),
            serial.state_version(),
            "state_version advances per accepted record, not per batch"
        );
        assert_eq!(batched.ingested(), serial.ingested());
        assert_eq!(batched.stale_dropped(), serial.stale_dropped());
        assert_eq!(batched.late_accepted(), serial.late_accepted());
        assert_eq!(batched.next_alert_seq(), serial.next_alert_seq());
        for machine in 0..3 {
            assert_eq!(
                batched.series(MachineId::new(machine), Metric::Cpu),
                serial.series(MachineId::new(machine), Metric::Cpu)
            );
        }
        // The only observable divergence: the batch path seals its epoch.
        assert_eq!(batched.sealed_epoch(), Some(1));
        assert_eq!(serial.sealed_epoch(), None);
        // The sequencer numbers epochs contiguously from (id 0, version 1).
        let next = sequencer.seal(Timestamp::new(3_000), Vec::new());
        assert_eq!((next.id, next.version), (1, 2));
    }

    #[test]
    fn batch_logged_wal_replays_to_the_same_state() {
        use batchlens_trace::wal::{WalConfig, WalWriter};
        let dir = temp_wal_dir("batch-replay");
        let sequencer = BatchSequencer::new();
        let m = StreamMonitor::new(StreamConfig::default()).unwrap();
        m.attach_wal(WalWriter::open(&dir, WalConfig::default()).unwrap());
        let records: Vec<ServerUsageRecord> = (0..40u32)
            .map(|i| {
                rec(
                    i % 2,
                    i64::from(i) * 60,
                    if i == 31 { 0.97 } else { 0.4 },
                    0.3,
                    0.3,
                )
            })
            .collect();
        m.ingest_batch(&sequencer.seal(Timestamp::new(2_400), records[..20].to_vec()));
        m.ingest_batch(&sequencer.seal(Timestamp::new(4_800), records[20..].to_vec()));
        assert_eq!(m.sealed_epoch(), Some(2));
        drop(m.detach_wal());

        let (r, report) = StreamMonitor::recover(&dir, StreamConfig::default()).unwrap();
        assert!(report.reason.is_clean(), "{:?}", report.reason);
        assert_eq!(r.sealed_epoch(), Some(2), "epoch frontier survives replay");
        assert_eq!(r.state_version(), m.state_version());
        assert_eq!(r.ingested(), m.ingested());
        assert_eq!(r.peek_alerts(), m.peek_alerts());
        assert_eq!(
            r.series(MachineId::new(1), Metric::Cpu),
            m.series(MachineId::new(1), Metric::Cpu)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
