//! The one-call pipeline: simulate → analyze → render, the path the
//! examples and benches use to go from a scenario to artifacts.

use batchlens_render::svg::to_svg;
use batchlens_sim::{SimError, Simulation};
use batchlens_trace::{Timestamp, TraceDataset};

use crate::app::BatchLens;
use crate::report::case_study_report;

/// A reusable pipeline that runs a simulation and produces a session.
#[derive(Debug, Clone)]
pub struct Pipeline {
    simulation: Simulation,
}

/// The artifacts a pipeline run produces for one snapshot timestamp.
#[derive(Debug, Clone)]
pub struct Artifacts {
    /// The bubble chart SVG.
    pub bubble_svg: String,
    /// The dashboard SVG.
    pub dashboard_svg: String,
    /// The textual root-cause report.
    pub report: String,
    /// The snapshot timestamp the artifacts describe.
    pub at: Timestamp,
}

impl Pipeline {
    /// Wraps a configured simulation.
    pub fn new(simulation: Simulation) -> Self {
        Pipeline { simulation }
    }

    /// Runs the simulation and returns the dataset.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation.
    pub fn dataset(&self) -> Result<TraceDataset, SimError> {
        self.simulation.run()
    }

    /// Runs the simulation and returns a ready [`BatchLens`] session.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation.
    pub fn session(&self) -> Result<BatchLens, SimError> {
        Ok(BatchLens::new(self.dataset()?))
    }

    /// Runs the simulation and renders artifacts at `at`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation.
    pub fn artifacts_at(
        &self,
        at: Timestamp,
        width: f64,
        height: f64,
    ) -> Result<Artifacts, SimError> {
        let mut app = self.session()?;
        app.apply(crate::interaction::Event::SelectTimestamp(at));
        let bubble = app.render_bubble(width, height);
        let dashboard = app.render_dashboard(width * 1.6, height);
        let report = case_study_report(app.dataset(), at);
        Ok(Artifacts {
            bubble_svg: bubble,
            dashboard_svg: dashboard,
            report,
            at,
        })
    }

    /// Renders just the bubble chart SVG at `at`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation.
    pub fn bubble_svg_at(
        &self,
        at: Timestamp,
        width: f64,
        height: f64,
    ) -> Result<String, SimError> {
        let mut app = self.session()?;
        app.apply(crate::interaction::Event::SelectTimestamp(at));
        Ok(app.render_bubble(width, height))
    }

    /// Convenience: an empty-scene SVG of the given size (used as a
    /// placeholder by callers).
    pub fn blank_svg(width: f64, height: f64) -> String {
        to_svg(&batchlens_render::scene::Scene::new(width, height))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use batchlens_sim::scenario;

    #[test]
    fn pipeline_produces_artifacts() {
        let pipe = Pipeline::new(scenario::fig3b(1));
        let art = pipe.artifacts_at(scenario::T_FIG3B, 800.0, 600.0).unwrap();
        assert!(art.bubble_svg.contains("<circle"));
        assert!(art.dashboard_svg.contains("BatchLens @"));
        assert!(art.report.contains("root-cause report"));
        assert_eq!(art.at, scenario::T_FIG3B);
    }

    #[test]
    fn session_is_ready_to_drive() {
        let pipe = Pipeline::new(scenario::fig3a(2));
        let app = pipe.session().unwrap();
        assert!(app.dataset().job_count() > 0);
    }

    #[test]
    fn bubble_svg_shortcut() {
        let pipe = Pipeline::new(scenario::fig1_sample(3));
        let svg = pipe
            .bubble_svg_at(Timestamp::new(600), 500.0, 500.0)
            .unwrap();
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn blank_svg_is_valid() {
        let svg = Pipeline::blank_svg(100.0, 100.0);
        assert!(svg.starts_with("<?xml"));
    }
}
